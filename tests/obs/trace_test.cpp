#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "testutil/mini_json.hpp"

namespace vhadoop::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

Tracer make_enabled(double* clock) {
  Tracer t;
  t.set_enabled(true);
  t.set_clock([clock] { return *clock; });
  return t;
}

TEST(Tracer, DisabledIsANoOp) {
  Tracer t;  // disabled by default
  t.begin(1, 0, "span");
  t.instant(1, 0, "tick");
  t.end(1, 0);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
}

TEST(Tracer, SpansNestPerLane) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.begin(1, 0, "outer");
  now = 1.0;
  t.begin(1, 0, "inner");
  t.begin(2, 0, "other-lane");
  EXPECT_EQ(t.open_depth(1, 0), 2);
  EXPECT_EQ(t.open_depth(2, 0), 1);
  EXPECT_EQ(t.open_span_count(), 3u);

  now = 2.0;
  t.end(1, 0);  // closes "inner", not "outer"
  EXPECT_EQ(t.open_depth(1, 0), 1);
  ASSERT_EQ(t.events().size(), 4u);
  const Tracer::Event& e = t.events().back();
  EXPECT_EQ(e.phase, Tracer::Phase::End);
  EXPECT_EQ(e.name, "inner");
  EXPECT_DOUBLE_EQ(e.ts, 2.0);
}

TEST(Tracer, EndOnEmptyLaneIsIgnored) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.end(5, 5);  // nothing open
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, EndAllDrainsOneLaneOnly) {
  double now = 3.0;
  Tracer t = make_enabled(&now);
  t.begin(1, 0, "a");
  t.begin(1, 0, "b");
  t.begin(1, 1, "keep");
  t.end_all(1, 0);
  EXPECT_EQ(t.open_depth(1, 0), 0);
  EXPECT_EQ(t.open_depth(1, 1), 1);
  // LIFO close order: b then a.
  ASSERT_EQ(t.events().size(), 5u);
  EXPECT_EQ(t.events()[3].name, "b");
  EXPECT_EQ(t.events()[4].name, "a");
}

TEST(Tracer, ChromeJsonBalancedAndOrdered) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.set_process_name(1, "worker0");
  t.set_thread_name(1, 0, "map-slot-0");
  t.begin(1, 0, "map-0", "mr");
  now = 1.5;
  t.instant(1, 0, "spill");
  now = 4.0;
  t.end(1, 0);
  t.begin(1, 0, "left-open");  // exporter must synthesize the close

  JsonValue root = JsonParser::parse(t.to_chrome_json());
  const JsonValue& ev = root.at("traceEvents");
  ASSERT_TRUE(ev.is_array());

  std::map<std::pair<int, int>, int> depth;
  double last_ts = -1.0;
  int metadata = 0;
  for (const JsonValue& e : ev.array) {
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, last_ts);  // sorted
    last_ts = ts;
    auto key = std::make_pair(static_cast<int>(e.at("pid").number),
                              static_cast<int>(e.at("tid").number));
    if (ph == "B") ++depth[key];
    if (ph == "E") {
      --depth[key];
      EXPECT_GE(depth[key], 0);  // never more E than B
    }
    if (ph == "i") {
      EXPECT_EQ(e.at("s").str, "t");
    }
  }
  EXPECT_EQ(metadata, 2);  // process_name + thread_name rows
  for (const auto& [lane, d] : depth) EXPECT_EQ(d, 0);  // balanced

  // Timestamps are microseconds: the instant recorded at 1.5 s shows as 1.5e6.
  bool found_instant = false;
  for (const JsonValue& e : ev.array) {
    if (e.at("ph").str == "i") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5e6);
      found_instant = true;
    }
  }
  EXPECT_TRUE(found_instant);
  // Exporting is non-destructive: the span is still open in the tracer.
  EXPECT_EQ(t.open_depth(1, 0), 1);
}

TEST(Tracer, CsvExportListsEventsInOrder) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.begin(3, 1, "work", "cat");
  now = 2.0;
  t.end(3, 1);
  std::istringstream csv(t.to_csv());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(csv, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ts_seconds,phase,pid,tid,name,cat");
  EXPECT_EQ(lines[1], "0,B,3,1,work,cat");
  EXPECT_EQ(lines[2], "2,E,3,1,work,");
}

TEST(Tracer, ClearDropsEventsButKeepsLaneNames) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.set_process_name(7, "vm7");
  t.begin(7, 0, "x");
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
  // Metadata survives: boot-time naming outlives per-run clears.
  JsonValue root = JsonParser::parse(t.to_chrome_json());
  ASSERT_EQ(root.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").at(0).at("args").at("name").str, "vm7");
}

// --- span graph ------------------------------------------------------------

TEST(SpanGraph, IdsAreSequentialAndParentIsInnermostOpenSpan) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  const SpanId outer = t.begin(1, 0, "outer", "x", /*job=*/7);
  now = 1.0;
  const SpanId inner = t.begin(1, 0, "inner");
  const SpanId other = t.begin(2, 0, "other-lane");
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 2u);
  EXPECT_EQ(other, 3u);
  EXPECT_EQ(t.current(1, 0), inner);
  EXPECT_EQ(t.current(2, 0), other);
  EXPECT_EQ(t.current(9, 9), 0u);

  ASSERT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.spans()[1].parent, outer);   // inner nests under outer
  EXPECT_EQ(t.spans()[2].parent, 0u);      // other lane has no parent
  EXPECT_EQ(t.spans()[0].job, 7u);
  EXPECT_EQ(t.spans()[1].job, 0u);         // inherits at analysis time
  EXPECT_FALSE(t.spans()[1].closed());
  now = 2.0;
  t.end(1, 0);
  EXPECT_TRUE(t.spans()[1].closed());
  EXPECT_DOUBLE_EQ(t.spans()[1].t0, 1.0);
  EXPECT_DOUBLE_EQ(t.spans()[1].t1, 2.0);
  EXPECT_EQ(t.current(1, 0), outer);
}

TEST(SpanGraph, DisabledTracerHandsOutZeroIds) {
  Tracer t;
  EXPECT_EQ(t.begin(1, 0, "x"), 0u);
  EXPECT_EQ(t.current(1, 0), 0u);
  t.cause(1, 2, "ghost");
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.cause_edges().empty());
}

TEST(SpanGraph, CauseEdgesStampClockAndOptionalStart) {
  double now = 4.0;
  Tracer t = make_enabled(&now);
  const SpanId a = t.begin(1, 0, "a");
  const SpanId b = t.begin(2, 0, "b");
  now = 9.0;
  t.cause(a, b, "shuffle", /*start=*/5.5);
  t.cause(a, b, "plain");
  t.cause(0, b, "dropped");  // 0-endpoint edges are silently skipped
  t.cause(a, 0, "dropped");
  ASSERT_EQ(t.cause_edges().size(), 2u);
  EXPECT_EQ(t.cause_edges()[0].type, "shuffle");
  EXPECT_DOUBLE_EQ(t.cause_edges()[0].at, 9.0);
  EXPECT_DOUBLE_EQ(t.cause_edges()[0].start, 5.5);
  EXPECT_DOUBLE_EQ(t.cause_edges()[1].start, 0.0);
}

TEST(SpanGraph, EndAllFinalizesEverySpanOnTheLane) {
  double now = 1.0;
  Tracer t = make_enabled(&now);
  const SpanId a = t.begin(3, 0, "a");
  const SpanId b = t.begin(3, 0, "b");
  t.begin(3, 1, "keep");
  now = 6.0;
  t.end_all(3, 0);
  EXPECT_TRUE(t.spans()[a - 1].closed());
  EXPECT_TRUE(t.spans()[b - 1].closed());
  EXPECT_DOUBLE_EQ(t.spans()[a - 1].t1, 6.0);
  EXPECT_DOUBLE_EQ(t.spans()[b - 1].t1, 6.0);
  EXPECT_FALSE(t.spans()[2].closed());
  EXPECT_EQ(t.current(3, 0), 0u);
}

TEST(SpanGraph, AmbientCauseScopesNestAndRestore) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  const SpanId a = t.begin(1, 0, "a");
  EXPECT_EQ(t.ambient(), 0u);
  {
    AmbientCause outer_scope(t, a);
    EXPECT_EQ(t.ambient(), a);
    {
      AmbientCause inner_scope(t, 0);
      EXPECT_EQ(t.ambient(), 0u);
    }
    EXPECT_EQ(t.ambient(), a);
  }
  EXPECT_EQ(t.ambient(), 0u);
}

TEST(SpanGraph, JsonExportClosesOpenSpansAtFinalTs) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.set_process_name(1, "worker");
  const SpanId a = t.begin(1, 0, "done", "m", /*job=*/3);
  now = 2.0;
  t.end(1, 0);
  const SpanId open_span = t.begin(1, 0, "open");
  now = 5.0;
  t.instant(1, 0, "final-marker");
  t.cause(a, open_span, "link", 1.0);

  JsonValue root = JsonParser::parse(t.to_span_graph_json());
  EXPECT_EQ(root.at("schema").str, "vhadoop-spans-v1");
  EXPECT_DOUBLE_EQ(root.at("final_ts").number, 5.0);
  EXPECT_EQ(root.at("processes").at("1").str, "worker");
  ASSERT_EQ(root.at("spans").array.size(), 2u);
  const JsonValue& s0 = root.at("spans").at(0);
  EXPECT_DOUBLE_EQ(s0.at("id").number, 1.0);
  EXPECT_DOUBLE_EQ(s0.at("job").number, 3.0);
  EXPECT_EQ(s0.at("cat").str, "m");
  EXPECT_DOUBLE_EQ(s0.at("t1").number, 2.0);
  // The still-open span is clipped to final_ts, not left dangling.
  EXPECT_DOUBLE_EQ(root.at("spans").at(1).at("t1").number, 5.0);
  ASSERT_EQ(root.at("edges").array.size(), 1u);
  EXPECT_EQ(root.at("edges").at(0).at("type").str, "link");
  EXPECT_DOUBLE_EQ(root.at("edges").at(0).at("start").number, 1.0);
  // Export is non-destructive and clear() resets the graph.
  EXPECT_EQ(t.spans().size(), 2u);
  t.clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.cause_edges().empty());
  EXPECT_EQ(t.ambient(), 0u);
}

TEST(ScopedSpan, BeginsAndEndsWithScope) {
  double now = 1.0;
  Tracer t = make_enabled(&now);
  {
    ScopedSpan s(t, 2, 3, "scoped", "test");
    EXPECT_EQ(s.id(), t.current(2, 3));
    EXPECT_EQ(t.open_depth(2, 3), 1);
    now = 6.0;
  }
  EXPECT_EQ(t.open_depth(2, 3), 0);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_DOUBLE_EQ(t.events()[1].ts, 6.0);
}

}  // namespace
}  // namespace vhadoop::obs

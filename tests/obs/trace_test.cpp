#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "testutil/mini_json.hpp"

namespace vhadoop::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

Tracer make_enabled(double* clock) {
  Tracer t;
  t.set_enabled(true);
  t.set_clock([clock] { return *clock; });
  return t;
}

TEST(Tracer, DisabledIsANoOp) {
  Tracer t;  // disabled by default
  t.begin(1, 0, "span");
  t.instant(1, 0, "tick");
  t.end(1, 0);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
}

TEST(Tracer, SpansNestPerLane) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.begin(1, 0, "outer");
  now = 1.0;
  t.begin(1, 0, "inner");
  t.begin(2, 0, "other-lane");
  EXPECT_EQ(t.open_depth(1, 0), 2);
  EXPECT_EQ(t.open_depth(2, 0), 1);
  EXPECT_EQ(t.open_span_count(), 3u);

  now = 2.0;
  t.end(1, 0);  // closes "inner", not "outer"
  EXPECT_EQ(t.open_depth(1, 0), 1);
  ASSERT_EQ(t.events().size(), 4u);
  const Tracer::Event& e = t.events().back();
  EXPECT_EQ(e.phase, Tracer::Phase::End);
  EXPECT_EQ(e.name, "inner");
  EXPECT_DOUBLE_EQ(e.ts, 2.0);
}

TEST(Tracer, EndOnEmptyLaneIsIgnored) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.end(5, 5);  // nothing open
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, EndAllDrainsOneLaneOnly) {
  double now = 3.0;
  Tracer t = make_enabled(&now);
  t.begin(1, 0, "a");
  t.begin(1, 0, "b");
  t.begin(1, 1, "keep");
  t.end_all(1, 0);
  EXPECT_EQ(t.open_depth(1, 0), 0);
  EXPECT_EQ(t.open_depth(1, 1), 1);
  // LIFO close order: b then a.
  ASSERT_EQ(t.events().size(), 5u);
  EXPECT_EQ(t.events()[3].name, "b");
  EXPECT_EQ(t.events()[4].name, "a");
}

TEST(Tracer, ChromeJsonBalancedAndOrdered) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.set_process_name(1, "worker0");
  t.set_thread_name(1, 0, "map-slot-0");
  t.begin(1, 0, "map-0", "mr");
  now = 1.5;
  t.instant(1, 0, "spill");
  now = 4.0;
  t.end(1, 0);
  t.begin(1, 0, "left-open");  // exporter must synthesize the close

  JsonValue root = JsonParser::parse(t.to_chrome_json());
  const JsonValue& ev = root.at("traceEvents");
  ASSERT_TRUE(ev.is_array());

  std::map<std::pair<int, int>, int> depth;
  double last_ts = -1.0;
  int metadata = 0;
  for (const JsonValue& e : ev.array) {
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, last_ts);  // sorted
    last_ts = ts;
    auto key = std::make_pair(static_cast<int>(e.at("pid").number),
                              static_cast<int>(e.at("tid").number));
    if (ph == "B") ++depth[key];
    if (ph == "E") {
      --depth[key];
      EXPECT_GE(depth[key], 0);  // never more E than B
    }
    if (ph == "i") {
      EXPECT_EQ(e.at("s").str, "t");
    }
  }
  EXPECT_EQ(metadata, 2);  // process_name + thread_name rows
  for (const auto& [lane, d] : depth) EXPECT_EQ(d, 0);  // balanced

  // Timestamps are microseconds: the instant recorded at 1.5 s shows as 1.5e6.
  bool found_instant = false;
  for (const JsonValue& e : ev.array) {
    if (e.at("ph").str == "i") {
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5e6);
      found_instant = true;
    }
  }
  EXPECT_TRUE(found_instant);
  // Exporting is non-destructive: the span is still open in the tracer.
  EXPECT_EQ(t.open_depth(1, 0), 1);
}

TEST(Tracer, CsvExportListsEventsInOrder) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.begin(3, 1, "work", "cat");
  now = 2.0;
  t.end(3, 1);
  std::istringstream csv(t.to_csv());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(csv, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ts_seconds,phase,pid,tid,name,cat");
  EXPECT_EQ(lines[1], "0,B,3,1,work,cat");
  EXPECT_EQ(lines[2], "2,E,3,1,work,");
}

TEST(Tracer, ClearDropsEventsButKeepsLaneNames) {
  double now = 0.0;
  Tracer t = make_enabled(&now);
  t.set_process_name(7, "vm7");
  t.begin(7, 0, "x");
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.open_span_count(), 0u);
  // Metadata survives: boot-time naming outlives per-run clears.
  JsonValue root = JsonParser::parse(t.to_chrome_json());
  ASSERT_EQ(root.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").at(0).at("args").at("name").str, "vm7");
}

TEST(ScopedSpan, BeginsAndEndsWithScope) {
  double now = 1.0;
  Tracer t = make_enabled(&now);
  {
    ScopedSpan s(t, 2, 3, "scoped", "test");
    EXPECT_EQ(t.open_depth(2, 3), 1);
    now = 6.0;
  }
  EXPECT_EQ(t.open_depth(2, 3), 0);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_DOUBLE_EQ(t.events()[1].ts, 6.0);
}

}  // namespace
}  // namespace vhadoop::obs

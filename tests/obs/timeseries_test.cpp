#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "testutil/mini_json.hpp"

namespace vhadoop::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

TEST(TimeSeries, SamplesEveryProbeWithTheGivenStamp) {
  TimeSeries ts;
  double a = 1.0, b = 10.0;
  ts.add("x.a", [&a] { return a; });
  ts.add("x.b", [&b] { return b; });
  EXPECT_TRUE(ts.has("x.a"));
  EXPECT_EQ(ts.series_count(), 2u);

  ts.sample(0.5);
  a = 2.0;
  ts.sample(1.5);
  const auto pa = ts.points("x.a");
  ASSERT_EQ(pa.size(), 2u);
  EXPECT_DOUBLE_EQ(pa[0].t, 0.5);
  EXPECT_DOUBLE_EQ(pa[0].v, 1.0);
  EXPECT_DOUBLE_EQ(pa[1].v, 2.0);
  EXPECT_EQ(ts.points("x.b").size(), 2u);
  EXPECT_TRUE(ts.points("unknown").empty());
}

TEST(TimeSeries, RingBufferKeepsTheNewestSamples) {
  TimeSeries ts;
  double v = 0.0;
  ts.add("r.v", [&v] { return v; }, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    v = static_cast<double>(i);
    ts.sample(static_cast<double>(i));
  }
  const auto pts = ts.points("r.v");
  ASSERT_EQ(pts.size(), 4u);  // capacity bounds memory
  // Chronological, holding the last four samples (6..9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(pts[static_cast<std::size_t>(i)].t, 6.0 + i);
    EXPECT_DOUBLE_EQ(pts[static_cast<std::size_t>(i)].v, 6.0 + i);
  }
}

TEST(TimeSeries, ReAddReplacesProbeButKeepsSamples) {
  TimeSeries ts;
  ts.add("s.v", [] { return 1.0; }, /*capacity=*/8);
  ts.sample(0.0);
  ts.add("s.v", [] { return 2.0; }, /*capacity=*/2);  // capacity ignored now
  ts.sample(1.0);
  const auto pts = ts.points("s.v");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].v, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].v, 2.0);
  ts.clear_samples();
  EXPECT_TRUE(ts.points("s.v").empty());
  EXPECT_TRUE(ts.has("s.v"));  // registration survives
}

TEST(TimeSeries, JsonExportIsSortedAndParses) {
  TimeSeries ts;
  ts.add("z.last", [] { return 1.0; });
  ts.add("a.first", [] { return 2.0; }, /*capacity=*/16);
  ts.sample(3.0);
  const std::string json = ts.to_json();
  EXPECT_LT(json.find("\"a.first\""), json.find("\"z.last\""));

  JsonValue root = JsonParser::parse(json);
  EXPECT_EQ(root.at("schema").str, "vhadoop-timeseries-v1");
  const JsonValue& s = root.at("series").at("a.first");
  EXPECT_DOUBLE_EQ(s.at("capacity").number, 16.0);
  ASSERT_EQ(s.at("points").array.size(), 1u);
  EXPECT_DOUBLE_EQ(s.at("points").at(0).at(0).number, 3.0);
  EXPECT_DOUBLE_EQ(s.at("points").at(0).at(1).number, 2.0);
}

TEST(TimeSeries, EngineSamplerRunsOnCadenceWithoutHoldingRunOpen) {
  sim::Engine eng;
  int level = 0;
  eng.timeseries().add("sim.level", [&level] { return static_cast<double>(level); });
  eng.sample_timeseries_every(1.0);

  // Workload: bump the level at t=2.5 and t=4.5, done at 4.5.
  eng.schedule_at(2.5, [&level] { level = 5; });
  eng.schedule_at(4.5, [&level] { level = 9; });
  eng.run();
  // The daemon chain must not keep run() alive past the last regular event.
  EXPECT_DOUBLE_EQ(eng.now(), 4.5);

  const auto pts = eng.timeseries().points("sim.level");
  ASSERT_GE(pts.size(), 4u);
  // Samples land on the 1-second cadence and see values of their instant.
  EXPECT_DOUBLE_EQ(pts[0].t, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].v, 0.0);
  EXPECT_DOUBLE_EQ(pts[2].t, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].v, 5.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i].t - pts[i - 1].t, 1.0);
  }
}

}  // namespace
}  // namespace vhadoop::obs

// End-to-end observability check: run a real simulated job on the full
// platform with tracing enabled, then validate the exported Chrome trace
// and metrics snapshot by parsing them back.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "core/platform.hpp"
#include "testutil/mini_json.hpp"

namespace vhadoop::core {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

/// A small wordcount-shaped job whose maps read real HDFS blocks (so the
/// hdfs.* counters tick too).
mapreduce::SimJobSpec small_job(Platform& p) {
  if (!p.hdfs().exists("/in/e2e")) p.upload("/in/e2e", 48 * sim::kMiB);
  mapreduce::SimJobSpec job;
  job.name = "wc-e2e";
  job.output_path = "/out/wc-e2e";
  const int blocks = static_cast<int>(p.hdfs().blocks("/in/e2e").size());
  for (int m = 0; m < 6; ++m) {
    job.maps.push_back({.input_path = "/in/e2e", .block_index = m % blocks,
                        .cpu_seconds = 2.0, .output_bytes = 4 * sim::kMiB});
  }
  for (int r = 0; r < 2; ++r) {
    job.reduces.push_back({.cpu_seconds = 1.5, .output_bytes = 2 * sim::kMiB});
  }
  return job;
}

TEST(TraceE2E, JobProducesValidChromeTrace) {
  Platform p;
  p.enable_tracing();
  p.boot_cluster({.num_workers = 4});
  auto timeline = p.run_job(small_job(p));
  EXPECT_GT(timeline.elapsed(), 0.0);
  // Every task attempt released its slot: no span left open.
  EXPECT_EQ(p.tracer().open_span_count(), 0u);

  JsonValue root = JsonParser::parse(p.tracer().to_chrome_json());
  const JsonValue& ev = root.at("traceEvents");
  ASSERT_TRUE(ev.is_array());
  ASSERT_FALSE(ev.array.empty());

  std::set<int> named_pids;
  std::map<std::pair<int, int>, int> depth;
  double last_ts = -1.0;
  int begins = 0, ends = 0;
  for (const JsonValue& e : ev.array) {
    const std::string ph = e.at("ph").str;
    const int pid = static_cast<int>(e.at("pid").number);
    if (ph == "M") {
      if (e.at("name").str == "process_name") named_pids.insert(pid);
      continue;
    }
    // Non-metadata events come out sorted by timestamp.
    const double ts = e.at("ts").number;
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    auto key = std::make_pair(pid, static_cast<int>(e.at("tid").number));
    if (ph == "B") {
      ++begins;
      ++depth[key];
    } else if (ph == "E") {
      ++ends;
      --depth[key];
      ASSERT_GE(depth[key], 0) << "unmatched E on pid=" << key.first
                               << " tid=" << key.second;
    }
  }
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
  for (const auto& [lane, d] : depth) EXPECT_EQ(d, 0);

  // One process row per VM (namenode + 4 workers) plus the platform lane.
  EXPECT_TRUE(named_pids.count(static_cast<int>(p.namenode())));
  for (virt::VmId vm : p.workers()) {
    EXPECT_TRUE(named_pids.count(static_cast<int>(vm)));
  }
  EXPECT_TRUE(named_pids.count(Platform::kPlatformPid));

  // Map attempts show up as spans on the worker lanes.
  bool saw_map_span = false;
  for (const JsonValue& e : ev.array) {
    if (e.at("ph").str == "B" && e.at("name").str.rfind("map-", 0) == 0) {
      saw_map_span = true;
    }
  }
  EXPECT_TRUE(saw_map_span);
}

TEST(TraceE2E, MetricsSnapshotHasNonZeroModuleCounters) {
  Platform p;
  p.boot_cluster({.num_workers = 4});
  p.run_job(small_job(p));

  JsonValue root = JsonParser::parse(p.metrics().to_json());
  const JsonValue& c = root.at("counters");
  for (const char* name :
       {"sim.events_scheduled", "sim.events_fired", "net.flows_started",
        "net.bytes_requested", "hdfs.blocks_read", "hdfs.bytes_written",
        "virt.vms_booted", "mr.map_attempts", "mr.reduce_attempts",
        "mr.heartbeats", "mr.jobs_completed"}) {
    ASSERT_TRUE(c.has(name)) << name;
    EXPECT_GT(c.at(name).number, 0.0) << name;
  }
  EXPECT_DOUBLE_EQ(c.at("virt.vms_booted").number, 5.0);
  EXPECT_DOUBLE_EQ(c.at("mr.jobs_completed").number, 1.0);

  // Task-duration histograms observed one sample per attempt.
  const JsonValue& h = root.at("histograms");
  ASSERT_TRUE(h.has("mr.map_seconds"));
  EXPECT_GE(h.at("mr.map_seconds").at("count").number, 6.0);
  EXPECT_GE(h.at("mr.reduce_seconds").at("count").number, 2.0);
  EXPECT_GT(h.at("mr.map_seconds").at("p50").number, 0.0);
}

TEST(TraceE2E, TracingDisabledRecordsNothing) {
  Platform p;
  p.boot_cluster({.num_workers = 2});
  p.run_job(small_job(p));
  EXPECT_TRUE(p.tracer().events().empty());
  // Metrics are always on regardless of tracing.
  ASSERT_NE(p.metrics().find_counter("mr.map_attempts"), nullptr);
  EXPECT_GT(p.metrics().find_counter("mr.map_attempts")->value(), 0.0);
}

TEST(TraceE2E, TunerRecommendationsBecomeInstantEvents) {
  Platform p;
  p.enable_tracing();
  p.boot_cluster({.num_workers = 4});
  auto& mon = p.attach_monitor(1.0);
  p.run_job(small_job(p));
  mon.stop();
  auto recs = p.tune();
  int instants = 0;
  for (const auto& e : p.tracer().events()) {
    if (e.phase == obs::Tracer::Phase::Instant &&
        e.pid == Platform::kPlatformPid) {
      ++instants;
    }
  }
  EXPECT_EQ(instants, static_cast<int>(recs.size()));
}

}  // namespace
}  // namespace vhadoop::core

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "testutil/mini_json.hpp"

namespace vhadoop::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

TEST(Registry, LookupIsIdempotent) {
  Registry reg;
  Counter* a = reg.counter("mr.map_attempts");
  a->add(3.0);
  Counter* b = reg.counter("mr.map_attempts");
  EXPECT_EQ(a, b);  // same object, not a fresh zeroed one
  EXPECT_DOUBLE_EQ(b->value(), 3.0);
  EXPECT_EQ(reg.size(), 1u);

  Gauge* g1 = reg.gauge("sim.queue_depth");
  Gauge* g2 = reg.gauge("sim.queue_depth");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = reg.histogram("mr.map_seconds", Histogram::linear_buckets(10.0, 5));
  // Bounds of a later call are ignored: same object comes back.
  Histogram* h2 = reg.histogram("mr.map_seconds", Histogram::linear_buckets(99.0, 2));
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 5u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, PointersStayValidAcrossInsertions) {
  Registry reg;
  Counter* first = reg.counter("a.first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("b.filler_" + std::to_string(i));
  }
  first->inc();
  EXPECT_DOUBLE_EQ(reg.counter("a.first")->value(), 1.0);
}

TEST(Registry, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("t.present")->inc();
  ASSERT_NE(reg.find_counter("t.present"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_counter("t.present")->value(), 1.0);
}

TEST(Gauge, TracksHighWaterMark) {
  Gauge g;
  g.set(3.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 9.0);
}

TEST(Histogram, BucketsAndStats) {
  Histogram h(Histogram::linear_buckets(10.0, 5));  // bounds 2,4,6,8,10
  ASSERT_EQ(h.bounds().size(), 5u);
  EXPECT_DOUBLE_EQ(h.bounds().front(), 2.0);
  EXPECT_DOUBLE_EQ(h.bounds().back(), 10.0);

  for (double v : {1.0, 3.0, 5.0, 7.0, 9.0, 25.0}) h.observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
  EXPECT_NEAR(h.mean(), 50.0 / 6.0, 1e-12);
  // One observation per bucket incl. overflow.
  ASSERT_EQ(h.bucket_counts().size(), 6u);
  for (std::uint64_t c : h.bucket_counts()) EXPECT_EQ(c, 1u);
}

TEST(Histogram, ExponentialBucketsGrowGeometrically) {
  auto bounds = Histogram::exponential_buckets(1.0, 2.0, 4);  // 1,2,4,8
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h(Histogram::linear_buckets(100.0, 10));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  // Uniform 1..100: quantiles land near their nominal values (bucket
  // interpolation is approximate, so allow one bucket-width of slack).
  EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 10.0);
  EXPECT_LE(h.percentile(0.5), h.percentile(0.95));
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(Histogram::linear_buckets(10.0, 5));
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);  // no data
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1.5), 0.0);

  Histogram overflow_only(Histogram::linear_buckets(1.0, 2));
  overflow_only.observe(500.0);
  // Overflow bucket has no upper bound; reports the observed max.
  EXPECT_DOUBLE_EQ(overflow_only.percentile(0.99), 500.0);
}

TEST(Histogram, PercentileDegenerateQuantilesClampToMinMax) {
  Histogram h(Histogram::linear_buckets(100.0, 10));
  for (double v : {3.0, 40.0, 77.0}) h.observe(v);
  // q <= 0 is the observed minimum, q >= 1 the observed maximum — never an
  // extrapolation past the data.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(-2.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 77.0);
  EXPECT_DOUBLE_EQ(h.percentile(7.0), 77.0);
  // Interior quantiles stay bracketed by the observed range.
  const double p50 = h.percentile(0.5);
  EXPECT_GE(p50, 3.0);
  EXPECT_LE(p50, 77.0);
}

TEST(ScopedTimer, ObservesElapsedFakeClock) {
  Histogram h(Histogram::linear_buckets(10.0, 10));
  double now = 5.0;
  {
    ScopedTimer t(&h, [&] { return now; });
    now = 8.5;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
}

TEST(Registry, JsonSnapshotParsesAndIsOrderIndependent) {
  Registry a;
  a.counter("net.bytes_sent")->add(1024.0);
  a.gauge("sim.queue_depth")->set(7.0);
  a.histogram("mr.map_seconds", Histogram::linear_buckets(4.0, 2))->observe(3.0);

  // Same metrics registered in the opposite order.
  Registry b;
  b.histogram("mr.map_seconds", Histogram::linear_buckets(4.0, 2))->observe(3.0);
  b.gauge("sim.queue_depth")->set(7.0);
  b.counter("net.bytes_sent")->add(1024.0);

  EXPECT_EQ(a.to_json(), b.to_json());

  JsonValue root = JsonParser::parse(a.to_json());
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.at("counters").at("net.bytes_sent").number, 1024.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("sim.queue_depth").at("value").number, 7.0);
  const JsonValue& h = root.at("histograms").at("mr.map_seconds");
  EXPECT_DOUBLE_EQ(h.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 3.0);
  // Quantile summary rides along in the snapshot; one observation means
  // every quantile is that observation.
  EXPECT_DOUBLE_EQ(h.at("p50").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("p95").number, 3.0);
  EXPECT_DOUBLE_EQ(h.at("p99").number, 3.0);
  ASSERT_TRUE(h.at("bounds").is_array());
  EXPECT_EQ(h.at("bounds").array.size(), 2u);
  EXPECT_EQ(h.at("counts").array.size(), 3u);  // 2 bounds + overflow
}

TEST(Registry, SnapshotKeysAreStrictlySortedRegardlessOfRegistrationOrder) {
  // Sorted emission is an asserted invariant of the determinism contract
  // (DESIGN.md §9), not an accident of the backing container: register in
  // descending order and check the serialized key order byte-for-byte.
  Registry r;
  for (const char* name : {"z.last", "m.middle", "a.first"}) {
    r.counter(name)->inc();
    r.gauge(name)->set(1.0);
    r.histogram(name, Histogram::linear_buckets(1.0, 1))->observe(0.5);
  }
  const std::string json = r.to_json();
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const std::size_t base = json.find("\"" + std::string(section) + "\":");
    ASSERT_NE(base, std::string::npos) << section;
    const std::size_t a = json.find("\"a.first\"", base);
    const std::size_t m = json.find("\"m.middle\"", base);
    const std::size_t z = json.find("\"z.last\"", base);
    ASSERT_NE(a, std::string::npos) << section;
    EXPECT_LT(a, m) << section;
    EXPECT_LT(m, z) << section;
  }
}

}  // namespace
}  // namespace vhadoop::obs

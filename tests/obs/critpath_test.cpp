#include "obs/critpath.hpp"

#include <gtest/gtest.h>

#include <string>

#include "testutil/mini_json.hpp"

namespace vhadoop::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

// Hand-built graph helper: ids are assigned by the caller.
Tracer::Span mk(SpanId id, SpanId parent, std::uint64_t job, int pid, int tid,
                std::string name, std::string cat, double t0, double t1) {
  Tracer::Span s;
  s.id = id;
  s.parent = parent;
  s.job = job;
  s.pid = pid;
  s.tid = tid;
  s.name = std::move(name);
  s.cat = std::move(cat);
  s.t0 = t0;
  s.t1 = t1;
  return s;
}

TEST(CritPath, MapShuffleReducePipelineTilesExactly) {
  // Recorded through a live tracer so job inheritance and from_tracer are
  // exercised too: map [read 0-2 | compute 2-7 | commit 7-8], shuffle fetch
  // arrives at 10, reduce [compute 10-18 | commit 18-20].
  double now = 0.0;
  Tracer t;
  t.set_enabled(true);
  t.set_clock([&now] { return now; });

  t.begin(9998, 1, "job:wc", "job", /*job=*/1);
  const SpanId map_task = t.begin(1, 0, "map-0/a0", "map", 1);
  t.begin(1, 1, "reduce-0/a0", "reduce", 1);
  const SpanId shuffle_span = t.begin(1, 1, "shuffle", "reduce");
  t.begin(1, 0, "read", "map");
  now = 2.0;
  t.end(1, 0);
  t.begin(1, 0, "compute", "map");
  now = 7.0;
  t.end(1, 0);
  t.begin(1, 0, "commit", "map");
  now = 8.0;
  t.end(1, 0);  // commit
  t.end(1, 0);  // map task
  now = 10.0;
  t.cause(map_task, shuffle_span, "shuffle", /*start=*/8.0);
  t.end(1, 1);  // shuffle
  t.begin(1, 1, "compute", "reduce");
  now = 18.0;
  t.end(1, 1);
  t.begin(1, 1, "commit", "reduce");
  now = 20.0;
  t.end(1, 1);  // commit
  t.end(1, 1);  // reduce task
  t.end(9998, 1);  // job root

  const SpanGraph g = SpanGraph::from_tracer(t);
  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);
  const JobCriticalPath& cp = jobs[0];
  EXPECT_EQ(cp.job, 1u);
  EXPECT_EQ(cp.name, "wc");
  EXPECT_DOUBLE_EQ(cp.makespan(), 20.0);
  EXPECT_TRUE(cp.tiles_exactly());
  EXPECT_DOUBLE_EQ(cp.segment_sum(), cp.makespan());

  ASSERT_EQ(cp.segments.size(), 6u);
  EXPECT_EQ(cp.segments[0].category, "hdfs-io");          // read 0-2
  EXPECT_EQ(cp.segments[1].category, "map-compute");      // 2-7
  EXPECT_EQ(cp.segments[2].category, "hdfs-io");          // map commit 7-8
  EXPECT_EQ(cp.segments[3].category, "shuffle-network");  // 8-10
  EXPECT_EQ(cp.segments[4].category, "reduce-compute");   // 10-18
  EXPECT_EQ(cp.segments[5].category, "hdfs-io");          // reduce commit 18-20

  EXPECT_DOUBLE_EQ(cp.attribution.at("map-compute"), 5.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("hdfs-io"), 5.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("shuffle-network"), 2.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("reduce-compute"), 8.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("straggler-wait"), 0.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("scheduler-queue"), 0.0);
}

TEST(CritPath, ReexecutedAttemptChargesStragglerWait) {
  // map-0/a0 straggles [0,6] and is lost; the re-execution a1 runs [6,9];
  // the shuffle fetch from a1 lands at 9.5; reduce computes to 12.
  SpanGraph g;
  g.final_ts = 12.0;
  g.spans.push_back(mk(1, 0, 2, 9998, 2, "job:sort", "job", 0.0, 12.0));
  g.spans.push_back(mk(2, 0, 2, 1, 0, "map-0/a0", "map", 0.0, 6.0));
  g.spans.push_back(mk(3, 0, 2, 2, 0, "map-0/a1", "map", 6.0, 9.0));
  g.spans.push_back(mk(4, 0, 2, 1, 1, "reduce-0/a0", "reduce", 0.0, 12.0));
  g.spans.push_back(mk(5, 4, 0, 1, 1, "shuffle", "reduce", 0.0, 9.5));
  g.spans.push_back(mk(6, 4, 0, 1, 1, "compute", "reduce", 9.5, 12.0));
  g.edges.push_back({3, 5, "shuffle", 9.5, 9.0});

  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);
  const JobCriticalPath& cp = jobs[0];
  EXPECT_TRUE(cp.tiles_exactly());
  EXPECT_DOUBLE_EQ(cp.attribution.at("straggler-wait"), 6.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("map-compute"), 3.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("shuffle-network"), 0.5);
  EXPECT_DOUBLE_EQ(cp.attribution.at("reduce-compute"), 2.5);
}

TEST(CritPath, QueueTimeBracketsTheSinkChain) {
  // One map runs [1,3] inside a job open [0,5]: dispatch wait before and
  // commit/teardown wait after both land on scheduler-queue.
  SpanGraph g;
  g.final_ts = 5.0;
  g.spans.push_back(mk(1, 0, 3, 9998, 3, "job:m", "job", 0.0, 5.0));
  g.spans.push_back(mk(2, 0, 3, 1, 0, "map-0/a0", "map", 1.0, 3.0));

  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);
  const JobCriticalPath& cp = jobs[0];
  EXPECT_TRUE(cp.tiles_exactly());
  ASSERT_EQ(cp.segments.size(), 3u);
  EXPECT_EQ(cp.segments[0].category, "scheduler-queue");
  EXPECT_EQ(cp.segments[1].category, "map-compute");
  EXPECT_EQ(cp.segments[2].category, "scheduler-queue");
  EXPECT_DOUBLE_EQ(cp.attribution.at("scheduler-queue"), 3.0);
  EXPECT_DOUBLE_EQ(cp.attribution.at("map-compute"), 2.0);
}

TEST(CritPath, JobWithNoTasksIsAllQueue) {
  SpanGraph g;
  g.final_ts = 4.0;
  g.spans.push_back(mk(1, 0, 9, 9998, 9, "job:idle", "job", 2.0, 4.0));
  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].tiles_exactly());
  EXPECT_DOUBLE_EQ(jobs[0].attribution.at("scheduler-queue"), 2.0);
}

TEST(CritPath, JsonReportAndMetricsPublishAttribution) {
  SpanGraph g;
  g.final_ts = 5.0;
  g.spans.push_back(mk(1, 0, 3, 9998, 3, "job:m", "job", 0.0, 5.0));
  g.spans.push_back(mk(2, 0, 3, 1, 0, "map-0/a0", "map", 1.0, 3.0));
  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);

  JsonValue root = JsonParser::parse(critical_paths_to_json(jobs));
  EXPECT_EQ(root.at("schema").str, "vhadoop-critpath-v1");
  ASSERT_EQ(root.at("jobs").array.size(), 1u);
  const JsonValue& j = root.at("jobs").at(0);
  EXPECT_EQ(j.at("name").str, "m");
  EXPECT_DOUBLE_EQ(j.at("makespan").number, 5.0);
  EXPECT_TRUE(j.at("exact_tiling").boolean);
  EXPECT_DOUBLE_EQ(j.at("attribution").at("map-compute").number, 2.0);
  ASSERT_EQ(j.at("segments").array.size(), 3u);
  EXPECT_EQ(j.at("segments").at(1).at("category").str, "map-compute");

  Registry reg;
  record_critpath_metrics(jobs[0], reg);
  ASSERT_NE(reg.find_gauge("critpath.job3.map_compute_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("critpath.job3.map_compute_seconds")->value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("critpath.job3.scheduler_queue_seconds")->value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("critpath.job3.makespan_seconds")->value(), 5.0);
}

TEST(CritPath, EveryCategoryKeyIsAlwaysPresent) {
  SpanGraph g;
  g.spans.push_back(mk(1, 0, 1, 9998, 1, "job:x", "job", 0.0, 0.0));
  const auto jobs = analyze_critical_paths(g);
  ASSERT_EQ(jobs.size(), 1u);
  for (const std::string& cat : critpath_categories()) {
    EXPECT_TRUE(jobs[0].attribution.count(cat)) << cat;
  }
  EXPECT_TRUE(jobs[0].tiles_exactly());  // zero makespan, zero segments
}

}  // namespace
}  // namespace vhadoop::obs

// End-to-end span-graph checks: run real simulated jobs, export the
// "vhadoop-spans-v1" graph, then drive the trace_query library over it —
// structural validation, critical-path tiling against the job timeline,
// determinism (byte-identical exports for same-seed runs), and the fault
// path (datanode loss mid-job must not corrupt the graph).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/critpath.hpp"
#include "testutil/sim_cluster.hpp"
#include "trace_query/query.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

SimJobSpec terasort_job(const hdfs::HdfsCluster& hdfs, const std::string& path) {
  SimJobSpec spec;
  spec.name = "terasort";
  spec.output_path = "/out/terasort";
  const auto& blocks = hdfs.blocks(path);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    spec.maps.push_back({.input_path = path, .block_index = static_cast<int>(b),
                         .cpu_seconds = 0.8, .output_bytes = 64 * sim::kMiB});
  }
  spec.reduces.assign(4, {.cpu_seconds = 1.5, .output_bytes = 96 * sim::kMiB});
  return spec;
}

// One traced terasort run; returns (span graph JSON, critpath JSON, timeline).
struct TracedRun {
  std::string spans_json;
  std::string critpath_json;
  JobTimeline timeline;
};

TracedRun traced_terasort(std::uint64_t seed) {
  auto c = SimCluster::make(4, false, {}, {}, seed);
  c->engine.tracer().set_enabled(true);
  c->hdfs->write_file("/in/tsort", 4 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  TracedRun out;
  c->runner->submit(terasort_job(*c->hdfs, "/in/tsort"),
                    [&out](const JobTimeline& t) { out.timeline = t; });
  c->engine.run();
  EXPECT_FALSE(out.timeline.failed);
  out.spans_json = c->engine.tracer().to_span_graph_json();
  const obs::SpanGraph g = obs::SpanGraph::from_tracer(c->engine.tracer());
  out.critpath_json = obs::critical_paths_to_json(obs::analyze_critical_paths(g));
  return out;
}

TEST(SpanGraphE2E, ExportedGraphValidatesClean) {
  const TracedRun run = traced_terasort(7);
  const obs::SpanGraph g = tracequery::load_span_graph(run.spans_json);
  EXPECT_GT(g.spans.size(), 10u);
  EXPECT_GT(g.edges.size(), 0u);
  const auto problems = tracequery::validate(g);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(SpanGraphE2E, CriticalPathReproducesTheJobMakespanExactly) {
  const TracedRun run = traced_terasort(7);
  const obs::SpanGraph g = tracequery::load_span_graph(run.spans_json);
  const auto jobs = tracequery::critical_paths(g, "terasort");
  ASSERT_EQ(jobs.size(), 1u);
  const obs::JobCriticalPath& cp = jobs[0];
  // Segment boundaries telescope bit-for-bit over [submitted, finished]:
  // the tiling — not a floating-point sum — reproduces the makespan.
  EXPECT_TRUE(cp.tiles_exactly());
  EXPECT_EQ(cp.submitted, run.timeline.submitted);
  EXPECT_EQ(cp.finished, run.timeline.finished);
  EXPECT_EQ(cp.makespan(), run.timeline.elapsed());
  // A terasort run exercises the whole pipeline: several categories carry
  // non-zero time, and every segment has a known category.
  int nonzero = 0;
  for (const std::string& cat : obs::critpath_categories()) {
    if (cp.attribution.at(cat) > 0.0) ++nonzero;
  }
  EXPECT_GE(nonzero, 3);
  for (const obs::CritSegment& seg : cp.segments) {
    EXPECT_NE(std::find(obs::critpath_categories().begin(),
                        obs::critpath_categories().end(), seg.category),
              obs::critpath_categories().end())
        << seg.category;
  }
}

TEST(SpanGraphE2E, SameSeedRunsExportByteIdenticalGraphsAndReports) {
  const TracedRun a = traced_terasort(7);
  const TracedRun b = traced_terasort(7);
  EXPECT_EQ(a.spans_json, b.spans_json);
  EXPECT_EQ(a.critpath_json, b.critpath_json);
  const TracedRun other = traced_terasort(11);
  EXPECT_NE(a.spans_json, other.spans_json);  // the seed actually matters
}

TEST(SpanGraphE2E, SlowestTasksAreSortedTaskAttempts) {
  const TracedRun run = traced_terasort(7);
  const obs::SpanGraph g = tracequery::load_span_graph(run.spans_json);
  const auto rows = tracequery::slowest_tasks(g, 3);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(rows[i].name.rfind("map-", 0) == 0 ||
                rows[i].name.rfind("reduce-", 0) == 0)
        << rows[i].name;
    EXPECT_GT(rows[i].seconds(), 0.0);
    if (i > 0) {
      EXPECT_GE(rows[i - 1].seconds(), rows[i].seconds());
    }
  }
}

TEST(SpanGraphE2E, DatanodeLossMidJobKeepsGraphValidAndTilingExact) {
  auto c = SimCluster::make(6, false, {}, {}, 7);
  c->engine.tracer().set_enabled(true);
  c->hdfs->write_file("/in/fault", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  JobTimeline timeline;
  c->runner->submit(terasort_job(*c->hdfs, "/in/fault"),
                    [&timeline](const JobTimeline& t) { timeline = t; });
  c->engine.run_until(c->engine.now() + 8.0);
  c->cloud->crash_vm(c->workers[2]);
  c->engine.run();
  ASSERT_FALSE(timeline.failed);

  const obs::SpanGraph g =
      tracequery::load_span_graph(c->engine.tracer().to_span_graph_json());
  const auto problems = tracequery::validate(g);
  EXPECT_TRUE(problems.empty()) << problems.front();

  const auto jobs = tracequery::critical_paths(g, "all");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].tiles_exactly());
  EXPECT_EQ(jobs[0].makespan(), timeline.elapsed());
  // The lost node forced re-execution: the abandoned attempts' spans are
  // finalized (end_all on crash), not dangling.
  const obs::Counter* reexec = c->engine.metrics().find_counter("mr.reexecutions");
  ASSERT_NE(reexec, nullptr);
  EXPECT_GT(reexec->value(), 0);
}

}  // namespace
}  // namespace vhadoop::mapreduce

#include "monitor/nmon.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::monitor {
namespace {

using testutil::SimCluster;

TEST(Nmon, SamplesAtConfiguredInterval) {
  auto c = SimCluster::make(4, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 2.0);
  mon.start();
  const double t0 = c->engine.now();
  c->engine.run_until(t0 + 11.0);
  mon.stop();
  EXPECT_EQ(mon.samples().size(), 5u);
  for (std::size_t i = 1; i < mon.samples().size(); ++i) {
    EXPECT_NEAR(mon.samples()[i].time - mon.samples()[i - 1].time, 2.0, 1e-9);
  }
}

TEST(Nmon, StopCancelsPendingTimerSoEngineDrains) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  EXPECT_TRUE(mon.running());
  mon.stop();
  EXPECT_FALSE(mon.running());
  c->engine.run();  // must terminate
  EXPECT_TRUE(mon.samples().empty());
}

TEST(Nmon, CapturesCpuActivity) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  bool done = false;
  c->cloud->run_compute(c->workers[0], 5.0, [&] { done = true; });
  c->engine.run_until(c->engine.now() + 4.0);
  mon.stop();
  c->engine.run();
  ASSERT_TRUE(done || true);
  ASSERT_GE(mon.samples().size(), 3u);
  // Worker 0 fully busy in the sampled window; worker 1 idle.
  EXPECT_NEAR(mon.samples()[1].vm_cpu[0], 1.0, 0.05);
  EXPECT_NEAR(mon.samples()[1].vm_cpu[1], 0.0, 0.05);
}

TEST(Nmon, CapturesDiskBytes) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  c->cloud->disk_write(c->workers[0], 30 * sim::kMiB, nullptr);
  c->engine.run_until(c->engine.now() + 3.0);
  mon.stop();
  c->engine.run();
  double disk_total = 0.0;
  for (const auto& s : mon.samples()) disk_total += s.vm_disk_bytes[0];
  EXPECT_NEAR(disk_total, 30 * sim::kMiB, sim::kMiB);
}

TEST(Nmon, CsvHasHeaderAndRows) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  c->engine.run_until(c->engine.now() + 3.5);
  mon.stop();
  const std::string csv = mon.to_csv();
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("worker0.cpu"), std::string::npos);
  EXPECT_NE(header.find("nfs.disk"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(Analyser, FindsNfsDiskBottleneck) {
  auto c = SimCluster::make(4, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  // Hammer the NFS path from every worker.
  for (virt::VmId vm : c->workers) c->cloud->disk_write(vm, 200 * sim::kMiB, nullptr);
  c->engine.run_until(c->engine.now() + 5.0);
  mon.stop();
  c->engine.run();
  auto report = TraceAnalyser::analyse(mon);
  EXPECT_EQ(report.bottleneck, "nfs-disk");
  EXPECT_GT(report.avg_nfs_disk, 0.9);
}

TEST(Analyser, FindsCpuBottleneckAndBusiestVm) {
  auto c = SimCluster::make(3, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  c->cloud->run_compute(c->workers[2], 50.0, nullptr);
  c->engine.run_until(c->engine.now() + 6.0);
  mon.stop();
  c->engine.run();
  auto report = TraceAnalyser::analyse(mon);
  EXPECT_EQ(report.bottleneck, "cpu");
  EXPECT_EQ(report.busiest_vm, 2u);
}

TEST(Nmon, RejectsNonPositiveInterval) {
  auto c = SimCluster::make(2, false);
  EXPECT_THROW(NmonMonitor(*c->cloud, *c->fabric, c->workers, 0.0),
               std::invalid_argument);
  EXPECT_THROW(NmonMonitor(*c->cloud, *c->fabric, c->workers, -1.0),
               std::invalid_argument);
}

TEST(Nmon, SamplesVmMemoryAndReportsAvgPeak) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  // Cached data counts toward the VM's sampled memory footprint.
  c->cloud->cache_insert(c->workers[0], "blk-a", 50 * sim::kMiB);
  c->engine.run_until(c->engine.now() + 4.0);
  mon.stop();
  c->engine.run();
  ASSERT_GE(mon.samples().size(), 2u);
  const auto& s = mon.samples().back();
  ASSERT_EQ(s.vm_mem.size(), c->workers.size());
  for (double mb : s.vm_mem) EXPECT_GT(mb, 0.0);  // base footprint
  // Worker 0 cached the read; worker 1 did not.
  EXPECT_GT(s.vm_mem[0], s.vm_mem[1]);

  auto report = TraceAnalyser::analyse(mon);
  EXPECT_GT(report.avg_vm_mem, 0.0);
  EXPECT_GE(report.peak_vm_mem, report.avg_vm_mem);

  // The CSV grows a memory column per VM.
  EXPECT_NE(mon.to_csv().find("worker0.mem_mb"), std::string::npos);
}

TEST(Analyser, ReportsPercentiles) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  mon.start();
  c->cloud->run_compute(c->workers[0], 3.0, nullptr);
  c->engine.run_until(c->engine.now() + 8.0);
  mon.stop();
  c->engine.run();
  auto report = TraceAnalyser::analyse(mon);
  // Percentiles are ordered and bounded by utilization limits.
  EXPECT_LE(report.p50_vm_cpu, report.p95_vm_cpu);
  EXPECT_LE(report.p50_nfs_disk, report.p95_nfs_disk);
  EXPECT_GE(report.p95_vm_cpu, 0.0);
  EXPECT_LE(report.p95_vm_cpu, 1.05);
  // Worker 0 was busy for ~3 of ~8 sampled seconds: p95 sees the busy
  // tail, p50 the idle majority.
  EXPECT_GT(report.p95_vm_cpu, report.p50_vm_cpu);
}

TEST(Analyser, EmptyTraceIsSafe) {
  auto c = SimCluster::make(2, false);
  NmonMonitor mon(*c->cloud, *c->fabric, c->workers, 1.0);
  auto report = TraceAnalyser::analyse(mon);
  EXPECT_EQ(report.bottleneck, "none");
}

}  // namespace
}  // namespace vhadoop::monitor

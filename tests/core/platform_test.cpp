#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "ml/kmeans.hpp"
#include "workloads/wordcount.hpp"
#include "workloads/text_corpus.hpp"
#include "mapreduce/local_runner.hpp"

namespace vhadoop::core {
namespace {

TEST(Platform, BootsNormalCluster) {
  Platform p;
  p.boot_cluster({.num_workers = 4});
  EXPECT_EQ(p.workers().size(), 4u);
  EXPECT_EQ(p.cloud().state(p.namenode()), virt::VmState::Running);
  for (virt::VmId vm : p.workers()) {
    EXPECT_EQ(p.cloud().state(vm), virt::VmState::Running);
    EXPECT_EQ(p.cloud().host_of(vm), p.hosts()[0]);
  }
  EXPECT_GT(p.engine().now(), 0.0);  // booting took simulated time
}

TEST(Platform, CrossDomainSplitsVmsEvenly) {
  Platform p;
  p.boot_cluster({.num_workers = 15, .placement = Placement::CrossDomain});
  int on_a = 0, on_b = 0;
  for (virt::VmId vm : p.all_vms()) {
    (p.cloud().host_of(vm) == p.hosts()[0] ? on_a : on_b)++;
  }
  EXPECT_EQ(on_a, 8);
  EXPECT_EQ(on_b, 8);
}

TEST(Platform, DoubleBootRejected) {
  Platform p;
  p.boot_cluster({.num_workers = 2});
  EXPECT_THROW(p.boot_cluster({.num_workers = 2}), std::runtime_error);
}

TEST(Platform, OperationsBeforeBootRejected) {
  Platform p;
  EXPECT_THROW(p.upload("/x", 1024), std::runtime_error);
  EXPECT_THROW(p.run_job({}), std::runtime_error);
  EXPECT_THROW(p.tune(), std::runtime_error);
}

TEST(Platform, UploadLandsInHdfs) {
  Platform p;
  p.boot_cluster({.num_workers = 3});
  p.upload("/data/in", 100 * sim::kMiB);
  EXPECT_TRUE(p.hdfs().exists("/data/in"));
  EXPECT_DOUBLE_EQ(p.hdfs().file_size("/data/in"), 100 * sim::kMiB);
}

TEST(Platform, RunsWordcountEndToEnd) {
  // The full paper flow: generate corpus, upload, really execute the job,
  // replay it on the virtual cluster, check the timeline.
  Platform p;
  p.boot_cluster({.num_workers = 4});

  workloads::TextCorpus corpus(2000);
  auto lines = corpus.generate(2 * sim::kMiB);
  mapreduce::LocalJobRunner local(4);
  auto measured = local.run(workloads::wordcount_job(2), lines, 4);

  p.upload("/in/words", mapreduce::serialized_bytes(lines));
  auto timeline = p.run_measured("wordcount", measured, "/in/words", "/out/words");
  EXPECT_EQ(timeline.maps.size(), 4u);
  EXPECT_EQ(timeline.reduces.size(), 2u);
  EXPECT_GT(timeline.elapsed(), 0.0);
  EXPECT_TRUE(p.hdfs().exists("/out/words/part-0"));
}

TEST(Platform, RunMeasuredRequiresInput) {
  Platform p;
  p.boot_cluster({.num_workers = 2});
  mapreduce::JobResult fake;
  fake.map_profiles.push_back({});
  EXPECT_THROW(p.run_measured("x", fake, "/missing", "/out"), std::runtime_error);
}

TEST(Platform, RunClusteringExecutesEveryIteration) {
  Platform p;
  p.boot_cluster({.num_workers = 4});

  auto data = ml::display_clustering_samples(200, 3);
  auto run = ml::kmeans_cluster(data, {.k = 3, .base = {.num_splits = 4, .max_iterations = 5}});
  const double elapsed = p.run_clustering(run, 64 * sim::kMiB, "/in/points");
  EXPECT_GT(elapsed, 0.0);
  EXPECT_TRUE(p.hdfs().exists("/in/points"));
  // Each iteration committed its own output.
  EXPECT_TRUE(p.hdfs().exists("/out/kmeans-0-it0/part-0"));
}

TEST(Platform, MonitorAndTunerIntegration) {
  Platform p;
  p.boot_cluster({.num_workers = 4});
  auto& mon = p.attach_monitor(1.0);

  // Saturate NFS: every worker writes hard.
  for (virt::VmId vm : p.workers()) p.cloud().disk_write(vm, 400 * sim::kMiB, nullptr);
  p.engine().run_until(p.engine().now() + 8.0);
  mon.stop();
  p.engine().run();

  ASSERT_FALSE(mon.samples().empty());
  auto recs = p.tune();
  bool found = false;
  for (const auto& r : recs) {
    if (r.kind == tuner::Recommendation::Kind::IncreaseSortBuffer) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Platform, TunerRecommendationActuation) {
  Platform p;
  // 21 single-VCPU guests saturate the 16-thread host A; host B is idle.
  p.boot_cluster({.num_workers = 20});
  auto& mon = p.attach_monitor(1.0);
  for (virt::VmId vm : p.workers()) p.cloud().run_compute(vm, 200.0, nullptr);
  p.engine().run_until(p.engine().now() + 10.0);
  mon.stop();

  auto recs = p.tune();
  bool migrated = false;
  for (const auto& rec : recs) {
    if (rec.kind == tuner::Recommendation::Kind::MigrateVm) {
      migrated = p.apply_recommendation(rec);
      virt::VmId vm = p.all_vms()[rec.vm_index];
      EXPECT_EQ(p.cloud().host_of(vm), p.hosts()[rec.target_host]);
    }
  }
  EXPECT_TRUE(migrated);

  // Actuating a parameter-level recommendation is a no-op here.
  EXPECT_FALSE(p.apply_recommendation({tuner::Recommendation::Kind::IncreaseSortBuffer, ""}));
}

TEST(Platform, ClusterMigrationMovesEveryVm) {
  Platform p;
  p.boot_cluster({.num_workers = 7});
  auto result =
      p.migrate_cluster(p.hosts()[1], [](virt::VmId) { return virt::DirtyModel::idle(); });
  EXPECT_EQ(result.per_vm.size(), 8u);
  for (virt::VmId vm : p.all_vms()) EXPECT_EQ(p.cloud().host_of(vm), p.hosts()[1]);
  EXPECT_GT(result.overall_migration_time, 0.0);
}

TEST(Platform, TimeseriesSamplesStandardProbesDuringAJob) {
  Platform p;
  p.boot_cluster({.num_workers = 4});
  p.enable_timeseries(1.0);

  mapreduce::SimJobSpec job;
  job.name = "ts";
  job.output_path = "/out/ts";
  for (int m = 0; m < 4; ++m) {
    job.maps.push_back({.input_bytes = 16 * sim::kMiB, .cpu_seconds = 2.0,
                        .output_bytes = 8 * sim::kMiB});
  }
  job.reduces.push_back({.cpu_seconds = 1.0, .output_bytes = 4 * sim::kMiB});
  auto timeline = p.run_job(job);
  EXPECT_GT(timeline.elapsed(), 2.0);

  const obs::TimeSeries& ts = p.engine().timeseries();
  EXPECT_TRUE(ts.has("sim.pending_events"));
  const auto attempts = ts.points("mr.map_attempts");
  ASSERT_GE(attempts.size(), 2u);
  // The counter probe is cumulative: samples never decrease, and by the
  // end of the run every map attempt has been counted.
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    EXPECT_GE(attempts[i].v, attempts[i - 1].v);
  }
  EXPECT_GE(attempts.back().v, 4.0);
}

TEST(Platform, NineStepFlowSmoke) {
  // The paper's Sec. II-A execution flow in one piece: request cluster,
  // boot, configure, upload, run, monitor, tune.
  Platform p;
  p.boot_cluster({.num_workers = 6, .placement = Placement::CrossDomain});
  auto& mon = p.attach_monitor(0.5);

  mapreduce::SimJobSpec job;
  job.name = "flow";
  job.output_path = "/out/flow";
  for (int m = 0; m < 6; ++m) {
    job.maps.push_back({.input_bytes = 16 * sim::kMiB, .cpu_seconds = 1.0,
                        .output_bytes = 8 * sim::kMiB});
  }
  job.reduces.push_back({.cpu_seconds = 0.5, .output_bytes = 4 * sim::kMiB});
  auto timeline = p.run_job(job);
  mon.stop();
  p.engine().run();

  EXPECT_GT(timeline.elapsed(), 0.0);
  EXPECT_FALSE(mon.samples().empty());
  EXPECT_NO_THROW(p.tune());
}

}  // namespace
}  // namespace vhadoop::core

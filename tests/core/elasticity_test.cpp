#include <gtest/gtest.h>

#include "core/platform.hpp"

namespace vhadoop::core {
namespace {

mapreduce::SimJobSpec cpu_job(int maps) {
  mapreduce::SimJobSpec job;
  job.name = "elastic";
  job.output_path = "/out/elastic";
  for (int m = 0; m < maps; ++m) {
    job.maps.push_back({.input_bytes = sim::kMiB, .cpu_seconds = 12.0,
                        .output_bytes = 0.5 * sim::kMiB});
  }
  job.reduces.push_back({.cpu_seconds = 0.5, .output_bytes = sim::kMiB});
  return job;
}

TEST(Elasticity, AddedWorkersJoinHdfsAndJobTracker) {
  Platform p;
  p.boot_cluster({.num_workers = 3});
  auto fresh = p.add_workers(2, p.hosts()[1]);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(p.workers().size(), 5u);
  EXPECT_EQ(p.hdfs().datanodes().size(), 5u);
  for (virt::VmId vm : fresh) {
    EXPECT_EQ(p.cloud().state(vm), virt::VmState::Running);
    EXPECT_EQ(p.cloud().host_of(vm), p.hosts()[1]);
  }
  // New datanodes are placement candidates.
  bool done = false;
  p.upload("/after-scaleout", 640 * sim::kMiB);
  done = p.hdfs().exists("/after-scaleout");
  EXPECT_TRUE(done);
}

TEST(Elasticity, ScaleOutDuringJobAcceleratesIt) {
  // Baseline: 2 workers the whole way.
  double base = 0.0;
  {
    Platform p;
    p.boot_cluster({.num_workers = 2});
    base = p.run_job(cpu_job(16)).elapsed();
  }
  // Same job, but 4 more workers arrive shortly after submission.
  double scaled = 0.0;
  {
    Platform p;
    p.boot_cluster({.num_workers = 2});
    bool done = false;
    p.runner().submit(cpu_job(16), [&](const mapreduce::JobTimeline& t) {
      done = true;
      scaled = t.elapsed();
    });
    p.engine().run_until(p.engine().now() + 10.0);
    p.add_workers(4, p.hosts()[0]);
    p.engine().run();
    ASSERT_TRUE(done);
  }
  EXPECT_LT(scaled, base * 0.75);
}

TEST(Elasticity, NewWorkersActuallyReceiveTasks) {
  Platform p;
  p.boot_cluster({.num_workers = 2});
  mapreduce::JobTimeline timeline;
  bool done = false;
  p.runner().submit(cpu_job(20), [&](const mapreduce::JobTimeline& t) {
    timeline = t;
    done = true;
  });
  p.engine().run_until(p.engine().now() + 10.0);
  auto fresh = p.add_workers(3, p.hosts()[1]);
  p.engine().run();
  ASSERT_TRUE(done);
  int on_fresh = 0;
  for (const auto& t : timeline.maps) {
    for (virt::VmId vm : fresh) on_fresh += (t.vm == vm);
  }
  EXPECT_GT(on_fresh, 0);
}

TEST(Elasticity, RequiresBootedCluster) {
  Platform p;
  EXPECT_THROW(p.add_workers(1, 0), std::runtime_error);
}

}  // namespace
}  // namespace vhadoop::core

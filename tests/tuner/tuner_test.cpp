#include "tuner/tuner.hpp"

#include <gtest/gtest.h>

namespace vhadoop::tuner {
namespace {

using monitor::TraceAnalyser;

TraceAnalyser::Report base_report() {
  TraceAnalyser::Report r;
  r.avg_host_cpu = {0.5, 0.5};
  r.avg_host_tx = {0.3, 0.3};
  r.avg_host_rx = {0.3, 0.3};
  r.avg_nfs_disk = 0.4;
  r.busiest_vm = 1;
  return r;
}

bool has_kind(const std::vector<Recommendation>& recs, Recommendation::Kind k) {
  for (const auto& r : recs) {
    if (r.kind == k) return true;
  }
  return false;
}

TEST(Tuner, QuietClusterYieldsNothingDramatic) {
  MapReduceTuner tuner;
  auto recs = tuner.analyse(base_report());
  EXPECT_FALSE(has_kind(recs, Recommendation::Kind::MigrateVm));
  EXPECT_FALSE(has_kind(recs, Recommendation::Kind::ReduceMapSlots));
  EXPECT_FALSE(has_kind(recs, Recommendation::Kind::IncreaseSortBuffer));
}

TEST(Tuner, NfsSaturationSuggestsSpillAndReplicationRelief) {
  auto r = base_report();
  r.avg_nfs_disk = 0.95;
  MapReduceTuner tuner;
  auto recs = tuner.analyse(r);
  EXPECT_TRUE(has_kind(recs, Recommendation::Kind::IncreaseSortBuffer));
  EXPECT_TRUE(has_kind(recs, Recommendation::Kind::LowerReplication));
}

TEST(Tuner, NicSaturationSuggestsRebalance) {
  auto r = base_report();
  r.avg_host_tx = {0.95, 0.2};
  MapReduceTuner tuner;
  auto recs = tuner.analyse(r);
  EXPECT_TRUE(has_kind(recs, Recommendation::Kind::RebalanceNetwork));
}

TEST(Tuner, CpuImbalanceSuggestsMigration) {
  auto r = base_report();
  r.avg_host_cpu = {0.97, 0.2};
  r.busiest_vm = 5;
  MapReduceTuner tuner;
  auto recs = tuner.analyse(r);
  ASSERT_TRUE(has_kind(recs, Recommendation::Kind::MigrateVm));
  for (const auto& rec : recs) {
    if (rec.kind == Recommendation::Kind::MigrateVm) {
      EXPECT_EQ(rec.vm_index, 5u);
      EXPECT_EQ(rec.target_host, 1u);  // the idle host
    }
  }
}

TEST(Tuner, UniformCpuSaturationSuggestsFewerSlots) {
  auto r = base_report();
  r.avg_host_cpu = {0.95, 0.93};
  MapReduceTuner tuner;
  auto recs = tuner.analyse(r);
  EXPECT_TRUE(has_kind(recs, Recommendation::Kind::ReduceMapSlots));
  EXPECT_FALSE(has_kind(recs, Recommendation::Kind::MigrateVm));
}

TEST(Tuner, IdleClusterSuggestsMoreSlots) {
  auto r = base_report();
  r.avg_host_cpu = {0.1, 0.15};
  MapReduceTuner tuner;
  auto recs = tuner.analyse(r);
  EXPECT_TRUE(has_kind(recs, Recommendation::Kind::IncreaseMapSlots));
}

TEST(Tuner, ApplyAdjustsHadoopConfig) {
  mapreduce::HadoopConfig cfg;
  cfg.map_slots_per_worker = 2;
  const double sort = cfg.io_sort_bytes;

  auto cfg2 = MapReduceTuner::apply(
      cfg, {{Recommendation::Kind::IncreaseSortBuffer, ""},
            {Recommendation::Kind::LowerReplication, ""},
            {Recommendation::Kind::ReduceMapSlots, ""}});
  EXPECT_DOUBLE_EQ(cfg2.io_sort_bytes, sort * 2);
  EXPECT_EQ(cfg2.output_replication, 2);
  EXPECT_EQ(cfg2.map_slots_per_worker, 1);

  // Slots never drop below one.
  auto cfg3 = MapReduceTuner::apply(cfg2, {{Recommendation::Kind::ReduceMapSlots, ""}});
  EXPECT_EQ(cfg3.map_slots_per_worker, 1);

  auto cfg4 = MapReduceTuner::apply(cfg, {{Recommendation::Kind::IncreaseMapSlots, ""}});
  EXPECT_EQ(cfg4.map_slots_per_worker, 3);
}

TEST(Tuner, CustomPolicyThresholdsRespected) {
  auto r = base_report();
  r.avg_nfs_disk = 0.7;
  MapReduceTuner strict(TunerPolicy{.disk_saturated = 0.6});
  MapReduceTuner lax(TunerPolicy{.disk_saturated = 0.9});
  EXPECT_TRUE(has_kind(strict.analyse(r), Recommendation::Kind::IncreaseSortBuffer));
  EXPECT_FALSE(has_kind(lax.analyse(r), Recommendation::Kind::IncreaseSortBuffer));
}

}  // namespace
}  // namespace vhadoop::tuner

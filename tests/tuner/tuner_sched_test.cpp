#include <gtest/gtest.h>

#include <vector>

#include "testutil/sim_cluster.hpp"
#include "tuner/tuner.hpp"

namespace vhadoop::tuner {
namespace {

using mapreduce::HadoopConfig;
using mapreduce::SchedulerPolicy;

// Populate a registry the way the JobTracker does: a queue-wait histogram
// and a concurrent-jobs gauge.
void seed_metrics(obs::Registry& reg, std::vector<double> waits, double peak_jobs) {
  obs::Histogram* h = reg.histogram("mr.job_queue_wait_seconds",
                                    obs::Histogram::exponential_buckets(0.5, 2.0, 14));
  for (double w : waits) h->observe(w);
  reg.gauge("mr.jobs_running")->set(peak_jobs);
}

TEST(TunerSchedulingTest, RecommendsFairForFifoHeadOfLineBlocking) {
  obs::Registry reg;
  seed_metrics(reg, {0.0, 22.0, 45.0}, 3.0);
  MapReduceTuner tuner;
  HadoopConfig fifo;  // default scheduler is Fifo
  auto recs = tuner.analyse_scheduling(reg, fifo);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, Recommendation::Kind::UseFairScheduler);
  EXPECT_NE(recs[0].message.find("fair"), std::string::npos);
}

TEST(TunerSchedulingTest, SilentWhenAlreadyFairOrCapacity) {
  obs::Registry reg;
  seed_metrics(reg, {30.0, 60.0, 90.0}, 4.0);
  MapReduceTuner tuner;
  HadoopConfig hc;
  hc.scheduler = SchedulerPolicy::Fair;
  EXPECT_TRUE(tuner.analyse_scheduling(reg, hc).empty());
  hc.scheduler = SchedulerPolicy::Capacity;
  EXPECT_TRUE(tuner.analyse_scheduling(reg, hc).empty());
}

TEST(TunerSchedulingTest, SilentForSingleTenantCluster) {
  // Long waits but never more than one job at a time: Fair would not help.
  obs::Registry reg;
  seed_metrics(reg, {20.0, 40.0}, 1.0);
  MapReduceTuner tuner;
  EXPECT_TRUE(tuner.analyse_scheduling(reg, HadoopConfig{}).empty());
}

TEST(TunerSchedulingTest, SilentWhenWaitsAreTolerable) {
  obs::Registry reg;
  seed_metrics(reg, {0.5, 1.0, 2.0, 3.0}, 3.0);
  MapReduceTuner tuner;
  EXPECT_TRUE(tuner.analyse_scheduling(reg, HadoopConfig{}).empty());
}

TEST(TunerSchedulingTest, SilentWithoutEnoughEvidence) {
  MapReduceTuner tuner;
  obs::Registry empty;
  EXPECT_TRUE(tuner.analyse_scheduling(empty, HadoopConfig{}).empty());
  obs::Registry one_job;
  seed_metrics(one_job, {99.0}, 5.0);  // a single sample is not a pattern
  EXPECT_TRUE(tuner.analyse_scheduling(one_job, HadoopConfig{}).empty());
}

TEST(TunerSchedulingTest, ThresholdsComeFromPolicy) {
  obs::Registry reg;
  seed_metrics(reg, {4.0, 8.0}, 2.0);
  TunerPolicy strict;
  strict.queue_wait_tolerable = 5.0;
  EXPECT_EQ(MapReduceTuner(strict).analyse_scheduling(reg, HadoopConfig{}).size(), 1u);
  TunerPolicy lax;
  lax.queue_wait_tolerable = 50.0;
  EXPECT_TRUE(MapReduceTuner(lax).analyse_scheduling(reg, HadoopConfig{}).empty());
}

TEST(TunerSchedulingTest, ApplySwitchesSchedulerToFair) {
  HadoopConfig fifo;
  std::vector<Recommendation> recs = {{Recommendation::Kind::UseFairScheduler, "msg"}};
  HadoopConfig out = MapReduceTuner::apply(fifo, recs);
  EXPECT_EQ(out.scheduler, SchedulerPolicy::Fair);
  // Everything else untouched.
  EXPECT_EQ(out.map_slots_per_worker, fifo.map_slots_per_worker);
  EXPECT_DOUBLE_EQ(out.io_sort_bytes, fifo.io_sort_bytes);
}

// End to end: run a congested FIFO cluster, feed its real metrics to the
// tuner, apply the advice, and check the reconfigured cluster is Fair.
TEST(TunerSchedulingTest, EndToEndFifoBacklogProducesFairConfig) {
  HadoopConfig hc;  // Fifo
  auto c = testutil::SimCluster::make(3, false, hc);

  auto long_job = [](int i) {
    mapreduce::SimJobSpec s;
    s.name = "batch-" + std::to_string(i);
    s.output_path = "/out/batch-" + std::to_string(i);
    for (int m = 0; m < 6; ++m) {
      s.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = 4.0,
                        .output_bytes = 2 * sim::kMiB});
    }
    s.reduces.assign(1, {.cpu_seconds = 1.0, .output_bytes = sim::kMiB});
    return s;
  };
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    c->runner->submit(long_job(i), [&](const mapreduce::JobTimeline&) { ++done; });
  }
  c->engine.run();
  ASSERT_EQ(done, 3);

  MapReduceTuner tuner;
  auto recs = tuner.analyse_scheduling(c->engine.metrics(), hc);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, Recommendation::Kind::UseFairScheduler);
  HadoopConfig tuned = MapReduceTuner::apply(hc, recs);
  EXPECT_EQ(tuned.scheduler, SchedulerPolicy::Fair);
  // The tuned config must not fire the rule again once adopted.
  EXPECT_TRUE(tuner.analyse_scheduling(c->engine.metrics(), tuned).empty());
}

}  // namespace
}  // namespace vhadoop::tuner

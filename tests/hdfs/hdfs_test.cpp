#include "hdfs/hdfs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"

namespace vhadoop::hdfs {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest()
      : model(engine),
        fabric(engine, model, net::NetConfig{}),
        cloud(engine, model, fabric, virt::VirtConfig{}) {
    h0 = cloud.add_host("host0");
    h1 = cloud.add_host("host1");
  }

  /// 1 namenode + n datanodes, split across the two hosts when cross=true.
  std::unique_ptr<HdfsCluster> make_cluster(int n_datanodes, bool cross = false,
                                            HdfsConfig cfg = {}) {
    namenode = boot("namenode", h0);
    datanodes.clear();
    for (int i = 0; i < n_datanodes; ++i) {
      const virt::HostId h = (cross && i >= n_datanodes / 2) ? h1 : h0;
      datanodes.push_back(boot("dn" + std::to_string(i), h));
    }
    engine.run();
    return std::make_unique<HdfsCluster>(cloud, cfg, namenode, datanodes, sim::Rng(7));
  }

  virt::VmId boot(const std::string& name, virt::HostId h) {
    virt::VmId vm = cloud.create_vm(name, h, {.vcpus = 1, .memory_mb = 1024});
    cloud.boot_vm(vm, nullptr);
    return vm;
  }

  sim::Engine engine;
  sim::FluidModel model{engine};
  net::Fabric fabric;
  virt::Cloud cloud;
  virt::HostId h0{}, h1{};
  virt::VmId namenode{};
  std::vector<virt::VmId> datanodes;
};

TEST_F(HdfsTest, WriteCreatesBlocksOfConfiguredSize) {
  auto fs = make_cluster(4);
  bool done = false;
  fs->write_file("/data/input", 200 * sim::kMiB, datanodes[0], [&] { done = true; });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(fs->exists("/data/input"));
  EXPECT_DOUBLE_EQ(fs->file_size("/data/input"), 200 * sim::kMiB);
  const auto& blocks = fs->blocks("/data/input");
  ASSERT_EQ(blocks.size(), 4u);  // ceil(200/64)
  EXPECT_DOUBLE_EQ(blocks[0].bytes, 64 * sim::kMiB);
  EXPECT_DOUBLE_EQ(blocks[3].bytes, 8 * sim::kMiB);
}

TEST_F(HdfsTest, ReplicationPlacesDistinctDatanodes) {
  auto fs = make_cluster(6);
  fs->write_file("/f", 64 * sim::kMiB, datanodes[2], nullptr);
  engine.run();
  const auto& blocks = fs->blocks("/f");
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(blocks[0].replicas.size(), 3u);
  // Primary replica is the writer (local-first policy).
  EXPECT_EQ(blocks[0].replicas[0], datanodes[2]);
  std::set<virt::VmId> unique(blocks[0].replicas.begin(), blocks[0].replicas.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST_F(HdfsTest, ReplicationCappedByDatanodeCount) {
  auto fs = make_cluster(2, false, {.replication = 3});
  EXPECT_EQ(fs->effective_replication(), 2);
  fs->write_file("/f", sim::kMiB, datanodes[0], nullptr);
  engine.run();
  EXPECT_EQ(fs->blocks("/f")[0].replicas.size(), 2u);
}

TEST_F(HdfsTest, NonDatanodeClientGetsRemotePipeline) {
  auto fs = make_cluster(4);
  fs->write_file("/f", sim::kMiB, namenode, nullptr);
  engine.run();
  const auto& reps = fs->blocks("/f")[0].replicas;
  ASSERT_EQ(reps.size(), 3u);
  for (virt::VmId r : reps) EXPECT_NE(r, namenode);
}

TEST_F(HdfsTest, DuplicateWriteThrows) {
  auto fs = make_cluster(3);
  fs->write_file("/f", sim::kMiB, datanodes[0], nullptr);
  engine.run();
  EXPECT_THROW(fs->write_file("/f", sim::kMiB, datanodes[0], nullptr), std::runtime_error);
}

TEST_F(HdfsTest, RemoveForgetsFile) {
  auto fs = make_cluster(3);
  fs->write_file("/f", sim::kMiB, datanodes[0], nullptr);
  engine.run();
  fs->remove("/f");
  EXPECT_FALSE(fs->exists("/f"));
  EXPECT_THROW(fs->file_size("/f"), std::runtime_error);
}

TEST_F(HdfsTest, WriteCostScalesWithReplication) {
  // Same data, replication 1 vs 3: pipeline amplification must show up in
  // elapsed time (3x the NFS-disk traffic).
  auto fs1 = make_cluster(6, false, {.replication = 1});
  double t0 = engine.now(), t_r1 = 0.0;
  fs1->write_file("/r1", 128 * sim::kMiB, datanodes[0], [&] { t_r1 = engine.now() - t0; });
  engine.run();

  auto fs3 = std::make_unique<HdfsCluster>(cloud, HdfsConfig{.replication = 3}, namenode,
                                           datanodes, sim::Rng(7));
  t0 = engine.now();
  double t_r3 = 0.0;
  fs3->write_file("/r3", 128 * sim::kMiB, datanodes[0], [&] { t_r3 = engine.now() - t0; });
  engine.run();
  EXPECT_GT(t_r3, t_r1 * 1.8);
}

TEST_F(HdfsTest, LocalReadBeatsRemoteRead) {
  auto fs = make_cluster(4, false, {.replication = 1});
  fs->write_file("/f", 64 * sim::kMiB, datanodes[0], nullptr);
  engine.run();
  ASSERT_TRUE(fs->is_local(fs->blocks("/f")[0], datanodes[0]));

  double t0 = engine.now(), local = 0.0;
  fs->read_file("/f", datanodes[0], [&] { local = engine.now() - t0; });
  engine.run();

  // A reader that holds no replica of /f: it pulls the (page-cache-hot)
  // block over the software bridge, which the local reader never touches.
  virt::VmId remote_reader = datanodes[3];
  ASSERT_FALSE(fs->is_local(fs->blocks("/f")[0], remote_reader));
  t0 = engine.now();
  double remote = 0.0;
  fs->read_file("/f", remote_reader, [&] { remote = engine.now() - t0; });
  engine.run();
  EXPECT_GT(remote, local);
}

TEST_F(HdfsTest, CachedReadSkipsNfs) {
  auto fs = make_cluster(3, false, {.replication = 1});
  fs->write_file("/hot", 128 * sim::kMiB, datanodes[0], nullptr);
  engine.run();
  const double nfs_before = cloud.nfs_disk_busy_integral();
  double t0 = engine.now(), warm = 0.0;
  fs->read_file("/hot", datanodes[0], [&] { warm = engine.now() - t0; });
  engine.run();
  // The replica just wrote these blocks: they are in its page cache, so
  // the re-read adds no NFS-disk traffic and finishes at memory speed.
  EXPECT_NEAR(cloud.nfs_disk_busy_integral(), nfs_before, 1.0);
  EXPECT_LT(warm, 0.5);
}

TEST_F(HdfsTest, PreferredReplicaOrdering) {
  auto fs = make_cluster(8, /*cross=*/true);
  fs->write_file("/f", 64 * sim::kMiB, datanodes[0], nullptr);
  engine.run();
  const auto& block = fs->blocks("/f")[0];
  // Reader == replica holder: itself.
  EXPECT_EQ(fs->preferred_replica(block, datanodes[0]), datanodes[0]);
  // Reader co-hosted with some replica: must not pick a cross-host one
  // if a same-host replica exists.
  for (virt::VmId reader : datanodes) {
    virt::VmId pick = fs->preferred_replica(block, reader);
    const bool same_host_available = [&] {
      for (virt::VmId r : block.replicas) {
        if (cloud.host_of(r) == cloud.host_of(reader)) return true;
      }
      return false;
    }();
    if (same_host_available) {
      EXPECT_EQ(cloud.host_of(pick), cloud.host_of(reader));
    }
  }
}

TEST_F(HdfsTest, ReadTracksBytes) {
  auto fs = make_cluster(3);
  fs->write_file("/f", 100 * sim::kMiB, datanodes[0], nullptr);
  engine.run();
  fs->read_file("/f", datanodes[1], nullptr);
  engine.run();
  EXPECT_DOUBLE_EQ(fs->bytes_written(), 100 * sim::kMiB);
  EXPECT_DOUBLE_EQ(fs->bytes_read(), 100 * sim::kMiB);
}

TEST_F(HdfsTest, CrossDomainCachedReadsSlowerThanNormal) {
  // Writes are serialized by the NFS server either way (the paper's NFS
  // bottleneck), so the placement penalty shows on the *data exchange*
  // path: hot blocks pulled by non-local readers cross the GbE NIC in the
  // cross-domain layout instead of the software bridge.
  auto run_case = [](bool cross) {
    sim::Engine e;
    sim::FluidModel m(e);
    net::Fabric f(e, m, net::NetConfig{});
    virt::Cloud c(e, m, f, virt::VirtConfig{});
    auto host_a = c.add_host("h0");
    auto host_b = c.add_host("h1");
    std::vector<virt::VmId> dns;
    for (int i = 0; i < 8; ++i) {
      virt::VmId vm = c.create_vm("dn" + std::to_string(i), (cross && i >= 4) ? host_b : host_a,
                                  {.vcpus = 1, .memory_mb = 1024});
      c.boot_vm(vm, nullptr);
      dns.push_back(vm);
    }
    e.run();
    HdfsCluster fs(c, HdfsConfig{.replication = 1}, dns[0], dns, sim::Rng(7));
    bool staged = false;  // 256 MiB fits the writer's page cache entirely
    fs.write_file("/data", 256 * sim::kMiB, dns[0], [&] { staged = true; });
    e.run();
    EXPECT_TRUE(staged);
    // Every node streams the whole (cache-hot) file concurrently — an
    // all-to-all exchange like a shuffle.
    const double t0 = e.now();
    int done = 0;
    for (virt::VmId dn : dns) {
      fs.read_file("/data", dn, [&] { ++done; });
    }
    e.run();
    EXPECT_EQ(done, 8);
    return e.now() - t0;
  };
  const double t_normal = run_case(false);
  const double t_cross = run_case(true);
  EXPECT_GT(t_cross, t_normal * 1.3);
}

TEST_F(HdfsTest, ZeroByteFileStillHasOneBlockEntry) {
  auto fs = make_cluster(3);
  bool done = false;
  fs->write_file("/empty", 0.0, datanodes[0], [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(fs->blocks("/empty").size(), 1u);
}

// Parameterized sweep: replication invariants hold across configurations.
class HdfsReplicationSweep : public HdfsTest,
                             public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(HdfsReplicationSweep, ReplicasAlwaysDistinctAndBounded) {
  const auto [n_dn, repl] = GetParam();
  auto fs = make_cluster(n_dn, n_dn > 4, {.replication = repl});
  fs->write_file("/f", 300 * sim::kMiB, datanodes[0], nullptr);
  engine.run();
  for (const auto& b : fs->blocks("/f")) {
    std::set<virt::VmId> unique(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(unique.size(), b.replicas.size()) << "duplicate replica";
    EXPECT_EQ(static_cast<int>(b.replicas.size()), std::min(repl, n_dn));
    for (virt::VmId r : b.replicas) {
      EXPECT_TRUE(std::find(datanodes.begin(), datanodes.end(), r) != datanodes.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, HdfsReplicationSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 15),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace vhadoop::hdfs

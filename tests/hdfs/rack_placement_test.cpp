#include <gtest/gtest.h>

#include <set>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::hdfs {
namespace {

using testutil::SimCluster;

net::TopologyConfig grid(int racks, int nodes_per_rack) {
  net::TopologyConfig topo;
  topo.kind = net::TopologyKind::FatTree;
  topo.racks = racks;
  topo.nodes_per_rack = nodes_per_rack;
  return topo;
}

// Classic Hadoop placement, as a property over 50 seeds: whenever the
// cluster spans >= 2 racks and a block carries >= 2 replicas, the second
// replica lands outside the first replica's rack — and no rack ever holds
// every replica of a multi-replica block.
TEST(RackPlacement, SecondReplicaIsAlwaysOffRackAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    auto c = SimCluster::make_racked(12, grid(4, 2), {}, {}, seed);
    ASSERT_GE(c->cloud->rack_count(), 2);
    c->hdfs->write_file("/in/a", 8 * 64 * sim::kMiB, c->workers[seed % 12], nullptr);
    c->hdfs->write_file("/in/b", 4 * 64 * sim::kMiB, c->workers[(seed * 7) % 12], nullptr);
    c->engine.run();

    for (const char* path : {"/in/a", "/in/b"}) {
      for (const auto& block : c->hdfs->blocks(path)) {
        ASSERT_GE(block.replicas.size(), 2u) << "seed " << seed;
        const int rack0 = c->cloud->rack_of_vm(block.replicas[0]);
        EXPECT_NE(c->cloud->rack_of_vm(block.replicas[1]), rack0)
            << "seed " << seed << " path " << path << " block " << block.index;
        std::set<int> racks;
        for (virt::VmId r : block.replicas) racks.insert(c->cloud->rack_of_vm(r));
        EXPECT_GE(racks.size(), 2u) << "seed " << seed;
      }
    }
  }
}

// Third replica follows the second into its rack (pipeline cost stays one
// inter-rack hop) whenever that rack still has a free datanode.
TEST(RackPlacement, ThirdReplicaPrefersTheSecondReplicasRack) {
  int third_in_second_rack = 0, third_total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto c = SimCluster::make_racked(12, grid(3, 2), {}, {}, seed);
    c->hdfs->write_file("/in/data", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
    c->engine.run();
    for (const auto& block : c->hdfs->blocks("/in/data")) {
      if (block.replicas.size() < 3) continue;
      ++third_total;
      if (c->cloud->rack_of_vm(block.replicas[2]) == c->cloud->rack_of_vm(block.replicas[1])) {
        ++third_in_second_rack;
      }
    }
  }
  ASSERT_GT(third_total, 0);
  // 4 workers per rack and the writer holds replica 0: the second replica's
  // rack always has a free peer, so the preference is satisfiable every time.
  EXPECT_EQ(third_in_second_rack, third_total);
}

// The reader-side tiers agree with rack membership: node-local beats
// rack-local beats off-rack, and a single-rack cluster never reports Off.
TEST(RackPlacement, LocalityTiersMatchRackMembership) {
  auto c = SimCluster::make_racked(8, grid(4, 2));
  c->hdfs->write_file("/in/t", 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();
  const auto& block = c->hdfs->blocks("/in/t")[0];

  for (virt::VmId reader : c->workers) {
    const LocalityTier tier = c->hdfs->locality_tier(block, reader);
    bool node = false, rack = false;
    for (virt::VmId r : block.replicas) {
      if (r == reader) node = true;
      if (c->cloud->rack_of_vm(r) == c->cloud->rack_of_vm(reader)) rack = true;
    }
    if (node) {
      EXPECT_EQ(tier, LocalityTier::Node);
    } else if (rack) {
      EXPECT_EQ(tier, LocalityTier::Rack);
    } else {
      EXPECT_EQ(tier, LocalityTier::Off);
    }
  }

  auto flat = SimCluster::make(6, false);
  flat->hdfs->write_file("/in/flat", 64 * sim::kMiB, flat->workers[0], nullptr);
  flat->engine.run();
  const auto& fblock = flat->hdfs->blocks("/in/flat")[0];
  for (virt::VmId reader : flat->workers) {
    EXPECT_NE(flat->hdfs->locality_tier(fblock, reader), LocalityTier::Off);
  }
}

// preferred_replica inserts the rack tier between same-host and anything:
// a reader with no replica on its VM or host but one in its rack gets the
// rack-local copy.
TEST(RackPlacement, PreferredReplicaUsesTheRackTier) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = SimCluster::make_racked(12, grid(4, 2), {}, {}, seed);
    c->hdfs->write_file("/in/p", 2 * 64 * sim::kMiB, c->workers[0], nullptr);
    c->engine.run();
    for (const auto& block : c->hdfs->blocks("/in/p")) {
      for (virt::VmId reader : c->workers) {
        if (c->hdfs->locality_tier(block, reader) != LocalityTier::Rack) continue;
        const virt::VmId chosen = c->hdfs->preferred_replica(block, reader);
        EXPECT_EQ(c->cloud->rack_of_vm(chosen), c->cloud->rack_of_vm(reader));
      }
    }
  }
}

}  // namespace
}  // namespace vhadoop::hdfs

#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace vhadoop::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsUnbiasedAcrossSmallRange) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 7, 450);  // ~4.5 sigma
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.03);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next_u64() == c2.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfSampler, RankZeroIsMostFrequent) {
  Rng rng(23);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
  EXPECT_GT(counts[99], counts[999]);
}

TEST(ZipfSampler, FrequencyRatioRoughlyZipfian) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  // f(1)/f(2) ~ 2 for s=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.15);
}

TEST(ZipfSampler, SamplesAlwaysInRange) {
  Rng rng(31);
  ZipfSampler zipf(10, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
}

}  // namespace
}  // namespace vhadoop::sim

// Randomized churn equivalence sweep for the incremental fluid solver
// (DESIGN.md §10). Each seed drives an identical random schedule of
// mutations — starts, cancels, cap changes, added work, capacity changes —
// through two models: one with the incremental per-component solver and one
// with the reference oracle enabled (every update re-solved globally and
// verified). The full observable trace — every sampled rate, the completion
// order with timestamps, and the final busy integrals — must match *exactly*
// (operator==, not within a tolerance): the incremental solver's contract is
// that it produces the same simulation, not an approximation of it.
//
// Independently of the mode comparison, a test-local naive progressive
// filling solver (written against the textbook algorithm, sharing no code
// with src/sim/fluid.cpp) re-derives the global weighted max-min allocation
// at every sample point and must agree with the model within 1e-9.

#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace vhadoop::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// What the test knows about each started activity (the model's view is
/// reconstructed from this when running the naive oracle).
struct ActInfo {
  FluidModel::ActivityId id;
  double weight = 1.0;
  double cap = kInf;
  std::vector<std::size_t> res;  ///< indices into the resource arrays
};

/// Textbook weighted progressive filling: raise every unfrozen activity's
/// rate as weight·level until a resource saturates or a cap binds, freeze
/// the limited activities, repeat. O(n²) and proud of it.
std::vector<double> naive_max_min(const std::vector<double>& capacity,
                                  const std::vector<double>& weight,
                                  const std::vector<double>& cap,
                                  const std::vector<std::vector<std::size_t>>& uses) {
  const std::size_t n = weight.size();
  std::vector<double> rate(n, 0.0);
  std::vector<bool> frozen(n, false);
  std::vector<double> slack = capacity;
  std::size_t left = n;
  while (left > 0) {
    // Largest uniform level increase before some constraint binds.
    std::vector<double> sumw(capacity.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      for (std::size_t j : uses[i]) sumw[j] += weight[i];
    }
    double delta = kInf;
    for (std::size_t j = 0; j < capacity.size(); ++j) {
      if (sumw[j] > 0.0) delta = std::min(delta, slack[j] / sumw[j]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i] && cap[i] < kInf) {
        delta = std::min(delta, (cap[i] - rate[i]) / weight[i]);
      }
    }
    // vlint: allow(no-exact-float-compare) audited PR 8: kInf sentinel from the reference water-filling solver
    if (delta == kInf) break;  // only uncapped activities on idle resources
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) rate[i] += weight[i] * delta;
    }
    for (std::size_t j = 0; j < capacity.size(); ++j) slack[j] -= sumw[j] * delta;

    bool froze = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      bool limited = cap[i] < kInf && rate[i] >= cap[i] - 1e-12 * std::max(1.0, cap[i]);
      for (std::size_t j : uses[i]) {
        if (slack[j] <= 1e-12 * std::max(1.0, capacity[j])) limited = true;
      }
      if (limited) {
        frozen[i] = true;
        froze = true;
        --left;
      }
    }
    if (!froze) break;  // numerical stalemate; rates are already max-min
  }
  return rate;
}

/// One full churn scenario under the given solver mode. Returns the trace.
/// `check_oracle` additionally cross-checks every sample against
/// naive_max_min (done once, on the incremental run — the reference run
/// already self-verifies internally).
std::vector<std::string> run_churn(std::uint64_t seed, bool reference, bool check_oracle) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Engine engine;
  FluidModel model(engine, reference);

  const int n_res = 2 + static_cast<int>(rng.uniform_int(5));
  std::vector<FluidModel::ResourceId> res;
  std::vector<double> res_capacity;
  for (int j = 0; j < n_res; ++j) {
    const double c = rng.uniform(20.0, 200.0);
    res.push_back(model.add_resource("r" + std::to_string(j), c));
    res_capacity.push_back(c);
  }

  std::vector<std::string> trace;
  std::vector<ActInfo> acts;

  auto start_activity = [&] {
    ActInfo info;
    info.weight = rng.uniform(0.5, 4.0);
    if (rng.uniform() < 0.3) info.cap = rng.uniform(2.0, 60.0);
    const int uses = 1 + static_cast<int>(rng.uniform_int(3));
    for (int u = 0; u < uses; ++u) {
      const std::size_t j = rng.uniform_int(res.size());
      if (std::find(info.res.begin(), info.res.end(), j) == info.res.end()) {
        info.res.push_back(j);
      }
    }
    FluidModel::ActivitySpec spec;
    spec.work = rng.uniform(20.0, 600.0);
    spec.weight = info.weight;
    spec.cap = info.cap;
    for (std::size_t j : info.res) spec.resources.push_back(res[j]);
    const std::size_t idx = acts.size();
    spec.on_complete = [&trace, &engine, idx] {
      trace.push_back("finish " + std::to_string(idx) + " t=" + num(engine.now()));
    };
    info.id = model.start(std::move(spec));
    acts.push_back(std::move(info));
  };

  // Record every live activity's rate; optionally re-derive the global
  // allocation with the naive solver and compare.
  auto sample = [&] {
    std::vector<std::size_t> live;
    std::string line = "rates t=" + num(engine.now());
    for (std::size_t i = 0; i < acts.size(); ++i) {
      if (!model.active(acts[i].id)) continue;
      live.push_back(i);
      line += " a" + std::to_string(i) + "=" + num(model.rate(acts[i].id));
    }
    trace.push_back(std::move(line));
    if (!check_oracle || live.empty()) return;
    std::vector<double> weight, cap;
    std::vector<std::vector<std::size_t>> uses;
    for (std::size_t i : live) {
      weight.push_back(acts[i].weight);
      cap.push_back(acts[i].cap);
      uses.push_back(acts[i].res);
    }
    const std::vector<double> want = naive_max_min(res_capacity, weight, cap, uses);
    for (std::size_t k = 0; k < live.size(); ++k) {
      const double got = model.rate(acts[live[k]].id);
      EXPECT_NEAR(got, want[k], 1e-9 * std::max(1.0, std::abs(want[k])))
          << "activity " << live[k] << " at t=" << engine.now();
    }
  };

  for (int i = 0; i < 4; ++i) start_activity();

  const int n_ops = 10 + static_cast<int>(rng.uniform_int(21));
  for (int op = 0; op < n_ops; ++op) {
    const double at = rng.uniform(0.5, 40.0);
    const int kind = static_cast<int>(rng.uniform_int(5));
    const std::size_t pick_act = rng.uniform_int(64);  // resolved to a live one at fire time
    const std::size_t pick_res = rng.uniform_int(res.size());
    const double amount = rng.uniform(5.0, 150.0);
    engine.schedule_at(at, [&, kind, pick_act, pick_res, amount] {
      sample();
      // The target is whichever live activity pick_act lands on *now*; both
      // modes see identical liveness, so the choice replays identically.
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (model.active(acts[i].id)) live.push_back(i);
      }
      switch (kind) {
        case 0: start_activity(); break;
        case 1:
          if (!live.empty()) {
            const std::size_t i = live[pick_act % live.size()];
            model.cancel(acts[i].id);
            trace.push_back("cancel " + std::to_string(i) + " t=" + num(engine.now()));
          }
          break;
        case 2:
          if (!live.empty()) {
            const std::size_t i = live[pick_act % live.size()];
            acts[i].cap = amount;
            model.set_cap(acts[i].id, amount);
          }
          break;
        case 3:
          if (!live.empty()) {
            const std::size_t i = live[pick_act % live.size()];
            model.add_work(acts[i].id, amount);
          }
          break;
        case 4:
          res_capacity[pick_res] = amount;
          model.set_capacity(res[pick_res], amount);
          break;
      }
      sample();
    });
  }

  engine.run();
  EXPECT_EQ(model.active_count(), 0u) << "seed " << seed << " left stalled activities";
  for (std::size_t j = 0; j < res.size(); ++j) {
    trace.push_back("busy r" + std::to_string(j) + "=" + num(model.busy_integral(res[j])));
  }
  trace.push_back("end t=" + num(engine.now()));
  return trace;
}

TEST(FluidChurnTest, IncrementalMatchesReferenceExactlyOver200Seeds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::vector<std::string> inc = run_churn(seed, /*reference=*/false,
                                                   /*check_oracle=*/seed % 10 == 0);
    const std::vector<std::string> ref = run_churn(seed, /*reference=*/true,
                                                   /*check_oracle=*/false);
    ASSERT_EQ(inc.size(), ref.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      ASSERT_EQ(inc[i], ref[i]) << "trace line " << i;
    }
  }
}

}  // namespace
}  // namespace vhadoop::sim

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace vhadoop::sim {
namespace {

TEST(DaemonEvents, DoNotKeepRunAlive) {
  Engine e;
  int ticks = 0;
  // A self-rescheduling daemon (periodic sampler pattern).
  std::function<void()> tick = [&] {
    ++ticks;
    e.schedule_in(1.0, tick, /*daemon=*/true);
  };
  e.schedule_in(1.0, tick, /*daemon=*/true);
  e.schedule_at(3.5, [] {});  // one regular event
  e.run();
  // Daemons at t=1,2,3 fired while regular work was pending; the chain did
  // not keep the engine running past t=3.5.
  EXPECT_EQ(ticks, 3);
  EXPECT_DOUBLE_EQ(e.now(), 3.5);
}

TEST(DaemonEvents, RunWithOnlyDaemonsReturnsImmediately) {
  Engine e;
  bool fired = false;
  e.schedule_in(1.0, [&] { fired = true; }, /*daemon=*/true);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(DaemonEvents, RunUntilStillFiresDaemons) {
  Engine e;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    e.schedule_in(1.0, tick, /*daemon=*/true);
  };
  e.schedule_in(1.0, tick, /*daemon=*/true);
  e.run_until(5.5);
  EXPECT_EQ(ticks, 5);
}

TEST(DaemonEvents, CancelDaemonWorks) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_in(1.0, [&] { fired = true; }, /*daemon=*/true);
  EXPECT_TRUE(e.cancel(id));
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_FALSE(fired);
}

TEST(DaemonEvents, RegularEventScheduledByDaemonExtendsRun) {
  Engine e;
  bool late_fired = false;
  e.schedule_in(1.0, [&] {
    // A daemon that discovers real work.
    e.schedule_in(10.0, [&] { late_fired = true; });
  }, /*daemon=*/true);
  e.schedule_at(2.0, [] {});  // keeps the engine alive past the daemon
  e.run();
  EXPECT_TRUE(late_fired);
  EXPECT_DOUBLE_EQ(e.now(), 11.0);
}

}  // namespace
}  // namespace vhadoop::sim

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vhadoop::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SameTimeEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(4.0, [&] { e.schedule_in(1.5, [&] { fired_at = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.5);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsCallback) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelledEventDoesNotAdvanceClockInRunUntil) {
  Engine e;
  auto id = e.schedule_at(100.0, [] {});
  e.cancel(id);
  EXPECT_FALSE(e.run_until(10.0));
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(9.0, [&] { ++fired; });
  EXPECT_TRUE(e.run_until(5.0));
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_FALSE(e.run_until(20.0));
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(e.now(), 20.0);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine e;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) e.schedule_in(1.0, step);
  };
  e.schedule_at(0.0, step);
  e.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, StepProcessesExactlyOneEvent) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RandomScheduleCancelStress) {
  // Property: every non-cancelled event fires exactly once, in
  // non-decreasing time order, regardless of interleaving.
  Engine e;
  struct Fired {
    std::vector<double> times;
  } fired;
  std::vector<Engine::EventId> ids;
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  int expected = 0;
  for (int i = 0; i < 500; ++i) {
    const double t = static_cast<double>(next() % 1000) / 10.0;
    ids.push_back(e.schedule_at(t, [&fired, &e] { fired.times.push_back(e.now()); }));
    ++expected;
    if (next() % 3 == 0 && !ids.empty()) {
      const std::size_t victim = next() % ids.size();
      if (e.cancel(ids[victim])) --expected;
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  e.run();
  EXPECT_EQ(static_cast<int>(fired.times.size()), expected);
  for (std::size_t i = 1; i < fired.times.size(); ++i) {
    EXPECT_LE(fired.times[i - 1], fired.times[i]);
  }
}

TEST(Engine, ProcessedCountsFiredEventsOnly) {
  Engine e;
  e.schedule_at(1.0, [] {});
  auto id = e.schedule_at(2.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.processed(), 1u);
}

}  // namespace
}  // namespace vhadoop::sim

#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace vhadoop::sim {
namespace {

class FluidTest : public ::testing::Test {
 protected:
  Engine engine;
  FluidModel model{engine};
};

TEST_F(FluidTest, SingleActivityUsesFullCapacity) {
  auto r = model.add_resource("link", 100.0);
  double done_at = -1.0;
  model.start({.work = 1000.0, .resources = {r}, .on_complete = [&] { done_at = engine.now(); }});
  engine.run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);
}

TEST_F(FluidTest, TwoEqualActivitiesShareFairly) {
  auto r = model.add_resource("link", 100.0);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    model.start({.work = 500.0, .resources = {r}, .on_complete = [&] { done.push_back(engine.now()); }});
  }
  engine.run();
  // Both proceed at 50 units/s and finish together at t=10.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST_F(FluidTest, DepartureSpeedsUpRemainingActivity) {
  auto r = model.add_resource("link", 100.0);
  double short_done = -1.0, long_done = -1.0;
  model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { short_done = engine.now(); }});
  model.start({.work = 500.0, .resources = {r}, .on_complete = [&] { long_done = engine.now(); }});
  engine.run();
  // Shared 50/50 until t=2 (short finishes), then full rate:
  // long has 400 left, finishes at 2 + 400/100 = 6.
  EXPECT_NEAR(short_done, 2.0, 1e-6);
  EXPECT_NEAR(long_done, 6.0, 1e-6);
}

TEST_F(FluidTest, WeightedSharing) {
  auto r = model.add_resource("cpu", 90.0);
  double heavy = -1.0, light = -1.0;
  model.start({.work = 600.0, .weight = 2.0, .resources = {r}, .on_complete = [&] { heavy = engine.now(); }});
  model.start({.work = 600.0, .weight = 1.0, .resources = {r}, .on_complete = [&] { light = engine.now(); }});
  engine.run();
  // Rates 60 vs 30 until heavy finishes at t=10; light then has 300 left
  // at rate 90 -> t = 10 + 300/90.
  EXPECT_NEAR(heavy, 10.0, 1e-6);
  EXPECT_NEAR(light, 10.0 + 300.0 / 90.0, 1e-6);
}

TEST_F(FluidTest, CapLimitsRate) {
  auto r = model.add_resource("link", 100.0);
  double capped = -1.0, open = -1.0;
  model.start({.work = 100.0, .cap = 10.0, .resources = {r}, .on_complete = [&] { capped = engine.now(); }});
  model.start({.work = 900.0, .resources = {r}, .on_complete = [&] { open = engine.now(); }});
  engine.run();
  // Capped at 10; the other takes the remaining 90 -> both finish at t=10.
  EXPECT_NEAR(capped, 10.0, 1e-6);
  EXPECT_NEAR(open, 10.0, 1e-6);
}

TEST_F(FluidTest, CapOnlyActivityNeedsNoResource) {
  double done = -1.0;
  model.start({.work = 50.0, .cap = 5.0, .on_complete = [&] { done = engine.now(); }});
  engine.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST_F(FluidTest, UncappedActivityWithoutResourceThrows) {
  EXPECT_THROW(model.start({.work = 1.0}), std::invalid_argument);
}

TEST_F(FluidTest, MultiResourceActivityLimitedByTightestResource) {
  auto wide = model.add_resource("wide", 1000.0);
  auto narrow = model.add_resource("narrow", 10.0);
  double done = -1.0;
  model.start({.work = 100.0, .resources = {wide, narrow}, .on_complete = [&] { done = engine.now(); }});
  engine.run();
  EXPECT_NEAR(done, 10.0, 1e-6);
}

TEST_F(FluidTest, CrossTrafficOnSharedMiddleLink) {
  // Two flows share a middle link but have private edge links; classic
  // max-min: the middle link is the bottleneck and is split evenly.
  auto a_in = model.add_resource("a_in", 100.0);
  auto b_in = model.add_resource("b_in", 100.0);
  auto mid = model.add_resource("mid", 60.0);
  double a_done = -1.0, b_done = -1.0;
  model.start({.work = 300.0, .resources = {a_in, mid}, .on_complete = [&] { a_done = engine.now(); }});
  model.start({.work = 300.0, .resources = {b_in, mid}, .on_complete = [&] { b_done = engine.now(); }});
  engine.run();
  EXPECT_NEAR(a_done, 10.0, 1e-6);
  EXPECT_NEAR(b_done, 10.0, 1e-6);
}

TEST_F(FluidTest, MaxMinGivesUnusedShareToUnconstrainedFlow) {
  // Flow A is limited to 10 by its private link; flow B should get the
  // remaining 90 of the shared link (not 50).
  auto a_edge = model.add_resource("a_edge", 10.0);
  auto shared = model.add_resource("shared", 100.0);
  auto a = model.start({.work = 1e9, .resources = {a_edge, shared}});
  auto b = model.start({.work = 1e9, .resources = {shared}});
  EXPECT_NEAR(model.rate(a), 10.0, 1e-9);
  EXPECT_NEAR(model.rate(b), 90.0, 1e-9);
  model.cancel(a);
  model.cancel(b);
}

TEST_F(FluidTest, ZeroCapacityResourceStallsUsers) {
  auto r = model.add_resource("down", 0.0);
  bool fired = false;
  auto id = model.start({.work = 10.0, .resources = {r}, .on_complete = [&] { fired = true; }});
  EXPECT_FALSE(engine.run_until(100.0));
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(model.rate(id), 0.0);
  // Restoring capacity resumes progress.
  model.set_capacity(r, 10.0);
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_NEAR(engine.now(), 101.0, 1e-6);
}

TEST_F(FluidTest, SetCapZeroPausesAndResumePreservesProgress) {
  auto r = model.add_resource("link", 10.0);
  double done = -1.0;
  auto id = model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { done = engine.now(); }});
  engine.run_until(5.0);  // 50 units done
  model.set_cap(id, 0.0);
  engine.run_until(50.0);  // paused for 45s
  EXPECT_NEAR(model.remaining(id), 50.0, 1e-6);
  model.set_cap(id, std::numeric_limits<double>::infinity());
  engine.run();
  EXPECT_NEAR(done, 55.0, 1e-6);
}

TEST_F(FluidTest, CancelRemovesActivityAndFreesShare) {
  auto r = model.add_resource("link", 100.0);
  auto a = model.start({.work = 1e9, .resources = {r}});
  auto b = model.start({.work = 1e9, .resources = {r}});
  EXPECT_NEAR(model.rate(b), 50.0, 1e-9);
  EXPECT_TRUE(model.cancel(a));
  EXPECT_FALSE(model.cancel(a));
  EXPECT_NEAR(model.rate(b), 100.0, 1e-9);
  model.cancel(b);
}

TEST_F(FluidTest, AddWorkExtendsCompletion) {
  auto r = model.add_resource("link", 10.0);
  double done = -1.0;
  auto id = model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { done = engine.now(); }});
  engine.run_until(5.0);
  model.add_work(id, 50.0);
  engine.run();
  EXPECT_NEAR(done, 15.0, 1e-6);
}

TEST_F(FluidTest, ZeroWorkActivityCompletesImmediately) {
  auto r = model.add_resource("link", 10.0);
  bool fired = false;
  model.start({.work = 0.0, .resources = {r}, .on_complete = [&] { fired = true; }});
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST_F(FluidTest, CompletionCallbackCanStartNewActivity) {
  auto r = model.add_resource("link", 10.0);
  double second_done = -1.0;
  model.start({.work = 100.0, .resources = {r}, .on_complete = [&] {
                 model.start({.work = 50.0,
                              .resources = {r},
                              .on_complete = [&] { second_done = engine.now(); }});
               }});
  engine.run();
  EXPECT_NEAR(second_done, 15.0, 1e-6);
}

TEST_F(FluidTest, UtilizationAndBusyIntegral) {
  auto r = model.add_resource("link", 100.0);
  model.start({.work = 250.0, .cap = 50.0, .resources = {r}});
  EXPECT_NEAR(model.utilization(r), 0.5, 1e-9);
  engine.run();  // finishes at t=5
  EXPECT_NEAR(model.busy_integral(r), 250.0, 1e-6);
  EXPECT_DOUBLE_EQ(model.utilization(r), 0.0);
}

TEST_F(FluidTest, CapacityIncreaseAcceleratesInFlightWork) {
  auto r = model.add_resource("link", 10.0);
  double done = -1.0;
  model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { done = engine.now(); }});
  engine.run_until(5.0);
  model.set_capacity(r, 50.0);
  engine.run();
  EXPECT_NEAR(done, 6.0, 1e-6);
}

TEST_F(FluidTest, CapacityDecreaseDelaysInFlightWork) {
  auto r = model.add_resource("link", 20.0);
  double done = -1.0;
  model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { done = engine.now(); }});
  engine.run_until(2.0);  // 40 of 100 done
  model.set_capacity(r, 5.0);
  EXPECT_DOUBLE_EQ(model.allocated(r), 5.0);
  engine.run();
  EXPECT_NEAR(done, 14.0, 1e-6);  // 60 remaining at rate 5
}

TEST_F(FluidTest, CapacityZeroedMidFlightStallsThenResumes) {
  auto r = model.add_resource("link", 10.0);
  double done = -1.0;
  auto id =
      model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { done = engine.now(); }});
  engine.run_until(4.0);  // 40 done
  model.set_capacity(r, 0.0);
  EXPECT_DOUBLE_EQ(model.rate(id), 0.0);
  EXPECT_DOUBLE_EQ(model.utilization(r), 0.0);
  engine.run_until(20.0);  // fully stalled: nothing fires, no progress
  EXPECT_NEAR(model.remaining(id), 60.0, 1e-9);
  model.set_capacity(r, 10.0);
  engine.run();
  EXPECT_NEAR(done, 26.0, 1e-6);  // 60 remaining at rate 10 from t=20
}

TEST_F(FluidTest, CapacityChangeRebalancesSharersMidFlight) {
  // Two equal sharers at 10 → 5 each; raising the capacity mid-flight must
  // re-split among the *remaining* work, not replay from the start.
  auto r = model.add_resource("link", 10.0);
  double a_done = -1.0, b_done = -1.0;
  model.start({.work = 50.0, .resources = {r}, .on_complete = [&] { a_done = engine.now(); }});
  model.start({.work = 100.0, .resources = {r}, .on_complete = [&] { b_done = engine.now(); }});
  engine.run_until(4.0);  // 20 done each
  model.set_capacity(r, 30.0);
  engine.run();
  EXPECT_NEAR(a_done, 6.0, 1e-6);         // 30 left at 15/s
  EXPECT_NEAR(b_done, 23.0 / 3.0, 1e-6);  // then 50 left alone at 30/s
}

TEST_F(FluidTest, AllocatedAndUtilizationAfterPartialSettles) {
  // allocated()/utilization() must reflect the *current* rate sum at every
  // observation point, including after departures settled mid-simulation.
  auto r = model.add_resource("link", 100.0);
  model.start({.work = 100.0, .resources = {r}});           // shares 50/50, gone at t=2
  auto b = model.start({.work = 300.0, .resources = {r}});
  EXPECT_DOUBLE_EQ(model.allocated(r), 100.0);
  EXPECT_DOUBLE_EQ(model.utilization(r), 1.0);

  engine.run_until(3.0);  // first sharer left at t=2; b runs alone at 100
  EXPECT_DOUBLE_EQ(model.allocated(r), 100.0);
  EXPECT_NEAR(model.remaining(b), 100.0, 1e-9);  // 50/s until t=2, then 100/s
  EXPECT_NEAR(model.busy_integral(r), 300.0, 1e-9);

  model.set_cap(b, 25.0);  // partial settle: integral up to now, new rate on
  EXPECT_DOUBLE_EQ(model.allocated(r), 25.0);
  EXPECT_DOUBLE_EQ(model.utilization(r), 0.25);

  engine.run();
  EXPECT_DOUBLE_EQ(model.allocated(r), 0.0);
  EXPECT_DOUBLE_EQ(model.utilization(r), 0.0);
  EXPECT_NEAR(model.busy_integral(r), 400.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Property sweeps: conservation and fairness hold for random activity mixes.
// ---------------------------------------------------------------------------

struct SweepParam {
  std::uint64_t seed;
  int n_resources;
  int n_activities;
};

class FluidPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FluidPropertyTest, RatesNeverExceedCapacitiesNorCaps) {
  const auto p = GetParam();
  Rng rng(p.seed);
  Engine engine;
  FluidModel model(engine);

  std::vector<FluidModel::ResourceId> res;
  for (int i = 0; i < p.n_resources; ++i) {
    res.push_back(model.add_resource("r" + std::to_string(i), rng.uniform(10.0, 200.0)));
  }
  std::vector<FluidModel::ActivityId> acts;
  for (int i = 0; i < p.n_activities; ++i) {
    FluidModel::ActivitySpec spec;
    spec.work = rng.uniform(10.0, 1000.0);
    spec.weight = rng.uniform(0.5, 4.0);
    if (rng.uniform() < 0.3) spec.cap = rng.uniform(1.0, 50.0);
    const int uses = 1 + static_cast<int>(rng.uniform_int(3));
    for (int u = 0; u < uses; ++u) {
      auto r = res[rng.uniform_int(res.size())];
      if (std::find(spec.resources.begin(), spec.resources.end(), r) == spec.resources.end()) {
        spec.resources.push_back(r);
      }
    }
    acts.push_back(model.start(std::move(spec)));
  }

  // Invariants at the initial allocation.
  for (auto r : res) {
    EXPECT_LE(model.allocated(r), model.capacity(r) * (1.0 + 1e-9));
  }
  for (auto a : acts) {
    if (model.active(a)) {
      EXPECT_GE(model.rate(a), 0.0);
    }
  }

  // Work conservation: every activity eventually completes (no livelock),
  // and total busy integral equals total work.
  double total_work = 0.0;
  for (auto a : acts) total_work += model.remaining(a);
  engine.run();
  EXPECT_EQ(model.active_count(), 0u);
  (void)total_work;
}

TEST_P(FluidPropertyTest, WorkConservedOnSingleSharedResource) {
  const auto p = GetParam();
  Rng rng(p.seed ^ 0xabcdef);
  Engine engine;
  FluidModel model(engine);
  auto r = model.add_resource("shared", 100.0);

  double total_work = 0.0;
  for (int i = 0; i < p.n_activities; ++i) {
    const double w = rng.uniform(10.0, 500.0);
    total_work += w;
    model.start({.work = w, .weight = rng.uniform(0.5, 2.0), .resources = {r}});
  }
  engine.run();
  // The resource was the only conduit: busy integral == total work pushed.
  EXPECT_NEAR(model.busy_integral(r), total_work, total_work * 1e-9 + 1e-5);
  // And it was never idle while work remained: last completion at
  // total/capacity exactly (work-conserving schedule).
  EXPECT_NEAR(engine.now(), total_work / 100.0, 1e-6);
}

TEST_P(FluidPropertyTest, AddingCompetitionNeverSpeedsUpAFlow) {
  // Monotonicity: a flow's completion time with competitors is never
  // earlier than without them.
  const auto p = GetParam();
  Rng rng(p.seed ^ 0x777);

  auto run_case = [&](bool with_competitors) {
    Rng local = rng;  // identical random choices in both runs
    Engine engine;
    FluidModel model(engine);
    std::vector<FluidModel::ResourceId> res;
    for (int i = 0; i < p.n_resources; ++i) {
      res.push_back(model.add_resource("r", local.uniform(50.0, 200.0)));
    }
    double probe_done = -1.0;
    model.start({.work = 500.0,
                 .resources = {res[0]},
                 .on_complete = [&] { probe_done = engine.now(); }});
    if (with_competitors) {
      for (int a = 0; a < p.n_activities; ++a) {
        model.start({.work = local.uniform(10.0, 400.0),
                     .weight = local.uniform(0.5, 3.0),
                     .resources = {res[static_cast<std::size_t>(a) % res.size()]}});
      }
    }
    engine.run();
    return probe_done;
  };

  const double alone = run_case(false);
  const double contended = run_case(true);
  EXPECT_GE(contended, alone - 1e-9);
}

TEST_P(FluidPropertyTest, PauseResumeConservesWork) {
  const auto p = GetParam();
  Rng rng(p.seed ^ 0xbeef);
  Engine engine;
  FluidModel model(engine);
  auto r = model.add_resource("link", 100.0);
  const double work = rng.uniform(100.0, 1000.0);
  double done_at = -1.0;
  auto id = model.start({.work = work, .resources = {r}, .on_complete = [&] {
                           done_at = engine.now();
                         }});
  // Pause for a random window mid-transfer.
  const double pause_at = work / 100.0 * rng.uniform(0.1, 0.9);
  const double pause_len = rng.uniform(1.0, 50.0);
  engine.run_until(pause_at);
  model.set_cap(id, 0.0);
  engine.run_until(pause_at + pause_len);
  model.set_cap(id, std::numeric_limits<double>::infinity());
  engine.run();
  EXPECT_NEAR(done_at, work / 100.0 + pause_len, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomMixes, FluidPropertyTest,
                         ::testing::Values(SweepParam{1, 2, 5}, SweepParam{2, 3, 12},
                                           SweepParam{3, 5, 25}, SweepParam{4, 4, 40},
                                           SweepParam{5, 8, 60}, SweepParam{6, 1, 3},
                                           SweepParam{7, 6, 80}, SweepParam{8, 2, 100}));

}  // namespace
}  // namespace vhadoop::sim

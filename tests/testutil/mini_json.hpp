#pragma once

// Minimal recursive-descent JSON parser for test assertions. Parses the
// full JSON grammar (objects, arrays, strings with escapes, numbers,
// booleans, null) into a tagged-union Value tree. Throws std::runtime_error
// on malformed input — a failed parse *is* the test failure.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace vhadoop::testutil {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }

  bool has(const std::string& key) const {
    return type == Type::Object && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("mini_json: missing key '" + key + "'");
    return object.at(key);
  }
  const JsonValue& at(std::size_t i) const {
    if (type != Type::Array || i >= array.size()) {
      throw std::runtime_error("mini_json: bad array index");
    }
    return array[i];
  }
};

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) throw std::runtime_error("mini_json: trailing data");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("mini_json: " + what + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char get() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", {.type = JsonValue::Type::Bool, .boolean = true});
      case 'f': return keyword("false", {.type = JsonValue::Type::Bool, .boolean = false});
      case 'n': return keyword("null", {.type = JsonValue::Type::Null});
      default: return number();
    }
  }

  JsonValue keyword(const std::string& word, JsonValue v) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("bad keyword");
    pos_ += word.size();
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      get();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      char c = get();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      get();
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      char c = get();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::String;
    v.str = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Tests only need ASCII round-trips; decode the code unit and
            // keep the low byte.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += static_cast<char>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    std::size_t start = pos_;
    if (peek() == '-') get();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }
};

}  // namespace vhadoop::testutil

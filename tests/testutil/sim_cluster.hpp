#pragma once

// Shared test fixture: a fully wired hadoop virtual cluster (engine, fluid
// model, fabric, cloud, HDFS, simulated job runner) in either the paper's
// "normal" (all VMs on one host) or "cross-domain" (split over two hosts)
// placement.

#include <memory>
#include <string>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapreduce/sim_runner.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::testutil {

struct SimCluster {
  sim::Engine engine;
  std::unique_ptr<sim::FluidModel> model;
  std::unique_ptr<net::Fabric> fabric;
  std::unique_ptr<virt::Cloud> cloud;
  std::vector<virt::HostId> hosts;
  virt::VmId namenode{};
  std::vector<virt::VmId> workers;
  std::unique_ptr<hdfs::HdfsCluster> hdfs;
  std::unique_ptr<mapreduce::SimulatedJobRunner> runner;

  /// n_workers datanode/tasktracker VMs + 1 namenode VM. cross=true splits
  /// the VMs over two hosts; otherwise everything lands on host 0.
  /// (Returned by pointer: the engine is pinned in memory because every
  /// component holds references into it.)
  static std::unique_ptr<SimCluster> make(int n_workers, bool cross,
                                          mapreduce::HadoopConfig hconf = {},
                                          hdfs::HdfsConfig dconf = {},
                                          std::uint64_t seed = 7) {
    auto owner = std::make_unique<SimCluster>();
    SimCluster& c = *owner;
    c.model = std::make_unique<sim::FluidModel>(c.engine);
    c.fabric = std::make_unique<net::Fabric>(c.engine, *c.model, net::NetConfig{});
    c.cloud = std::make_unique<virt::Cloud>(c.engine, *c.model, *c.fabric, virt::VirtConfig{});
    c.hosts.push_back(c.cloud->add_host("hostA"));
    c.hosts.push_back(c.cloud->add_host("hostB"));

    auto place = [&](int idx, int total) -> virt::HostId {
      if (!cross) return c.hosts[0];
      return idx < (total + 1) / 2 ? c.hosts[0] : c.hosts[1];
    };
    c.namenode = c.cloud->create_vm("namenode", place(0, n_workers + 1),
                                    {.vcpus = 1, .memory_mb = 1024});
    c.cloud->boot_vm(c.namenode, nullptr);
    for (int i = 0; i < n_workers; ++i) {
      virt::VmId vm = c.cloud->create_vm("worker" + std::to_string(i),
                                         place(i + 1, n_workers + 1),
                                         {.vcpus = 1, .memory_mb = 1024});
      c.cloud->boot_vm(vm, nullptr);
      c.workers.push_back(vm);
    }
    c.engine.run();  // boots complete
    c.hdfs = std::make_unique<hdfs::HdfsCluster>(*c.cloud, dconf, c.namenode, c.workers,
                                                 sim::Rng(seed));
    c.runner = std::make_unique<mapreduce::SimulatedJobRunner>(*c.cloud, *c.hdfs, hconf,
                                                               c.workers);
    return owner;
  }

  /// Multi-rack variant: `topo` decides the fabric model and rack grid,
  /// hosts = racks × nodes_per_rack, and VMs spread round-robin over all
  /// hosts so every rack carries part of the cluster.
  static std::unique_ptr<SimCluster> make_racked(int n_workers, net::TopologyConfig topo,
                                                 mapreduce::HadoopConfig hconf = {},
                                                 hdfs::HdfsConfig dconf = {},
                                                 std::uint64_t seed = 7) {
    auto owner = std::make_unique<SimCluster>();
    SimCluster& c = *owner;
    net::NetConfig nconf;
    nconf.topology = topo;
    c.model = std::make_unique<sim::FluidModel>(c.engine);
    c.fabric = std::make_unique<net::Fabric>(c.engine, *c.model, nconf);
    c.cloud = std::make_unique<virt::Cloud>(c.engine, *c.model, *c.fabric, virt::VirtConfig{});
    const int n_hosts = topo.racks * topo.nodes_per_rack;
    for (int h = 0; h < n_hosts; ++h) {
      c.hosts.push_back(c.cloud->add_host("host" + std::to_string(h)));
    }
    c.namenode = c.cloud->create_vm("namenode", c.hosts[0], {.vcpus = 1, .memory_mb = 1024});
    c.cloud->boot_vm(c.namenode, nullptr);
    for (int i = 0; i < n_workers; ++i) {
      virt::VmId vm = c.cloud->create_vm("worker" + std::to_string(i),
                                         c.hosts[static_cast<std::size_t>(i + 1) % c.hosts.size()],
                                         {.vcpus = 1, .memory_mb = 1024});
      c.cloud->boot_vm(vm, nullptr);
      c.workers.push_back(vm);
    }
    c.engine.run();  // boots complete
    c.hdfs = std::make_unique<hdfs::HdfsCluster>(*c.cloud, dconf, c.namenode, c.workers,
                                                 sim::Rng(seed));
    c.runner = std::make_unique<mapreduce::SimulatedJobRunner>(*c.cloud, *c.hdfs, hconf,
                                                               c.workers);
    return owner;
  }
};

}  // namespace vhadoop::testutil

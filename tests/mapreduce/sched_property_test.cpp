#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

// Invariants that must hold for EVERY scheduler policy and EVERY rng seed:
//   1. every submitted job completes, none fail;
//   2. reducers fetch exactly the map-output bytes the job produced;
//   3. no VM ever holds more map (reduce) tasks than it has slots;
//   4. no job starves: each one is eventually granted a first task slot.
// Speculation is disabled so the recorded TaskTimings are the complete set
// of attempts (a speculative loser would occupy a slot invisibly).

struct SweepParam {
  SchedulerPolicy policy;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(to_string(info.param.policy)) + "_seed" +
         std::to_string(info.param.seed);
}

double expected_shuffle_bytes(const SimJobSpec& spec) {
  double total = 0.0;
  for (std::size_t m = 0; m < spec.maps.size(); ++m) {
    for (std::size_t r = 0; r < spec.reduces.size(); ++r) {
      total += spec.shuffle_bytes(m, r);
    }
  }
  return total;
}

// Event sweep over [assigned, finished) occupancy intervals: the peak
// number of simultaneous tasks of one kind on one VM.
int peak_occupancy(const std::vector<std::pair<double, double>>& intervals) {
  std::vector<std::pair<double, int>> events;
  for (const auto& [a, b] : intervals) {
    events.emplace_back(a, +1);
    events.emplace_back(b, -1);
  }
  // Releases sort before grabs at the same instant: an out-of-band
  // heartbeat legitimately refills a slot the moment it frees.
  std::sort(events.begin(), events.end(),
            [](const auto& x, const auto& y) {
              return x.first != y.first ? x.first < y.first : x.second < y.second;
            });
  int cur = 0, peak = 0;
  for (const auto& [t, d] : events) {
    cur += d;
    peak = std::max(peak, cur);
  }
  return peak;
}

class SchedulerPropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SchedulerPropertySweep, InvariantsHoldForMixedWorkload) {
  const SweepParam p = GetParam();
  HadoopConfig hc;
  hc.scheduler = p.policy;
  hc.speculative_execution = false;
  if (p.policy == SchedulerPolicy::Capacity) {
    hc.queues = {{"prod", 0.5, 1.0, 0.6}, {"adhoc", 0.5, 1.0, 0.6}};
  }
  auto c = SimCluster::make(4, p.seed % 2 == 0, hc, {}, p.seed);

  c->hdfs->write_file("/in/sweep", 4 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  std::vector<SimJobSpec> specs;
  {
    SimJobSpec big;
    big.name = "sweep-big";
    big.queue = "prod";
    big.user = "alice";
    big.output_path = "/out/sweep-big";
    const auto& blocks = c->hdfs->blocks("/in/sweep");
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      big.maps.push_back({.input_path = "/in/sweep", .block_index = static_cast<int>(b),
                          .cpu_seconds = 1.2, .output_bytes = 8 * sim::kMiB});
    }
    big.reduces.assign(2, {.cpu_seconds = 0.5, .output_bytes = 2 * sim::kMiB});
    specs.push_back(std::move(big));
  }
  for (int k = 0; k < 2; ++k) {
    SimJobSpec small;
    small.name = "sweep-small-" + std::to_string(k);
    small.queue = "adhoc";
    small.user = k == 0 ? "alice" : "bob";
    small.output_path = "/out/sweep-small-" + std::to_string(k);
    for (int m = 0; m < 3; ++m) {
      small.maps.push_back({.input_bytes = 4 * sim::kMiB, .cpu_seconds = 0.4,
                            .output_bytes = 2 * sim::kMiB});
    }
    small.reduces.assign(1, {.cpu_seconds = 0.3, .output_bytes = sim::kMiB});
    specs.push_back(std::move(small));
  }

  std::vector<JobTimeline> done;
  for (const auto& spec : specs) {
    c->runner->submit(spec, [&](const JobTimeline& t) { done.push_back(t); });
  }
  c->engine.run();

  // 1. completion
  ASSERT_EQ(done.size(), specs.size());
  ASSERT_TRUE(c->runner->idle());
  std::map<std::string, const JobTimeline*> by_name;
  for (const auto& t : done) {
    EXPECT_FALSE(t.failed) << t.name;
    EXPECT_GT(t.finished, t.submitted) << t.name;
    by_name[t.name] = &t;
  }
  ASSERT_EQ(by_name.size(), specs.size());

  // 2. shuffle conservation: bytes consumed == bytes produced, per job
  for (const auto& spec : specs) {
    const JobTimeline& t = *by_name.at(spec.name);
    const double want = expected_shuffle_bytes(spec);
    EXPECT_NEAR(t.shuffle_fetched_bytes, want, 1e-6 * want) << spec.name;
  }

  // 3. slot caps: sweep every recorded task interval, grouped by VM
  std::map<virt::VmId, std::vector<std::pair<double, double>>> map_busy, red_busy;
  for (const auto& t : done) {
    for (const auto& task : t.maps) map_busy[task.vm].emplace_back(task.assigned, task.finished);
    for (const auto& task : t.reduces) red_busy[task.vm].emplace_back(task.assigned, task.finished);
  }
  for (const auto& [vm, iv] : map_busy) {
    EXPECT_LE(peak_occupancy(iv), hc.map_slots_per_worker) << "vm " << vm;
  }
  for (const auto& [vm, iv] : red_busy) {
    EXPECT_LE(peak_occupancy(iv), hc.reduce_slots_per_worker) << "vm " << vm;
  }

  // 4. no starvation: every job got a slot, and under Fair/Capacity no small
  // job waits for the big job's full runtime (FIFO intentionally serializes).
  for (const auto& t : done) {
    EXPECT_GT(t.first_task_at, 0.0) << t.name;
  }
  if (p.policy != SchedulerPolicy::Fifo) {
    const double big_finish = by_name.at("sweep-big")->finished;
    for (int k = 0; k < 2; ++k) {
      const JobTimeline& t = *by_name.at("sweep-small-" + std::to_string(k));
      EXPECT_LT(t.first_task_at, big_finish) << t.name << " starved behind sweep-big";
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (auto policy : {SchedulerPolicy::Fifo, SchedulerPolicy::Fair, SchedulerPolicy::Capacity,
                      SchedulerPolicy::Deadline}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) params.push_back({policy, seed});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, SchedulerPropertySweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

}  // namespace
}  // namespace vhadoop::mapreduce

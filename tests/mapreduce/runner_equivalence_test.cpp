// Equivalence suite for the arena-backed data path (DESIGN.md §11): the
// optimized LocalJobRunner must produce byte-identical job results to the
// VHADOOP_RUNNER_REFERENCE oracle — outputs, task profiles, shuffle
// accounting — across seeds, split counts, combiners, and adversarial keys.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mapreduce/kv_batch.hpp"
#include "mapreduce/local_runner.hpp"

namespace mr = vhadoop::mapreduce;

namespace {

// --- deterministic pseudo-random bytes (no std::random in tests) ------------

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Key pool exercising every compare path: empty key, short keys, embedded
/// NULs, keys equal through their 8-byte prefix, and binary bytes.
std::vector<std::string> tricky_keys() {
  return {
      "",
      "a",
      std::string("a\0", 2),
      std::string("a\0b", 3),
      "aaaaaaaa",
      "aaaaaaaab",
      "aaaaaaaac",
      "aaaaaaa",
      std::string("\xff\x00\x7f", 3),
      "zebra",
      "zebr",
      "prefix-shared-long-key-1",
      "prefix-shared-long-key-2",
  };
}

std::vector<mr::KV> random_records(std::uint64_t seed, std::size_t n) {
  const auto keys = tricky_keys();
  std::uint64_t s = seed;
  std::vector<mr::KV> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& key = keys[splitmix(s) % keys.size()];
    std::string value(splitmix(s) % 24, '\0');
    for (char& c : value) c = static_cast<char>(splitmix(s) & 0xff);
    records.push_back({key, std::move(value)});
  }
  return records;
}

// --- user code under test ----------------------------------------------------

/// Emits (key, value) back plus a per-key byte count — shuffle-heavy, and
/// the reducer output depends on merge order only through stable grouping.
class EchoCountMapper : public mr::Mapper {
 public:
  void map(std::string_view key, std::string_view value, mr::Context& ctx) override {
    ctx.emit(key, value);
  }
};

class ConcatReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mr::Context& ctx) override {
    std::string joined;
    for (auto v : values) {
      joined += v;
      joined += '|';
    }
    ctx.emit(key, joined);
  }
};

/// Combiner that emits groups in reverse key order — the runner must
/// re-sort combiner output (Hadoop allows arbitrary emit order).
class ReverseCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mr::Context&) override {
    std::string joined;
    for (auto v : values) {
      joined += v;
      joined += '|';
    }
    buffered_.push_back({std::string(key), std::move(joined)});
  }
  void cleanup(mr::Context& ctx) override {
    for (auto it = buffered_.rbegin(); it != buffered_.rend(); ++it) {
      ctx.emit(it->key, it->value);
    }
  }

 private:
  std::vector<mr::KV> buffered_;
};

mr::JobSpec echo_spec(int reduces, bool combiner) {
  mr::JobSpec spec;
  spec.config.name = "echo";
  spec.config.num_reduces = reduces;
  spec.config.use_combiner = combiner;
  spec.mapper = [] { return std::make_unique<EchoCountMapper>(); };
  spec.reducer = [] { return std::make_unique<ConcatReducer>(); };
  if (combiner) spec.combiner = [] { return std::make_unique<ReverseCombiner>(); };
  return spec;
}

void expect_profiles_equal(const std::vector<mr::TaskProfile>& a,
                           const std::vector<mr::TaskProfile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].input_records, b[i].input_records) << "task " << i;
    EXPECT_EQ(a[i].input_bytes, b[i].input_bytes) << "task " << i;
    EXPECT_EQ(a[i].output_records, b[i].output_records) << "task " << i;
    EXPECT_EQ(a[i].output_bytes, b[i].output_bytes) << "task " << i;
    EXPECT_EQ(a[i].cpu_seconds, b[i].cpu_seconds) << "task " << i;
  }
}

/// Byte-identical equivalence: output records, profiles, shuffle matrix and
/// the mode-independent data-path stats must match exactly.
void expect_results_equal(const mr::JobResult& opt, const mr::JobResult& ref) {
  ASSERT_EQ(opt.output.size(), ref.output.size());
  for (std::size_t i = 0; i < opt.output.size(); ++i) {
    EXPECT_EQ(opt.output[i].key, ref.output[i].key) << "record " << i;
    EXPECT_EQ(opt.output[i].value, ref.output[i].value) << "record " << i;
  }
  expect_profiles_equal(opt.map_profiles, ref.map_profiles);
  expect_profiles_equal(opt.reduce_profiles, ref.reduce_profiles);
  EXPECT_EQ(opt.shuffle_matrix, ref.shuffle_matrix);
  EXPECT_EQ(opt.total_shuffle_bytes, ref.total_shuffle_bytes);
  EXPECT_EQ(opt.stats.map_emit_records, ref.stats.map_emit_records);
  EXPECT_EQ(opt.stats.map_emit_bytes, ref.stats.map_emit_bytes);
  EXPECT_EQ(opt.stats.shuffle_records, ref.stats.shuffle_records);
}

// --- KVBatch unit tests ------------------------------------------------------

TEST(KVBatch, ValuesAreEightByteAligned) {
  mr::KVBatch batch;
  const double payload[3] = {1.0, -2.5, 1e300};
  std::string value(sizeof(payload), '\0');
  std::memcpy(value.data(), payload, sizeof(payload));
  batch.push("k", value);          // 1-byte key forces padding
  batch.push("keykey", value);     // 6-byte key too
  batch.push("12345678", value);   // already aligned
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto v = batch.value(i);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % alignof(double), 0u) << i;
    EXPECT_EQ(v, std::string_view(value));
  }
}

TEST(KVBatch, TracksLogicalBytesAndChunks) {
  mr::KVBatch batch;
  EXPECT_EQ(batch.chunks_allocated(), 0);
  EXPECT_EQ(batch.total_bytes(), 0u);
  batch.push("key", "value");
  EXPECT_EQ(batch.total_bytes(), 8u);  // logical bytes exclude padding
  EXPECT_EQ(batch.chunks_allocated(), 1);
  // An oversized record gets its own chunk; existing views stay valid.
  const std::string_view first_key = batch.key(0);
  batch.push("big", std::string(256 * 1024, 'x'));
  EXPECT_EQ(batch.chunks_allocated(), 2);
  EXPECT_EQ(first_key, "key");
  EXPECT_EQ(batch.key(0), "key");
  batch.clear();
  EXPECT_EQ(batch.chunks_allocated(), 0);
  EXPECT_TRUE(batch.empty());
}

TEST(KVBatch, KeyPrefixOrderMatchesLexicographic) {
  const auto keys = tricky_keys();
  for (const auto& a : keys) {
    for (const auto& b : keys) {
      const std::uint64_t pa = mr::KVBatch::key_prefix(a);
      const std::uint64_t pb = mr::KVBatch::key_prefix(b);
      if (pa != pb) {
        // Differing prefixes must agree with full lexicographic order.
        EXPECT_EQ(pa < pb, a < b) << '"' << a << "\" vs \"" << b << '"';
      }
    }
  }
}

TEST(KVBatch, SortEntriesIsStable) {
  mr::KVBatch batch;
  const auto keys = tricky_keys();
  std::uint64_t s = 99;
  for (int i = 0; i < 500; ++i) {
    batch.push(keys[splitmix(s) % keys.size()], std::to_string(i));
  }
  std::vector<mr::KVBatch::Entry> entries(batch.entries().begin(), batch.entries().end());
  auto expected = entries;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.key() < b.key(); });
  const std::int64_t comparisons = mr::sort_entries(entries);
  EXPECT_GT(comparisons, 0);
  ASSERT_EQ(entries.size(), expected.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key(), expected[i].key()) << i;
    EXPECT_EQ(entries[i].value(), expected[i].value()) << i;  // ties keep input order
  }
}

TEST(KVBatch, MergeRunsMatchesStableSortOfConcatenation) {
  mr::KVBatch batch;
  const auto keys = tricky_keys();
  std::uint64_t s = 7;
  std::vector<std::vector<mr::KVBatch::Entry>> runs(4);
  std::vector<mr::KVBatch::Entry> all;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (int i = 0; i < 100; ++i) {
      batch.push(keys[splitmix(s) % keys.size()],
                 std::to_string(r) + ":" + std::to_string(i));
    }
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    for (int i = 0; i < 100; ++i) {
      runs[r].push_back(batch.entry(r * 100 + static_cast<std::size_t>(i)));
    }
    mr::sort_entries(runs[r]);
    all.insert(all.end(), runs[r].begin(), runs[r].end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.key() < b.key(); });

  std::vector<std::span<const mr::KVBatch::Entry>> spans(runs.begin(), runs.end());
  std::vector<mr::KVBatch::Entry> merged;
  mr::merge_runs(spans, merged);
  ASSERT_EQ(merged.size(), all.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].key(), all[i].key()) << i;
    EXPECT_EQ(merged[i].value(), all[i].value()) << i;
  }
}

TEST(KVBatch, MergeRunsHandlesEmptyAndSingleRuns) {
  std::vector<mr::KVBatch::Entry> merged;
  EXPECT_EQ(mr::merge_runs({}, merged), 0);
  EXPECT_TRUE(merged.empty());

  mr::KVBatch batch;
  batch.push("a", "1");
  batch.push("b", "2");
  std::vector<mr::KVBatch::Entry> run(batch.entries().begin(), batch.entries().end());
  std::vector<std::span<const mr::KVBatch::Entry>> spans{{}, run, {}};
  EXPECT_EQ(mr::merge_runs(spans, merged), 0);  // single non-empty run: no comparisons
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].key(), "a");
  EXPECT_EQ(merged[1].key(), "b");
}

// --- codec bounds (satellite: decode_* UB fix) -------------------------------

TEST(CodecBounds, TruncatedPayloadsThrow) {
  EXPECT_THROW(mr::decode_f64(""), std::invalid_argument);
  EXPECT_THROW(mr::decode_f64("abc"), std::invalid_argument);
  EXPECT_THROW(mr::decode_i64(""), std::invalid_argument);
  EXPECT_THROW(mr::decode_i64("1234567"), std::invalid_argument);
  EXPECT_THROW(mr::decode_vec("123"), std::invalid_argument);
  EXPECT_THROW(mr::decode_vec(std::string(15, 'x')), std::invalid_argument);
  std::vector<double> scratch;
  EXPECT_THROW(mr::decode_vec_view("1234567", scratch), std::invalid_argument);
}

TEST(CodecBounds, EmptyVecPayloadIsValid) {
  EXPECT_TRUE(mr::decode_vec("").empty());
  std::vector<double> scratch;
  EXPECT_TRUE(mr::decode_vec_view("", scratch).empty());
}

TEST(CodecBounds, RoundTripStillWorks) {
  EXPECT_EQ(mr::decode_f64(mr::encode_f64(-3.75)), -3.75);
  EXPECT_EQ(mr::decode_i64(mr::encode_i64(-42)), -42);
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_EQ(mr::decode_vec(mr::encode_vec(v)), v);
}

TEST(DecodeVecView, AlignedPayloadIsZeroCopy) {
  mr::KVBatch batch;
  const std::vector<double> v{3.0, 1.5, -8.25};
  batch.push("key", mr::encode_vec(v));
  std::vector<double> scratch;
  const auto view = mr::decode_vec_view(batch.value(0), scratch);
  ASSERT_EQ(view.size(), v.size());
  EXPECT_EQ(static_cast<const void*>(view.data()),
            static_cast<const void*>(batch.value(0).data()));  // no copy
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(view[i], v[i]);
}

TEST(DecodeVecView, UnalignedPayloadFallsBackToScratch) {
  alignas(8) char buf[17];
  const double x = 12345.678;
  std::memcpy(buf + 1, &x, sizeof(double));
  std::memcpy(buf + 9, &x, sizeof(double));
  std::vector<double> scratch;
  const auto view = mr::decode_vec_view({buf + 1, 16}, scratch);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.data(), scratch.data());  // copied into caller scratch
  EXPECT_EQ(view[0], x);
  EXPECT_EQ(view[1], x);
}

// --- optimized vs reference equivalence --------------------------------------

struct SweepCase {
  std::uint64_t seed;
  std::size_t records;
  int splits;
  int reduces;
  bool combiner;
};

class RunnerEquivalence : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RunnerEquivalence, ByteIdenticalAcrossModes) {
  const SweepCase c = GetParam();
  const auto records = random_records(c.seed, c.records);
  const mr::LocalJobRunner optimized(4, /*reference=*/false);
  const mr::LocalJobRunner reference(4, /*reference=*/true);
  const auto spec = echo_spec(c.reduces, c.combiner);
  const auto opt = optimized.run(spec, records, c.splits);
  const auto ref = reference.run(spec, records, c.splits);
  expect_results_equal(opt, ref);
  // The optimized path reports its deterministic counters.
  EXPECT_GT(opt.stats.arena_chunks, 0);
  if (c.records > 1) {
    EXPECT_GT(opt.stats.sort_comparisons, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MultiSeedSweep, RunnerEquivalence,
    ::testing::Values(SweepCase{1, 200, 4, 3, false}, SweepCase{2, 200, 4, 3, true},
                      SweepCase{3, 64, 1, 1, false}, SweepCase{4, 64, 7, 2, true},
                      SweepCase{5, 500, 8, 5, true}, SweepCase{6, 500, 3, 4, false},
                      SweepCase{7, 33, 16, 2, true}, SweepCase{8, 1, 4, 2, false}),
    [](const auto& param_info) {
      const SweepCase& c = param_info.param;
      return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.records) + "_s" +
             std::to_string(c.splits) + "_r" + std::to_string(c.reduces) +
             (c.combiner ? "_comb" : "_plain");
    });

// --- edge cases, asserted identical across modes (satellite) -----------------

TEST(RunnerEdgeCases, EmptyInputIsIdenticalAcrossModes) {
  const mr::LocalJobRunner optimized(4, false);
  const mr::LocalJobRunner reference(4, true);
  const auto spec = echo_spec(2, false);
  const std::vector<mr::KV> empty;
  const auto opt = optimized.run(spec, empty, 4);
  const auto ref = reference.run(spec, empty, 4);
  expect_results_equal(opt, ref);
  EXPECT_TRUE(opt.output.empty());
  EXPECT_EQ(opt.map_profiles.size(), 1u);  // clamped to one (empty) split
}

TEST(RunnerEdgeCases, MoreSplitsThanRecordsIsIdenticalAcrossModes) {
  const auto records = random_records(11, 3);
  const mr::LocalJobRunner optimized(4, false);
  const mr::LocalJobRunner reference(4, true);
  const auto spec = echo_spec(2, false);
  const auto opt = optimized.run(spec, records, 64);
  const auto ref = reference.run(spec, records, 64);
  expect_results_equal(opt, ref);
  EXPECT_EQ(opt.map_profiles.size(), 3u);  // clamped to one split per record
}

TEST(RunnerEdgeCases, OutOfOrderCombinerIsIdenticalAcrossModes) {
  const auto records = random_records(12, 120);
  const mr::LocalJobRunner optimized(4, false);
  const mr::LocalJobRunner reference(4, true);
  const auto spec = echo_spec(3, true);  // ReverseCombiner emits descending
  expect_results_equal(optimized.run(spec, records, 5), reference.run(spec, records, 5));
}

TEST(RunnerEdgeCases, OutOfRangePartitionerThrowsInBothModes) {
  const auto records = random_records(13, 10);
  auto spec = echo_spec(2, false);
  spec.partitioner = [](std::string_view, int) { return 7; };  // >= num_reduces
  const mr::LocalJobRunner optimized(1, false);
  const mr::LocalJobRunner reference(1, true);
  EXPECT_THROW(optimized.run(spec, records, 2), std::out_of_range);
  EXPECT_THROW(reference.run(spec, records, 2), std::out_of_range);
}

TEST(RunnerEdgeCases, ReferenceFlagComesFromConstructor) {
  const mr::LocalJobRunner by_flag(2, true);
  EXPECT_TRUE(by_flag.reference());
  const mr::LocalJobRunner opt(2, false);
  EXPECT_FALSE(opt.reference());
}

// --- thread-count sweep (DESIGN.md §15) --------------------------------------
//
// The parallel data path's determinism contract: for a fixed tuning, the
// JobResult — outputs, profiles, shuffle matrix, AND the sort/merge
// comparison + arena-chunk counters — is byte-identical at every thread
// count, and outputs/profiles always match the reference oracle.

/// Tuning that disables the small-job fast path and forces deep parallel
/// split structures even on tiny inputs (64-entry thresholds), so small
/// shapes exercise the full multi-threaded pipeline too.
mr::RunnerTuning forced_full_tuning() { return {64, 1, 64}; }

void run_thread_sweep(const std::vector<mr::KV>& records, int splits, int reduces, bool combiner,
                      const std::vector<mr::RunnerTuning>& tunings) {
  const auto spec = echo_spec(reduces, combiner);
  const mr::LocalJobRunner reference(4, /*reference=*/true);
  const auto ref = reference.run(spec, records, splits);
  for (std::size_t t = 0; t < tunings.size(); ++t) {
    std::optional<mr::JobResult> first;
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      const mr::LocalJobRunner runner(threads, false, tunings[t]);
      const auto got = runner.run(spec, records, splits);
      expect_results_equal(got, ref);
      if (!first) {
        first = got;
      } else {
        // Counters must not depend on the thread count.
        EXPECT_EQ(got.stats.sort_comparisons, first->stats.sort_comparisons)
            << "tuning " << t << " threads " << threads;
        EXPECT_EQ(got.stats.merge_comparisons, first->stats.merge_comparisons)
            << "tuning " << t << " threads " << threads;
        EXPECT_EQ(got.stats.arena_chunks, first->stats.arena_chunks)
            << "tuning " << t << " threads " << threads;
      }
    }
  }
}

TEST(ThreadCountSweep, TinyJob) {
  run_thread_sweep(random_records(21, 32), 4, 3, /*combiner=*/true,
                   {mr::RunnerTuning{}, forced_full_tuning()});
}

TEST(ThreadCountSweep, SkewedKeys) {
  // Half the records share one hot key; the rest spread over ~50 keys.
  std::uint64_t s = 22;
  std::vector<mr::KV> records;
  records.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    std::string key =
        i % 2 == 0 ? "skew-hot" : "skew-k" + std::to_string(splitmix(s) % 50);
    records.push_back({std::move(key), std::to_string(i)});
  }
  run_thread_sweep(records, 6, 4, /*combiner=*/false,
                   {mr::RunnerTuning{}, forced_full_tuning()});
}

TEST(ThreadCountSweep, SingleHotKey) {
  // One key only: three of four reduce partitions are empty, the merge's
  // range-split boundary candidates all coincide.
  std::vector<mr::KV> records;
  records.reserve(2000);
  for (int i = 0; i < 2000; ++i) records.push_back({"only-key", std::to_string(i)});
  run_thread_sweep(records, 4, 4, /*combiner=*/true,
                   {mr::RunnerTuning{}, forced_full_tuning()});
}

TEST(ThreadCountSweep, MillionRecords) {
  // Big enough (~8 MB) to route past the fast path and trigger the real
  // parallel spill sorts and range-split reduce merges at default tuning.
  std::uint64_t s = 24;
  std::vector<mr::KV> records;
  records.reserve(1000000);
  for (std::size_t i = 0; i < 1000000; ++i) {
    if (i % 16 == 0) {
      records.push_back({"hot", "h"});
    } else {
      std::string key = "k";
      key += std::to_string(splitmix(s) % 65536);
      records.push_back({std::move(key), "v"});
    }
  }
  run_thread_sweep(records, 8, 2, /*combiner=*/false, {mr::RunnerTuning{}});
}

// --- small-job fast path (DESIGN.md §15) -------------------------------------

TEST(SmallJobFastPath, RoutingIsInvisibleInResultsAndCounters) {
  // The fast path calls the same routed sort/merge primitives as the full
  // pipeline, so forcing it off (1-byte threshold) must reproduce the
  // entire JobResult — optimized-only counters included.
  const auto records = random_records(31, 400);
  const auto spec = echo_spec(3, true);
  const mr::LocalJobRunner fast(4, /*reference=*/false);  // default: fast path taken
  const mr::RunnerTuning no_fast_path(mr::RunnerTuning::kDefaultSortParallelThreshold, 1,
                                      mr::RunnerTuning::kDefaultMergeRangeSplitMin);
  const mr::LocalJobRunner full(4, false, no_fast_path);
  const auto a = fast.run(spec, records, 4);
  const auto b = full.run(spec, records, 4);
  expect_results_equal(a, b);
  EXPECT_EQ(a.stats.sort_comparisons, b.stats.sort_comparisons);
  EXPECT_EQ(a.stats.merge_comparisons, b.stats.merge_comparisons);
  EXPECT_EQ(a.stats.arena_chunks, b.stats.arena_chunks);
}

TEST(SmallJobFastPath, TuningIsCarriedByTheRunner) {
  const mr::RunnerTuning t(7, 9, 11);
  const mr::LocalJobRunner runner(2, t);
  EXPECT_EQ(runner.tuning().sort_parallel_threshold, 7);
  EXPECT_EQ(runner.tuning().small_job_fast_path_bytes, 9);
  EXPECT_EQ(runner.tuning().merge_range_split_min, 11);
  EXPECT_FALSE(runner.reference());
}

}  // namespace

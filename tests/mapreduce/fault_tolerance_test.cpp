#include <gtest/gtest.h>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

SimJobSpec job_of(int maps, int reduces) {
  SimJobSpec spec;
  spec.name = "ft";
  spec.output_path = "/out/ft";
  for (int m = 0; m < maps; ++m) {
    spec.maps.push_back({.input_bytes = 16 * sim::kMiB, .cpu_seconds = 4.0,
                         .output_bytes = 8 * sim::kMiB});
  }
  for (int r = 0; r < reduces; ++r) {
    spec.reduces.push_back({.cpu_seconds = 1.0, .output_bytes = 2 * sim::kMiB});
  }
  return spec;
}

TEST(FaultTolerance, JobSurvivesWorkerCrashDuringMapPhase) {
  auto c = SimCluster::make(6, false);
  JobTimeline timeline;
  bool done = false;
  c->runner->submit(job_of(12, 2), [&](const JobTimeline& t) {
    timeline = t;
    done = true;
  });
  // Kill a worker while maps are running.
  c->engine.run_until(c->engine.now() + 8.0);
  const double crash_time = c->engine.now();
  c->cloud->crash_vm(c->workers[0]);
  c->engine.run();
  ASSERT_TRUE(done);
  EXPECT_GT(c->runner->reexecuted_maps(), 0);
  // Every task record is complete, and nothing finished on the dead VM
  // after the crash instant.
  for (const auto& t : timeline.maps) {
    EXPECT_GT(t.finished, 0.0);
    EXPECT_TRUE(t.finished <= crash_time || t.vm != c->workers[0]);
  }
  for (const auto& t : timeline.reduces) EXPECT_GT(t.finished, 0.0);
}

TEST(FaultTolerance, JobSurvivesReducerCrash) {
  auto c = SimCluster::make(5, false);
  JobTimeline timeline;
  bool done = false;
  c->runner->submit(job_of(6, 3), [&](const JobTimeline& t) {
    timeline = t;
    done = true;
  });
  // Let reducers get assigned, then kill one of their hosts.
  c->engine.run_until(c->engine.now() + 10.0);
  virt::VmId victim = 0;
  for (virt::VmId vm : c->workers) {
    if (c->runner->running_tasks(vm) > 0) {
      victim = vm;
      break;
    }
  }
  c->cloud->crash_vm(victim);
  c->engine.run();
  ASSERT_TRUE(done);
  for (const auto& t : timeline.reduces) {
    EXPECT_GT(t.finished, 0.0);
    EXPECT_NE(t.vm, victim);
  }
}

TEST(FaultTolerance, CompletedMapOutputsLostWithNodeAreRedone) {
  auto c = SimCluster::make(4, false);
  // Slow reduces: maps all finish, then a mapper VM dies before the
  // reducer fetched everything? With immediate fetches this is tight;
  // instead verify the accounting path: crash after map completion but the
  // job still completes with consistent output.
  JobTimeline timeline;
  bool done = false;
  c->runner->submit(job_of(8, 1), [&](const JobTimeline& t) {
    timeline = t;
    done = true;
  });
  c->engine.run_until(c->engine.now() + 12.0);
  c->cloud->crash_vm(c->workers[1]);
  c->engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(c->hdfs->exists("/out/ft/part-0") || c->hdfs->exists("/out/ft/part-0-a1"));
}

TEST(FaultTolerance, MapOnlyJobSurvivesCrash) {
  auto c = SimCluster::make(4, false);
  auto spec = job_of(8, 0);
  spec.map_output_to_hdfs = true;
  spec.output_path = "/out/maponly-ft";
  bool done = false;
  c->runner->submit(spec, [&](const JobTimeline&) { done = true; });
  c->engine.run_until(c->engine.now() + 6.0);
  c->cloud->crash_vm(c->workers[2]);
  c->engine.run();
  EXPECT_TRUE(done);
}

TEST(FaultTolerance, SpeculationIdleOnHealthyUniformJob) {
  HadoopConfig hc;
  hc.speculative_execution = true;
  auto c = SimCluster::make(6, false, hc);
  bool done = false;
  c->runner->submit(job_of(12, 1), [&](const JobTimeline&) { done = true; });
  c->engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c->runner->reexecuted_maps(), 0);  // no stragglers, no waste
}

TEST(FaultTolerance, SpeculationRescuesSilentlyHungNode) {
  // hang_vm wedges a guest without notifying anyone — only a speculative
  // duplicate of its stuck task can save the job within the timeout.
  auto run_case = [](bool speculation) {
    HadoopConfig hc;
    hc.speculative_execution = speculation;
    auto c = SimCluster::make(6, false, hc);
    bool done = false;
    c->runner->submit(job_of(12, 1), [&](const JobTimeline&) { done = true; });
    c->engine.run_until(c->engine.now() + 6.0);
    c->cloud->hang_vm(c->workers[1]);
    c->engine.run_until(c->engine.now() + 150.0);  // < task_timeout (240 s)
    return done;
  };
  EXPECT_TRUE(run_case(true));
  EXPECT_FALSE(run_case(false));  // without speculation, only the timeout (240 s) saves it
}

TEST(FaultTolerance, TaskTimeoutEventuallyRescuesWithoutSpeculation) {
  HadoopConfig hc;
  hc.speculative_execution = false;
  auto c = SimCluster::make(6, false, hc);
  bool done = false;
  c->runner->submit(job_of(12, 1), [&](const JobTimeline&) { done = true; });
  c->engine.run_until(c->engine.now() + 6.0);
  c->cloud->hang_vm(c->workers[1]);
  c->engine.run_until(c->engine.now() + 600.0);  // past mapred.task.timeout
  EXPECT_TRUE(done);
}

TEST(FaultTolerance, MultipleCrashesStillComplete) {
  auto c = SimCluster::make(8, false);
  bool done = false;
  c->runner->submit(job_of(16, 2), [&](const JobTimeline&) { done = true; });
  c->engine.run_until(c->engine.now() + 6.0);
  c->cloud->crash_vm(c->workers[0]);
  c->engine.run_until(c->engine.now() + 6.0);
  c->cloud->crash_vm(c->workers[1]);
  c->engine.run();
  EXPECT_TRUE(done);
}

TEST(FaultTolerance, WholeClusterLossFailsJobCleanly) {
  auto c = SimCluster::make(3, false);
  JobTimeline timeline;
  bool done = false;
  c->runner->submit(job_of(6, 1), [&](const JobTimeline& t) {
    timeline = t;
    done = true;
  });
  c->engine.run_until(c->engine.now() + 5.0);
  for (virt::VmId vm : c->workers) c->cloud->crash_vm(vm);
  c->engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(timeline.failed);
  EXPECT_TRUE(c->runner->idle());
}

TEST(FaultTolerance, HdfsReReplicatesAfterDatanodeLoss) {
  auto c = SimCluster::make(6, false);
  bool staged = false;
  c->hdfs->write_file("/data", 256 * sim::kMiB, c->workers[0], [&] { staged = true; });
  c->engine.run();
  ASSERT_TRUE(staged);
  EXPECT_EQ(c->hdfs->under_replicated_blocks(), 0);

  c->cloud->crash_vm(c->workers[0]);  // primary replica holder of everything
  // Re-replication traffic was started by the crash handler; let it finish.
  c->engine.run();
  EXPECT_EQ(c->hdfs->under_replicated_blocks(), 0);
  for (const auto& block : c->hdfs->blocks("/data")) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (virt::VmId r : block.replicas) {
      EXPECT_TRUE(c->cloud->alive(r));
      EXPECT_NE(r, c->workers[0]);
    }
  }
}

TEST(FaultTolerance, ReadsAvoidDeadReplicas) {
  auto c = SimCluster::make(5, false);
  c->hdfs->write_file("/f", 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();
  const auto replicas = c->hdfs->blocks("/f")[0].replicas;
  c->cloud->crash_vm(replicas[0]);
  c->engine.run();
  bool read_ok = false;
  c->hdfs->read_file("/f", c->namenode, [&] { read_ok = true; });
  c->engine.run();
  EXPECT_TRUE(read_ok);
}

TEST(FaultTolerance, AllReplicasDeadMeansDataLoss) {
  auto c = SimCluster::make(3, false);
  hdfs::HdfsConfig one{.replication = 1};
  auto fs = std::make_unique<hdfs::HdfsCluster>(*c->cloud, one, c->namenode, c->workers,
                                                sim::Rng(3));
  fs->write_file("/fragile", sim::kMiB, c->workers[0], nullptr);
  c->engine.run();
  const virt::VmId holder = fs->blocks("/fragile")[0].replicas[0];
  c->cloud->crash_vm(holder);
  c->engine.run();
  // The replica list is empty: the namenode rejects the read outright.
  EXPECT_THROW(fs->read_file("/fragile", c->namenode, nullptr), std::runtime_error);
}

TEST(FaultTolerance, GracefulDecommissionNeverUnderReplicates) {
  auto c = SimCluster::make(6, false);
  c->hdfs->write_file("/data", 256 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();
  bool done = false;
  c->hdfs->decommission_datanode(c->workers[0], [&] { done = true; });
  // Replication copies are real traffic; while they stream, nothing is
  // under-replicated (the leaver still serves reads).
  EXPECT_EQ(c->hdfs->under_replicated_blocks(), 0);
  c->engine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(c->hdfs->datanodes().size(), 5u);
  EXPECT_EQ(c->hdfs->under_replicated_blocks(), 0);
  for (const auto& block : c->hdfs->blocks("/data")) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (virt::VmId r : block.replicas) EXPECT_NE(r, c->workers[0]);
  }
  EXPECT_THROW(c->hdfs->decommission_datanode(c->workers[0], nullptr), std::invalid_argument);
}

TEST(FaultTolerance, WritesAvoidDeadDatanodes) {
  auto c = SimCluster::make(5, false);
  c->cloud->crash_vm(c->workers[4]);
  c->engine.run();
  bool done = false;
  c->hdfs->write_file("/post-crash", 64 * sim::kMiB, c->workers[0], [&] { done = true; });
  c->engine.run();
  ASSERT_TRUE(done);
  for (virt::VmId r : c->hdfs->blocks("/post-crash")[0].replicas) {
    EXPECT_NE(r, c->workers[4]);
  }
}

}  // namespace
}  // namespace vhadoop::mapreduce

#include <gtest/gtest.h>

#include "mapreduce/scheduler.hpp"

namespace vhadoop::mapreduce {
namespace {

JobSchedView view(std::uint64_t id, int running, std::size_t pending,
                  const std::string& queue = "default", const std::string& user = "user") {
  JobSchedView v;
  v.id = id;
  v.submit_index = id;
  v.queue = queue;
  v.user = user;
  v.running = running;
  v.pending = pending;
  return v;
}

// --- FIFO ----------------------------------------------------------------------

TEST(FifoSchedulerTest, ServesHeadOfLineOnly) {
  FifoScheduler s;
  std::vector<JobSchedView> views = {view(1, 0, 3), view(2, 0, 5)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 0u);
}

TEST(FifoSchedulerTest, BlocksWhenHeadHasNoSchedulableWork) {
  // Strict 0.20 FIFO: a later job gets nothing while the head job exists,
  // even if the head has no pending tasks of this kind right now.
  FifoScheduler s;
  std::vector<JobSchedView> views = {view(1, 4, 0), view(2, 0, 5)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), Scheduler::kNone);
  EXPECT_TRUE(s.pick({}, SlotKind::Map, 8) == Scheduler::kNone);
}

TEST(FifoSchedulerTest, DoesNotWantLocalityViews) {
  EXPECT_FALSE(FifoScheduler{}.wants_locality());
  EXPECT_TRUE(FairScheduler{6.0}.wants_locality());
}

// --- Fair ----------------------------------------------------------------------

TEST(FairSchedulerTest, TopsUpMostDeficitJob) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 5, 3), view(2, 1, 3), view(3, 2, 3)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 1u);
}

TEST(FairSchedulerTest, BreaksTiesBySubmissionOrder) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 2, 3), view(2, 2, 3)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 0u);
}

TEST(FairSchedulerTest, SkipsJobsWithNothingPending) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 0, 0), view(2, 3, 2)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 1u);
  views[1].pending = 0;
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), Scheduler::kNone);
}

TEST(FairSchedulerTest, DelaySchedulingHoldsNonLocalJob) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 0, 3)};
  views[0].local_available = false;
  views[0].locality_wait = 2.0;  // still inside the delay window
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), Scheduler::kNone);
  views[0].locality_wait = 6.0;  // waited long enough: take the remote slot
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 0u);
}

TEST(FairSchedulerTest, DelayedJobIsPassedOverForLocalOne) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 0, 3), view(2, 1, 3)};
  views[0].local_available = false;
  views[0].locality_wait = 0.0;
  EXPECT_EQ(s.pick(views, SlotKind::Map, 8), 1u);  // job 2 has a local block
}

TEST(FairSchedulerTest, ReduceSlotsIgnoreLocality) {
  FairScheduler s(6.0);
  std::vector<JobSchedView> views = {view(1, 0, 2)};
  views[0].local_available = false;  // meaningless for reduces
  EXPECT_EQ(s.pick(views, SlotKind::Reduce, 8), 0u);
}

// --- Capacity ------------------------------------------------------------------

std::vector<QueueConfig> two_queues() {
  return {{"prod", 0.7, 1.0, 1.0}, {"adhoc", 0.3, 0.5, 1.0}};
}

TEST(CapacitySchedulerTest, RefillsMostUnderservedQueue) {
  CapacityScheduler s(two_queues());
  // prod runs 7/0.7=10 normalized, adhoc 1/0.3≈3.3 — adhoc is owed slots.
  std::vector<JobSchedView> views = {view(1, 7, 3, "prod"), view(2, 1, 3, "adhoc")};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 20), 1u);
}

TEST(CapacitySchedulerTest, FifoWithinQueue) {
  CapacityScheduler s(two_queues());
  std::vector<JobSchedView> views = {view(1, 0, 3, "prod"), view(2, 0, 3, "prod")};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 20), 0u);
}

TEST(CapacitySchedulerTest, EnforcesMaxCapacityCeiling) {
  CapacityScheduler s(two_queues());
  // adhoc ceiling = 0.5 * 20 = 10 slots; at 10 running it may not borrow
  // more even though prod is idle.
  std::vector<JobSchedView> views = {view(1, 10, 5, "adhoc")};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 20), Scheduler::kNone);
  views[0].running = 9;
  EXPECT_EQ(s.pick(views, SlotKind::Map, 20), 0u);
}

TEST(CapacitySchedulerTest, PerUserLimitWithinQueue) {
  std::vector<QueueConfig> queues = {{"q", 1.0, 1.0, 0.5}};
  CapacityScheduler s(queues);
  // alice already holds the full user cap (0.5 * 1.0 * 10 = 5 slots); bob's
  // job is next even though alice's was submitted first.
  std::vector<JobSchedView> views = {view(1, 5, 3, "q", "alice"), view(2, 0, 3, "q", "bob")};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 10), 1u);
}

TEST(CapacitySchedulerTest, UnknownQueueFallsIntoFirst) {
  CapacityScheduler s(two_queues());
  EXPECT_EQ(s.queue_index("prod"), 0u);
  EXPECT_EQ(s.queue_index("adhoc"), 1u);
  EXPECT_EQ(s.queue_index("nope"), 0u);
  std::vector<JobSchedView> views = {view(1, 0, 2, "nope")};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 10), 0u);
}

TEST(CapacitySchedulerTest, EmptyQueueListGetsDefaultQueue) {
  CapacityScheduler s({});
  ASSERT_EQ(s.queues().size(), 1u);
  EXPECT_EQ(s.queues()[0].name, "default");
  std::vector<JobSchedView> views = {view(1, 0, 1)};
  EXPECT_EQ(s.pick(views, SlotKind::Map, 10), 0u);
}

// --- factory + parsing ---------------------------------------------------------

TEST(SchedulerFactoryTest, BuildsConfiguredPolicy) {
  HadoopConfig hc;
  EXPECT_STREQ(make_scheduler(hc)->name(), "fifo");
  hc.scheduler = SchedulerPolicy::Fair;
  EXPECT_STREQ(make_scheduler(hc)->name(), "fair");
  hc.scheduler = SchedulerPolicy::Capacity;
  EXPECT_STREQ(make_scheduler(hc)->name(), "capacity");
}

TEST(SchedulerFactoryTest, PolicyStringRoundTrip) {
  for (auto p : {SchedulerPolicy::Fifo, SchedulerPolicy::Fair, SchedulerPolicy::Capacity}) {
    const auto parsed = scheduler_policy_from_string(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(scheduler_policy_from_string("FIFO").has_value());
  EXPECT_FALSE(scheduler_policy_from_string("").has_value());
  EXPECT_FALSE(scheduler_policy_from_string("roundrobin").has_value());
}

}  // namespace
}  // namespace vhadoop::mapreduce

#include "mapreduce/local_runner.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "mapreduce/kv.hpp"

namespace vhadoop::mapreduce {
namespace {

/// Tokenizing word-count mapper (the canonical example).
class WcMapper : public Mapper {
 public:
  void map(std::string_view, std::string_view value, Context& ctx) override {
    std::size_t i = 0;
    while (i < value.size()) {
      while (i < value.size() && value[i] == ' ') ++i;
      std::size_t j = i;
      while (j < value.size() && value[j] != ' ') ++j;
      if (j > i) ctx.emit(std::string(value.substr(i, j - i)), encode_i64(1));
      i = j;
    }
  }
};

class SumReducer : public Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              Context& ctx) override {
    std::int64_t sum = 0;
    for (auto v : values) sum += decode_i64(v);
    ctx.emit(std::string(key), encode_i64(sum));
  }
};

JobSpec wordcount_spec(int reduces, bool combiner) {
  JobSpec spec;
  spec.config.name = "wordcount";
  spec.config.num_reduces = reduces;
  spec.config.use_combiner = combiner;
  spec.mapper = [] { return std::make_unique<WcMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  spec.combiner = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::vector<KV> lines(std::initializer_list<std::string> ls) {
  std::vector<KV> input;
  int i = 0;
  for (const auto& l : ls) input.push_back({std::to_string(i++), l});
  return input;
}

std::map<std::string, std::int64_t> counts_of(const JobResult& r) {
  std::map<std::string, std::int64_t> m;
  for (const KV& kv : r.output) m[kv.key] = decode_i64(kv.value);
  return m;
}

TEST(LocalRunner, WordcountBasic) {
  LocalJobRunner runner(4);
  auto input = lines({"the cat sat", "the cat", "the"});
  auto result = runner.run(wordcount_spec(1, false), input, 2);
  auto counts = counts_of(result);
  EXPECT_EQ(counts["the"], 3);
  EXPECT_EQ(counts["cat"], 2);
  EXPECT_EQ(counts["sat"], 1);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(LocalRunner, OutputSortedWithinPartition) {
  LocalJobRunner runner(2);
  auto input = lines({"zebra yak ant bee cow", "ant zebra"});
  auto result = runner.run(wordcount_spec(1, false), input, 1);
  for (std::size_t i = 1; i < result.output.size(); ++i) {
    EXPECT_LE(result.output[i - 1].key, result.output[i].key);
  }
}

TEST(LocalRunner, SameAnswerRegardlessOfSplitsReducesThreads) {
  auto input = lines({"a b c d e f g", "a b c", "a a a b", "g g g g g"});
  std::map<std::string, std::int64_t> reference;
  {
    LocalJobRunner runner(1);
    reference = counts_of(runner.run(wordcount_spec(1, false), input, 1));
  }
  for (int splits : {1, 2, 3, 4}) {
    for (int reduces : {1, 2, 5}) {
      for (unsigned threads : {1u, 4u}) {
        LocalJobRunner runner(threads);
        auto result = runner.run(wordcount_spec(reduces, false), input, splits);
        EXPECT_EQ(counts_of(result), reference)
            << "splits=" << splits << " reduces=" << reduces << " threads=" << threads;
      }
    }
  }
}

TEST(LocalRunner, CombinerPreservesResultButShrinksShuffle) {
  std::vector<KV> input;
  for (int i = 0; i < 200; ++i) input.push_back({std::to_string(i), "same same same word"});
  LocalJobRunner runner(4);
  auto plain = runner.run(wordcount_spec(2, false), input, 4);
  auto combined = runner.run(wordcount_spec(2, true), input, 4);
  EXPECT_EQ(counts_of(plain), counts_of(combined));
  EXPECT_LT(combined.total_shuffle_bytes, plain.total_shuffle_bytes * 0.1);
}

TEST(LocalRunner, ShuffleMatrixAccountsAllMapOutput) {
  auto input = lines({"x y z w v u t s", "x x y"});
  LocalJobRunner runner(2);
  auto result = runner.run(wordcount_spec(3, false), input, 2);
  double matrix_sum = 0.0;
  for (const auto& row : result.shuffle_matrix) {
    for (double b : row) matrix_sum += b;
  }
  double map_out = 0.0;
  for (const auto& p : result.map_profiles) map_out += p.output_bytes;
  EXPECT_DOUBLE_EQ(matrix_sum, map_out);
  EXPECT_DOUBLE_EQ(result.total_shuffle_bytes, matrix_sum);
}

TEST(LocalRunner, ProfilesCountRecordsAndBytes) {
  auto input = lines({"a b", "c d"});
  LocalJobRunner runner(1);
  auto result = runner.run(wordcount_spec(1, false), input, 2);
  ASSERT_EQ(result.map_profiles.size(), 2u);
  EXPECT_EQ(result.map_profiles[0].input_records, 1);
  EXPECT_EQ(result.map_profiles[0].output_records, 2);
  EXPECT_GT(result.map_profiles[0].cpu_seconds, 0.0);
  ASSERT_EQ(result.reduce_profiles.size(), 1u);
  EXPECT_EQ(result.reduce_profiles[0].input_records, 4);
  EXPECT_EQ(result.reduce_profiles[0].output_records, 4);
}

TEST(LocalRunner, PartitioningIsStable) {
  // The same key must land in the same partition in every run and task.
  EXPECT_EQ(default_partition("alpha", 7), default_partition("alpha", 7));
  int p = default_partition("alpha", 7);
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 7);
}

TEST(LocalRunner, EmptyInputYieldsEmptyOutput) {
  LocalJobRunner runner(2);
  std::vector<KV> empty;
  auto result = runner.run(wordcount_spec(2, false), empty, 3);
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.map_profiles.size(), 1u);  // clamped to one split
}

TEST(LocalRunner, MissingFactoriesThrow) {
  LocalJobRunner runner(1);
  std::vector<KV> input = lines({"a"});
  JobSpec spec;
  EXPECT_THROW(runner.run(spec, input, 1), std::invalid_argument);
  spec = wordcount_spec(1, true);
  spec.combiner = nullptr;
  EXPECT_THROW(runner.run(spec, input, 1), std::invalid_argument);
  spec = wordcount_spec(0, false);
  EXPECT_THROW(runner.run(spec, input, 1), std::invalid_argument);
}

TEST(LocalRunner, MapperStateIsPerTask) {
  // A mapper that emits its record count in cleanup: with 3 splits we get
  // 3 cleanup records, proving instances are not shared across tasks.
  class CountingMapper : public Mapper {
   public:
    void map(std::string_view, std::string_view, Context&) override { ++n_; }
    void cleanup(Context& ctx) override { ctx.emit("count", encode_i64(n_)); }

   private:
    std::int64_t n_ = 0;
  };
  JobSpec spec;
  spec.config.num_reduces = 1;
  spec.mapper = [] { return std::make_unique<CountingMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  LocalJobRunner runner(3);
  auto input = lines({"a", "b", "c", "d", "e", "f"});
  auto result = runner.run(spec, input, 3);
  ASSERT_EQ(result.output.size(), 1u);
  EXPECT_EQ(decode_i64(result.output[0].value), 6);
  EXPECT_EQ(result.map_profiles.size(), 3u);
}

TEST(Codecs, RoundTrip) {
  EXPECT_DOUBLE_EQ(decode_f64(encode_f64(3.25)), 3.25);
  EXPECT_EQ(decode_i64(encode_i64(-123456789)), -123456789);
  std::vector<double> v{1.5, -2.25, 1e300, 0.0};
  EXPECT_EQ(decode_vec(encode_vec(v)), v);
  EXPECT_TRUE(decode_vec(encode_vec({})).empty());
}

TEST(Codecs, StableHashKnownValues) {
  // FNV-1a 32-bit reference values — platform independence check.
  EXPECT_EQ(stable_hash(""), 2166136261u);
  EXPECT_EQ(stable_hash("a"), 0xe40c292cu);
}

// Property sweep: wordcount totals conserved across configurations.
class LocalRunnerSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LocalRunnerSweep, TotalWordInstancesConserved) {
  const auto [splits, reduces, threads] = GetParam();
  std::vector<KV> input;
  std::int64_t total_words = 0;
  for (int i = 0; i < 50; ++i) {
    std::ostringstream line;
    for (int w = 0; w <= i % 7; ++w) {
      line << "w" << (i * w) % 13 << ' ';
      ++total_words;
    }
    input.push_back({std::to_string(i), line.str()});
  }
  LocalJobRunner runner(static_cast<unsigned>(threads));
  auto result = runner.run(wordcount_spec(reduces, (splits + reduces) % 2 == 0), input, splits);
  std::int64_t sum = 0;
  for (const KV& kv : result.output) sum += decode_i64(kv.value);
  EXPECT_EQ(sum, total_words);
}

INSTANTIATE_TEST_SUITE_P(Configs, LocalRunnerSweep,
                         ::testing::Combine(::testing::Values(1, 2, 7, 16),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace vhadoop::mapreduce

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

// Fault matrix: every scheduler policy crossed with two workload shapes,
// each losing a datanode mid-job. The JobTracker must re-execute the lost
// work on the survivors and finish every job without marking any failed.

enum class Shape { Wordcount, Terasort };

struct MatrixParam {
  SchedulerPolicy policy;
  Shape shape;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  return std::string(to_string(info.param.policy)) +
         (info.param.shape == Shape::Wordcount ? "_wordcount" : "_terasort");
}

// Wordcount shape: CPU-heavy maps over HDFS blocks, tiny combiner-shrunk
// shuffle. TeraSort shape: I/O-heavy, shuffle as large as the input, more
// reduces with replication-1 output.
SimJobSpec shaped_job(Shape shape, const hdfs::HdfsCluster& hdfs, const std::string& path) {
  SimJobSpec spec;
  const auto& blocks = hdfs.blocks(path);
  if (shape == Shape::Wordcount) {
    spec.name = "wordcount";
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      spec.maps.push_back({.input_path = path, .block_index = static_cast<int>(b),
                           .cpu_seconds = 6.0, .output_bytes = 2 * sim::kMiB});
    }
    spec.reduces.assign(2, {.cpu_seconds = 1.0, .output_bytes = sim::kMiB});
    spec.output_path = "/out/wordcount";
  } else {
    spec.name = "terasort";
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      spec.maps.push_back({.input_path = path, .block_index = static_cast<int>(b),
                           .cpu_seconds = 0.8, .output_bytes = 64 * sim::kMiB});
    }
    spec.reduces.assign(4, {.cpu_seconds = 1.5, .output_bytes = 96 * sim::kMiB});
    spec.output_path = "/out/terasort";
  }
  return spec;
}

class FaultMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(FaultMatrix, DatanodeLossMidJobStillCompletesEverything) {
  const MatrixParam p = GetParam();
  HadoopConfig hc;
  hc.scheduler = p.policy;
  if (p.policy == SchedulerPolicy::Capacity) {
    hc.queues = {{"prod", 0.6, 1.0, 1.0}, {"adhoc", 0.4, 1.0, 1.0}};
  }
  auto c = SimCluster::make(6, false, hc, {}, 7);
  c->hdfs->write_file("/in/matrix", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  int jobs_done = 0, jobs_failed = 0;
  auto record = [&](const JobTimeline& t) {
    ++jobs_done;
    jobs_failed += t.failed ? 1 : 0;
  };

  SimJobSpec main_job = shaped_job(p.shape, *c->hdfs, "/in/matrix");
  main_job.queue = "prod";
  c->runner->submit(main_job, record);
  // A concurrent background job keeps the non-FIFO policies honest: the
  // recovery must interleave correctly with another tenant's tasks.
  SimJobSpec side;
  side.name = "side";
  side.queue = "adhoc";
  side.output_path = "/out/side";
  for (int m = 0; m < 4; ++m) {
    side.maps.push_back({.input_bytes = 4 * sim::kMiB, .cpu_seconds = 0.6,
                         .output_bytes = 2 * sim::kMiB});
  }
  side.reduces.assign(1, {.cpu_seconds = 0.4, .output_bytes = sim::kMiB});
  c->runner->submit(side, record);

  // Kill a datanode that holds replicas and is running tasks mid-flight.
  c->engine.run_until(c->engine.now() + 8.0);
  c->cloud->crash_vm(c->workers[2]);
  c->engine.run();

  EXPECT_EQ(jobs_done, 2);
  EXPECT_EQ(jobs_failed, 0);
  EXPECT_TRUE(c->runner->idle());
  const obs::Counter* failed = c->engine.metrics().find_counter("mr.jobs_failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->value(), 0);
  const obs::Counter* completed = c->engine.metrics().find_counter("mr.jobs_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), 2);
  // The lost node's tasks were re-executed somewhere else.
  const obs::Counter* reexec = c->engine.metrics().find_counter("mr.reexecutions");
  ASSERT_NE(reexec, nullptr);
  EXPECT_GT(reexec->value(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByWorkload, FaultMatrix,
    ::testing::Values(MatrixParam{SchedulerPolicy::Fifo, Shape::Wordcount},
                      MatrixParam{SchedulerPolicy::Fifo, Shape::Terasort},
                      MatrixParam{SchedulerPolicy::Fair, Shape::Wordcount},
                      MatrixParam{SchedulerPolicy::Fair, Shape::Terasort},
                      MatrixParam{SchedulerPolicy::Capacity, Shape::Wordcount},
                      MatrixParam{SchedulerPolicy::Capacity, Shape::Terasort}),
    param_name);

}  // namespace
}  // namespace vhadoop::mapreduce

#include <gtest/gtest.h>

#include <string>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

net::TopologyConfig grid(net::TopologyKind kind, int racks, int nodes_per_rack) {
  net::TopologyConfig topo;
  topo.kind = kind;
  topo.racks = racks;
  topo.nodes_per_rack = nodes_per_rack;
  return topo;
}

double counter(const sim::Engine& engine, const char* name) {
  const obs::Counter* c = engine.metrics().find_counter(name);
  return c == nullptr ? 0.0 : c->value();
}

SimJobSpec hdfs_job(const SimCluster& c, const std::string& path) {
  SimJobSpec spec;
  spec.name = "rackjob";
  spec.queue = "prod";
  spec.output_path = "/out/rackjob";
  const auto& blocks = c.hdfs->blocks(path);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    spec.maps.push_back({.input_path = path, .block_index = static_cast<int>(b),
                         .cpu_seconds = 1.0, .output_bytes = 8 * sim::kMiB});
  }
  spec.reduces.assign(2, {.cpu_seconds = 0.5, .output_bytes = 2 * sim::kMiB});
  return spec;
}

class LocalityCounters : public ::testing::TestWithParam<SchedulerPolicy> {};

// Every HDFS-backed map lands in exactly one locality tier, and the three
// mr.locality.* counters partition the map count — under every scheduler
// policy, on a 4-rack fat-tree.
TEST_P(LocalityCounters, TiersPartitionTheHdfsBackedMaps) {
  HadoopConfig hc;
  hc.scheduler = GetParam();
  if (GetParam() == SchedulerPolicy::Capacity) {
    hc.queues = {{"prod", 0.7, 1.0, 1.0}, {"adhoc", 0.3, 0.8, 1.0}};
  }
  auto c = SimCluster::make_racked(8, grid(net::TopologyKind::FatTree, 4, 2), hc);
  c->hdfs->write_file("/in/rack", 8 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  int done = 0;
  JobTimeline tl;
  c->runner->submit(hdfs_job(*c, "/in/rack"), [&](const JobTimeline& t) {
    tl = t;
    ++done;
  });
  c->engine.run();
  ASSERT_EQ(done, 1);

  const double node = counter(c->engine, "mr.locality.node");
  const double rack = counter(c->engine, "mr.locality.rack");
  const double off = counter(c->engine, "mr.locality.off");
  EXPECT_EQ(node + rack + off, static_cast<double>(c->hdfs->blocks("/in/rack").size()));
  // Node-tier counter and the timeline's historical data-local count agree.
  EXPECT_EQ(node, static_cast<double>(tl.data_local_maps()));
  EXPECT_GT(node, 0.0);
}

// On a single-rack cluster the off-rack tier is unreachable: everything is
// at worst rack-local, and rack == remote reads of the flat counters.
TEST_P(LocalityCounters, SingleRackNeverCountsOffRack) {
  HadoopConfig hc;
  hc.scheduler = GetParam();
  if (GetParam() == SchedulerPolicy::Capacity) {
    hc.queues = {{"prod", 0.7, 1.0, 1.0}, {"adhoc", 0.3, 0.8, 1.0}};
  }
  auto c = SimCluster::make(6, true, hc);
  c->hdfs->write_file("/in/flat", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  int done = 0;
  c->runner->submit(hdfs_job(*c, "/in/flat"), [&](const JobTimeline&) { ++done; });
  c->engine.run();
  ASSERT_EQ(done, 1);

  EXPECT_EQ(counter(c->engine, "mr.locality.off"), 0.0);
  EXPECT_EQ(counter(c->engine, "mr.locality.node") + counter(c->engine, "mr.locality.rack"),
            static_cast<double>(c->hdfs->blocks("/in/flat").size()));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LocalityCounters,
                         ::testing::Values(SchedulerPolicy::Fifo, SchedulerPolicy::Fair,
                                           SchedulerPolicy::Capacity,
                                           SchedulerPolicy::Deadline),
                         [](const ::testing::TestParamInfo<SchedulerPolicy>& p) {
                           return std::string(to_string(p.param));
                         });

// --- cross-topology determinism replay -------------------------------------

struct RunArtifacts {
  std::string metrics_json;
  std::string trace_json;
  double finished_at = 0.0;
  int jobs_done = 0;
};

// The determinism contract (DESIGN.md §9) must hold on every fabric: an
// HDFS-input job plus a local-input job with a mid-run crash, on a 3×2
// rack grid, traced end to end.
RunArtifacts run_racked_workload(net::TopologyKind kind, std::uint64_t seed) {
  HadoopConfig hc;
  hc.scheduler = SchedulerPolicy::Fair;
  auto c = SimCluster::make_racked(6, grid(kind, 3, 2), hc, {}, seed);
  c->engine.tracer().set_enabled(true);

  c->hdfs->write_file("/in/data", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  RunArtifacts out;
  c->runner->submit(hdfs_job(*c, "/in/data"), [&](const JobTimeline&) { ++out.jobs_done; });
  SimJobSpec small;
  small.name = "small";
  small.output_path = "/out/small";
  for (int m = 0; m < 4; ++m) {
    small.maps.push_back({.input_bytes = 4 * sim::kMiB, .cpu_seconds = 0.5,
                          .output_bytes = 2 * sim::kMiB});
  }
  small.reduces.assign(1, {.cpu_seconds = 0.2, .output_bytes = sim::kMiB});
  c->runner->submit(small, [&](const JobTimeline&) { ++out.jobs_done; });

  c->engine.run_until(c->engine.now() + 6.0);
  c->cloud->crash_vm(c->workers[1]);
  c->engine.run();

  out.finished_at = c->engine.now();
  out.metrics_json = c->engine.metrics().to_json();
  out.trace_json = c->engine.tracer().to_chrome_json();
  return out;
}

class TopologyReplay : public ::testing::TestWithParam<net::TopologyKind> {};

TEST_P(TopologyReplay, SameSeedTwiceIsByteIdenticalOnEveryFabric) {
  const RunArtifacts a = run_racked_workload(GetParam(), 19);
  const RunArtifacts b = run_racked_workload(GetParam(), 19);
  ASSERT_EQ(a.jobs_done, 2);
  ASSERT_EQ(b.jobs_done, 2);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_FALSE(a.metrics_json.empty());
  EXPECT_FALSE(a.trace_json.empty());
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyReplay,
                         ::testing::Values(net::TopologyKind::SingleSwitch,
                                           net::TopologyKind::FatTree,
                                           net::TopologyKind::Rotor),
                         [](const ::testing::TestParamInfo<net::TopologyKind>& p) {
                           std::string name = net::to_string(p.param);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace vhadoop::mapreduce

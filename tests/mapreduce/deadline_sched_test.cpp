// Deadline scheduler unit tests: EDF ordering within priority tiers, the
// anti-starvation window, locality-delay behaviour on map picks — plus the
// submit-time validation of SimJobSpec::deadline_seconds/priority and a
// golden lock that the FIFO policy ignores both fields entirely.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "mapreduce/scheduler.hpp"
#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

JobSchedView view(std::size_t submit_index, int priority, double deadline,
                  std::size_t pending = 1) {
  JobSchedView v;
  v.id = submit_index + 1;
  v.submit_index = submit_index;
  v.priority = priority;
  v.deadline = deadline;
  v.pending = pending;
  return v;
}

constexpr double kWindow = 300.0;

DeadlineScheduler sched() { return DeadlineScheduler(6.0, kWindow); }

TEST(DeadlineScheduler, EarliestDeadlineFirstWithinATier) {
  std::vector<JobSchedView> views = {view(0, 5, 500.0), view(1, 5, 100.0),
                                     view(2, 5, 300.0)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
  EXPECT_EQ(sched().pick(views, SlotKind::Map, 8), 1u);
}

TEST(DeadlineScheduler, NoDeadlineSortsLastWithinATier) {
  std::vector<JobSchedView> views = {view(0, 5, sim::kNever), view(1, 5, 900.0)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
}

TEST(DeadlineScheduler, HigherPriorityTierBeatsEarlierDeadline) {
  // The low-tier job's deadline is much sooner, but tiers are absolute.
  std::vector<JobSchedView> views = {view(0, 1, 10.0), view(1, 8, 5000.0)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
}

TEST(DeadlineScheduler, SubmitOrderBreaksExactTies) {
  std::vector<JobSchedView> views = {view(0, 3, 100.0), view(1, 3, 100.0)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 0u);
}

TEST(DeadlineScheduler, SkipsJobsWithNoPendingWork) {
  std::vector<JobSchedView> views = {view(0, 9, 10.0, /*pending=*/0), view(1, 0, sim::kNever)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
  views[1].pending = 0;
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), Scheduler::kNone);
  EXPECT_EQ(sched().pick({}, SlotKind::Map, 8), Scheduler::kNone);
}

TEST(DeadlineScheduler, StarvedJobPreemptsTheWholeOrder) {
  // An old never-started batch job past the window outranks urgent traffic.
  JobSchedView batch = view(0, 0, sim::kNever);
  batch.age = kWindow + 1.0;
  batch.started = false;
  std::vector<JobSchedView> views = {batch, view(1, 9, 5.0)};
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 0u);

  // Once it has started, the boost is gone and EDF/priority rule again.
  views[0].started = true;
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);

  // Under the window it waits its turn too.
  views[0].started = false;
  views[0].age = kWindow - 1.0;
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
}

TEST(DeadlineScheduler, OldestStarvedJobServedFirst) {
  JobSchedView a = view(3, 2, sim::kNever);
  a.age = kWindow + 5.0;
  JobSchedView b = view(1, 7, 50.0);  // higher tier, but also starved
  b.age = kWindow + 50.0;
  std::vector<JobSchedView> views = {a, b, view(5, 9, 1.0)};
  // Both starved jobs outrank the urgent one; the older submit index wins.
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 1u);
}

TEST(DeadlineScheduler, MapPicksHonourLocalityDelay) {
  JobSchedView urgent = view(0, 9, 10.0);
  urgent.local_available = false;
  urgent.locality_wait = 2.0;  // still inside the 6 s delay window
  JobSchedView lax = view(1, 1, 5000.0);
  lax.local_available = true;
  std::vector<JobSchedView> views = {urgent, lax};

  // Reduce slots ignore locality: the urgent job wins outright.
  EXPECT_EQ(sched().pick(views, SlotKind::Reduce, 8), 0u);
  // Map slot: the urgent job is deferred for a local chance; next in rank.
  EXPECT_EQ(sched().pick(views, SlotKind::Map, 8), 1u);
  // Once it has waited out the delay it takes the non-local slot.
  views[0].locality_wait = 6.0;
  EXPECT_EQ(sched().pick(views, SlotKind::Map, 8), 0u);
  // Nobody local, nobody past the delay: leave the slot free.
  views[0].locality_wait = 0.0;
  views[1].local_available = false;
  EXPECT_EQ(sched().pick(views, SlotKind::Map, 8), Scheduler::kNone);
}

TEST(DeadlineScheduler, FactoryAndNamesRoundTrip) {
  HadoopConfig hc;
  hc.scheduler = SchedulerPolicy::Deadline;
  auto s = make_scheduler(hc);
  EXPECT_STREQ(s->name(), "deadline");
  EXPECT_TRUE(s->wants_locality());
  EXPECT_STREQ(to_string(SchedulerPolicy::Deadline), "deadline");
  EXPECT_EQ(scheduler_policy_from_string("deadline"), SchedulerPolicy::Deadline);
}

// --- submit-time validation ---------------------------------------------------

SimJobSpec tiny_spec() {
  SimJobSpec spec;
  spec.name = "tiny";
  spec.output_path = "/out/tiny";
  spec.maps.push_back({.input_bytes = sim::kMiB, .cpu_seconds = 0.1,
                       .output_bytes = sim::kMiB / 2});
  spec.reduces.push_back({.cpu_seconds = 0.1, .output_bytes = sim::kMiB / 4});
  return spec;
}

TEST(DeadlineValidation, NegativeDeadlineRejectedAtSubmit) {
  auto c = SimCluster::make(2, false);
  SimJobSpec spec = tiny_spec();
  spec.deadline_seconds = -30.0;
  EXPECT_THROW(c->runner->submit(spec, [](const JobTimeline&) {}), std::invalid_argument);
}

TEST(DeadlineValidation, NonFiniteDeadlineRejectedAtSubmit) {
  auto c = SimCluster::make(2, false);
  SimJobSpec spec = tiny_spec();
  spec.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(c->runner->submit(spec, [](const JobTimeline&) {}), std::invalid_argument);
  spec.deadline_seconds = std::numeric_limits<double>::infinity();
  EXPECT_THROW(c->runner->submit(spec, [](const JobTimeline&) {}), std::invalid_argument);
}

TEST(DeadlineValidation, PriorityOutsideTierRangeRejectedAtSubmit) {
  auto c = SimCluster::make(2, false);
  SimJobSpec spec = tiny_spec();
  spec.priority = 10;
  EXPECT_THROW(c->runner->submit(spec, [](const JobTimeline&) {}), std::invalid_argument);
  spec.priority = -1;
  EXPECT_THROW(c->runner->submit(spec, [](const JobTimeline&) {}), std::invalid_argument);
}

TEST(DeadlineValidation, ZeroDeadlineMeansNoneAndRunsFine) {
  auto c = SimCluster::make(2, false);
  SimJobSpec spec = tiny_spec();
  spec.deadline_seconds = 0.0;  // documented "no deadline" default
  JobTimeline t;
  c->runner->submit(spec, [&](const JobTimeline& tl) { t = tl; });
  c->engine.run();
  EXPECT_FALSE(t.failed);
  EXPECT_GT(t.finished, 0.0);
}

// --- end-to-end behaviour ------------------------------------------------------

// A no-deadline batch job submitted behind a steady stream of urgent
// deadline jobs still completes: the starvation window guarantees it.
TEST(DeadlineScheduler, BatchJobIsNotStarvedByUrgentStream) {
  HadoopConfig hc;
  hc.scheduler = SchedulerPolicy::Deadline;
  hc.deadline_starvation_window_seconds = 60.0;
  auto c = SimCluster::make(2, false, hc);

  SimJobSpec batch = tiny_spec();
  batch.name = "batch";
  batch.output_path = "/out/batch";
  batch.maps.clear();
  for (int m = 0; m < 4; ++m) {
    batch.maps.push_back({.input_bytes = 4 * sim::kMiB, .cpu_seconds = 2.0,
                          .output_bytes = sim::kMiB});
  }
  JobTimeline batch_done;
  c->runner->submit(batch, [&](const JobTimeline& t) { batch_done = t; });

  // Urgent arrivals every 2 s for 5 simulated minutes, each carrying a
  // deadline and a top-tier priority.
  int urgent_done = 0;
  for (int k = 0; k < 150; ++k) {
    c->engine.schedule_in(2.0 * k, [&, k] {
      SimJobSpec urgent = tiny_spec();
      urgent.name = "urgent-" + std::to_string(k);
      urgent.output_path = "/out/urgent-" + std::to_string(k);
      urgent.priority = 9;
      urgent.deadline_seconds = 30.0;
      c->runner->submit(std::move(urgent), [&](const JobTimeline&) { ++urgent_done; });
    });
  }
  c->engine.run();
  EXPECT_EQ(urgent_done, 150);
  EXPECT_FALSE(batch_done.failed);
  EXPECT_GT(batch_done.finished, 0.0);
  // The starvation window (60 s) must have granted it a slot well before the
  // urgent stream dried up at t = 300 s.
  EXPECT_LT(batch_done.first_task_at, 150.0)
      << "batch job starved behind the urgent stream";
}

// Golden lock: FIFO timing is bit-identical to the seed runner even when the
// spec carries (ignored) deadline/priority values — adding the fields must
// not perturb a single FIFO timestamp.
TEST(FifoGoldenLock, DeadlineFieldsDoNotPerturbFifoTiming) {
  auto c = SimCluster::make(4, false);
  SimJobSpec spec;
  spec.name = "golden-a";
  spec.output_path = "/out/golden-a";
  spec.priority = 7;           // ignored by FIFO
  spec.deadline_seconds = 3.0; // tracked for SLO metrics, never scheduling
  for (int m = 0; m < 4; ++m) {
    spec.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = 0.5,
                         .output_bytes = 4 * sim::kMiB});
  }
  for (int r = 0; r < 2; ++r) {
    spec.reduces.push_back({.cpu_seconds = 0.3, .output_bytes = 4 * sim::kMiB});
  }
  JobTimeline t;
  c->runner->submit(spec, [&](const JobTimeline& tl) { t = tl; });
  c->engine.run();
  EXPECT_DOUBLE_EQ(t.elapsed(), 4.4445490111999959);
  EXPECT_DOUBLE_EQ(t.finished, 23.435080677866662);
}

}  // namespace
}  // namespace vhadoop::mapreduce

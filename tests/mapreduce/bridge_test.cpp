#include "mapreduce/bridge.hpp"

#include <gtest/gtest.h>

#include "mapreduce/local_runner.hpp"
#include "workloads/wordcount.hpp"

namespace vhadoop::mapreduce {
namespace {

JobResult sample_run() {
  std::vector<KV> input;
  for (int i = 0; i < 40; ++i) {
    input.push_back({std::to_string(i), "alpha beta gamma delta " + std::to_string(i % 5)});
  }
  LocalJobRunner runner(2);
  return runner.run(workloads::wordcount_job(3), input, 4);
}

TEST(Bridge, OneSimMapPerLogicalSplit) {
  auto measured = sample_run();
  auto spec = to_sim_job("wc", measured, "/in/file", "/out");
  ASSERT_EQ(spec.maps.size(), measured.map_profiles.size());
  ASSERT_EQ(spec.reduces.size(), measured.reduce_profiles.size());
  for (std::size_t m = 0; m < spec.maps.size(); ++m) {
    EXPECT_EQ(spec.maps[m].input_path, "/in/file");
    EXPECT_EQ(spec.maps[m].block_index, static_cast<int>(m));
    EXPECT_DOUBLE_EQ(spec.maps[m].input_bytes, measured.map_profiles[m].input_bytes);
    EXPECT_DOUBLE_EQ(spec.maps[m].cpu_seconds, measured.map_profiles[m].cpu_seconds);
    EXPECT_DOUBLE_EQ(spec.maps[m].output_bytes, measured.map_profiles[m].output_bytes);
  }
}

TEST(Bridge, ShuffleMatrixCarriedVerbatim) {
  auto measured = sample_run();
  auto spec = to_sim_job("wc", measured, "/in", "/out");
  ASSERT_EQ(spec.shuffle_matrix, measured.shuffle_matrix);
  // Consistency: the matrix row sums equal map outputs.
  for (std::size_t m = 0; m < spec.maps.size(); ++m) {
    double row = 0.0;
    for (double b : spec.shuffle_matrix[m]) row += b;
    EXPECT_NEAR(row, spec.maps[m].output_bytes, 1e-9);
  }
}

TEST(Bridge, FilesVariantAssignsOnePathPerMap) {
  auto measured = sample_run();
  std::vector<std::string> paths;
  for (std::size_t m = 0; m < measured.map_profiles.size(); ++m) {
    paths.push_back("/in/part-" + std::to_string(m));
  }
  auto spec = to_sim_job_files("wc", measured, paths, "/out");
  for (std::size_t m = 0; m < spec.maps.size(); ++m) {
    EXPECT_EQ(spec.maps[m].input_path, paths[m]);
    EXPECT_EQ(spec.maps[m].block_index, -1);
  }
}

TEST(Bridge, FilesVariantRejectsWrongCount) {
  auto measured = sample_run();
  EXPECT_THROW(to_sim_job_files("wc", measured, {"/only/one"}, "/out"),
               std::invalid_argument);
}

TEST(Bridge, SerializedBytesIncludesFraming) {
  std::vector<KV> records{{"k", "v"}, {"key2", "value2"}};
  // 2 + 10 payload bytes + 8 bytes framing each.
  EXPECT_DOUBLE_EQ(serialized_bytes(records), 2 + 10 + 16);
  EXPECT_DOUBLE_EQ(serialized_bytes(std::vector<KV>{}), 0.0);
}

}  // namespace
}  // namespace vhadoop::mapreduce

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

struct RunArtifacts {
  std::string metrics_json;
  std::string trace_json;
  double finished_at = 0.0;
  int jobs_done = 0;
};

// A three-job mixed workload (HDFS-input job + two local-input jobs) with a
// mid-run worker crash, traced end to end.
RunArtifacts run_workload(SchedulerPolicy policy, std::uint64_t seed) {
  HadoopConfig hc;
  hc.scheduler = policy;
  if (policy == SchedulerPolicy::Capacity) {
    hc.queues = {{"prod", 0.6, 1.0, 1.0}, {"adhoc", 0.4, 0.8, 1.0}};
  }
  auto c = SimCluster::make(6, true, hc, {}, seed);
  c->engine.tracer().set_enabled(true);

  c->hdfs->write_file("/in/data", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();

  RunArtifacts out;
  SimJobSpec big;
  big.name = "big";
  big.queue = "prod";
  big.output_path = "/out/big";
  const auto& blocks = c->hdfs->blocks("/in/data");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    big.maps.push_back({.input_path = "/in/data", .block_index = static_cast<int>(b),
                        .cpu_seconds = 2.0, .output_bytes = 16 * sim::kMiB});
  }
  big.reduces.assign(2, {.cpu_seconds = 1.0, .output_bytes = 4 * sim::kMiB});
  c->runner->submit(big, [&](const JobTimeline&) { ++out.jobs_done; });
  for (int k = 0; k < 2; ++k) {
    SimJobSpec small;
    small.name = "small-" + std::to_string(k);
    small.queue = "adhoc";
    small.output_path = "/out/small-" + std::to_string(k);
    for (int m = 0; m < 4; ++m) {
      small.maps.push_back({.input_bytes = 4 * sim::kMiB, .cpu_seconds = 0.5,
                            .output_bytes = 2 * sim::kMiB});
    }
    small.reduces.assign(1, {.cpu_seconds = 0.2, .output_bytes = sim::kMiB});
    c->runner->submit(small, [&](const JobTimeline&) { ++out.jobs_done; });
  }

  // Deterministic fault injection: the crash lands at a fixed simulated
  // instant, so the replay must reproduce it bit for bit too.
  c->engine.run_until(c->engine.now() + 8.0);
  c->cloud->crash_vm(c->workers[1]);
  c->engine.run();

  out.finished_at = c->engine.now();
  out.metrics_json = c->engine.metrics().to_json();
  out.trace_json = c->engine.tracer().to_chrome_json();
  return out;
}

class DeterministicReplay : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(DeterministicReplay, SameSeedTwiceIsByteIdentical) {
  const RunArtifacts a = run_workload(GetParam(), 11);
  const RunArtifacts b = run_workload(GetParam(), 11);
  ASSERT_EQ(a.jobs_done, 3);
  ASSERT_EQ(b.jobs_done, 3);
  EXPECT_DOUBLE_EQ(a.finished_at, b.finished_at);
  // The full observability surface replays byte-identically: every metric
  // value and every trace event timestamp.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_FALSE(a.metrics_json.empty());
  EXPECT_FALSE(a.trace_json.empty());
}

TEST_P(DeterministicReplay, DifferentSeedChangesHdfsPlacementNotCorrectness) {
  const RunArtifacts a = run_workload(GetParam(), 11);
  const RunArtifacts b = run_workload(GetParam(), 12);
  EXPECT_EQ(a.jobs_done, 3);
  EXPECT_EQ(b.jobs_done, 3);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DeterministicReplay,
                         ::testing::Values(SchedulerPolicy::Fifo, SchedulerPolicy::Fair,
                                           SchedulerPolicy::Capacity,
                                           SchedulerPolicy::Deadline),
                         [](const ::testing::TestParamInfo<SchedulerPolicy>& p) {
                           return std::string(to_string(p.param));
                         });

// --- FIFO timing regression ----------------------------------------------------

// Golden values captured from the pre-scheduler (single-job) runner: the
// multi-job refactor must not move a single FIFO timestamp. If either
// expectation trips, slot assignment or event ordering drifted.

TEST(FifoTimingRegression, SimpleJobTimingsExactlyMatchSeedRunner) {
  auto c = SimCluster::make(4, false);
  SimJobSpec spec;
  spec.name = "golden-a";
  spec.output_path = "/out/golden-a";
  for (int m = 0; m < 4; ++m) {
    spec.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = 0.5,
                         .output_bytes = 4 * sim::kMiB});
  }
  for (int r = 0; r < 2; ++r) {
    spec.reduces.push_back({.cpu_seconds = 0.3, .output_bytes = 4 * sim::kMiB});
  }
  JobTimeline t;
  c->runner->submit(spec, [&](const JobTimeline& tl) { t = tl; });
  c->engine.run();
  EXPECT_DOUBLE_EQ(t.elapsed(), 4.4445490111999959);
  EXPECT_DOUBLE_EQ(t.finished, 23.435080677866662);
  EXPECT_DOUBLE_EQ(t.queue_wait(), 0.0);  // idle cluster: first heartbeat serves it
}

TEST(FifoTimingRegression, HdfsLocalityJobTimingsExactlyMatchSeedRunner) {
  auto c = SimCluster::make(6, false);
  c->hdfs->write_file("/in/golden", 6 * 64 * sim::kMiB, c->workers[0], nullptr);
  c->engine.run();
  SimJobSpec spec;
  spec.name = "golden-b";
  spec.output_path = "/out/golden-b";
  const auto& blocks = c->hdfs->blocks("/in/golden");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    spec.maps.push_back({.input_path = "/in/golden", .block_index = static_cast<int>(b),
                         .cpu_seconds = 1.5, .output_bytes = 16 * sim::kMiB});
  }
  spec.reduces.assign(2, {.cpu_seconds = 1.0, .output_bytes = 8 * sim::kMiB});
  JobTimeline t;
  c->runner->submit(spec, [&](const JobTimeline& tl) { t = tl; });
  c->engine.run();
  EXPECT_DOUBLE_EQ(t.elapsed(), 6.7368669059555586);
  EXPECT_DOUBLE_EQ(t.finished, 38.590440839288895);
  EXPECT_EQ(t.data_local_maps(), 4);
}

}  // namespace
}  // namespace vhadoop::mapreduce

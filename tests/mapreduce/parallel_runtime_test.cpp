// Unit tests for the deterministic intra-task parallel runtime (DESIGN.md
// §15): the free template parallel_for, the persistent WorkerPool, the
// RunnerTuning validation, and the run-split parallel sort / prefix-range
// parallel merge whose comparison counts must be bit-identical across
// thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "mapreduce/kv_batch.hpp"
#include "mapreduce/parallel_sort.hpp"
#include "mapreduce/thread_pool.hpp"

namespace mr = vhadoop::mapreduce;

namespace {

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Batch of entries with adversarial keys (shared prefixes, hot keys) and
/// values that record the push index, so stability is checkable.
mr::KVBatch random_batch(std::uint64_t seed, std::size_t n, std::size_t key_space) {
  mr::KVBatch batch;
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick = splitmix(s) % key_space;
    std::string key;
    if (pick % 7 == 0) {
      key = "shared-prefix-beyond-8-" + std::to_string(pick);  // prefix ties
    } else {
      key = "k" + std::to_string(pick);
    }
    batch.push(key, std::to_string(i));
  }
  return batch;
}

std::vector<mr::KVBatch::Entry> entries_of(const mr::KVBatch& batch) {
  return {batch.entries().begin(), batch.entries().end()};
}

void expect_same_entries(const std::vector<mr::KVBatch::Entry>& a,
                         const std::vector<mr::KVBatch::Entry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key(), b[i].key()) << i;
    EXPECT_EQ(a[i].value(), b[i].value()) << i;  // value = push index: checks stability
  }
}

// --- free parallel_for (template callable, exception drain) ------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 997;
  std::vector<std::atomic<int>> hits(kN);
  mr::parallel_for(kN, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, AcceptsNonCopyableCallableState) {
  // A template over the callable: mutable capture-by-reference of move-only
  // state compiles and runs without std::function wrapping.
  auto counter = std::make_unique<std::atomic<std::size_t>>(0);
  mr::parallel_for(100, 3, [&counter](std::size_t) { counter->fetch_add(1); });
  EXPECT_EQ(counter->load(), 100u);
}

TEST(ParallelFor, ThrowingIterationDrainsAndRethrows) {
  constexpr std::size_t kN = 10000;
  std::atomic<std::size_t> executed{0};
  std::vector<std::atomic<int>> hits(kN);
  try {
    mr::parallel_for(kN, 4, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("boom");
      hits[i].fetch_add(1);
      executed.fetch_add(1);
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Remaining iterations were drained (skipped), never double-executed.
  EXPECT_LT(executed.load(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_LE(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialWhenSingleThreaded) {
  std::vector<std::size_t> order;
  mr::parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- WorkerPool --------------------------------------------------------------

TEST(WorkerPool, StartsLazilyAndOnlyForRealBatches) {
  mr::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  EXPECT_FALSE(pool.started());
  pool.parallel_for(0, [](std::size_t) {});
  pool.parallel_for(1, [](std::size_t) {});  // single iteration: inline
  EXPECT_FALSE(pool.started());
  std::atomic<int> n{0};
  pool.parallel_for(8, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_TRUE(pool.started());
  EXPECT_EQ(n.load(), 8);
}

TEST(WorkerPool, SerialPoolNeverStartsThreads) {
  mr::WorkerPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_FALSE(pool.started());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(WorkerPool, ReusableAcrossManyBatches) {
  mr::WorkerPool pool(4);
  for (int batch = 0; batch < 200; ++batch) {
    const std::size_t n = 1 + static_cast<std::size_t>(batch % 37);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << batch << ":" << i;
  }
}

TEST(WorkerPool, ThrowingIterationDrainsRethrowsAndPoolSurvives) {
  mr::WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t i) {
                                   if (i == 23) throw std::invalid_argument("bad");
                                   hits[i].fetch_add(1);
                                 }),
               std::invalid_argument);
  for (auto& h : hits) EXPECT_LE(h.load(), 1);
  // The pool must be fully usable after an exceptional batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkerPool, NestedCallsRunInlineWithoutDeadlock) {
  mr::WorkerPool pool(4);
  std::atomic<int> units{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { units.fetch_add(1); });
  });
  EXPECT_EQ(units.load(), 32);
}

// --- RunnerTuning validation -------------------------------------------------

TEST(RunnerTuning, DefaultsArePositiveAndPreserved) {
  const mr::RunnerTuning t;
  EXPECT_EQ(t.sort_parallel_threshold, mr::RunnerTuning::kDefaultSortParallelThreshold);
  EXPECT_EQ(t.small_job_fast_path_bytes, mr::RunnerTuning::kDefaultSmallJobFastPathBytes);
  EXPECT_EQ(t.merge_range_split_min, mr::RunnerTuning::kDefaultMergeRangeSplitMin);
  const mr::RunnerTuning custom(10, 20, 30);
  EXPECT_EQ(custom.sort_parallel_threshold, 10);
  EXPECT_EQ(custom.small_job_fast_path_bytes, 20);
  EXPECT_EQ(custom.merge_range_split_min, 30);
}

TEST(RunnerTuning, RejectsNonPositiveValues) {
  EXPECT_THROW(mr::RunnerTuning(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(mr::RunnerTuning(-5, 1, 1), std::invalid_argument);
  EXPECT_THROW(mr::RunnerTuning(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(mr::RunnerTuning(1, -1, 1), std::invalid_argument);
  EXPECT_THROW(mr::RunnerTuning(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(mr::RunnerTuning(1, 1, -7), std::invalid_argument);
  EXPECT_NO_THROW(mr::RunnerTuning(1, 1, 1));
}

// --- run_split_count ---------------------------------------------------------

TEST(RunSplitCount, IsAPureStepFunctionOfSizeAndThreshold) {
  EXPECT_EQ(mr::run_split_count(0, 100), 1u);
  EXPECT_EQ(mr::run_split_count(100, 100), 1u);
  EXPECT_EQ(mr::run_split_count(101, 100), 2u);
  EXPECT_EQ(mr::run_split_count(200, 100), 2u);
  EXPECT_EQ(mr::run_split_count(201, 100), 4u);
  EXPECT_EQ(mr::run_split_count(1000, 100), 16u);
  // Capped at 64 runs no matter how big the input.
  EXPECT_EQ(mr::run_split_count(1'000'000'000, 1), 64u);
}

// --- parallel sort -----------------------------------------------------------

TEST(ParallelSort, MatchesSerialSortAndIsStable) {
  const auto batch = random_batch(42, 3000, 40);
  auto expected = entries_of(batch);
  mr::sort_entries(expected);

  for (const std::size_t threshold : {50u, 128u, 1024u, 100000u}) {
    mr::WorkerPool pool(4);
    auto got = entries_of(batch);
    mr::parallel_sort_entries(got.data(), got.size(), threshold, pool);
    expect_same_entries(got, expected);
  }
}

TEST(ParallelSort, ComparisonCountIsIdenticalAcrossThreadCounts) {
  const auto batch = random_batch(7, 5000, 200);
  std::vector<std::int64_t> counts;
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    mr::WorkerPool pool(threads);
    auto got = entries_of(batch);
    counts.push_back(mr::parallel_sort_entries(got.data(), got.size(), 100, pool));
  }
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], counts[0]);
  EXPECT_GT(counts[0], 0);
}

TEST(ParallelSort, SerialThresholdMatchesSortEntriesExactly) {
  // K == 1 (threshold >= n) must be byte-for-byte the serial algorithm,
  // comparisons included — the small-job fast path depends on this.
  const auto batch = random_batch(3, 800, 25);
  auto serial = entries_of(batch);
  const std::int64_t serial_comps = mr::sort_entries(serial);
  mr::WorkerPool pool(8);
  auto par = entries_of(batch);
  const std::int64_t par_comps = mr::parallel_sort_entries(par.data(), par.size(), 800, pool);
  EXPECT_EQ(par_comps, serial_comps);
  expect_same_entries(par, serial);
}

TEST(ParallelSort, HandlesTinyAndEmptyRanges) {
  mr::WorkerPool pool(4);
  EXPECT_EQ(mr::parallel_sort_entries(nullptr, 0, 10, pool), 0);
  auto one = entries_of(random_batch(1, 1, 4));
  EXPECT_EQ(mr::parallel_sort_entries(one.data(), 1, 10, pool), 0);
}

// --- parallel merge ----------------------------------------------------------

std::vector<std::vector<mr::KVBatch::Entry>> sorted_runs(const mr::KVBatch& batch,
                                                         std::size_t num_runs) {
  std::vector<std::vector<mr::KVBatch::Entry>> runs(num_runs);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    runs[i % num_runs].push_back(batch.entry(i));
  }
  for (auto& r : runs) mr::sort_entries(r);
  return runs;
}

std::vector<std::span<const mr::KVBatch::Entry>> spans_of(
    const std::vector<std::vector<mr::KVBatch::Entry>>& runs) {
  return {runs.begin(), runs.end()};
}

TEST(ParallelMerge, MatchesSerialMergeAtEverySplitFactor) {
  const auto batch = random_batch(11, 4000, 60);
  const auto runs = sorted_runs(batch, 5);
  std::vector<mr::KVBatch::Entry> expected;
  mr::merge_runs(spans_of(runs), expected);

  for (const std::size_t min_split : {50u, 300u, 2000u, 100000u}) {
    mr::WorkerPool pool(4);
    std::vector<mr::KVBatch::Entry> got;
    mr::parallel_merge_runs(spans_of(runs), got, min_split, pool);
    expect_same_entries(got, expected);
  }
}

TEST(ParallelMerge, ComparisonCountIsIdenticalAcrossThreadCounts) {
  const auto batch = random_batch(13, 6000, 500);
  const auto runs = sorted_runs(batch, 7);
  std::vector<std::int64_t> counts;
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    mr::WorkerPool pool(threads);
    std::vector<mr::KVBatch::Entry> out;
    counts.push_back(mr::parallel_merge_runs(spans_of(runs), out, 200, pool));
  }
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], counts[0]);
  EXPECT_GT(counts[0], 0);
}

TEST(ParallelMerge, BelowCutoffIsExactlyTheSerialMerge) {
  const auto batch = random_batch(17, 500, 30);
  const auto runs = sorted_runs(batch, 4);
  std::vector<mr::KVBatch::Entry> serial_out, par_out;
  const std::int64_t serial = mr::merge_runs(spans_of(runs), serial_out);
  mr::WorkerPool pool(8);
  const std::int64_t par = mr::parallel_merge_runs(spans_of(runs), par_out, 100000, pool);
  EXPECT_EQ(par, serial);
  expect_same_entries(par_out, serial_out);
}

TEST(ParallelMerge, SingleHotKeyCollapsesRangesButStaysCorrect) {
  // Every key equal: all boundary candidates coincide, so all but one range
  // is empty — output must still be the stable serial order.
  mr::KVBatch batch;
  for (int i = 0; i < 3000; ++i) batch.push("hot", std::to_string(i));
  const auto runs = sorted_runs(batch, 3);
  std::vector<mr::KVBatch::Entry> expected, got;
  mr::merge_runs(spans_of(runs), expected);
  mr::WorkerPool pool(4);
  mr::parallel_merge_runs(spans_of(runs), got, 100, pool);
  expect_same_entries(got, expected);
}

TEST(ParallelMerge, EmptyAndSingleRunEdgeCases) {
  mr::WorkerPool pool(4);
  std::vector<mr::KVBatch::Entry> out;
  EXPECT_EQ(mr::parallel_merge_runs({}, out, 10, pool), 0);
  EXPECT_TRUE(out.empty());

  mr::KVBatch batch;
  for (int i = 0; i < 100; ++i) {
    std::string key = "k";
    key += std::to_string(i % 9);
    batch.push(key, std::to_string(i));
  }
  auto run = entries_of(batch);
  mr::sort_entries(run);
  std::vector<std::span<const mr::KVBatch::Entry>> spans{{}, run, {}};
  EXPECT_EQ(mr::parallel_merge_runs(spans, out, 10, pool), 0);  // one run: no comparisons
  ASSERT_EQ(out.size(), run.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].value(), run[i].value());
}

// --- KVBatch lazy arena ------------------------------------------------------

TEST(KVBatchLazyArena, ChunksGrowGeometricallyAndResetOnClear) {
  mr::KVBatch small(64 * 1024, 1024);
  EXPECT_EQ(small.chunks_allocated(), 0);  // lazy: nothing until first push
  auto fill = [&] {
    for (int i = 0; i < 400; ++i) small.push("key-" + std::to_string(i), std::string(32, 'v'));
    return small.chunks_allocated();
  };
  const std::int64_t first_fill = fill();
  // ~19 KiB of payload: geometric growth (1 KiB first chunk, doubling)
  // needs several chunks but far fewer than one per record.
  EXPECT_GT(first_fill, 1);
  EXPECT_LT(first_fill, 10);
  small.clear();
  EXPECT_EQ(small.chunks_allocated(), 0);
  // Chunk accounting restarts identically after clear — the gated
  // arena_chunks counter must not depend on batch reuse history.
  EXPECT_EQ(fill(), first_fill);
}

TEST(KVBatchLazyArena, FirstChunkIsClampedToSteadyState) {
  mr::KVBatch batch(1024, 1 << 30);  // first > steady: clamped, no 1 GiB chunk
  batch.push("k", std::string(100, 'x'));
  EXPECT_EQ(batch.chunks_allocated(), 1);
  for (int i = 0; i < 100; ++i) batch.push("k", std::string(100, 'x'));
  EXPECT_GT(batch.chunks_allocated(), 5);  // steady-state chunks stay 1 KiB
}

}  // namespace

#include "mapreduce/sim_runner.hpp"

#include <gtest/gtest.h>

#include "testutil/sim_cluster.hpp"

namespace vhadoop::mapreduce {
namespace {

using testutil::SimCluster;

SimJobSpec simple_job(int maps, int reduces, double map_mb = 8.0, double out_mb = 4.0) {
  SimJobSpec spec;
  spec.name = "test";
  spec.output_path = "/out/test";
  for (int m = 0; m < maps; ++m) {
    spec.maps.push_back({.input_bytes = map_mb * sim::kMiB,
                         .cpu_seconds = 0.5,
                         .output_bytes = out_mb * sim::kMiB});
  }
  for (int r = 0; r < reduces; ++r) {
    spec.reduces.push_back({.cpu_seconds = 0.3, .output_bytes = out_mb * sim::kMiB});
  }
  return spec;
}

TEST(SimRunner, RunsJobToCompletion) {
  auto c = SimCluster::make(4, false);
  JobTimeline timeline;
  bool done = false;
  c->runner->submit(simple_job(4, 2), [&](const JobTimeline& t) {
    timeline = t;
    done = true;
  });
  c->engine.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(c->runner->idle());
  EXPECT_EQ(timeline.maps.size(), 4u);
  EXPECT_EQ(timeline.reduces.size(), 2u);
  EXPECT_GT(timeline.elapsed(), 0.0);
  for (const auto& t : timeline.maps) {
    EXPECT_GE(t.started, t.assigned);
    EXPECT_GT(t.finished, t.started);
  }
  for (const auto& t : timeline.reduces) {
    EXPECT_GT(t.finished, t.started);
    // Reduces cannot finish before the last map finished (they must fetch
    // every map's partition).
    for (const auto& m : timeline.maps) EXPECT_GE(t.finished, m.finished);
  }
}

TEST(SimRunner, MapOnlyJobCompletes) {
  auto c = SimCluster::make(3, false);
  bool done = false;
  auto spec = simple_job(5, 0);
  spec.map_output_to_hdfs = true;
  spec.output_path = "/out/maponly";
  c->runner->submit(spec, [&](const JobTimeline&) { done = true; });
  c->engine.run();
  EXPECT_TRUE(done);
  // Map outputs committed to HDFS.
  EXPECT_TRUE(c->hdfs->exists("/out/maponly/map-0"));
  EXPECT_TRUE(c->hdfs->exists("/out/maponly/map-4"));
}

TEST(SimRunner, JobsRunFifo) {
  auto c = SimCluster::make(2, false);
  std::vector<int> order;
  double first_end = 0.0, second_start_bound = 0.0;
  auto job1 = simple_job(2, 1);
  job1.output_path = "/out/job1";
  c->runner->submit(job1, [&](const JobTimeline& t) {
    order.push_back(1);
    first_end = t.finished;
  });
  auto job2 = simple_job(2, 1);
  job2.output_path = "/out/job2";
  c->runner->submit(job2, [&](const JobTimeline& t) {
    order.push_back(2);
    // The second job's first map must be assigned after job 1 finished.
    second_start_bound = t.maps[0].assigned;
    for (const auto& m : t.maps) second_start_bound = std::min(second_start_bound, m.assigned);
  });
  c->engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_GE(second_start_bound, first_end);
}

TEST(SimRunner, SlotsLimitConcurrency) {
  // 1 worker with 2 map slots, 6 maps -> at least 3 sequential waves.
  HadoopConfig hc;
  hc.map_slots_per_worker = 2;
  auto c = SimCluster::make(1, false, hc);
  JobTimeline timeline;
  c->runner->submit(simple_job(6, 0), [&](const JobTimeline& t) { timeline = t; });
  c->engine.run();
  // True max concurrency via an event sweep over (assigned, finished).
  std::vector<std::pair<double, int>> events;
  for (const auto& t : timeline.maps) {
    events.emplace_back(t.assigned, +1);
    events.emplace_back(t.finished, -1);
  }
  std::sort(events.begin(), events.end());
  int level = 0, max_overlap = 0;
  for (const auto& [time, delta] : events) {
    level += delta;
    max_overlap = std::max(max_overlap, level);
  }
  EXPECT_LE(max_overlap, 2);
}

TEST(SimRunner, MoreWorkersFinishFasterOnCpuBoundJob) {
  SimJobSpec spec;
  spec.output_path = "/out/cpu";
  for (int m = 0; m < 12; ++m) {
    spec.maps.push_back({.input_bytes = sim::kMiB, .cpu_seconds = 10.0, .output_bytes = 1024});
  }
  spec.reduces.push_back({.cpu_seconds = 0.1, .output_bytes = 1024});

  auto small = SimCluster::make(2, false);
  double t_small = 0.0;
  small->runner->submit(spec, [&](const JobTimeline& t) { t_small = t.elapsed(); });
  small->engine.run();

  auto big = SimCluster::make(7, false);
  double t_big = 0.0;
  big->runner->submit(spec, [&](const JobTimeline& t) { t_big = t.elapsed(); });
  big->engine.run();

  EXPECT_LT(t_big, t_small * 0.7);
}

TEST(SimRunner, DataLocalMapsPreferred) {
  auto c = SimCluster::make(8, false);
  // Stage an input file, then check locality accounting.
  bool staged = false;
  c->hdfs->write_file("/in/data", 8 * 64 * sim::kMiB, c->workers[0], [&] { staged = true; });
  c->engine.run();
  ASSERT_TRUE(staged);

  SimJobSpec spec;
  spec.output_path = "/out/local";
  const auto& blocks = c->hdfs->blocks("/in/data");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    spec.maps.push_back({.input_path = "/in/data",
                         .block_index = static_cast<int>(b),
                         .cpu_seconds = 0.5,
                         .output_bytes = sim::kMiB});
  }
  spec.reduces.push_back({.cpu_seconds = 0.1, .output_bytes = sim::kMiB});
  JobTimeline timeline;
  c->runner->submit(spec, [&](const JobTimeline& t) { timeline = t; });
  c->engine.run();
  // With replication 3 over 8 workers and locality-aware assignment, most
  // maps should be data-local.
  EXPECT_GE(timeline.data_local_maps(), static_cast<int>(blocks.size()) / 2);
}

TEST(SimRunner, CrossDomainSlowerForShuffleHeavyJob) {
  // Shuffle-dominated: little compute, big map outputs. In the normal
  // placement all 32 fetch flows ride the software bridge; cross-domain,
  // half of them squeeze through the GbE NICs.
  auto spec = simple_job(8, 4, 8.0, 64.0);
  for (auto& m : spec.maps) m.cpu_seconds = 0.2;
  auto normal = SimCluster::make(8, false);
  double t_normal = 0.0;
  normal->runner->submit(spec, [&](const JobTimeline& t) { t_normal = t.elapsed(); });
  normal->engine.run();

  auto cross = SimCluster::make(8, true);
  double t_cross = 0.0;
  cross->runner->submit(spec, [&](const JobTimeline& t) { t_cross = t.elapsed(); });
  cross->engine.run();

  EXPECT_GT(t_cross, t_normal * 1.05);
}

TEST(SimRunner, SkewedShuffleMatrixDelaysLoadedReducer) {
  auto c = SimCluster::make(4, false);
  SimJobSpec spec;
  spec.output_path = "/out/skew";
  for (int m = 0; m < 4; ++m) {
    spec.maps.push_back({.input_bytes = sim::kMiB, .cpu_seconds = 0.1,
                         .output_bytes = 40 * sim::kMiB});
  }
  spec.reduces.push_back({.cpu_seconds = 0.1, .output_bytes = 1024});
  spec.reduces.push_back({.cpu_seconds = 0.1, .output_bytes = 1024});
  // All bytes go to reduce 0.
  spec.shuffle_matrix.assign(4, {40 * sim::kMiB, 0.0});
  JobTimeline timeline;
  c->runner->submit(spec, [&](const JobTimeline& t) { timeline = t; });
  c->engine.run();
  EXPECT_GT(timeline.reduces[0].finished, timeline.reduces[1].finished);
}

TEST(SimRunner, PerTaskOverheadGrowsSmallJobRuntime) {
  // The MRBench phenomenon: tiny data, more tasks -> longer runtime.
  auto c1 = SimCluster::make(15, false);
  double t1 = 0.0;
  c1->runner->submit(simple_job(1, 1, 0.01, 0.01), [&](const JobTimeline& t) { t1 = t.elapsed(); });
  c1->engine.run();

  auto c6 = SimCluster::make(15, false);
  double t6 = 0.0;
  c6->runner->submit(simple_job(6, 1, 0.01, 0.01), [&](const JobTimeline& t) { t6 = t.elapsed(); });
  c6->engine.run();
  EXPECT_GT(t6, t1);
}

TEST(SimRunner, RejectsMalformedSpecs) {
  auto c = SimCluster::make(2, false);
  SimJobSpec empty;
  EXPECT_THROW(c->runner->submit(empty, nullptr), std::invalid_argument);

  auto bad = simple_job(2, 2);
  bad.shuffle_matrix.assign(3, {1.0, 1.0});  // wrong row count
  EXPECT_THROW(c->runner->submit(bad, nullptr), std::invalid_argument);
}

TEST(SimRunner, RunningTasksVisibleDuringExecution) {
  auto c = SimCluster::make(2, false);
  c->runner->submit(simple_job(4, 1, 64.0, 16.0), nullptr);
  c->engine.run_until(c->engine.now() + 6.0);  // mid-JVM-spawn/read phase
  int total_running = 0;
  for (virt::VmId vm : c->workers) total_running += c->runner->running_tasks(vm);
  EXPECT_GT(total_running, 0);
  c->engine.run();
  for (virt::VmId vm : c->workers) EXPECT_EQ(c->runner->running_tasks(vm), 0);
}

TEST(SimRunner, SpillPastSortBufferCostsExtra) {
  HadoopConfig hc;
  hc.io_sort_bytes = 10 * sim::kMiB;
  auto c_small = SimCluster::make(4, false, hc);
  // Output below the buffer: no extra pass.
  auto below = simple_job(4, 1, 8.0, 8.0);
  double t_below = 0.0;
  c_small->runner->submit(below, [&](const JobTimeline& t) { t_below = t.elapsed(); });
  c_small->engine.run();

  auto c_big = SimCluster::make(4, false, hc);
  auto above = simple_job(4, 1, 8.0, 12.0);  // +50% output but >buffer
  double t_above = 0.0;
  c_big->runner->submit(above, [&](const JobTimeline& t) { t_above = t.elapsed(); });
  c_big->engine.run();
  // Extra spill pass: a jump beyond what +50% of output bytes alone costs
  // (output is a small share of the job, so linear scaling would add ~2%).
  EXPECT_GT(t_above, t_below * 1.1);
}

}  // namespace
}  // namespace vhadoop::mapreduce

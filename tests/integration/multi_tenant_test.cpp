#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/platform.hpp"

namespace vhadoop::core {
namespace {

using mapreduce::JobTimeline;
using mapreduce::SimJobSpec;

SimJobSpec tenant_job(const std::string& name, const std::string& queue,
                      const std::string& user, int n_maps, double map_cpu) {
  SimJobSpec spec;
  spec.name = name;
  spec.queue = queue;
  spec.user = user;
  spec.output_path = "/out/" + name;
  for (int m = 0; m < n_maps; ++m) {
    spec.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = map_cpu,
                         .output_bytes = 4 * sim::kMiB});
  }
  spec.reduces.assign(2, {.cpu_seconds = 0.5, .output_bytes = 2 * sim::kMiB});
  return spec;
}

// The paper's multi-tenant story end to end: a cross-domain virtual cluster
// runs two departments' jobs under the Capacity scheduler — a guaranteed
// "prod" queue and a smaller elastic "adhoc" queue, two users per queue.
TEST(MultiTenantIntegration, CapacityQueuesShareACrossDomainCluster) {
  Platform platform;
  ClusterSpec spec;
  spec.num_workers = 8;
  spec.placement = Placement::CrossDomain;
  spec.hadoop.scheduler = mapreduce::SchedulerPolicy::Capacity;
  spec.hadoop.queues = {{"prod", 0.7, 1.0, 0.6}, {"adhoc", 0.3, 0.6, 0.6}};
  platform.boot_cluster(spec);
  platform.enable_tracing();

  std::vector<JobTimeline> done;
  auto record = [&](const JobTimeline& t) { done.push_back(t); };
  // Six jobs, two queues, two users per queue.
  platform.submit_job(tenant_job("prod-etl-1", "prod", "alice", 10, 2.0), record);
  platform.submit_job(tenant_job("prod-etl-2", "prod", "bob", 10, 2.0), record);
  platform.submit_job(tenant_job("prod-report", "prod", "alice", 6, 1.0), record);
  platform.submit_job(tenant_job("adhoc-probe-1", "adhoc", "carol", 4, 0.5), record);
  platform.submit_job(tenant_job("adhoc-probe-2", "adhoc", "dave", 4, 0.5), record);
  platform.submit_job(tenant_job("adhoc-probe-3", "adhoc", "carol", 4, 0.5), record);
  platform.engine().run();

  ASSERT_EQ(done.size(), 6u);
  for (const auto& t : done) {
    EXPECT_FALSE(t.failed) << t.name;
    EXPECT_GT(t.first_task_at, 0.0) << t.name;
  }
  EXPECT_TRUE(platform.runner().idle());
  EXPECT_STREQ(platform.runner().scheduler_name(), "capacity");

  // Per-queue accounting adds up.
  const obs::Registry& reg = platform.metrics();
  const obs::Counter* prod_done = reg.find_counter("mr.queue.prod.jobs_completed");
  const obs::Counter* adhoc_done = reg.find_counter("mr.queue.adhoc.jobs_completed");
  ASSERT_NE(prod_done, nullptr);
  ASSERT_NE(adhoc_done, nullptr);
  EXPECT_EQ(prod_done->value(), 3);
  EXPECT_EQ(adhoc_done->value(), 3);
  const obs::Counter* failed = reg.find_counter("mr.jobs_failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->value(), 0);
  const obs::Gauge* running = reg.find_gauge("mr.jobs_running");
  ASSERT_NE(running, nullptr);
  EXPECT_GE(running->max(), 2.0);  // the cluster really was multi-tenant
  EXPECT_DOUBLE_EQ(running->value(), 0.0);

  // The guaranteed adhoc share means probes do not queue behind all of prod:
  // every adhoc job starts before the last prod job finishes.
  double last_prod_finish = 0.0;
  for (const auto& t : done) {
    if (t.name.rfind("prod", 0) == 0) last_prod_finish = std::max(last_prod_finish, t.finished);
  }
  for (const auto& t : done) {
    if (t.name.rfind("adhoc", 0) == 0) {
      EXPECT_LT(t.first_task_at, last_prod_finish) << t.name;
    }
  }

  // The trace has one lane per job-facing daemon plus the jobtracker lane.
  const std::string trace = platform.tracer().to_chrome_json();
  EXPECT_NE(trace.find("jobtracker"), std::string::npos);
}

// Under Fair, a short job submitted while a long one is running overlaps it
// instead of waiting (the scheduler tentpole's headline behaviour).
TEST(MultiTenantIntegration, FairSchedulerOverlapsShortJobWithLongJob) {
  Platform platform;
  ClusterSpec spec;
  spec.num_workers = 4;
  spec.hadoop.scheduler = mapreduce::SchedulerPolicy::Fair;
  platform.boot_cluster(spec);

  std::vector<JobTimeline> done;
  auto record = [&](const JobTimeline& t) { done.push_back(t); };
  platform.submit_job(tenant_job("long", "default", "alice", 16, 3.0), record);
  platform.submit_job(tenant_job("short", "default", "bob", 2, 0.3), record);
  platform.engine().run();

  ASSERT_EQ(done.size(), 2u);
  const JobTimeline& long_job = done[0].name == "long" ? done[0] : done[1];
  const JobTimeline& short_job = done[0].name == "short" ? done[0] : done[1];
  ASSERT_EQ(long_job.name, "long");
  ASSERT_EQ(short_job.name, "short");
  EXPECT_FALSE(long_job.failed);
  EXPECT_FALSE(short_job.failed);
  // Overlap: the short job finished while the long one was still running.
  EXPECT_LT(short_job.finished, long_job.finished);
  EXPECT_GT(long_job.finished, short_job.first_task_at);
}

}  // namespace
}  // namespace vhadoop::core

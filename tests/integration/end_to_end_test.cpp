// Cross-module integration: whole-platform scenarios combining the
// virtualization layer, HDFS, both MapReduce engines, the ML library, the
// monitor, the tuner and live migration — the flows a vHadoop user runs.

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "mapreduce/local_runner.hpp"
#include "ml/kmeans.hpp"
#include "ml/naive_bayes.hpp"
#include "viz/svg.hpp"
#include "workloads/terasort.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

namespace vhadoop {
namespace {

TEST(EndToEnd, WordcountPipelineRealAndSimulatedAgreeOnStructure) {
  workloads::TextCorpus corpus(5000);
  auto lines = corpus.generate(8 * sim::kMiB);
  mapreduce::LocalJobRunner local(4);
  auto measured = local.run(workloads::wordcount_job(3), lines, 5);

  core::Platform platform;
  platform.boot_cluster({.num_workers = 6});
  platform.upload("/in/text", mapreduce::serialized_bytes(lines));
  auto timeline = platform.run_measured("wc", measured, "/in/text", "/out/wc");

  // Structure agreement: one simulated map per logical split, one reduce
  // output file per logical reducer, sizes carried over.
  EXPECT_EQ(timeline.maps.size(), measured.map_profiles.size());
  EXPECT_EQ(timeline.reduces.size(), measured.reduce_profiles.size());
  for (std::size_t r = 0; r < measured.reduce_profiles.size(); ++r) {
    const std::string part = "/out/wc/part-" + std::to_string(r);
    ASSERT_TRUE(platform.hdfs().exists(part));
    EXPECT_DOUBLE_EQ(platform.hdfs().file_size(part),
                     measured.reduce_profiles[r].output_bytes);
  }
}

TEST(EndToEnd, TeraSortCorrectnessAndTimingTogether) {
  // Real record-level sort at test scale...
  auto records = workloads::TeraSort::generate_records(3000, 5);
  mapreduce::LocalJobRunner local(4);
  auto sorted = local.run(workloads::TeraSort::sort_job(3, records), records, 4);
  ASSERT_TRUE(workloads::TeraSort::validate_sorted(sorted.output));

  // ...and the same pipeline's timing at paper scale on the cluster.
  core::Platform platform;
  platform.boot_cluster({.num_workers = 15});
  workloads::TeraSort ts{.total_bytes = 200 * sim::kMiB, .num_reduces = 3};
  const double gen = platform.run_job(ts.sim_teragen("/t/in")).elapsed();
  const double sort = platform.run_job(ts.sim_terasort("/t/in", "/t/out")).elapsed();
  const double validate = platform.run_job(ts.sim_teravalidate("/t/out")).elapsed();
  EXPECT_GT(gen, 0.0);
  EXPECT_GT(sort, gen * 0.5);
  EXPECT_GT(validate, 0.0);
}

TEST(EndToEnd, ClusteringVisualizationPipeline) {
  auto data = ml::display_clustering_samples(300, 7);
  auto run = ml::kmeans_cluster(data, {.k = 3, .base = {.num_splits = 3}});
  const std::string svg = viz::render_clustering_svg(data, run);
  EXPECT_NE(svg.find("stroke=\"red\""), std::string::npos);

  core::Platform platform;
  platform.boot_cluster({.num_workers = 3});
  const double elapsed = platform.run_clustering(
      run, mapreduce::serialized_bytes(ml::to_records(data)), "/in/viz");
  EXPECT_GT(elapsed, 0.0);
}

TEST(EndToEnd, MonitorSeesJobAndTunerReactsAfterwards) {
  core::Platform platform;
  platform.boot_cluster({.num_workers = 6, .placement = core::Placement::CrossDomain});
  auto& mon = platform.attach_monitor(1.0);

  mapreduce::SimJobSpec job;
  job.name = "hot";
  job.output_path = "/out/hot";
  for (int m = 0; m < 12; ++m) {
    job.maps.push_back({.input_bytes = 64 * sim::kMiB, .cpu_seconds = 1.0,
                        .output_bytes = 48 * sim::kMiB});
  }
  job.reduces.push_back({.cpu_seconds = 1.0, .output_bytes = 8 * sim::kMiB});
  platform.run_job(job);
  mon.stop();

  const auto report = monitor::TraceAnalyser::analyse(mon);
  EXPECT_FALSE(mon.samples().empty());
  EXPECT_NE(report.bottleneck, "none");
  EXPECT_NO_THROW(platform.tune());
}

TEST(EndToEnd, MigrationDuringJobThenJobStillFinishes) {
  core::Platform platform;
  platform.boot_cluster({.num_workers = 7});
  mapreduce::SimJobSpec job;
  job.name = "longjob";
  job.output_path = "/out/long";
  for (int m = 0; m < 40; ++m) {
    job.maps.push_back({.input_bytes = 32 * sim::kMiB, .cpu_seconds = 4.0,
                        .output_bytes = 8 * sim::kMiB});
  }
  job.reduces.push_back({.cpu_seconds = 2.0, .output_bytes = 4 * sim::kMiB});
  bool done = false;
  double job_end = 0.0;
  platform.runner().submit(job, [&](const mapreduce::JobTimeline& t) {
    done = true;
    job_end = t.finished;
  });
  platform.engine().run_until(platform.engine().now() + 20.0);
  ASSERT_FALSE(done);

  auto result = platform.migrate_cluster(platform.hosts()[1], [&](virt::VmId vm) {
    return platform.runner().running_tasks(vm) > 0 ? virt::DirtyModel::wordcount()
                                                   : virt::DirtyModel::idle();
  });
  platform.engine().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(result.per_vm.size(), 8u);
  for (virt::VmId vm : platform.all_vms()) {
    EXPECT_EQ(platform.cloud().host_of(vm), platform.hosts()[1]);
  }
}

TEST(EndToEnd, CrashDuringClusteringIterationStillConverges) {
  auto data = ml::display_clustering_samples(400, 11);
  auto run = ml::kmeans_cluster(data, {.k = 3, .base = {.num_splits = 4,
                                                        .max_iterations = 6}});
  core::Platform platform;
  platform.boot_cluster({.num_workers = 6});
  platform.upload("/in/pts", mapreduce::serialized_bytes(ml::to_records(data)));

  // Run the iteration jobs manually, crashing a worker between them.
  double total = 0.0;
  for (std::size_t it = 0; it < run.jobs.size(); ++it) {
    if (it == 1) platform.cloud().crash_vm(platform.workers()[5]);
    auto t = platform.run_measured("kmeans-it" + std::to_string(it), run.jobs[it], "/in/pts",
                                   "/out/km-" + std::to_string(it));
    total += t.elapsed();
  }
  EXPECT_GT(total, 0.0);
}

TEST(EndToEnd, NaiveBayesTrainReplayOnCluster) {
  auto docs = ml::synthetic_labeled_corpus(2, 80, 20, 3);
  auto nb = ml::train_naive_bayes(docs, {.num_splits = 4});
  core::Platform platform;
  platform.boot_cluster({.num_workers = 4});
  platform.upload("/in/docs", 8 * sim::kMiB);
  auto timeline = platform.run_measured("nb", nb.jobs[0], "/in/docs", "/out/nb");
  EXPECT_EQ(timeline.maps.size(), 4u);
  EXPECT_GT(timeline.elapsed(), 0.0);
}

}  // namespace
}  // namespace vhadoop

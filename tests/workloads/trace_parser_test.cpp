// Workload-trace format tests: parse → serialize → parse identity, and
// line/column diagnostics for every class of malformed input the strict
// parser rejects.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workloads/trace.hpp"

using namespace vhadoop;
using workloads::JobFamily;
using workloads::TraceParseError;
using workloads::TraceRecord;
using workloads::WorkloadTrace;

namespace {

const char kValid[] =
    "vhadoop-trace-v1\n"
    "# morning burst\n"
    "0 t0 interactive 7 45 wordcount 64\n"
    "1.5 t1 batch 0 0 terasort 256\n"
    "\n"
    "1.5 t0 interactive 8 30.25 mrbench 16\n"
    "900 t2 batch 2 1200 kmeans 512.5\n";

WorkloadTrace parse_ok(const std::string& text) {
  WorkloadTrace trace;
  const TraceParseError err = workloads::parse_trace(text, trace);
  EXPECT_TRUE(err.ok()) << err.to_string();
  return trace;
}

TraceParseError parse_fail(const std::string& text,
                           const std::vector<std::string>& allowed_queues = {}) {
  WorkloadTrace trace;
  const TraceParseError err = workloads::parse_trace(text, trace, allowed_queues);
  EXPECT_FALSE(err.ok()) << "parser accepted:\n" << text;
  return err;
}

TEST(TraceParser, ParsesRecordsWithCommentsAndBlanks) {
  const WorkloadTrace trace = parse_ok(kValid);
  ASSERT_EQ(trace.records.size(), 4u);
  EXPECT_EQ(trace.records[0].tenant, "t0");
  EXPECT_EQ(trace.records[0].queue, "interactive");
  EXPECT_EQ(trace.records[0].priority, 7);
  EXPECT_DOUBLE_EQ(trace.records[0].deadline_seconds, 45.0);
  EXPECT_EQ(trace.records[0].family, JobFamily::Wordcount);
  EXPECT_DOUBLE_EQ(trace.records[3].arrival_seconds, 900.0);
  EXPECT_EQ(trace.records[3].family, JobFamily::Kmeans);
  EXPECT_DOUBLE_EQ(trace.records[3].input_mb, 512.5);
  EXPECT_DOUBLE_EQ(trace.last_arrival(), 900.0);
}

TEST(TraceParser, RoundTripIsIdentity) {
  const WorkloadTrace first = parse_ok(kValid);
  const std::string canon = first.serialize();
  const WorkloadTrace second = parse_ok(canon);
  EXPECT_EQ(first.records, second.records);
  // The canonical form is a fixed point: serializing again is byte-identical.
  EXPECT_EQ(second.serialize(), canon);
}

TEST(TraceParser, RoundTripPreservesAwkwardDoubles) {
  WorkloadTrace trace;
  TraceRecord r;
  r.arrival_seconds = 0.1 + 0.2;  // the classic 0.30000000000000004
  r.deadline_seconds = 1e-3;
  r.input_mb = 1.0 / 3.0 * 100.0;
  trace.records.push_back(r);
  const WorkloadTrace back = parse_ok(trace.serialize());
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].arrival_seconds, r.arrival_seconds);  // exact
  EXPECT_EQ(back.records[0].deadline_seconds, r.deadline_seconds);
  EXPECT_EQ(back.records[0].input_mb, r.input_mb);
}

TEST(TraceParser, MissingHeader) {
  const TraceParseError err = parse_fail("0 t0 q 0 0 wordcount 64\n");
  EXPECT_EQ(err.line, 1);
  EXPECT_EQ(err.column, 1);
  EXPECT_NE(err.message.find("header"), std::string::npos);
}

TEST(TraceParser, EmptyInputIsMissingHeader) {
  EXPECT_FALSE(parse_fail("").ok());
}

TEST(TraceParser, BadTimestamp) {
  const TraceParseError err =
      parse_fail("vhadoop-trace-v1\n12x t0 q 0 0 wordcount 64\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.column, 1);
  EXPECT_NE(err.message.find("arrival"), std::string::npos);
}

TEST(TraceParser, NegativeTimestamp) {
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n-1 t0 q 0 0 wordcount 64\n").line, 2);
}

TEST(TraceParser, BackwardsArrivalOrder) {
  const TraceParseError err = parse_fail(
      "vhadoop-trace-v1\n"
      "10 t0 q 0 0 wordcount 64\n"
      "9 t0 q 0 0 wordcount 64\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_EQ(err.column, 1);
  EXPECT_NE(err.message.find("backwards"), std::string::npos);
}

TEST(TraceParser, UnknownQueueWhenRestricted) {
  const TraceParseError err = parse_fail(
      "vhadoop-trace-v1\n0 t0 staging 0 0 wordcount 64\n", {"interactive", "batch"});
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.column, 6);  // column of the queue token
  EXPECT_NE(err.message.find("queue"), std::string::npos);
  // Unrestricted parse accepts any queue name.
  WorkloadTrace trace;
  EXPECT_TRUE(
      workloads::parse_trace("vhadoop-trace-v1\n0 t0 staging 0 0 wordcount 64\n", trace)
          .ok());
}

TEST(TraceParser, NegativeDeadline) {
  const TraceParseError err =
      parse_fail("vhadoop-trace-v1\n0 t0 q 0 -30 wordcount 64\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.column, 10);  // column of the deadline token
  EXPECT_NE(err.message.find("deadline"), std::string::npos);
}

TEST(TraceParser, PriorityOutOfRange) {
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q 10 0 wordcount 64\n").column, 8);
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q -1 0 wordcount 64\n").column, 8);
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q 1.5 0 wordcount 64\n").column, 8);
}

TEST(TraceParser, UnknownFamily) {
  const TraceParseError err =
      parse_fail("vhadoop-trace-v1\n0 t0 q 0 0 sleep 64\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("family"), std::string::npos);
}

TEST(TraceParser, TruncatedLine) {
  const TraceParseError err = parse_fail("vhadoop-trace-v1\n0 t0 q 0 0 wordcount\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.column, 0);  // whole-line diagnostic
  EXPECT_NE(err.message.find("7 fields"), std::string::npos);
}

TEST(TraceParser, OverlongLine) {
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q 0 0 wordcount 64 extra\n").column, 0);
}

TEST(TraceParser, NonPositiveInputSize) {
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q 0 0 wordcount 0\n").line, 2);
  EXPECT_EQ(parse_fail("vhadoop-trace-v1\n0 t0 q 0 0 wordcount -5\n").line, 2);
}

TEST(TraceParser, ErrorToStringMentionsLineAndColumn) {
  const TraceParseError err = parse_fail("nope\n");
  EXPECT_NE(err.to_string().find("line 1"), std::string::npos);
}

TEST(TraceGenerator, SameSeedSameBytes) {
  workloads::TraceGenConfig cfg;
  cfg.num_jobs = 500;
  const std::string a = workloads::generate_trace(cfg).serialize();
  const std::string b = workloads::generate_trace(cfg).serialize();
  EXPECT_EQ(a, b);
  cfg.seed = 8;
  EXPECT_NE(workloads::generate_trace(cfg).serialize(), a);
}

TEST(TraceGenerator, OutputSurvivesItsOwnParserWithQueueRestriction) {
  workloads::TraceGenConfig cfg;
  cfg.num_jobs = 300;
  const auto trace = workloads::generate_trace(cfg);
  ASSERT_EQ(trace.records.size(), 300u);
  WorkloadTrace back;
  const TraceParseError err =
      workloads::parse_trace(trace.serialize(), back, workloads::generated_queues());
  EXPECT_TRUE(err.ok()) << err.to_string();
  EXPECT_EQ(back.records, trace.records);
}

TEST(TraceGenerator, PoissonArrivalsAreNonDecreasingAndCoverHorizon) {
  workloads::TraceGenConfig cfg;
  cfg.num_jobs = 1000;
  cfg.process = workloads::ArrivalProcess::Poisson;
  const auto trace = workloads::generate_trace(cfg);
  double prev = 0.0;
  for (const auto& r : trace.records) {
    EXPECT_GE(r.arrival_seconds, prev);
    prev = r.arrival_seconds;
  }
  // Mean rate targets the horizon; the last arrival should land near it.
  EXPECT_GT(trace.last_arrival(), cfg.horizon_seconds * 0.5);
  EXPECT_LT(trace.last_arrival(), cfg.horizon_seconds * 2.0);
}

TEST(TraceGenerator, SpecForShapesFollowFamily) {
  TraceRecord r;
  r.family = JobFamily::Terasort;
  r.input_mb = 256.0;
  r.priority = 3;
  r.deadline_seconds = 900.0;
  r.tenant = "t7";
  r.queue = "batch";
  const auto spec = workloads::spec_for(r, 42);
  EXPECT_EQ(spec.user, "t7");
  EXPECT_EQ(spec.queue, "batch");
  EXPECT_EQ(spec.priority, 3);
  EXPECT_DOUBLE_EQ(spec.deadline_seconds, 900.0);
  EXPECT_EQ(spec.maps.size(), 4u);       // 256 MB / 64 MB splits
  EXPECT_EQ(spec.reduces.size(), 2u);    // 256 MB / 128
  EXPECT_TRUE(spec.maps[0].input_path.empty());  // local-disk input, no HDFS
  double in = 0.0, out = 0.0;
  for (const auto& m : spec.maps) {
    in += m.input_bytes;
    out += m.output_bytes;
  }
  EXPECT_DOUBLE_EQ(in, 256.0 * sim::kMiB);
  EXPECT_DOUBLE_EQ(out, in);  // terasort shuffles everything
}

}  // namespace

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapreduce/local_runner.hpp"
#include "workloads/dfsio.hpp"
#include "workloads/mrbench.hpp"
#include "workloads/terasort.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

#include "testutil/sim_cluster.hpp"

namespace vhadoop::workloads {
namespace {

using testutil::SimCluster;

// --- TextCorpus ---------------------------------------------------------------

TEST(TextCorpus, GeneratesRequestedVolume) {
  TextCorpus corpus(5000);
  const double target = 256 * 1024.0;
  auto lines = corpus.generate(target);
  double total = 0.0;
  for (const auto& kv : lines) total += static_cast<double>(kv.value.size()) + 1;
  EXPECT_GE(total, target);
  EXPECT_LT(total, target * 1.05);
}

TEST(TextCorpus, DeterministicForSameSeed) {
  TextCorpus a(1000, 1.0, 5), b(1000, 1.0, 5);
  auto la = a.generate(4096), lb = b.generate(4096);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i].value, lb[i].value);
}

TEST(TextCorpus, WordFrequenciesAreSkewed) {
  TextCorpus corpus(2000);
  auto lines = corpus.generate(512 * 1024.0);
  std::map<std::string, int> freq;
  for (const auto& kv : lines) {
    std::size_t i = 0;
    const std::string& s = kv.value;
    while (i < s.size()) {
      auto j = s.find(' ', i);
      if (j == std::string::npos) j = s.size();
      ++freq[s.substr(i, j - i)];
      i = j + 1;
    }
  }
  // Zipf: the most frequent word should dwarf the median one.
  int max_f = 0;
  for (const auto& [w, f] : freq) max_f = std::max(max_f, f);
  EXPECT_GT(max_f, 50);
  EXPECT_GT(freq.size(), 100u);
}

// --- Wordcount ----------------------------------------------------------------

TEST(Wordcount, CountsMatchBruteForce) {
  TextCorpus corpus(500);
  auto lines = corpus.generate(64 * 1024.0);
  std::map<std::string, std::int64_t> expected;
  for (const auto& kv : lines) {
    std::size_t i = 0;
    const std::string& s = kv.value;
    while (i < s.size()) {
      auto j = s.find(' ', i);
      if (j == std::string::npos) j = s.size();
      if (j > i) ++expected[s.substr(i, j - i)];
      i = j + 1;
    }
  }
  mapreduce::LocalJobRunner runner(4);
  auto result = runner.run(wordcount_job(3), lines, 5);
  std::map<std::string, std::int64_t> got;
  for (const auto& kv : result.output) got[kv.key] = mapreduce::decode_i64(kv.value);
  EXPECT_EQ(got, expected);
}

TEST(Wordcount, CombinerCollapsesShuffle) {
  TextCorpus corpus(200);  // small vocab -> heavy duplication
  auto lines = corpus.generate(128 * 1024.0);
  mapreduce::LocalJobRunner runner(4);
  auto with = runner.run(wordcount_job(2, /*use_combiner=*/true), lines, 4);
  auto without = runner.run(wordcount_job(2, /*use_combiner=*/false), lines, 4);
  double map_in = 0.0;
  for (const auto& p : with.map_profiles) map_in += p.input_bytes;
  // With a combiner, shuffle must be far below the input volume; the
  // paper's combiner-less form shuffles more than it reads.
  EXPECT_LT(with.total_shuffle_bytes, map_in * 0.5);
  EXPECT_GT(without.total_shuffle_bytes, map_in);
}

// --- MRBench -------------------------------------------------------------------

TEST(MrBench, LogicalJobRoundTripsLines) {
  MrBench bench{.num_maps = 3, .num_reduces = 2};
  mapreduce::LocalJobRunner runner(2);
  auto result = runner.run(bench.job(), bench.input(), bench.num_maps);
  EXPECT_EQ(result.output.size(), bench.input().size());
  for (const auto& kv : result.output) {
    for (char c : kv.value) EXPECT_TRUE(c >= '0' && c <= '9');
  }
}

TEST(MrBench, SimJobShapeMatchesParameters) {
  MrBench bench{.num_maps = 5, .num_reduces = 3};
  auto spec = bench.sim_job("/out/mrb");
  EXPECT_EQ(spec.maps.size(), 5u);
  EXPECT_EQ(spec.reduces.size(), 3u);
}

TEST(MrBench, RuntimeGrowsWithMaps) {
  // Fig. 3(a) mechanism at unit-test scale.
  auto run_with_maps = [](int maps) {
    auto c = SimCluster::make(15, false);
    MrBench bench{.num_maps = maps, .num_reduces = 1};
    double t = 0.0;
    c->runner->submit(bench.sim_job("/out/m" + std::to_string(maps)),
                      [&](const mapreduce::JobTimeline& tl) { t = tl.elapsed(); });
    c->engine.run();
    return t;
  };
  EXPECT_GT(run_with_maps(6), run_with_maps(1));
}

TEST(MrBench, RuntimeGrowsWithReduces) {
  // Fig. 3(b) mechanism.
  auto run_with_reduces = [](int reduces) {
    auto c = SimCluster::make(15, false);
    MrBench bench{.num_maps = 15, .num_reduces = reduces};
    double t = 0.0;
    c->runner->submit(bench.sim_job("/out/r" + std::to_string(reduces)),
                      [&](const mapreduce::JobTimeline& tl) { t = tl.elapsed(); });
    c->engine.run();
    return t;
  };
  EXPECT_GT(run_with_reduces(6), run_with_reduces(1));
}

// --- TeraSort ------------------------------------------------------------------

TEST(TeraSort, RealSortIsGloballySorted) {
  auto records = TeraSort::generate_records(5000, 77);
  EXPECT_FALSE(TeraSort::validate_sorted(records));
  mapreduce::LocalJobRunner runner(4);
  auto spec = TeraSort::sort_job(4, records);
  auto result = runner.run(spec, records, 6);
  EXPECT_EQ(result.output.size(), records.size());
  EXPECT_TRUE(TeraSort::validate_sorted(result.output));
}

TEST(TeraSort, TotalOrderPartitionerBalancesReduces) {
  auto records = TeraSort::generate_records(20000, 99);
  mapreduce::LocalJobRunner runner(4);
  auto result = runner.run(TeraSort::sort_job(4, records), records, 4);
  ASSERT_EQ(result.reduce_profiles.size(), 4u);
  for (const auto& p : result.reduce_profiles) {
    EXPECT_GT(p.input_records, 20000 / 4 / 2);
    EXPECT_LT(p.input_records, 20000 / 4 * 2);
  }
}

TEST(TeraSort, SimPipelineRunsGenSortValidate) {
  auto c = SimCluster::make(8, false);
  TeraSort ts{.total_bytes = 200 * sim::kMiB, .num_reduces = 4};
  double t_gen = 0.0, t_sort = 0.0, t_val = 0.0;
  c->runner->submit(ts.sim_teragen("/tera/in"),
                    [&](const mapreduce::JobTimeline& t) { t_gen = t.elapsed(); });
  c->runner->submit(ts.sim_terasort("/tera/in", "/tera/out"),
                    [&](const mapreduce::JobTimeline& t) { t_sort = t.elapsed(); });
  c->runner->submit(ts.sim_teravalidate("/tera/out"),
                    [&](const mapreduce::JobTimeline& t) { t_val = t.elapsed(); });
  c->engine.run();
  EXPECT_GT(t_gen, 0.0);
  EXPECT_GT(t_sort, 0.0);
  EXPECT_GT(t_val, 0.0);
  EXPECT_TRUE(c->hdfs->exists("/tera/out/part-0"));
  // Sorting costs more than generating (it moves the data twice + shuffle).
  EXPECT_GT(t_sort, t_gen * 0.8);
}

TEST(TeraSort, SortTimeJumpsPastBufferKnee) {
  // Fig. 4(a) mechanism: once per-reduce shuffle volume exceeds io.sort.mb
  // the merge spills to (NFS-backed) disk and the curve bends.
  auto run_size = [](double mb) {
    auto c = SimCluster::make(15, false);
    TeraSort ts{.total_bytes = mb * sim::kMiB, .num_reduces = 4};
    double t = 0.0;
    c->runner->submit(ts.sim_teragen("/t/in"), nullptr);
    c->runner->submit(ts.sim_terasort("/t/in", "/t/out"),
                      [&](const mapreduce::JobTimeline& tl) { t = tl.elapsed(); });
    c->engine.run();
    return t;
  };
  const double t200 = run_size(200);
  const double t400 = run_size(400);
  const double t800 = run_size(800);
  // Below the knee roughly linear; past it superlinear.
  EXPECT_GT((t800 - t400), (t400 - t200) * 1.3);
}

// --- TestDFSIO -----------------------------------------------------------------

TEST(TestDfsIo, WriteThenReadReportsThroughput) {
  auto c = SimCluster::make(8, false);
  TestDfsIo io(*c->runner, *c->hdfs, 4, 64 * sim::kMiB);
  TestDfsIo::Result wr, rd;
  io.run_write("/dfsio", [&](const TestDfsIo::Result& r) { wr = r; });
  io.run_read("/dfsio", [&](const TestDfsIo::Result& r) { rd = r; });
  c->engine.run();
  EXPECT_GT(wr.throughput_mb_s(), 0.0);
  EXPECT_GT(rd.throughput_mb_s(), 0.0);
  // Paper Fig. 4(b): read outperforms write (no replication pipeline, and
  // fresh blocks are page-cache-hot at their writers).
  EXPECT_GT(rd.throughput_mb_s(), wr.throughput_mb_s());
}

TEST(TestDfsIo, ReadWithoutPriorWriteThrows) {
  auto c = SimCluster::make(4, false);
  TestDfsIo io(*c->runner, *c->hdfs, 2, sim::kMiB);
  io.run_read("/nothing", nullptr);
  EXPECT_THROW(c->engine.run(), std::runtime_error);
}

TEST(TestDfsIo, NfsSaturationDominatesPlacement) {
  // The paper's stated bottleneck: with every virtual disk backed by one
  // NFS server, DFSIO saturates the NFS path in *both* placements — the
  // cross-domain gap on pure disk workloads is second-order. (Cross-domain
  // penalties are asserted on shuffle/exchange-heavy paths elsewhere.)
  auto run_case = [](bool cross) {
    auto c = SimCluster::make(8, cross);
    TestDfsIo io(*c->runner, *c->hdfs, 8, 64 * sim::kMiB);
    TestDfsIo::Result wr;
    io.run_write("/d", [&](const TestDfsIo::Result& r) { wr = r; });
    c->engine.run();
    return wr.throughput_mb_s();
  };
  const double normal = run_case(false);
  const double cross = run_case(true);
  EXPECT_GE(normal, cross * 0.95);
  EXPECT_LE(std::abs(normal - cross) / normal, 0.25);
}

}  // namespace
}  // namespace vhadoop::workloads

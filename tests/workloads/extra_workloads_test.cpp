#include <gtest/gtest.h>

#include "workloads/grep.hpp"
#include "workloads/pi_estimator.hpp"
#include "workloads/text_corpus.hpp"

#include "testutil/sim_cluster.hpp"

namespace vhadoop::workloads {
namespace {

// --- grep ----------------------------------------------------------------------

std::vector<mapreduce::KV> grep_corpus() {
  return {
      {"0", "the needle is here and the needleful too"},
      {"1", "no match on this line at all"},
      {"2", "needle again needle again needle"},
      {"3", "haystack haystack needlepoint"},
  };
}

TEST(Grep, FindsAndCountsMatches) {
  auto result = grep("needle", grep_corpus(), 2);
  std::int64_t total = 0;
  bool found_plain = false;
  for (const auto& [word, count] : result.matches) {
    EXPECT_NE(word.find("needle"), std::string::npos);
    total += count;
    if (word == "needle") {
      found_plain = true;
      EXPECT_EQ(count, 4);  // 1 + 3 occurrences
    }
  }
  EXPECT_TRUE(found_plain);
  EXPECT_EQ(total, 6);  // needle x4 + needleful + needlepoint
}

TEST(Grep, OutputSortedByDescendingCount) {
  auto result = grep("needle", grep_corpus(), 3);
  for (std::size_t i = 1; i < result.matches.size(); ++i) {
    EXPECT_GE(result.matches[i - 1].second, result.matches[i].second);
  }
}

TEST(Grep, NoMatchesYieldsEmpty) {
  auto result = grep("zebra", grep_corpus(), 2);
  EXPECT_TRUE(result.matches.empty());
}

TEST(Grep, RunsOnGeneratedCorpus) {
  TextCorpus corpus(500);
  auto lines = corpus.generate(64 * 1024.0);
  auto result = grep(corpus.word(0).substr(0, 2), lines, 4);
  EXPECT_FALSE(result.matches.empty());
  EXPECT_EQ(result.jobs.size(), 2u);
}

// --- pi ------------------------------------------------------------------------

TEST(PiEstimator, ConvergesToPi) {
  PiEstimator pi{.num_maps = 8, .samples_per_map = 200000};
  auto result = pi.run(4);
  EXPECT_EQ(result.total, 8 * 200000);
  EXPECT_NEAR(result.pi, 3.14159, 0.01);
}

TEST(PiEstimator, DeterministicAcrossRuns) {
  PiEstimator pi{.num_maps = 4, .samples_per_map = 50000};
  auto a = pi.run(1);
  auto b = pi.run(4);
  EXPECT_EQ(a.inside, b.inside);  // per-task seeding, thread-count invariant
}

TEST(PiEstimator, SimJobIsComputeBound) {
  auto c = testutil::SimCluster::make(8, false);
  PiEstimator pi{.num_maps = 16, .samples_per_map = 10000000};
  const double nfs_before = c->cloud->nfs_disk_busy_integral();  // boot I/O excluded
  double elapsed = 0.0;
  c->runner->submit(pi.sim_job("/out/pi"),
                    [&](const mapreduce::JobTimeline& t) { elapsed = t.elapsed(); });
  c->engine.run();
  EXPECT_GT(elapsed, 0.0);
  // Essentially no NFS involvement beyond jar localization + tiny output.
  EXPECT_LT(c->cloud->nfs_disk_busy_integral() - nfs_before, 100 * sim::kMiB);
}

}  // namespace
}  // namespace vhadoop::workloads

// Property battery for the trace-driven workload engine: across a sweep of
// seeds and every scheduler policy,
//   1. the same seed yields byte-identical serialized traces AND
//      byte-identical metrics registries across two independent replays,
//   2. no job is ever submitted before its trace arrival instant (audited
//      independently of the replayer's own bookkeeping),
//   3. per-tenant admission caps are never exceeded at any submit instant.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "testutil/sim_cluster.hpp"
#include "workloads/trace.hpp"
#include "workloads/trace_replay.hpp"

using namespace vhadoop;
using mapreduce::SchedulerPolicy;

namespace {

workloads::TraceGenConfig gen_config(std::uint64_t seed) {
  workloads::TraceGenConfig cfg;
  cfg.num_jobs = 60;
  cfg.horizon_seconds = 900.0;
  cfg.num_tenants = 6;
  // Alternate arrival processes across the sweep so both are exercised.
  cfg.process = seed % 2 == 0 ? workloads::ArrivalProcess::Bursty
                              : workloads::ArrivalProcess::Poisson;
  cfg.seed = seed;
  return cfg;
}

mapreduce::HadoopConfig hadoop_config(SchedulerPolicy policy) {
  mapreduce::HadoopConfig hconf;
  hconf.scheduler = policy;
  if (policy == SchedulerPolicy::Capacity) {
    hconf.queues = {{"interactive", 0.6, 1.0, 1.0}, {"batch", 0.4, 1.0, 1.0}};
  }
  return hconf;
}

workloads::AdmissionConfig tight_admission() {
  // Caps low enough that a bursty 60-job trace actually trips them.
  workloads::AdmissionConfig admission;
  admission.max_concurrent_per_tenant = 3;
  admission.max_pending_bytes_per_tenant = 1.5 * sim::kGiB;
  return admission;
}

struct ReplayOutcome {
  std::string metrics_json;
  double makespan = 0.0;
  int accepted = 0;
  int rejected = 0;
  int completed = 0;
  double max_submit_skew = 0.0;
  int audited_submits = 0;
  int cap_violations = 0;
  int early_submits = 0;
  int late_submits = 0;
};

/// One full replay on a fresh 4-worker cluster. The SubmitFn is interposed:
/// it re-derives each job's trace record from the spec name ("family-<idx>")
/// and audits arrival timing and admission caps with its own counters before
/// forwarding to the real runner.
ReplayOutcome replay(SchedulerPolicy policy, const workloads::WorkloadTrace& trace,
                     const workloads::AdmissionConfig& admission) {
  auto cluster = testutil::SimCluster::make(4, /*cross=*/false, hadoop_config(policy));
  ReplayOutcome out;
  const double epoch = cluster->engine.now();

  struct Audit {
    int in_flight = 0;
    double pending_bytes = 0.0;
  };
  auto audit = std::make_shared<std::map<std::string, Audit>>();

  auto* runner = cluster->runner.get();
  auto* engine = &cluster->engine;
  workloads::TraceReplayer replayer(
      cluster->engine, cluster->engine.metrics(), trace,
      [&, audit](mapreduce::SimJobSpec spec,
                 std::function<void(const mapreduce::JobTimeline&)> done) {
        ++out.audited_submits;
        // Independent arrival check: the record index is encoded in the name.
        const std::size_t dash = spec.name.rfind('-');
        const std::size_t idx = std::stoul(spec.name.substr(dash + 1));
        const double arrival = trace.records[idx].arrival_seconds;
        if (engine->now() < epoch + arrival - 1e-9) ++out.early_submits;
        if (engine->now() > epoch + arrival + 1e-9) ++out.late_submits;

        // Independent admission-cap check, keyed on the submitting user.
        Audit& a = (*audit)[spec.user];
        double bytes = 0.0;
        for (const auto& m : spec.maps) bytes += m.input_bytes;
        ++a.in_flight;
        a.pending_bytes += bytes;
        if (a.in_flight > admission.max_concurrent_per_tenant ||
            a.pending_bytes > admission.max_pending_bytes_per_tenant) {
          ++out.cap_violations;
        }
        const std::string user = spec.user;
        runner->submit(std::move(spec),
                       [audit, user, bytes, done = std::move(done)](
                           const mapreduce::JobTimeline& t) {
                         Audit& b = (*audit)[user];
                         --b.in_flight;
                         b.pending_bytes -= bytes;
                         done(t);
                       });
      },
      admission);

  out.makespan = replayer.run_to_completion();
  EXPECT_TRUE(replayer.finished());
  out.accepted = replayer.accepted();
  out.rejected = replayer.rejected();
  out.completed = replayer.completed();
  out.max_submit_skew = replayer.max_submit_skew();
  out.metrics_json = cluster->engine.metrics().to_json();
  return out;
}

class TraceEngineSweep
    : public ::testing::TestWithParam<std::tuple<SchedulerPolicy, std::uint64_t>> {};

TEST_P(TraceEngineSweep, ReplayIsDeterministicOpenLoopAndCapRespecting) {
  const auto [policy, seed] = GetParam();
  const workloads::AdmissionConfig admission = tight_admission();

  const workloads::WorkloadTrace trace = workloads::generate_trace(gen_config(seed));
  EXPECT_EQ(workloads::generate_trace(gen_config(seed)).serialize(), trace.serialize())
      << "trace generation is not a pure function of its config";

  const ReplayOutcome a = replay(policy, trace, admission);
  const ReplayOutcome b = replay(policy, trace, admission);

  // (1) Determinism: two full replays agree byte for byte.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);

  // (2) Open loop: nothing submits before its arrival — by the replayer's
  // own accounting and by the interposed auditor's.
  EXPECT_LE(a.max_submit_skew, 1e-9);
  EXPECT_EQ(a.early_submits, 0);
  EXPECT_EQ(a.late_submits, 0) << "arrivals must not lag their trace instants";

  // (3) Admission caps hold at every submit instant.
  EXPECT_EQ(a.cap_violations, 0);

  // Sanity: every record was either submitted or rejected, and accepted
  // jobs all completed (no faults are injected here).
  EXPECT_EQ(a.accepted + a.rejected, static_cast<int>(trace.records.size()));
  EXPECT_EQ(a.audited_submits, a.accepted);
  EXPECT_EQ(a.completed, a.accepted);
}

std::vector<std::tuple<SchedulerPolicy, std::uint64_t>> sweep_params() {
  std::vector<std::tuple<SchedulerPolicy, std::uint64_t>> params;
  for (const auto policy : {SchedulerPolicy::Fifo, SchedulerPolicy::Fair,
                            SchedulerPolicy::Capacity, SchedulerPolicy::Deadline}) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) params.emplace_back(policy, seed);
  }
  return params;
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<SchedulerPolicy, std::uint64_t>>& info) {
  return std::string(mapreduce::to_string(std::get<0>(info.param))) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TraceEngineSweep, ::testing::ValuesIn(sweep_params()),
                         sweep_name);

// A trace with a long quiet gap before its tail: Engine::run() alone would
// strand the daemon arrivals past the gap; run_to_completion() must not.
TEST(TraceReplayer, SurvivesQuietGapsInTheTrace) {
  workloads::WorkloadTrace trace;
  for (double t : {0.0, 1.0, 3600.0}) {
    workloads::TraceRecord r;
    r.arrival_seconds = t;
    r.family = workloads::JobFamily::Mrbench;
    r.input_mb = 8.0;
    trace.records.push_back(r);
  }
  auto cluster = testutil::SimCluster::make(2, false, hadoop_config(SchedulerPolicy::Fifo));
  auto* runner = cluster->runner.get();
  workloads::TraceReplayer replayer(
      cluster->engine, cluster->engine.metrics(), trace,
      [runner](mapreduce::SimJobSpec spec,
               std::function<void(const mapreduce::JobTimeline&)> done) {
        runner->submit(std::move(spec), std::move(done));
      });
  const double makespan = replayer.run_to_completion();
  EXPECT_TRUE(replayer.finished());
  EXPECT_EQ(replayer.completed(), 3);
  EXPECT_GE(makespan, 3600.0);  // the tail job really ran after the gap
}

// Rejections surface in the per-queue admission counter, not just totals.
TEST(TraceReplayer, RejectionsLandInPerQueueCounters) {
  workloads::WorkloadTrace trace;
  for (int j = 0; j < 6; ++j) {
    workloads::TraceRecord r;
    r.arrival_seconds = 0.0;
    r.tenant = "hog";
    r.queue = "interactive";
    r.family = workloads::JobFamily::Mrbench;
    r.input_mb = 8.0;
    trace.records.push_back(r);
  }
  auto cluster = testutil::SimCluster::make(2, false, hadoop_config(SchedulerPolicy::Fifo));
  auto* runner = cluster->runner.get();
  workloads::AdmissionConfig admission;
  admission.max_concurrent_per_tenant = 2;
  workloads::TraceReplayer replayer(
      cluster->engine, cluster->engine.metrics(), trace,
      [runner](mapreduce::SimJobSpec spec,
               std::function<void(const mapreduce::JobTimeline&)> done) {
        runner->submit(std::move(spec), std::move(done));
      },
      admission);
  replayer.run_to_completion();
  EXPECT_EQ(replayer.accepted(), 2);
  EXPECT_EQ(replayer.rejected(), 4);
  EXPECT_EQ(cluster->engine.metrics()
                .counter("mr.queue.interactive.admission_rejected")
                ->value(),
            4.0);
}

}  // namespace

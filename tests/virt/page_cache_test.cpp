#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "virt/cloud.hpp"

namespace vhadoop::virt {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest()
      : model(engine),
        fabric(engine, model, net::NetConfig{}),
        cloud(engine, model, fabric, VirtConfig{}) {
    h = cloud.add_host("h");
    vm = cloud.create_vm("vm", h, {.vcpus = 1, .memory_mb = 1024});
    cloud.boot_vm(vm, nullptr);
    engine.run();
  }

  double timed_read(double bytes, const std::string& key) {
    const double t0 = engine.now();
    double done = -1.0;
    cloud.disk_read(vm, bytes, [&] { done = engine.now(); }, 1.0, key);
    engine.run();
    return done - t0;
  }

  sim::Engine engine;
  sim::FluidModel model{engine};
  net::Fabric fabric;
  Cloud cloud;
  HostId h{};
  VmId vm{};
};

TEST_F(PageCacheTest, RereadIsMemorySpeed) {
  const double cold = timed_read(64 * sim::kMiB, "blk");
  const double warm = timed_read(64 * sim::kMiB, "blk");
  EXPECT_GT(cold, warm * 10);
}

TEST_F(PageCacheTest, WritePopulatesCache) {
  cloud.disk_write(vm, 32 * sim::kMiB, nullptr, 1.0, "wkey");
  engine.run();
  EXPECT_TRUE(cloud.cached(vm, "wkey"));
  const double warm = timed_read(32 * sim::kMiB, "wkey");
  EXPECT_LT(warm, 0.1);
}

TEST_F(PageCacheTest, UnkeyedIoNeverCached) {
  cloud.disk_write(vm, 32 * sim::kMiB, nullptr);
  engine.run();
  const double t1 = timed_read(32 * sim::kMiB, "");
  const double t2 = timed_read(32 * sim::kMiB, "");
  EXPECT_NEAR(t1, t2, t1 * 0.05);
}

TEST_F(PageCacheTest, LruEvictionUnderPressure) {
  // Cache is 300 MB: writing five 100 MB keys evicts the oldest ones.
  for (int i = 0; i < 5; ++i) {
    cloud.disk_write(vm, 100 * sim::kMiB, nullptr, 1.0, "k" + std::to_string(i));
    engine.run();
  }
  EXPECT_FALSE(cloud.cached(vm, "k0"));
  EXPECT_FALSE(cloud.cached(vm, "k1"));
  EXPECT_TRUE(cloud.cached(vm, "k4"));
}

TEST_F(PageCacheTest, TouchRefreshesLruOrder) {
  // Cache is 300 MB; three 120 MB entries cannot all fit.
  cloud.disk_write(vm, 120 * sim::kMiB, nullptr, 1.0, "a");
  cloud.disk_write(vm, 120 * sim::kMiB, nullptr, 1.0, "b");
  engine.run();
  // Re-read "a" so it becomes most recent, then push a third entry.
  timed_read(120 * sim::kMiB, "a");
  cloud.disk_write(vm, 120 * sim::kMiB, nullptr, 1.0, "c");
  engine.run();
  EXPECT_TRUE(cloud.cached(vm, "a"));
  EXPECT_FALSE(cloud.cached(vm, "b"));
  EXPECT_TRUE(cloud.cached(vm, "c"));
}

TEST_F(PageCacheTest, OversizedEntryBypassesCache) {
  cloud.disk_write(vm, 400 * sim::kMiB, nullptr, 1.0, "huge");
  engine.run();
  EXPECT_FALSE(cloud.cached(vm, "huge"));
}

TEST_F(PageCacheTest, ScratchWriteIsMemorySpeedWhenFitting) {
  double t0 = engine.now(), small = -1.0;
  cloud.scratch_write(vm, 64 * sim::kMiB, [&] { small = engine.now() - t0; }, "spill");
  engine.run();
  EXPECT_LT(small, 0.1);
  EXPECT_TRUE(cloud.cached(vm, "spill"));

  // Beyond the cache: forced writeback at NFS speed.
  t0 = engine.now();
  double big = -1.0;
  cloud.scratch_write(vm, 400 * sim::kMiB, [&] { big = engine.now() - t0; }, "bigspill");
  engine.run();
  EXPECT_GT(big, 3.0);
}

TEST_F(PageCacheTest, CachesArePerVm) {
  VmId other = cloud.create_vm("other", h, {.vcpus = 1, .memory_mb = 1024});
  cloud.boot_vm(other, nullptr);
  engine.run();
  cloud.disk_write(vm, 10 * sim::kMiB, nullptr, 1.0, "mine");
  engine.run();
  EXPECT_TRUE(cloud.cached(vm, "mine"));
  EXPECT_FALSE(cloud.cached(other, "mine"));
}

TEST_F(PageCacheTest, CacheInsertMarksResident) {
  EXPECT_FALSE(cloud.cached(vm, "net-data"));
  cloud.cache_insert(vm, "net-data", 8 * sim::kMiB);
  EXPECT_TRUE(cloud.cached(vm, "net-data"));
}

}  // namespace
}  // namespace vhadoop::virt

#include "virt/cloud.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"

namespace vhadoop::virt {
namespace {

class CloudTest : public ::testing::Test {
 protected:
  CloudTest() : model(engine), fabric(engine, model, net::NetConfig{}), cloud(engine, model, fabric, VirtConfig{}) {
    h0 = cloud.add_host("host0");
    h1 = cloud.add_host("host1");
  }

  VmId make_running_vm(const std::string& name, HostId h, VmSpec spec = {}) {
    VmId vm = cloud.create_vm(name, h, spec);
    cloud.boot_vm(vm, nullptr);
    engine.run();
    return vm;
  }

  sim::Engine engine;
  sim::FluidModel model{engine};
  net::Fabric fabric;
  Cloud cloud;
  HostId h0{}, h1{};
};

TEST_F(CloudTest, VmBootTakesImageFetchPlusBootTime) {
  VmId vm = cloud.create_vm("vm0", h0, {});
  EXPECT_EQ(cloud.state(vm), VmState::Stopped);
  double ready_at = -1.0;
  cloud.boot_vm(vm, [&] { ready_at = engine.now(); });
  EXPECT_EQ(cloud.state(vm), VmState::Booting);
  engine.run();
  EXPECT_EQ(cloud.state(vm), VmState::Running);
  const VirtConfig cfg;
  // Image fetch at NFS disk speed (the NIC is faster) + boot time.
  const double fetch = cfg.vm_boot_io_bytes / cfg.nfs_disk_bw;
  EXPECT_NEAR(ready_at, fetch + cfg.vm_boot_seconds, 0.5);
}

TEST_F(CloudTest, ConcurrentBootsContendOnNfs) {
  std::vector<VmId> vms;
  double last_ready = 0.0;
  int ready = 0;
  for (int i = 0; i < 8; ++i) {
    VmId vm = cloud.create_vm("vm" + std::to_string(i), h0, {});
    cloud.boot_vm(vm, [&] {
      ++ready;
      last_ready = engine.now();
    });
    vms.push_back(vm);
  }
  engine.run();
  EXPECT_EQ(ready, 8);
  const VirtConfig cfg;
  // 8 images share the NFS spindle: total fetch is 8x one image.
  const double serial_fetch = 8 * cfg.vm_boot_io_bytes / cfg.nfs_disk_bw;
  EXPECT_NEAR(last_ready, serial_fetch + cfg.vm_boot_seconds, 1.0);
}

TEST_F(CloudTest, MemoryOversubscriptionRejected) {
  const VirtConfig cfg;
  const int fits = static_cast<int>(cfg.host_memory_mb / 1024.0);
  for (int i = 0; i < fits; ++i) {
    cloud.create_vm("vm" + std::to_string(i), h0, {.vcpus = 1, .memory_mb = 1024});
  }
  EXPECT_THROW(cloud.create_vm("too_many", h0, {.vcpus = 1, .memory_mb = 1024}),
               std::runtime_error);
  EXPECT_THROW(cloud.create_vm("huge", h1, {.vcpus = 1, .memory_mb = cfg.host_memory_mb + 1}),
               std::runtime_error);
}

TEST_F(CloudTest, DestroyVmReleasesMemory) {
  VmId vm = cloud.create_vm("vm0", h0, {.vcpus = 1, .memory_mb = 4096});
  const double before = cloud.host_memory_free_mb(h0);
  cloud.destroy_vm(vm);
  EXPECT_DOUBLE_EQ(cloud.host_memory_free_mb(h0), before + 4096);
}

TEST_F(CloudTest, ComputeRunsAtVcpuSpeed) {
  VmId vm = make_running_vm("vm0", h0);
  double done = -1.0;
  const double t0 = engine.now();
  cloud.run_compute(vm, 10.0, [&] { done = engine.now(); });
  engine.run();
  EXPECT_NEAR(done - t0, 10.0, 1e-6);  // 1 VCPU => 10 core-seconds in 10s
}

TEST_F(CloudTest, SingleVcpuCannotUseTwoCores) {
  VmId vm = make_running_vm("vm0", h0);
  double t0 = engine.now();
  int done = 0;
  double last = 0.0;
  // Two concurrent 5-core-second burns on a 1-VCPU guest: serialized by
  // the VCPU allotment -> 10 seconds total, not 5.
  for (int i = 0; i < 2; ++i) {
    cloud.run_compute(vm, 5.0, [&] {
      ++done;
      last = engine.now();
    });
  }
  engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(last - t0, 10.0, 1e-6);
}

TEST_F(CloudTest, HostCpuSharedWhenOversubscribed) {
  // 24 single-VCPU VMs on a 16-thread host: 24x5 core-seconds across 16
  // threads takes 7.5 s.
  std::vector<VmId> vms;
  for (int i = 0; i < 24; ++i) {
    vms.push_back(make_running_vm("vm" + std::to_string(i), h0));
  }
  const double t0 = engine.now();
  int done = 0;
  double last = 0.0;
  for (VmId vm : vms) {
    cloud.run_compute(vm, 5.0, [&] {
      ++done;
      last = engine.now();
    });
  }
  engine.run();
  EXPECT_EQ(done, 24);
  EXPECT_NEAR(last - t0, 7.5, 1e-6);
}

TEST_F(CloudTest, CreditSchedulerCapThrottlesGuest) {
  VmId vm = make_running_vm("vm0", h0);
  cloud.set_vcpu_cap(vm, 0.25);
  double done = -1.0;
  const double t0 = engine.now();
  cloud.run_compute(vm, 5.0, [&] { done = engine.now(); });
  engine.run();
  EXPECT_NEAR(done - t0, 20.0, 1e-6);  // 5 core-s at a quarter core

  // Restoring the cap restores full speed.
  cloud.set_vcpu_cap(vm, 1.0);
  const double t1 = engine.now();
  cloud.run_compute(vm, 5.0, [&] { done = engine.now(); });
  engine.run();
  EXPECT_NEAR(done - t1, 5.0, 1e-6);

  EXPECT_THROW(cloud.set_vcpu_cap(vm, 0.0), std::invalid_argument);
  EXPECT_THROW(cloud.set_vcpu_cap(vm, 1.5), std::invalid_argument);
}

TEST_F(CloudTest, DiskIoIsBoundedByNfsPath) {
  VmId vm = make_running_vm("vm0", h0);
  const double bytes = 200 * sim::kMiB;
  double rd = -1.0, t0 = engine.now();
  cloud.disk_read(vm, bytes, [&] { rd = engine.now(); });
  engine.run();
  const VirtConfig cfg;
  // vdisk ceiling (90 MB/s) is tighter than NFS disk (120) and GbE.
  EXPECT_NEAR(rd - t0, bytes / cfg.vdisk_bw, 0.1);
}

TEST_F(CloudTest, ManyVmsDiskIoBottlenecksOnNfsSpindle) {
  std::vector<VmId> vms;
  for (int i = 0; i < 8; ++i) vms.push_back(make_running_vm("vm" + std::to_string(i), h0));
  const double bytes = 50 * sim::kMiB;
  const double t0 = engine.now();
  int done = 0;
  double last = 0.0;
  for (VmId vm : vms) {
    cloud.disk_write(vm, bytes, [&] {
      ++done;
      last = engine.now();
    });
  }
  engine.run();
  const VirtConfig cfg;
  EXPECT_EQ(done, 8);
  EXPECT_NEAR(last - t0, 8 * bytes / cfg.nfs_disk_bw, 0.3);
}

TEST_F(CloudTest, CoLocatedTransferFasterThanCrossHost) {
  VmId a = make_running_vm("a", h0);
  VmId b = make_running_vm("b", h0);
  VmId c = make_running_vm("c", h1);
  const double bytes = 64 * sim::kMiB;
  double t0 = engine.now(), intra = -1.0;
  cloud.vm_transfer(a, b, bytes, [&] { intra = engine.now() - t0; });
  engine.run();
  t0 = engine.now();
  double cross = -1.0;
  cloud.vm_transfer(a, c, bytes, [&] { cross = engine.now() - t0; });
  engine.run();
  EXPECT_LT(intra, cross);
  EXPECT_GT(cross / intra, 3.0);
}

TEST_F(CloudTest, MessageLatencyLowerIntraHost) {
  VmId a = make_running_vm("a", h0);
  VmId b = make_running_vm("b", h0);
  VmId c = make_running_vm("c", h1);
  EXPECT_LT(cloud.message_latency(a, b), cloud.message_latency(a, c));
}

// --- migration ---------------------------------------------------------------

TEST_F(CloudTest, IdleMigrationTimeScalesWithMemory) {
  VmId small = make_running_vm("small", h0, {.vcpus = 1, .memory_mb = 512});
  VmId big = make_running_vm("big", h0, {.vcpus = 1, .memory_mb = 1024});

  MigrationResult r_small, r_big;
  cloud.migrate(small, h1, DirtyModel::idle(), [&](const MigrationResult& r) { r_small = r; });
  engine.run();
  cloud.migrate(big, h1, DirtyModel::idle(), [&](const MigrationResult& r) { r_big = r; });
  engine.run();

  EXPECT_GT(r_big.migration_time, r_small.migration_time * 1.7);
  // Paper observation (i): downtime has no causal link to memory size.
  EXPECT_NEAR(r_big.downtime, r_small.downtime, 0.05);
}

TEST_F(CloudTest, LoadedGuestHasMuchLongerDowntime) {
  VmId idle_vm = make_running_vm("idle", h0, {.vcpus = 1, .memory_mb = 1024});
  VmId busy_vm = make_running_vm("busy", h0, {.vcpus = 1, .memory_mb = 1024});

  MigrationResult r_idle, r_busy;
  cloud.migrate(idle_vm, h1, DirtyModel::idle(), [&](const MigrationResult& r) { r_idle = r; });
  engine.run();
  cloud.migrate(busy_vm, h1, DirtyModel::wordcount(), [&](const MigrationResult& r) { r_busy = r; });
  engine.run();

  EXPECT_GT(r_busy.downtime, r_idle.downtime * 4.0);
  EXPECT_GT(r_busy.migration_time, r_idle.migration_time);
  EXPECT_GT(r_busy.rounds, r_idle.rounds);
}

TEST_F(CloudTest, MigrationMovesVmToDestinationHost) {
  VmId vm = make_running_vm("vm0", h0, {.vcpus = 1, .memory_mb = 1024});
  bool done = false;
  cloud.migrate(vm, h1, DirtyModel::idle(), [&](const MigrationResult&) { done = true; });
  EXPECT_EQ(cloud.state(vm), VmState::Migrating);
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cloud.host_of(vm), h1);
  EXPECT_EQ(cloud.state(vm), VmState::Running);
}

TEST_F(CloudTest, MigrationReservesDestinationMemory) {
  const VirtConfig cfg;
  // Fill h1 so the migration target has no room.
  const int fits = static_cast<int>(cfg.host_memory_mb / 1024.0);
  for (int i = 0; i < fits; ++i) {
    cloud.create_vm("filler" + std::to_string(i), h1, {.vcpus = 1, .memory_mb = 1024});
  }
  VmId vm = make_running_vm("vm0", h0, {.vcpus = 1, .memory_mb = 1024});
  EXPECT_THROW(cloud.migrate(vm, h1, DirtyModel::idle(), nullptr), std::runtime_error);
}

TEST_F(CloudTest, MigrationContendingWithTrafficIsSlower) {
  VmId vm = make_running_vm("vm0", h0, {.vcpus = 1, .memory_mb = 1024});
  VmId other = make_running_vm("other", h0, {.vcpus = 1, .memory_mb = 1024});
  VmId sink = make_running_vm("sink", h1, {.vcpus = 1, .memory_mb = 1024});

  MigrationResult quiet;
  cloud.migrate(vm, h1, DirtyModel::idle(), [&](const MigrationResult& r) { quiet = r; });
  engine.run();

  // Saturate the h0->h1 direction with guest traffic, then migrate back.
  cloud.vm_transfer(other, sink, 10 * sim::kGiB, nullptr);
  MigrationResult contended;
  cloud.migrate(vm, h0, DirtyModel::idle(), [&](const MigrationResult& r) { contended = r; });
  engine.run();
  // h1->h0 migration direction is opposite to the bulk flow... so instead
  // compare: quiet was unobstructed; contended shares h1.tx with nothing
  // but h0.rx with the sink's incoming traffic? The bulk flow is h0->h1:
  // it uses h0.tx and h1.rx; the migration h1->h0 uses h1.tx and h0.rx.
  // No overlap -> equal. This asserts full-duplex correctness instead.
  EXPECT_NEAR(contended.migration_time, quiet.migration_time, quiet.migration_time * 0.1);
}

TEST_F(CloudTest, MigrationSharesNicWithSameDirectionTraffic) {
  VmId vm = make_running_vm("vm0", h0, {.vcpus = 1, .memory_mb = 1024});
  VmId src = make_running_vm("src", h0, {.vcpus = 1, .memory_mb = 1024});
  VmId sink = make_running_vm("sink", h1, {.vcpus = 1, .memory_mb = 1024});

  MigrationResult quiet;
  cloud.migrate(vm, h1, DirtyModel::idle(), [&](const MigrationResult& r) { quiet = r; });
  engine.run();
  cloud.migrate(vm, h0, DirtyModel::idle(), [&](const MigrationResult&) {});
  engine.run();

  cloud.vm_transfer(src, sink, 10 * sim::kGiB, nullptr);  // same direction as migration
  MigrationResult contended;
  cloud.migrate(vm, h1, DirtyModel::idle(), [&](const MigrationResult& r) { contended = r; });
  engine.run_until(engine.now() + 500.0);
  EXPECT_GT(contended.migration_time, quiet.migration_time * 1.5);
}

}  // namespace
}  // namespace vhadoop::virt

#include "virt/migration_bench.hpp"

#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"

namespace vhadoop::virt {
namespace {

class ClusterMigrationTest : public ::testing::Test {
 protected:
  ClusterMigrationTest()
      : model(engine),
        fabric(engine, model, net::NetConfig{}),
        cloud(engine, model, fabric, VirtConfig{}) {
    src = cloud.add_host("src");
    dst = cloud.add_host("dst");
  }

  std::vector<VmId> make_cluster(int n, double memory_mb) {
    std::vector<VmId> vms;
    for (int i = 0; i < n; ++i) {
      VmId vm = cloud.create_vm("vm" + std::to_string(i), src,
                                {.vcpus = 1, .memory_mb = memory_mb});
      cloud.boot_vm(vm, nullptr);
      vms.push_back(vm);
    }
    engine.run();
    return vms;
  }

  sim::Engine engine;
  sim::FluidModel model{engine};
  net::Fabric fabric;
  Cloud cloud;
  HostId src{}, dst{};
};

TEST_F(ClusterMigrationTest, MigratesAllVmsAndReportsPerVmResults) {
  auto vms = make_cluster(8, 1024);
  ClusterMigration bench(cloud, 2);
  ClusterMigrationResult result;
  bool done = false;
  bench.run(vms, dst, [](VmId) { return DirtyModel::idle(); },
            [&](const ClusterMigrationResult& r) {
              result = r;
              done = true;
            });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.per_vm.size(), 8u);
  for (VmId vm : vms) EXPECT_EQ(cloud.host_of(vm), dst);
  EXPECT_GT(result.overall_migration_time, 0.0);
  EXPECT_GT(result.overall_downtime, 0.0);
}

TEST_F(ClusterMigrationTest, OverallTimeScalesWithMemorySize) {
  auto small = make_cluster(4, 512);
  ClusterMigration bench(cloud, 2);
  ClusterMigrationResult r_small, r_big;
  bench.run(small, dst, [](VmId) { return DirtyModel::idle(); },
            [&](const ClusterMigrationResult& r) { r_small = r; });
  engine.run();

  // Fresh set of larger VMs, migrated over the same quiet link.
  std::vector<VmId> big;
  for (int i = 0; i < 4; ++i) {
    VmId vm = cloud.create_vm("big" + std::to_string(i), src, {.vcpus = 1, .memory_mb = 1024});
    cloud.boot_vm(vm, nullptr);
    big.push_back(vm);
  }
  engine.run();
  bench.run(big, dst, [](VmId) { return DirtyModel::idle(); },
            [&](const ClusterMigrationResult& r) { r_big = r; });
  engine.run();
  EXPECT_GT(r_big.overall_migration_time, r_small.overall_migration_time * 1.7);
}

TEST_F(ClusterMigrationTest, LoadedClusterDowntimeBlowsUp) {
  auto vms = make_cluster(8, 1024);
  ClusterMigration bench(cloud, 2);
  ClusterMigrationResult r_idle;
  bench.run(vms, dst, [](VmId) { return DirtyModel::idle(); },
            [&](const ClusterMigrationResult& r) { r_idle = r; });
  engine.run();

  ClusterMigrationResult r_busy;
  bench.run(vms, src, [](VmId) { return DirtyModel::wordcount(); },
            [&](const ClusterMigrationResult& r) { r_busy = r; });
  engine.run();

  EXPECT_GT(r_busy.overall_downtime, r_idle.overall_downtime * 4.0);
  EXPECT_GT(r_busy.overall_migration_time, r_idle.overall_migration_time);
}

TEST_F(ClusterMigrationTest, ConcurrencyOneIsSequential) {
  auto vms = make_cluster(4, 1024);
  ClusterMigration seq(cloud, 1);
  ClusterMigrationResult result;
  seq.run(vms, dst, [](VmId) { return DirtyModel::idle(); },
          [&](const ClusterMigrationResult& r) { result = r; });
  engine.run();
  // Sequential: overall time ~ sum of per-VM times.
  double sum = 0.0;
  for (const auto& r : result.per_vm) sum += r.migration_time;
  EXPECT_NEAR(result.overall_migration_time, sum, sum * 0.1);
}

TEST_F(ClusterMigrationTest, ReservedStreamWeightBeatsBestEffortUnderLoad) {
  // The authors' prior work (ref [18]): reserving bandwidth for the
  // migration stream shortens migration when guests are chatty.
  auto run_with_weight = [](double weight) {
    sim::Engine eng;
    sim::FluidModel mdl(eng);
    net::Fabric fab(eng, mdl, net::NetConfig{});
    VirtConfig cfg;
    cfg.migration_stream_weight = weight;
    Cloud cld(eng, mdl, fab, cfg);
    HostId from = cld.add_host("src");
    HostId to = cld.add_host("dst");
    VmId vm = cld.create_vm("vm", from, {.vcpus = 1, .memory_mb = 1024});
    VmId chatty = cld.create_vm("chatty", from, {.vcpus = 1, .memory_mb = 1024});
    VmId sink = cld.create_vm("sink", to, {.vcpus = 1, .memory_mb = 1024});
    cld.boot_vm(vm, nullptr);
    cld.boot_vm(chatty, nullptr);
    cld.boot_vm(sink, nullptr);
    eng.run();
    // Saturate the migration direction with guest traffic.
    for (int i = 0; i < 4; ++i) cld.vm_transfer(chatty, sink, 20 * sim::kGiB, nullptr);
    MigrationResult result;
    cld.migrate(vm, to, DirtyModel::idle(),
                [&](const MigrationResult& r) { result = r; });
    eng.run_until(eng.now() + 2000.0);
    return result.migration_time;
  };
  const double best_effort = run_with_weight(1.0);
  const double reserved = run_with_weight(8.0);
  ASSERT_GT(best_effort, 0.0);
  ASSERT_GT(reserved, 0.0);
  EXPECT_LT(reserved, best_effort * 0.5);
}

TEST_F(ClusterMigrationTest, EmptyVmSetThrows) {
  ClusterMigration bench(cloud, 2);
  EXPECT_THROW(bench.run({}, dst, [](VmId) { return DirtyModel::idle(); }, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace vhadoop::virt

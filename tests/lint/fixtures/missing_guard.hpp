// Fixture: header with no #pragma once / include guard (finding) that also
// leaks a namespace (finding).
#include <string>

using namespace std;

inline string fixture_greet() { return "hi"; }

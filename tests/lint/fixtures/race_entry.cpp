// Fixture: entry half of the cross-TU pair — the lambda handed to
// parallel_for calls into race_worker.cpp, two files away from the write.
#include <cstddef>

#include "race_shared.hpp"

namespace fx {
void drive(std::size_t n) {
  parallel_for(n, 4, [&](std::size_t i) { bump(static_cast<long>(i)); });
}
}  // namespace fx

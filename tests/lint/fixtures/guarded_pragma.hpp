#pragma once

// Fixture: clean header; no findings.
#include <string>

inline std::string fixture_pragma_ok() { return "ok"; }

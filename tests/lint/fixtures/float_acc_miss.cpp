// Fixture: accumulation patterns no-unordered-float-accumulation must NOT
// flag — integer tallies over unordered containers and float sums over
// ordered ones. (The unordered loops still trip no-unordered-iteration;
// the test only counts the accumulation rule.)
#include <cstddef>
#include <map>
#include <unordered_map>

double fixture_ok(const std::unordered_map<int, double>& um,
                  const std::map<int, double>& om) {
  std::size_t n = 0;
  for (const auto& [k, v] : um) n += 1;
  double sum = 0.0;
  for (const auto& [k, v] : om) sum += v;
  return sum + static_cast<double>(n);
}

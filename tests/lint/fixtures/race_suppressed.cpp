// Fixture: a captured-reference write inside a worker lambda, suppressed
// with a cited audit.
#include <cstddef>
#include <vector>

namespace fx {
void sum_serial(const std::vector<long>& xs, long& acc) {
  parallel_for(xs.size(), 1, [&](std::size_t i) {
    // vlint: allow(thread-shared-mutation) audited PR 8: pool is constructed with one thread here, so the accumulation is serial
    acc += xs[i];
  });
}
}  // namespace fx

// Fixture: every loop here must trip no-unordered-iteration.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

using Index = std::unordered_map<std::string, int>;  // alias is tracked too

struct FixtureTable {
  std::unordered_map<std::uint64_t, double> cells_;
  double sum() const {
    double s = 0.0;
    for (const auto& [k, v] : cells_) s += v;  // finding: range-for over member
    return s;
  }
};

int fixture_iterate() {
  std::unordered_set<int> seen{1, 2, 3};
  int n = 0;
  for (int v : seen) n += v;  // finding: range-for over local

  Index index;
  for (const auto& [key, val] : index) n += val;  // finding: range-for over alias

  for (auto it = seen.begin(); it != seen.end(); ++it) n += *it;  // finding: .begin()
  return n;
}

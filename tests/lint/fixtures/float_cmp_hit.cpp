// Fixture: exact floating comparisons the rule must flag — a literal operand
// and a member-chain terminal declared double.
struct Rate {
  double rate = 0.0;
};

bool fixture_cmp(double x, const Rate& a, const Rate& b) {
  const bool eq = x == 1.5;
  const bool ne = a.rate != b.rate;
  return eq || ne;
}

// Fixture: nothing here reads the host clock; no findings expected.
#include <string>

struct Event {
  double time = 0.0;
  bool operator>(const Event& o) const { return time > o.time; }
};

struct SimClock {
  double now_ = 0.0;
  double time() const { return now_; }  // member named `time` is fine
};

namespace myns {
double time(int x) { return static_cast<double>(x); }
}  // namespace myns

double fixture_sim_time(const SimClock& clk, const SimClock* pclk) {
  const std::string s = "call to time() inside a string literal";
  // A comment mentioning std::chrono::system_clock must not fire either.
  return clk.time() + pclk->time() + myns::time(3) + static_cast<double>(s.size());
}

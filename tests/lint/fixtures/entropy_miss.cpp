// Fixture: no OS entropy drawn; no findings expected.
#include <cstdint>
#include <string>

struct FakeEnv {
  std::string getenv(const std::string&) const { return "stub"; }  // member, fine
};

// Identifiers that merely *contain* banned names must not fire.
int operand(int strand, int brand) { return strand + brand; }

std::uint64_t fixture_deterministic(const FakeEnv& env, const FakeEnv* penv) {
  const std::string s = "rand() and getenv() inside a string literal";
  // A comment mentioning std::random_device must not fire either.
  return env.getenv("A").size() + penv->getenv("B").size() + s.size();
}

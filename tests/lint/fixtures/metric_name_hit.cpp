// Fixture: every metric literal here must trip metric-name.
#include <string>

struct FakeRegistry {
  int counter(const std::string&) { return 0; }
  int gauge(const std::string&) { return 0; }
  int histogram(const std::string&) { return 0; }
};

int fixture_metric_names(FakeRegistry& reg, FakeRegistry* preg, const std::string& q) {
  int a = reg.counter("BadName");            // finding: uppercase, no dot
  int b = reg.gauge("noseparator");          // finding: no dot
  int c = preg->histogram("Upper.case");     // finding: uppercase segment
  int d = reg.counter("mr..double_dot");     // finding: empty segment
  int e = reg.gauge(".leading.dot");         // finding: empty first segment
  int f = reg.counter("queue" + q);          // finding: prefix without a dot
  return a + b + c + d + e + f;
}

// Fixture: comparisons no-exact-float-compare must NOT flag — call
// terminals (unknown return type), nullptr/string operands, and names this
// file declares with an integral type.
#include <cstdint>
#include <string>
#include <vector>

struct Blob {
  std::uint64_t v = 0;
};

bool fixture_ok(const std::vector<double>& xs, const char* p, const Blob& b,
                std::size_t n, const std::string& s) {
  const bool sized = xs.size() == n;
  const bool present = p != nullptr;
  const bool tagged = b.v != 0;
  const bool named = s == "x";
  return sized && present && tagged && named;
}

// Fixture: every construct here must trip no-os-entropy.
#include <cstdlib>
#include <random>

int fixture_entropy() {
  std::random_device rd;                  // finding: random_device
  int a = rand();                         // finding: rand()
  int b = std::rand();                    // finding: std::rand()
  srand(42u);                             // finding: srand()
  const char* home = std::getenv("HOME"); // finding: getenv()
  return a + b + static_cast<int>(rd()) + (home ? 1 : 0);
}

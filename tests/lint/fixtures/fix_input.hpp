// Fixture: --fix input — missing header guard and missing include for
// fx::Helper (golden output: fix_expected.hpp).

namespace fx {
inline int helper_size(const Helper& h) { return h.n; }
}  // namespace fx

// Fixture: floating accumulation inside unordered-container loops — both the
// compound-assign and the x = x + ... spellings.
#include <unordered_map>

double fixture_sum(const std::unordered_map<int, double>& m) {
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

double fixture_sum_rebind(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [k, v] : m) total = total + v;
  return total;
}

// Fixture: --fix input — missing header guard and missing include for
// fx::Helper (golden output: fix_expected.hpp).

#pragma once

#include "util/fix_dep.hpp"

namespace fx {
inline int helper_size(const Helper& h) { return h.n; }
}  // namespace fx

// Fixture: a determinism oracle — one file-scope suppression covers every
// exact comparison in the file.
// vlint: allow-file(no-exact-float-compare) audited PR 8: byte-identity oracle fixture; both operands come from the same deterministic pipeline
bool fixture_oracle(double a, double b, double c) {
  return a == b && b != c;
}

#ifndef VHADOOP_TESTS_LINT_FIXTURES_GUARDED_IFNDEF_HPP_
#define VHADOOP_TESTS_LINT_FIXTURES_GUARDED_IFNDEF_HPP_

// Fixture: classic include guard is accepted; no findings.
inline int fixture_ifndef_ok() { return 1; }

#endif  // VHADOOP_TESTS_LINT_FIXTURES_GUARDED_IFNDEF_HPP_

// Fixture: malformed vlint directives are findings themselves.
#include <cstdlib>

// vlint: allow(no-os-entropy)
const char* fixture_missing_reason() { return std::getenv("A"); }

// vlint: allow(no-such-rule) this rule name does not exist
int fixture_unknown_rule() { return 1; }

// vlint: this is not even an allow() directive
int fixture_malformed() { return 2; }

// vlint: allow(no-os-entropy) has a reason but cites no auditing PR
const char* fixture_uncited_reason() { return std::getenv("B"); }

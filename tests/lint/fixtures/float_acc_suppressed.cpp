// Fixture: a cited suppression silences the accumulation (and the iteration
// finding on the loop header).
#include <unordered_map>

double fixture_suppressed(const std::unordered_map<int, double>& m) {
  double sum = 0.0;
  // vlint: allow(no-unordered-iteration) audited PR 8: reduction feeds a max(), order cannot be observed
  for (const auto& [k, v] : m) {
    // vlint: allow(no-unordered-float-accumulation) audited PR 8: re-summed in key order before export
    sum += v;
  }
  return sum;
}

// Fixture: an order-insensitive unordered loop, suppressed with a reason.
#include <unordered_map>

double fixture_total(const std::unordered_map<int, double>& weights_) {
  double lo = 1e300;
  // vlint: allow(no-unordered-iteration) audited PR 8: min-reduction, order-independent
  for (const auto& [k, v] : weights_) {
    // vlint: allow(no-unordered-float-accumulation) audited PR 8: min-reduction, order-independent
    lo = v < lo ? v : lo;
  }
  return lo;
}

// Fixture: a suppressed getenv (the CLI-argument-parsing carve-out).
#include <cstdlib>

// vlint: allow(no-os-entropy) audited PR 8: reads the output directory override, never feeds simulation state
const char* fixture_out_dir() { return std::getenv("FIXTURE_OUT_DIR"); }

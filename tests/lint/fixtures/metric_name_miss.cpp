// Fixture: nothing here may trip metric-name.
#include <string>

struct FakeRegistry {
  int counter(const std::string&) { return 0; }
  int gauge(const std::string&) { return 0; }
  int histogram(const std::string&) { return 0; }
};

int counter(const std::string&) { return 0; }

int fixture_metric_names_ok(FakeRegistry& reg, FakeRegistry* preg, const std::string& q) {
  int a = reg.counter("sched.tasks_dispatched");      // compliant
  int b = reg.gauge("hdfs.blocks_under_replicated");  // compliant
  int c = preg->histogram("net.flow_seconds");        // compliant
  int d = reg.counter("mr.queue." + q);               // compliant prefix (dotted)
  int e = reg.histogram("mr.queue." + q + ".wait");   // compliant prefix
  int f = counter("NotAMemberCall");                  // free function, not Registry
  int g = reg.counter(q);                             // non-literal: out of scope
  return a + b + c + d + e + f + g;
}

// Fixture: a legacy metric name kept alive under suppression.
#include <string>

struct FakeRegistry {
  int counter(const std::string&) { return 0; }
};

int fixture_legacy_metric(FakeRegistry& reg) {
  // vlint: allow(metric-name) audited PR 8: legacy dashboard still scrapes the flat name
  return reg.counter("legacyTotal");
}

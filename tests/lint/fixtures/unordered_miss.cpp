// Fixture: ordered iteration and order-free unordered access; no findings.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int fixture_ordered() {
  std::map<std::string, int> sorted{{"a", 1}, {"b", 2}};
  int n = 0;
  for (const auto& [k, v] : sorted) n += v;  // std::map: fine

  std::vector<int> vec{1, 2, 3};
  for (int v : vec) n += v;  // vector: fine

  std::unordered_map<std::string, int> lut{{"x", 1}};
  n += lut["x"];                       // keyed access: fine
  if (lut.contains("y")) n += 1;       // membership: fine
  auto it = lut.find("x");             // point lookup: fine
  if (it != lut.end()) n += it->second;
  lut.erase("x");
  return n;
}

// Fixture: shared-state API for the cross-TU race pair (race_entry.cpp
// drives a worker lambda that reaches the write in race_worker.cpp).
#pragma once

namespace fx {
void bump(long v);
}  // namespace fx

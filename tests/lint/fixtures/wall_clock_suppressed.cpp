// Fixture: one suppressed wall-clock use (trailing and preceding-line forms).
#include <chrono>

double fixture_host_elapsed() {
  auto t0 = std::chrono::steady_clock::now();  // vlint: allow(no-wall-clock) audited PR 8: host-side harness timing, never enters the simulation
  // vlint: allow(no-wall-clock) audited PR 8: host-side harness timing, never enters the simulation
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Fixture: provider header for the --fix golden pair.
#pragma once

namespace fx {
struct Helper {
  int n = 0;
};
}  // namespace fx

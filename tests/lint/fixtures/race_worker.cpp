// Fixture: the racy half of the cross-TU pair — bump() writes namespace-scope
// state and is reached from the parallel_for lambda in race_entry.cpp.
#include "race_shared.hpp"

namespace fx {
long total = 0;

void bump(long v) { total += v; }
}  // namespace fx

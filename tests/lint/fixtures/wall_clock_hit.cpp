// Fixture: every construct here must trip no-wall-clock.
#include <chrono>
#include <ctime>

double fixture_now_ms() {
  auto a = std::chrono::system_clock::now();            // finding: system_clock
  auto b = std::chrono::steady_clock::now();            // finding: steady_clock
  auto c = std::chrono::high_resolution_clock::now();   // finding: high_resolution_clock
  std::time_t t = std::time(nullptr);                   // finding: std::time()
  std::time_t u = ::time(nullptr);                      // finding: ::time()
  std::clock_t k = clock();                             // finding: clock()
  (void)a;
  (void)b;
  (void)c;
  (void)u;
  (void)k;
  return static_cast<double>(t);
}

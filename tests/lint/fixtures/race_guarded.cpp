// Fixture: lock-guarded variant of the race pair — same shape as
// race_worker.cpp/race_entry.cpp but every shared write happens under a
// lock_guard, so thread-shared-mutation must stay quiet.
#include <cstddef>
#include <mutex>

namespace fx {
long guarded_total = 0;
std::mutex guarded_mu;

void bump_guarded(long v) {
  std::lock_guard<std::mutex> g(guarded_mu);
  guarded_total += v;
}

void drive_guarded(std::size_t n) {
  parallel_for(n, 4, [&](std::size_t i) { bump_guarded(static_cast<long>(i)); });
}
}  // namespace fx

// Fixture: the sanctioned parallel pattern — every worker writes only its
// own index slot and lambda-local temporaries.
#include <cstddef>
#include <vector>

namespace fx {
void square_all(std::vector<long>& out) {
  parallel_for(out.size(), 4, [&](std::size_t i) {
    long x = static_cast<long>(i);
    x *= x;
    out[i] = x;
  });
}
}  // namespace fx

// vhadoop_lint self-tests: each rule against hit / miss / suppression
// fixtures (tests/lint/fixtures/), plus lexer unit tests on inline sources.
//
// The fixtures are never compiled and never seen by the tree-wide lint.tree
// ctest case (the walker skips tests/lint/); they exist only as input here.

#include "vhadoop_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

vlint::SourceFile load_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return vlint::lex(name, "tests/lint/fixtures/" + name, buf.str());
}

vlint::Result lint_fixture(const std::string& name) {
  std::vector<vlint::SourceFile> files;
  files.push_back(load_fixture(name));
  return vlint::run(files);
}

vlint::Result lint_source(const std::string& rel, const std::string& text) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex(rel, rel, text));
  return vlint::run(files);
}

int count_rule(const vlint::Result& res, const std::string& rule, bool suppressed = false) {
  return static_cast<int>(
      std::count_if(res.findings.begin(), res.findings.end(), [&](const vlint::Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

// --- no-wall-clock ---------------------------------------------------------

TEST(NoWallClock, FlagsEveryHostClockRead) {
  const auto res = lint_fixture("wall_clock_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-wall-clock"), 6);
  EXPECT_EQ(res.unsuppressed, 6);
}

TEST(NoWallClock, IgnoresMembersOtherNamespacesAndLiterals) {
  const auto res = lint_fixture("wall_clock_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in wall_clock_miss.cpp";
}

TEST(NoWallClock, SuppressionWithReasonSilencesBothForms) {
  const auto res = lint_fixture("wall_clock_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-wall-clock", /*suppressed=*/true), 2);
  for (const auto& f : res.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.reason.empty());
    }
  }
}

TEST(NoWallClock, SimTimeHeaderIsExempt) {
  const auto res =
      lint_source("src/sim/time.hpp", "#pragma once\n#include <chrono>\n"
                                      "inline auto t() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

// --- no-os-entropy ---------------------------------------------------------

TEST(NoOsEntropy, FlagsEveryEntropySource) {
  const auto res = lint_fixture("entropy_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-os-entropy"), 5);
}

TEST(NoOsEntropy, IgnoresMembersAndSubstrings) {
  const auto res = lint_fixture("entropy_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in entropy_miss.cpp";
}

TEST(NoOsEntropy, SuppressedGetenvIsClean) {
  const auto res = lint_fixture("entropy_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-os-entropy", /*suppressed=*/true), 1);
}

TEST(NoOsEntropy, RngImplementationIsExempt) {
  const auto res = lint_source("src/sim/rng.cpp",
                               "#include <random>\nstd::random_device seed_source;\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

// --- bad-suppression -------------------------------------------------------

TEST(BadSuppression, MissingReasonUnknownRuleAndMalformedAllFlagged) {
  const auto res = lint_fixture("bad_suppression.cpp");
  EXPECT_EQ(count_rule(res, "bad-suppression"), 3);
  // The reason-less allow() must NOT silence the getenv finding under it.
  EXPECT_EQ(count_rule(res, "no-os-entropy"), 1);
}

// --- no-unordered-iteration ------------------------------------------------

TEST(NoUnorderedIteration, FlagsRangeForIteratorAndAliasLoops) {
  const auto res = lint_fixture("unordered_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-unordered-iteration"), 4);
}

TEST(NoUnorderedIteration, OrderedContainersAndPointAccessAreClean) {
  const auto res = lint_fixture("unordered_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in unordered_miss.cpp";
}

TEST(NoUnorderedIteration, SuppressionWithReasonAccepted) {
  const auto res = lint_fixture("unordered_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-unordered-iteration", /*suppressed=*/true), 1);
}

TEST(NoUnorderedIteration, ResolvesMemberTypeAcrossFiles) {
  // Declaration in the "header", iteration in the "cpp" — the name set is
  // global across the linted file set.
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("t.hpp", "t.hpp",
                             "#pragma once\n#include <unordered_map>\n"
                             "struct S { std::unordered_map<int,int> table_; };\n"));
  files.push_back(vlint::lex("t.cpp", "t.cpp",
                             "#include \"t.hpp\"\nint f(S& s) {\n  int n = 0;\n"
                             "  for (auto& [k, v] : s.table_) n += v;\n  return n;\n}\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "no-unordered-iteration"), 1);
}

// --- metric-name -----------------------------------------------------------

TEST(MetricName, FlagsEveryNonConformingLiteral) {
  const auto res = lint_fixture("metric_name_hit.cpp");
  EXPECT_EQ(count_rule(res, "metric-name"), 6);
  EXPECT_EQ(res.unsuppressed, 6);
}

TEST(MetricName, CompliantPrefixesAndNonRegistryCallsAreClean) {
  const auto res = lint_fixture("metric_name_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in metric_name_miss.cpp";
}

TEST(MetricName, SuppressionWithReasonAccepted) {
  const auto res = lint_fixture("metric_name_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "metric-name", /*suppressed=*/true), 1);
}

TEST(MetricName, ArrowCallAndDottedPrefixEndingInDot) {
  const auto res = lint_source(
      "m.cpp",
      "int f(R* r, const std::string& q) {\n"
      "  return r->counter(\"mr.queue.\" + q + \".slo_missed\");\n"
      "}\n");
  EXPECT_EQ(count_rule(res, "metric-name"), 0);
}

// --- header hygiene --------------------------------------------------------

TEST(HeaderHygiene, MissingGuardAndUsingNamespaceFlagged) {
  const auto res = lint_fixture("missing_guard.hpp");
  EXPECT_EQ(count_rule(res, "header-guard"), 1);
  EXPECT_EQ(count_rule(res, "using-namespace-header"), 1);
}

TEST(HeaderHygiene, PragmaOnceAndIfndefGuardsAccepted) {
  EXPECT_EQ(lint_fixture("guarded_pragma.hpp").unsuppressed, 0);
  EXPECT_EQ(lint_fixture("guarded_ifndef.hpp").unsuppressed, 0);
}

TEST(HeaderHygiene, SourceFilesNeedNoGuard) {
  const auto res = lint_source("a.cpp", "#include <string>\nint x = 1;\n");
  EXPECT_EQ(count_rule(res, "header-guard"), 0);
}

// --- lexer -----------------------------------------------------------------

TEST(Lexer, StringsCommentsAndRawStringsAreOpaque) {
  const auto res = lint_source(
      "s.cpp",
      "// rand() in a line comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* a = \"getenv(\\\"X\\\")\";\n"
      "const char* b = R\"(system_clock and rand())\";\n"
      "char c = 'r';\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

TEST(Lexer, TracksLineNumbersAcrossMultilineConstructs) {
  const auto f = vlint::lex("l.cpp", "l.cpp",
                            "/* one\n   two\n   three */\nint marker = 1;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens.front().line, 4);
}

TEST(Lexer, DirectiveInBlockCommentGetsItsOwnLine) {
  const auto f = vlint::lex("d.cpp", "d.cpp",
                            "/*\n vlint: allow(no-os-entropy) spans lines\n*/\nint x;\n");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].line, 2);
  EXPECT_EQ(f.suppressions[0].rule, "no-os-entropy");
  EXPECT_EQ(f.suppressions[0].reason, "spans lines");
}

TEST(Rules, ListIsStableAndKnown) {
  EXPECT_TRUE(vlint::is_known_rule("no-wall-clock"));
  EXPECT_TRUE(vlint::is_known_rule("no-unordered-iteration"));
  EXPECT_TRUE(vlint::is_known_rule("metric-name"));
  EXPECT_FALSE(vlint::is_known_rule("no-such-rule"));
}

}  // namespace

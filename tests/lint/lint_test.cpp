// vhadoop_lint self-tests: each rule against hit / miss / suppression
// fixtures (tests/lint/fixtures/), plus lexer unit tests on inline sources.
//
// The fixtures are never compiled and never seen by the tree-wide lint.tree
// ctest case (the walker skips tests/lint/); they exist only as input here.

#include "vhadoop_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

vlint::SourceFile load_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return vlint::lex(name, "tests/lint/fixtures/" + name, buf.str());
}

vlint::Result lint_fixture(const std::string& name) {
  std::vector<vlint::SourceFile> files;
  files.push_back(load_fixture(name));
  return vlint::run(files);
}

vlint::Result lint_source(const std::string& rel, const std::string& text) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex(rel, rel, text));
  return vlint::run(files);
}

int count_rule(const vlint::Result& res, const std::string& rule, bool suppressed = false) {
  return static_cast<int>(
      std::count_if(res.findings.begin(), res.findings.end(), [&](const vlint::Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

// --- no-wall-clock ---------------------------------------------------------

TEST(NoWallClock, FlagsEveryHostClockRead) {
  const auto res = lint_fixture("wall_clock_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-wall-clock"), 6);
  EXPECT_EQ(res.unsuppressed, 6);
}

TEST(NoWallClock, IgnoresMembersOtherNamespacesAndLiterals) {
  const auto res = lint_fixture("wall_clock_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in wall_clock_miss.cpp";
}

TEST(NoWallClock, SuppressionWithReasonSilencesBothForms) {
  const auto res = lint_fixture("wall_clock_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-wall-clock", /*suppressed=*/true), 2);
  for (const auto& f : res.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.reason.empty());
    }
  }
}

TEST(NoWallClock, SimTimeHeaderIsExempt) {
  const auto res =
      lint_source("src/sim/time.hpp", "#pragma once\n#include <chrono>\n"
                                      "inline auto t() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

// --- no-os-entropy ---------------------------------------------------------

TEST(NoOsEntropy, FlagsEveryEntropySource) {
  const auto res = lint_fixture("entropy_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-os-entropy"), 5);
}

TEST(NoOsEntropy, IgnoresMembersAndSubstrings) {
  const auto res = lint_fixture("entropy_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in entropy_miss.cpp";
}

TEST(NoOsEntropy, SuppressedGetenvIsClean) {
  const auto res = lint_fixture("entropy_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-os-entropy", /*suppressed=*/true), 1);
}

TEST(NoOsEntropy, RngImplementationIsExempt) {
  const auto res = lint_source("src/sim/rng.cpp",
                               "#include <random>\nstd::random_device seed_source;\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

// --- bad-suppression -------------------------------------------------------

TEST(BadSuppression, MissingReasonUnknownRuleMalformedAndUncitedAllFlagged) {
  const auto res = lint_fixture("bad_suppression.cpp");
  EXPECT_EQ(count_rule(res, "bad-suppression"), 4);
  // Neither the reason-less allow() nor the one that cites no auditing PR
  // may silence the getenv finding under it.
  EXPECT_EQ(count_rule(res, "no-os-entropy"), 2);
}

// --- no-unordered-iteration ------------------------------------------------

TEST(NoUnorderedIteration, FlagsRangeForIteratorAndAliasLoops) {
  const auto res = lint_fixture("unordered_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-unordered-iteration"), 4);
}

TEST(NoUnorderedIteration, OrderedContainersAndPointAccessAreClean) {
  const auto res = lint_fixture("unordered_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in unordered_miss.cpp";
}

TEST(NoUnorderedIteration, SuppressionWithReasonAccepted) {
  const auto res = lint_fixture("unordered_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-unordered-iteration", /*suppressed=*/true), 1);
}

TEST(NoUnorderedIteration, ResolvesMemberTypeAcrossFiles) {
  // Declaration in the "header", iteration in the "cpp" — the name set is
  // global across the linted file set.
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("t.hpp", "t.hpp",
                             "#pragma once\n#include <unordered_map>\n"
                             "struct S { std::unordered_map<int,int> table_; };\n"));
  files.push_back(vlint::lex("t.cpp", "t.cpp",
                             "#include \"t.hpp\"\nint f(S& s) {\n  int n = 0;\n"
                             "  for (auto& [k, v] : s.table_) n += v;\n  return n;\n}\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "no-unordered-iteration"), 1);
}

// --- metric-name -----------------------------------------------------------

TEST(MetricName, FlagsEveryNonConformingLiteral) {
  const auto res = lint_fixture("metric_name_hit.cpp");
  EXPECT_EQ(count_rule(res, "metric-name"), 6);
  EXPECT_EQ(res.unsuppressed, 6);
}

TEST(MetricName, CompliantPrefixesAndNonRegistryCallsAreClean) {
  const auto res = lint_fixture("metric_name_miss.cpp");
  EXPECT_EQ(res.unsuppressed, 0) << "false positive in metric_name_miss.cpp";
}

TEST(MetricName, SuppressionWithReasonAccepted) {
  const auto res = lint_fixture("metric_name_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "metric-name", /*suppressed=*/true), 1);
}

TEST(MetricName, ArrowCallAndDottedPrefixEndingInDot) {
  const auto res = lint_source(
      "m.cpp",
      "int f(R* r, const std::string& q) {\n"
      "  return r->counter(\"mr.queue.\" + q + \".slo_missed\");\n"
      "}\n");
  EXPECT_EQ(count_rule(res, "metric-name"), 0);
}

// --- header hygiene --------------------------------------------------------

TEST(HeaderHygiene, MissingGuardAndUsingNamespaceFlagged) {
  const auto res = lint_fixture("missing_guard.hpp");
  EXPECT_EQ(count_rule(res, "header-guard"), 1);
  EXPECT_EQ(count_rule(res, "using-namespace-header"), 1);
}

TEST(HeaderHygiene, PragmaOnceAndIfndefGuardsAccepted) {
  EXPECT_EQ(lint_fixture("guarded_pragma.hpp").unsuppressed, 0);
  EXPECT_EQ(lint_fixture("guarded_ifndef.hpp").unsuppressed, 0);
}

TEST(HeaderHygiene, SourceFilesNeedNoGuard) {
  const auto res = lint_source("a.cpp", "#include <string>\nint x = 1;\n");
  EXPECT_EQ(count_rule(res, "header-guard"), 0);
}

// --- lexer -----------------------------------------------------------------

TEST(Lexer, StringsCommentsAndRawStringsAreOpaque) {
  const auto res = lint_source(
      "s.cpp",
      "// rand() in a line comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* a = \"getenv(\\\"X\\\")\";\n"
      "const char* b = R\"(system_clock and rand())\";\n"
      "char c = 'r';\n");
  EXPECT_EQ(res.unsuppressed, 0);
}

TEST(Lexer, TracksLineNumbersAcrossMultilineConstructs) {
  const auto f = vlint::lex("l.cpp", "l.cpp",
                            "/* one\n   two\n   three */\nint marker = 1;\n");
  ASSERT_FALSE(f.tokens.empty());
  EXPECT_EQ(f.tokens.front().line, 4);
}

TEST(Lexer, DirectiveInBlockCommentGetsItsOwnLine) {
  const auto f = vlint::lex("d.cpp", "d.cpp",
                            "/*\n vlint: allow(no-os-entropy) spans lines\n*/\nint x;\n");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].line, 2);
  EXPECT_EQ(f.suppressions[0].rule, "no-os-entropy");
  EXPECT_EQ(f.suppressions[0].reason, "spans lines");
}

TEST(Rules, ListIsStableAndKnown) {
  EXPECT_TRUE(vlint::is_known_rule("no-wall-clock"));
  EXPECT_TRUE(vlint::is_known_rule("no-unordered-iteration"));
  EXPECT_TRUE(vlint::is_known_rule("metric-name"));
  EXPECT_TRUE(vlint::is_known_rule("thread-shared-mutation"));
  EXPECT_TRUE(vlint::is_known_rule("no-unordered-float-accumulation"));
  EXPECT_TRUE(vlint::is_known_rule("no-exact-float-compare"));
  EXPECT_TRUE(vlint::is_known_rule("layer-dag"));
  EXPECT_TRUE(vlint::is_known_rule("include-self-sufficiency"));
  EXPECT_FALSE(vlint::is_known_rule("no-such-rule"));
}

// --- thread-shared-mutation ------------------------------------------------

vlint::Result lint_fixtures(const std::vector<std::string>& names) {
  std::vector<vlint::SourceFile> files;
  for (const auto& name : names) files.push_back(load_fixture(name));
  return vlint::run(files);
}

TEST(ThreadSharedMutation, CrossTuRaceIsCaught) {
  // The parallel_for lambda lives in race_entry.cpp; the unsynchronized
  // write to namespace-scope state it reaches lives two files away in
  // race_worker.cpp. The finding must land on the write.
  const auto res = lint_fixtures({"race_shared.hpp", "race_worker.cpp", "race_entry.cpp"});
  EXPECT_EQ(count_rule(res, "thread-shared-mutation"), 1);
  for (const auto& f : res.findings) {
    if (f.rule != "thread-shared-mutation") continue;
    EXPECT_EQ(f.path, "race_worker.cpp");
    EXPECT_NE(f.message.find("total"), std::string::npos);
    EXPECT_NE(f.message.find("race_entry.cpp"), std::string::npos) << "witness missing";
  }
}

TEST(ThreadSharedMutation, LockGuardedVariantIsQuiet) {
  const auto res = lint_fixture("race_guarded.cpp");
  EXPECT_EQ(count_rule(res, "thread-shared-mutation"), 0);
}

TEST(ThreadSharedMutation, PerSlotWritesAreSanctioned) {
  const auto res = lint_fixture("race_slots.cpp");
  EXPECT_EQ(count_rule(res, "thread-shared-mutation"), 0);
}

TEST(ThreadSharedMutation, CitedSuppressionAccepted) {
  const auto res = lint_fixture("race_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "thread-shared-mutation", /*suppressed=*/true), 1);
}

TEST(ThreadSharedMutation, PlainSubmitIsNotAWorkerEntry) {
  // Engine::submit schedules onto the single simulation thread; only
  // pool-ish receivers make submit a worker entry point.
  const auto res = lint_source("s.cpp",
                               "long n = 0;\n"
                               "void f(E& engine) {\n"
                               "  engine.submit(1.0, [&] { n += 1; });\n"
                               "}\n");
  EXPECT_EQ(count_rule(res, "thread-shared-mutation"), 0);
}

// --- no-unordered-float-accumulation ---------------------------------------

TEST(FloatAccumulation, CompoundAndRebindFormsFlagged) {
  const auto res = lint_fixture("float_acc_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-unordered-float-accumulation"), 2);
}

TEST(FloatAccumulation, IntegerTalliesAndOrderedContainersAreClean) {
  const auto res = lint_fixture("float_acc_miss.cpp");
  EXPECT_EQ(count_rule(res, "no-unordered-float-accumulation"), 0);
}

TEST(FloatAccumulation, CitedSuppressionAccepted) {
  const auto res = lint_fixture("float_acc_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-unordered-float-accumulation", /*suppressed=*/true), 1);
}

// --- no-exact-float-compare ------------------------------------------------

TEST(FloatCompare, LiteralAndMemberChainOperandsFlagged) {
  const auto res = lint_fixture("float_cmp_hit.cpp");
  EXPECT_EQ(count_rule(res, "no-exact-float-compare"), 2);
}

TEST(FloatCompare, CallTerminalsSentinelsAndIntegralNamesAreClean) {
  const auto res = lint_fixture("float_cmp_miss.cpp");
  EXPECT_EQ(count_rule(res, "no-exact-float-compare"), 0);
}

TEST(FloatCompare, FileScopeSuppressionCoversWholeOracle) {
  const auto res = lint_fixture("float_cmp_suppressed.cpp");
  EXPECT_EQ(res.unsuppressed, 0);
  EXPECT_EQ(count_rule(res, "no-exact-float-compare", /*suppressed=*/true), 2);
}

TEST(FloatCompare, OwnIntegralDeclarationBeatsIncludedFloat) {
  // The header declares `double v`; the cpp's own `std::uint64_t v` must
  // win for uses inside the cpp.
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("h.hpp", "h.hpp",
                             "#pragma once\nstruct M { double v = 0.0; };\n"));
  files.push_back(vlint::lex("c.cpp", "c.cpp",
                             "#include \"h.hpp\"\n"
                             "bool f() {\n  std::uint64_t v = 1;\n  return v != 0;\n}\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "no-exact-float-compare"), 0);
}

// --- layer-dag -------------------------------------------------------------

TEST(LayerDag, UpwardIncludeFlagged) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/ml/kmeans.hpp", "src/ml/kmeans.hpp",
                             "#pragma once\nnamespace ml { struct KMeans {}; }\n"));
  files.push_back(vlint::lex("src/sim/engine2.cpp", "src/sim/engine2.cpp",
                             "#include \"ml/kmeans.hpp\"\nint f() { return 0; }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "layer-dag"), 1);
  for (const auto& f : res.findings) {
    if (f.rule == "layer-dag") EXPECT_EQ(f.path, "src/sim/engine2.cpp");
  }
}

TEST(LayerDag, DownwardIncludeAllowed) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/sim/clock.hpp", "src/sim/clock.hpp",
                             "#pragma once\nnamespace sim { struct Clock {}; }\n"));
  files.push_back(vlint::lex("src/ml/kmeans.cpp", "src/ml/kmeans.cpp",
                             "#include \"sim/clock.hpp\"\nint g() { return 1; }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "layer-dag"), 0);
}

TEST(LayerDag, UnknownModuleWithCrossModuleEdgeIsReported) {
  // A module missing from the layering table is reported as soon as it
  // grows a cross-module include edge.
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/sim/clock.hpp", "src/sim/clock.hpp",
                             "#pragma once\nnamespace sim { struct Clock {}; }\n"));
  files.push_back(vlint::lex("src/mystery/x.cpp", "src/mystery/x.cpp",
                             "#include \"sim/clock.hpp\"\nint h() { return 2; }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "layer-dag"), 1);
  for (const auto& f : res.findings) {
    if (f.rule == "layer-dag") {
      EXPECT_NE(f.message.find("not in the layering table"), std::string::npos);
    }
  }
}

// --- include-self-sufficiency ----------------------------------------------

TEST(IncludeSelfSufficiency, MissingIncludeFlaggedWithFixSpec) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/util/dep.hpp", "src/util/dep.hpp",
                             "#pragma once\nstruct Helper { int n = 0; };\n"));
  files.push_back(vlint::lex("src/app/use.cpp", "src/app/use.cpp",
                             "int size_of(const Helper& h) { return h.n; }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "include-self-sufficiency"), 1);
  for (const auto& f : res.findings) {
    if (f.rule == "include-self-sufficiency") {
      EXPECT_EQ(f.path, "src/app/use.cpp");
      EXPECT_EQ(f.fix_include, "util/dep.hpp");
    }
  }
}

TEST(IncludeSelfSufficiency, TransitiveClosureResolves) {
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/util/dep.hpp", "src/util/dep.hpp",
                             "#pragma once\nstruct Helper { int n = 0; };\n"));
  files.push_back(vlint::lex("src/app/mid.hpp", "src/app/mid.hpp",
                             "#pragma once\n#include \"util/dep.hpp\"\n"));
  files.push_back(vlint::lex("src/app/use.cpp", "src/app/use.cpp",
                             "#include \"app/mid.hpp\"\n"
                             "int size_of(const Helper& h) { return h.n; }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "include-self-sufficiency"), 0);
}

TEST(IncludeSelfSufficiency, CppOnlySymbolsAreNotActionable) {
  // A name exported solely by a .cpp (e.g. a macro expansion artifact) has
  // no include to suggest; the rule must stay quiet.
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/a/impl.cpp", "src/a/impl.cpp",
                             "int OnlyHere() { return 1; }\n"));
  files.push_back(vlint::lex("src/b/use.cpp", "src/b/use.cpp",
                             "int call() { return OnlyHere(); }\n"));
  const auto res = vlint::run(files);
  EXPECT_EQ(count_rule(res, "include-self-sufficiency"), 0);
}

// --- apply_fixes (--fix) ---------------------------------------------------

std::string read_fixture_text(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Fix, GoldenHeaderGuardAndMissingInclude) {
  // fix_input.hpp (no guard, uses fx::Helper without the include) must fix
  // to exactly fix_expected.hpp when linted beside fix_dep.hpp.
  const std::string input = read_fixture_text("fix_input.hpp");
  const std::string expected = read_fixture_text("fix_expected.hpp");
  std::vector<vlint::SourceFile> files;
  files.push_back(vlint::lex("src/util/fix_dep.hpp", "src/util/fix_dep.hpp",
                             read_fixture_text("fix_dep.hpp")));
  files.push_back(vlint::lex("src/util/fix_input.hpp", "src/util/fix_input.hpp", input));
  const auto res = vlint::run(files);
  EXPECT_GE(res.unsuppressed, 2);  // header-guard + include-self-sufficiency
  const std::string repaired = vlint::apply_fixes(files[1], input, res.findings);
  EXPECT_EQ(repaired, expected);

  // And the golden output itself lints clean.
  std::vector<vlint::SourceFile> fixed;
  fixed.push_back(files[0]);
  fixed.push_back(vlint::lex("src/util/fix_input.hpp", "src/util/fix_input.hpp", expected));
  EXPECT_EQ(vlint::run(fixed).unsuppressed, 0);
}

// --- report shapes (JSON / SARIF) ------------------------------------------

TEST(Report, SarifCarriesSchemaRulesLocationsAndSuppressions) {
  std::vector<vlint::SourceFile> files;
  files.push_back(load_fixture("entropy_hit.cpp"));
  files.push_back(load_fixture("wall_clock_suppressed.cpp"));
  const auto res = vlint::run(files);
  std::ostringstream os;
  vlint::write_sarif(os, res, {});
  const std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"vhadoop_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-os-entropy\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": "), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"inSource\""), std::string::npos);
  // Every rule is declared in the driver table.
  for (const auto& rule : vlint::kRules) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\"}"), std::string::npos) << rule;
  }
}

TEST(Report, JsonListsEveryFindingWithSuppressionState) {
  std::vector<vlint::SourceFile> files;
  files.push_back(load_fixture("wall_clock_suppressed.cpp"));
  const auto res = vlint::run(files);
  std::ostringstream os;
  vlint::write_json(os, res, {});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rule\": \"no-wall-clock\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": true"), std::string::npos);
}

}  // namespace

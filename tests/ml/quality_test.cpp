#include "ml/quality.hpp"

#include <gtest/gtest.h>

#include "ml/kmeans.hpp"
#include "sim/rng.hpp"

namespace vhadoop::ml {
namespace {

Dataset two_blobs(double separation) {
  Dataset data;
  sim::Rng rng(2);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 30; ++i) {
      data.points.push_back({c * separation + rng.normal(0, 0.4), rng.normal(0, 0.4)});
      data.labels.push_back(c);
    }
  }
  return data;
}

TEST(Quality, SilhouetteHighForSeparatedClusters) {
  auto data = two_blobs(20.0);
  EXPECT_GT(silhouette(data, data.labels), 0.9);
}

TEST(Quality, SilhouetteDropsWhenBlobsOverlap) {
  const double separated = silhouette(two_blobs(20.0), two_blobs(20.0).labels);
  const double overlapping = silhouette(two_blobs(0.8), two_blobs(0.8).labels);
  EXPECT_GT(separated, overlapping + 0.3);
}

TEST(Quality, SilhouetteNegativeForWrongAssignment) {
  auto data = two_blobs(20.0);
  // Swap half of each cluster's labels: points sit far from "their" group.
  std::vector<int> wrong = data.labels;
  for (std::size_t i = 0; i < wrong.size(); i += 2) wrong[i] = 1 - wrong[i];
  EXPECT_LT(silhouette(data, wrong), 0.0);
}

TEST(Quality, DaviesBouldinLowerIsBetter) {
  EXPECT_LT(davies_bouldin(two_blobs(20.0), two_blobs(20.0).labels),
            davies_bouldin(two_blobs(1.0), two_blobs(1.0).labels));
}

TEST(Quality, WcssDecreasesWithBetterCentroids) {
  auto data = two_blobs(10.0);
  std::vector<int> one_cluster(data.size(), 0);
  EXPECT_LT(wcss(data, data.labels), wcss(data, one_cluster));
}

TEST(Quality, RandIndexBounds) {
  std::vector<int> a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
  std::vector<int> renamed{5, 5, 9, 9};  // same partition, different ids
  EXPECT_DOUBLE_EQ(rand_index(a, renamed), 1.0);
  std::vector<int> anti{0, 1, 0, 1};
  EXPECT_LT(rand_index(a, anti), 0.5);
  EXPECT_THROW(rand_index(a, {0, 1}), std::invalid_argument);
}

TEST(Quality, KMeansOnBlobsScoresWell) {
  auto data = two_blobs(15.0);
  auto run = kmeans_cluster(data, {.k = 2, .base = {.num_splits = 2}});
  EXPECT_GT(silhouette(data, run.assignments), 0.85);
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.99);
  EXPECT_LT(davies_bouldin(data, run.assignments), 0.3);
}

TEST(Quality, GuardsAgainstMalformedInput) {
  Dataset empty;
  EXPECT_THROW(silhouette(empty, {}), std::invalid_argument);
  auto data = two_blobs(5.0);
  EXPECT_THROW(wcss(data, std::vector<int>(3, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace vhadoop::ml

#include <gtest/gtest.h>

#include <set>

#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/fuzzy_kmeans.hpp"
#include "ml/kmeans.hpp"
#include "ml/meanshift.hpp"
#include "ml/minhash.hpp"
#include "sim/rng.hpp"

namespace vhadoop::ml {
namespace {

Dataset tight_blobs() {
  // Three well-separated tight blobs: every sane clustering must find them.
  Dataset data;
  sim::Rng rng(1);
  const Vec centers[] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      data.points.push_back(
          {centers[c][0] + rng.normal(0, 0.3), centers[c][1] + rng.normal(0, 0.3)});
      data.labels.push_back(c);
    }
  }
  return data;
}

/// Fraction of pairs (same-label vs same-cluster) that agree — Rand index.
double rand_index(const std::vector<int>& labels, const std::vector<int>& assign) {
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      const bool same_label = labels[i] == labels[j];
      const bool same_cluster = assign[i] == assign[j];
      agree += (same_label == same_cluster);
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

// --- Canopy -------------------------------------------------------------------

TEST(Canopy, KernelCoversEveryPoint) {
  auto data = tight_blobs();
  auto centers = canopy_centers(data.points, 3.0, 1.5);
  EXPECT_GE(centers.size(), 3u);
  for (const Vec& p : data.points) {
    double best = 1e18;
    for (const Vec& c : centers) best = std::min(best, euclidean(p, c));
    EXPECT_LE(best, 3.0) << "point not covered by any canopy (T1)";
  }
  // No two canopy centers within T2 of each other.
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      EXPECT_GT(euclidean(centers[i], centers[j]), 1.5);
    }
  }
}

TEST(Canopy, T1SmallerThanT2Throws) {
  auto data = tight_blobs();
  EXPECT_THROW(canopy_centers(data.points, 1.0, 2.0), std::invalid_argument);
}

TEST(Canopy, MapReduceFindsThreeBlobs) {
  auto data = tight_blobs();
  auto run = canopy_cluster(data, {.t1 = 4.0, .t2 = 2.0, .base = {.num_splits = 4}});
  EXPECT_EQ(run.centers.size(), 3u);
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.99);
  EXPECT_EQ(run.jobs.size(), 1u);
  EXPECT_EQ(run.iterations, 1);
}

TEST(Canopy, SplitCountDoesNotChangeCoverage) {
  auto data = tight_blobs();
  for (int splits : {1, 2, 8}) {
    auto run = canopy_cluster(data, {.t1 = 4.0, .t2 = 2.0, .base = {.num_splits = splits}});
    EXPECT_EQ(run.centers.size(), 3u) << "splits=" << splits;
  }
}

// --- k-means -------------------------------------------------------------------

TEST(KMeans, RecoversBlobs) {
  auto data = tight_blobs();
  auto run = kmeans_cluster(data, {.k = 3, .base = {.num_splits = 4, .max_iterations = 20}});
  EXPECT_EQ(run.centers.size(), 3u);
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.99);
  // Each blob center recovered to within noise.
  for (const Vec& expected : {Vec{0, 0}, Vec{10, 0}, Vec{0, 10}}) {
    double best = 1e18;
    for (const Vec& c : run.centers) best = std::min(best, euclidean(c, expected));
    EXPECT_LT(best, 0.5);
  }
}

TEST(KMeans, ObjectiveNonIncreasingAcrossIterations) {
  auto data = tight_blobs();
  auto run = kmeans_cluster(data, {.k = 4, .base = {.num_splits = 3, .max_iterations = 15}});
  double prev = 1e300;
  for (const auto& centers : run.iteration_centers) {
    const double cost = total_cost(data, centers);
    EXPECT_LE(cost, prev * (1.0 + 1e-9));
    prev = cost;
  }
}

TEST(KMeans, ConvergesAndStops) {
  auto data = tight_blobs();
  auto run = kmeans_cluster(data, {.k = 3, .base = {.num_splits = 2, .max_iterations = 50}});
  EXPECT_LT(run.iterations, 50);  // stopped on delta, not the cap
}

TEST(KMeans, SeededCentersComeFromData) {
  auto data = tight_blobs();
  auto seeds = seed_centers(data, 5, 7);
  EXPECT_EQ(seeds.size(), 5u);
  std::set<std::pair<double, double>> unique;
  for (const Vec& s : seeds) {
    EXPECT_NE(std::find(data.points.begin(), data.points.end(), s), data.points.end());
    unique.insert({s[0], s[1]});
  }
  EXPECT_EQ(unique.size(), 5u);  // distinct
  EXPECT_THROW(seed_centers(data, 0), std::invalid_argument);
  EXPECT_THROW(seed_centers(data, 10000), std::invalid_argument);
}

TEST(KMeans, SplitAndThreadInvariant) {
  auto data = tight_blobs();
  auto initial = seed_centers(data, 3, 11);
  auto a = kmeans_cluster(data, {.k = 3, .base = {.num_splits = 1, .threads = 1}}, initial);
  auto b = kmeans_cluster(data, {.k = 3, .base = {.num_splits = 6, .threads = 4}}, initial);
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (std::size_t c = 0; c < a.centers.size(); ++c) {
    EXPECT_LT(euclidean(a.centers[c], b.centers[c]), 1e-9)
        << "MapReduce decomposition changed the result";
  }
}

// --- fuzzy k-means ---------------------------------------------------------------

TEST(FuzzyKMeans, MembershipsSumToOne) {
  auto data = tight_blobs();
  auto centers = seed_centers(data, 3, 13);
  for (const Vec& p : data.points) {
    const Vec u = memberships(p, centers, 2.0);
    double sum = 0.0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0 + 1e-12);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(FuzzyKMeans, PointOnCenterGetsFullMembership) {
  std::vector<Vec> centers{{0.0, 0.0}, {5.0, 5.0}};
  const Vec u = memberships(centers[1], centers, 2.0);
  EXPECT_DOUBLE_EQ(u[1], 1.0);
  EXPECT_DOUBLE_EQ(u[0], 0.0);
}

TEST(FuzzyKMeans, InvalidFuzzinessThrows) {
  std::vector<Vec> centers{{0.0, 0.0}};
  EXPECT_THROW(memberships(Vec{1.0, 1.0}, centers, 1.0), std::invalid_argument);
}

TEST(FuzzyKMeans, RecoversBlobsSoftly) {
  auto data = tight_blobs();
  auto run = fuzzy_kmeans_cluster(
      data, {.k = 3, .m = 2.0, .base = {.num_splits = 4, .max_iterations = 25}});
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.99);
  for (const Vec& expected : {Vec{0, 0}, Vec{10, 0}, Vec{0, 10}}) {
    double best = 1e18;
    for (const Vec& c : run.centers) best = std::min(best, euclidean(c, expected));
    EXPECT_LT(best, 0.6);
  }
}

TEST(FuzzyKMeans, HigherFuzzinessSoftensMemberships) {
  auto data = tight_blobs();
  auto centers = seed_centers(data, 3, 17);
  const Vec& p = data.points[0];
  const Vec crisp = memberships(p, centers, 1.5);
  const Vec soft = memberships(p, centers, 4.0);
  const double max_crisp = *std::max_element(crisp.begin(), crisp.end());
  const double max_soft = *std::max_element(soft.begin(), soft.end());
  EXPECT_GT(max_crisp, max_soft);
}

// --- mean shift -------------------------------------------------------------------

TEST(MeanShift, CollapsesBlobsToThreeCanopies) {
  auto data = tight_blobs();
  auto run = meanshift_cluster(
      data, {.t1 = 3.0, .t2 = 1.0, .base = {.num_splits = 4, .max_iterations = 20}});
  EXPECT_EQ(run.centers.size(), 3u);
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.99);
}

TEST(MeanShift, CanopyCountMonotonicallyShrinks) {
  auto data = tight_blobs();
  auto run = meanshift_cluster(
      data, {.t1 = 3.0, .t2 = 1.0, .base = {.num_splits = 2, .max_iterations = 20}});
  std::size_t prev = data.size();
  for (const auto& centers : run.iteration_centers) {
    EXPECT_LE(centers.size(), prev);
    prev = centers.size();
  }
}

TEST(MeanShift, NoPriorKRequired) {
  // Five blobs: mean shift should find five without being told.
  Dataset data;
  sim::Rng rng(3);
  for (int c = 0; c < 5; ++c) {
    for (int i = 0; i < 25; ++i) {
      data.points.push_back({c * 8.0 + rng.normal(0, 0.25), rng.normal(0, 0.25)});
      data.labels.push_back(c);
    }
  }
  auto run = meanshift_cluster(
      data, {.t1 = 3.0, .t2 = 1.2, .base = {.num_splits = 3, .max_iterations = 25}});
  EXPECT_EQ(run.centers.size(), 5u);
}

// --- dirichlet ---------------------------------------------------------------------

TEST(Dirichlet, CountsConserved) {
  auto data = tight_blobs();
  auto run = dirichlet_cluster(
      data, {.k = 8, .alpha = 1.0, .base = {.num_splits = 4, .max_iterations = 8}});
  double total = 0.0;
  for (const auto& m : run.models) total += m.count;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(data.size()));
  // Mixture is a distribution.
  double mix = 0.0;
  for (const auto& m : run.models) mix += m.mixture;
  EXPECT_NEAR(mix, 1.0, 1e-9);
}

TEST(Dirichlet, FindsTheBlobStructure) {
  auto data = tight_blobs();
  auto run = dirichlet_cluster(
      data, {.k = 10, .alpha = 1.0, .base = {.num_splits = 4, .max_iterations = 12}});
  // Occupied models must be near the true blob centers; dominant models
  // should cover all three blobs.
  int near_blobs = 0;
  for (const auto& m : run.models) {
    if (m.count < 15) continue;
    for (const Vec& expected : {Vec{0, 0}, Vec{10, 0}, Vec{0, 10}}) {
      if (euclidean(m.mean, expected) < 1.5) {
        ++near_blobs;
        break;
      }
    }
  }
  EXPECT_GE(near_blobs, 3);
  EXPECT_GT(rand_index(data.labels, run.assignments), 0.9);
}

TEST(Dirichlet, DeterministicAcrossRuns) {
  auto data = tight_blobs();
  DirichletConfig cfg{.k = 6, .alpha = 1.0, .base = {.num_splits = 3, .max_iterations = 5}};
  auto a = dirichlet_cluster(data, cfg);
  auto b = dirichlet_cluster(data, cfg);
  EXPECT_EQ(a.assignments, b.assignments);
}

// --- minhash -----------------------------------------------------------------------

TEST(MinHash, IdenticalPointsAlwaysCollide) {
  Dataset data;
  for (int i = 0; i < 10; ++i) data.points.push_back({1.0, 2.0, 3.0});
  data.labels.assign(10, 0);
  auto run = minhash_cluster(data, {.num_hash_functions = 6, .keygroups = 2,
                                    .min_cluster_size = 2, .bucket_width = 1.0,
                                    .base = {.num_splits = 3}});
  ASSERT_FALSE(run.clusters.empty());
  // Some cluster must contain all ten points.
  bool found_all = false;
  for (const auto& [key, members] : run.clusters) {
    if (members.size() == 10) found_all = true;
  }
  EXPECT_TRUE(found_all);
}

TEST(MinHash, FarPointsRarelyCollide) {
  Dataset data;
  sim::Rng rng(5);
  for (int i = 0; i < 30; ++i) data.points.push_back({rng.normal(0, 0.1), rng.normal(0, 0.1)});
  for (int i = 0; i < 30; ++i)
    data.points.push_back({1000.0 + rng.normal(0, 0.1), 1000.0 + rng.normal(0, 0.1)});
  data.labels.assign(60, 0);
  auto run = minhash_cluster(data, {.num_hash_functions = 8, .keygroups = 2,
                                    .min_cluster_size = 2, .bucket_width = 0.5,
                                    .base = {.num_splits = 2}});
  for (const auto& [key, members] : run.clusters) {
    // No cluster mixes the two distant populations.
    bool lo = false, hi = false;
    for (std::int64_t id : members) {
      (id < 30 ? lo : hi) = true;
    }
    EXPECT_FALSE(lo && hi) << "cluster " << key << " spans distant blobs";
  }
}

TEST(MinHash, MinClusterSizeFiltersSingletons) {
  Dataset data;
  sim::Rng rng(6);
  // Scatter: every point in its own region.
  for (int i = 0; i < 20; ++i) data.points.push_back({i * 100.0, i * -50.0});
  data.labels.assign(20, 0);
  auto run = minhash_cluster(data, {.num_hash_functions = 6, .keygroups = 2,
                                    .min_cluster_size = 2, .bucket_width = 1.0,
                                    .base = {.num_splits = 2}});
  for (const auto& [key, members] : run.clusters) {
    EXPECT_GE(members.size(), 2u);
  }
}

TEST(MinHash, FeatureSetDiscretization) {
  auto s1 = feature_set({1.01, 2.49}, 1.0);
  auto s2 = feature_set({1.49, 2.01}, 1.0);  // same buckets
  EXPECT_EQ(s1, s2);
  auto s3 = feature_set({1.01, 3.01}, 1.0);
  EXPECT_NE(s1, s3);
}

// --- parallel assignment pass ---------------------------------------------------

TEST(AssignNearest, IndependentOfThreadCount) {
  auto data = tight_blobs();
  const auto centers = seed_centers(data, 3, 77);
  const auto serial = assign_nearest(data, centers, 1);
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(assign_nearest(data, centers, threads), serial) << threads << " threads";
  }
  // And the flat-matrix scan agrees with the Vec-of-Vec overload.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(serial[i], nearest_center(data.points[i], centers)) << i;
  }
}

TEST(KMeans, AssignmentsIndependentOfThreadCount) {
  auto data = tight_blobs();
  const auto init = seed_centers(data, 3, 42);
  const auto one = kmeans_cluster(
      data, {.k = 3, .base = {.num_splits = 4, .max_iterations = 5, .threads = 1}}, init);
  const auto many = kmeans_cluster(
      data, {.k = 3, .base = {.num_splits = 4, .max_iterations = 5, .threads = 8}}, init);
  EXPECT_EQ(one.assignments, many.assignments);
  EXPECT_EQ(one.centers, many.centers);
}

TEST(FuzzyKMeans, AssignmentsIndependentOfThreadCount) {
  auto data = tight_blobs();
  const auto init = seed_centers(data, 3, 42);
  const auto one = fuzzy_kmeans_cluster(
      data, {.k = 3, .m = 2.0, .base = {.num_splits = 4, .max_iterations = 5, .threads = 1}},
      init);
  const auto many = fuzzy_kmeans_cluster(
      data, {.k = 3, .m = 2.0, .base = {.num_splits = 4, .max_iterations = 5, .threads = 8}},
      init);
  EXPECT_EQ(one.assignments, many.assignments);
  EXPECT_EQ(one.centers, many.centers);
}

// --- shared ClusteringRun contract ----------------------------------------------

TEST(ClusteringRun, JobsCarryProfilesForSimulation) {
  auto data = tight_blobs();
  auto run = kmeans_cluster(data, {.k = 3, .base = {.num_splits = 4, .max_iterations = 6}});
  ASSERT_FALSE(run.jobs.empty());
  for (const auto& job : run.jobs) {
    EXPECT_EQ(job.map_profiles.size(), 4u);
    std::int64_t records = 0;
    for (const auto& p : job.map_profiles) records += p.input_records;
    EXPECT_EQ(records, static_cast<std::int64_t>(data.size()));
    for (const auto& p : job.map_profiles) EXPECT_GT(p.cpu_seconds, 0.0);
  }
}

}  // namespace
}  // namespace vhadoop::ml

#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/vector.hpp"

namespace vhadoop::ml {
namespace {

TEST(SyntheticControl, ShapeMatchesUciDataset) {
  auto data = synthetic_control();
  EXPECT_EQ(data.size(), 600u);
  EXPECT_EQ(data.dim(), 60u);
  std::set<int> labels(data.labels.begin(), data.labels.end());
  EXPECT_EQ(labels.size(), 6u);
}

TEST(SyntheticControl, ClassMeansFollowGeneratorEquations) {
  auto data = synthetic_control(50, 60, 7);
  auto class_mean_at = [&](int cls, int t) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.labels[i] == cls) {
        sum += data.points[i][static_cast<std::size_t>(t)];
        ++n;
      }
    }
    return sum / n;
  };
  // Normal class hovers at the base level m = 30.
  EXPECT_NEAR(class_mean_at(0, 10), 30.0, 1.0);
  EXPECT_NEAR(class_mean_at(0, 50), 30.0, 1.0);
  // Increasing trend rises; decreasing falls.
  EXPECT_GT(class_mean_at(2, 55), class_mean_at(2, 5) + 10.0);
  EXPECT_LT(class_mean_at(3, 55), class_mean_at(3, 5) - 10.0);
  // Upward shift ends well above where it starts; downward below.
  EXPECT_GT(class_mean_at(4, 58), class_mean_at(4, 1) + 5.0);
  EXPECT_LT(class_mean_at(5, 58), class_mean_at(5, 1) - 5.0);
}

TEST(SyntheticControl, DeterministicForSeed) {
  auto a = synthetic_control(10, 60, 3);
  auto b = synthetic_control(10, 60, 3);
  EXPECT_EQ(a.points, b.points);
  auto c = synthetic_control(10, 60, 4);
  EXPECT_NE(a.points, c.points);
}

TEST(DisplaySamples, ThreeBlobsWithPaperParameters) {
  auto data = display_clustering_samples(1000, 5);
  EXPECT_EQ(data.size(), 1000u);
  EXPECT_EQ(data.dim(), 2u);
  // The tight sd=0.1 blob at (0,2) must be tightly packed.
  double maxd = 0.0;
  int n2 = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == 2) {
      maxd = std::max(maxd, euclidean(data.points[i], Vec{0.0, 2.0}));
      ++n2;
    }
  }
  EXPECT_EQ(n2, 300);
  EXPECT_LT(maxd, 0.6);
  // The sd=3 blob spreads wide.
  double spread = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == 0) spread = std::max(spread, euclidean(data.points[i], Vec{1.0, 1.0}));
  }
  EXPECT_GT(spread, 5.0);
}

TEST(Records, RoundTripThroughKv) {
  auto data = display_clustering_samples(50, 9);
  auto records = to_records(data);
  ASSERT_EQ(records.size(), 50u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(point_of(records[i]), data.points[i]);
  }
}

TEST(VectorOps, Distances) {
  Vec a{0.0, 3.0}, b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(squared_euclidean(a, b), 25.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_NEAR(cosine_distance(Vec{1, 0}, Vec{0, 1}), 1.0, 1e-12);
  EXPECT_NEAR(cosine_distance(Vec{2, 2}, Vec{1, 1}), 0.0, 1e-12);
  EXPECT_THROW(euclidean(Vec{1.0}, Vec{1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOps, MeanAndScale) {
  Vec sum{4.0, 8.0};
  EXPECT_EQ(mean_of(sum, 4.0), (Vec{1.0, 2.0}));
  Vec acc;
  add_in_place(acc, Vec{1.0, 1.0});
  add_in_place(acc, Vec{2.0, 3.0});
  EXPECT_EQ(acc, (Vec{3.0, 4.0}));
}

}  // namespace
}  // namespace vhadoop::ml

#include <gtest/gtest.h>

#include <cmath>

#include "ml/naive_bayes.hpp"
#include "ml/recommender.hpp"

namespace vhadoop::ml {
namespace {

// --- Naive Bayes (classification) ---------------------------------------------

TEST(NaiveBayes, LearnsSeparableClasses) {
  auto docs = synthetic_labeled_corpus(3, 120, 30, 5);
  // Holdout split: train on 80%, test on the rest.
  const std::size_t split = docs.size() * 8 / 10;
  std::vector<LabeledDoc> train(docs.begin(), docs.begin() + static_cast<std::ptrdiff_t>(split));
  std::vector<LabeledDoc> test(docs.begin() + static_cast<std::ptrdiff_t>(split), docs.end());

  auto run = train_naive_bayes(train);
  auto [predicted, job] = classify_naive_bayes(run.model, test);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) correct += (predicted[i] == test[i].label);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9);
}

TEST(NaiveBayes, PriorsAreLogProbabilities) {
  auto docs = synthetic_labeled_corpus(4, 50, 10, 9);
  auto run = train_naive_bayes(docs);
  double total = 0.0;
  for (const auto& [label, lp] : run.model.log_prior) {
    EXPECT_LE(lp, 0.0);
    total += std::exp(lp);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(run.model.log_prior.size(), 4u);
}

TEST(NaiveBayes, SmoothingHandlesUnseenTokens) {
  auto docs = synthetic_labeled_corpus(2, 40, 10, 11);
  auto run = train_naive_bayes(docs);
  // Classifying a document of entirely novel tokens must not crash and
  // must fall back to the prior ordering.
  const std::string label = run.model.classify({"zzz_never_seen", "qqq_nor_this"});
  EXPECT_FALSE(label.empty());
}

TEST(NaiveBayes, SplitCountInvariant) {
  auto docs = synthetic_labeled_corpus(2, 60, 15, 13);
  auto a = train_naive_bayes(docs, {.num_splits = 1});
  auto b = train_naive_bayes(docs, {.num_splits = 8});
  ASSERT_EQ(a.model.log_prior.size(), b.model.log_prior.size());
  for (const auto& [label, lp] : a.model.log_prior) {
    EXPECT_NEAR(lp, b.model.log_prior.at(label), 1e-12);
  }
}

TEST(NaiveBayes, TrainJobCarriesProfiles) {
  auto docs = synthetic_labeled_corpus(2, 40, 10, 15);
  auto run = train_naive_bayes(docs, {.num_splits = 4});
  ASSERT_EQ(run.jobs.size(), 1u);
  EXPECT_EQ(run.jobs[0].map_profiles.size(), 4u);
  std::int64_t records = 0;
  for (const auto& p : run.jobs[0].map_profiles) records += p.input_records;
  EXPECT_EQ(records, static_cast<std::int64_t>(docs.size()));
}

// --- item-based recommender (recommendations) ----------------------------------

TEST(Recommender, RecommendsInGroupUnseenItems) {
  auto ratings = synthetic_ratings(3, 20, 10, 0.6, 21);
  auto run = recommend_items(ratings, {.top_n = 3});
  // For most users, recommended items should be from their own group.
  int in_group = 0, total = 0;
  for (const auto& [user, items] : run.recommendations) {
    const std::int64_t group = user / 20;
    for (std::int64_t item : items) {
      ++total;
      in_group += (item / 10 == group);
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(in_group) / total, 0.85);
}

TEST(Recommender, NeverRecommendsAlreadyRatedItems) {
  auto ratings = synthetic_ratings(2, 15, 8, 0.5, 23);
  auto run = recommend_items(ratings, {.top_n = 5});
  std::map<std::int64_t, std::set<std::int64_t>> seen;
  for (const Rating& r : ratings) seen[r.user].insert(r.item);
  for (const auto& [user, items] : run.recommendations) {
    for (std::int64_t item : items) {
      EXPECT_FALSE(seen[user].contains(item)) << "user " << user << " item " << item;
    }
  }
}

TEST(Recommender, CooccurrenceMatrixIsSymmetric) {
  auto ratings = synthetic_ratings(2, 10, 6, 0.7, 29);
  auto run = recommend_items(ratings);
  for (const auto& [a, row] : run.cooccurrence) {
    for (const auto& [b, n] : row) {
      ASSERT_TRUE(run.cooccurrence.contains(b));
      EXPECT_DOUBLE_EQ(run.cooccurrence.at(b).at(a), n);
    }
  }
}

TEST(Recommender, TopNBounded) {
  auto ratings = synthetic_ratings(2, 10, 10, 0.4, 31);
  auto run = recommend_items(ratings, {.top_n = 2});
  for (const auto& [user, items] : run.recommendations) {
    EXPECT_LE(items.size(), 2u);
  }
}

TEST(Recommender, DeterministicAcrossRuns) {
  auto ratings = synthetic_ratings(2, 12, 8, 0.5, 37);
  auto a = recommend_items(ratings, {.num_splits = 2});
  auto b = recommend_items(ratings, {.num_splits = 6});
  EXPECT_EQ(a.recommendations, b.recommendations);
}

TEST(Recommender, ProducesTwoMeasuredJobs) {
  auto ratings = synthetic_ratings(2, 10, 6, 0.5, 41);
  auto run = recommend_items(ratings);
  ASSERT_EQ(run.jobs.size(), 2u);
  EXPECT_GT(run.jobs[0].total_shuffle_bytes, 0.0);
}

}  // namespace
}  // namespace vhadoop::ml

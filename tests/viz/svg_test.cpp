#include "viz/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "ml/kmeans.hpp"
#include "sim/rng.hpp"

namespace vhadoop::viz {
namespace {

ml::Dataset small_blobs() {
  ml::Dataset data;
  sim::Rng rng(9);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      data.points.push_back({c * 6.0 + rng.normal(0, 0.2), rng.normal(0, 0.2)});
      data.labels.push_back(c);
    }
  }
  return data;
}

std::size_t count_occurrences(const std::string& s, const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = s.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(Svg, ContainsAllSamplePoints) {
  auto data = small_blobs();
  auto run = ml::kmeans_cluster(data, {.k = 2, .base = {.num_splits = 2}});
  const std::string svg = render_clustering_svg(data, run);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 30 sample points + one circle per center per iteration.
  std::size_t expected = data.size();
  for (const auto& centers : run.iteration_centers) expected += centers.size();
  EXPECT_EQ(count_occurrences(svg, "<circle"), expected);
}

TEST(Svg, FinalIterationIsBoldRed) {
  auto data = small_blobs();
  auto run = ml::kmeans_cluster(data, {.k = 2, .base = {.num_splits = 2}});
  const std::string svg = render_clustering_svg(data, run);
  EXPECT_NE(svg.find("stroke=\"red\""), std::string::npos);
  // The paper's color ladder appears when there are enough iterations.
  if (run.iteration_centers.size() >= 3) {
    EXPECT_NE(svg.find("stroke=\"magenta\""), std::string::npos);
  }
}

TEST(Svg, EarlyIterationsAreGreyWhenMany) {
  auto data = small_blobs();
  ml::ClusteringRun run;
  run.algorithm = "synthetic";
  for (int i = 0; i < 10; ++i) {
    run.iteration_centers.push_back({{0.0, 0.0}, {6.0, 0.0}});
  }
  run.iterations = 10;
  const std::string svg = render_clustering_svg(data, run);
  EXPECT_NE(svg.find("stroke=\"#cccccc\""), std::string::npos);
  EXPECT_NE(svg.find("stroke=\"orange\""), std::string::npos);
}

TEST(Svg, RejectsNon2dData) {
  ml::Dataset data;
  data.points = {{1.0, 2.0, 3.0}};
  data.labels = {0};
  ml::ClusteringRun run;
  EXPECT_THROW(render_clustering_svg(data, run), std::invalid_argument);
}

TEST(Svg, WritesFile) {
  auto data = small_blobs();
  auto run = ml::kmeans_cluster(data, {.k = 2, .base = {.num_splits = 2}});
  const std::string path = ::testing::TempDir() + "/cluster_test.svg";
  write_clustering_svg(path, data, run);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
}

TEST(TraceSvg, RendersSeriesWithLegend) {
  std::vector<TraceSeries> series;
  TraceSeries cpu{.name = "host cpu", .color = "tomato"};
  for (int t = 0; t <= 10; ++t) {
    cpu.times.push_back(t);
    cpu.values.push_back(0.1 * t);
  }
  series.push_back(cpu);
  const std::string svg = render_trace_svg(series);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("host cpu"), std::string::npos);
  EXPECT_NE(svg.find("tomato"), std::string::npos);
  EXPECT_NE(svg.find("100%"), std::string::npos);
}

TEST(TraceSvg, MismatchedSeriesThrows) {
  TraceSeries bad{.name = "x"};
  bad.times = {1.0, 2.0};
  bad.values = {0.5};
  EXPECT_THROW(render_trace_svg({bad}), std::invalid_argument);
}

TEST(TraceSvg, ValuesClampedToUnitRange) {
  TraceSeries spike{.name = "spike"};
  spike.times = {0.0, 1.0};
  spike.values = {-0.5, 2.0};
  const std::string svg = render_trace_svg({spike});
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(Svg, DegenerateSinglePointDatasetIsSafe) {
  ml::Dataset data;
  data.points = {{5.0, 5.0}};
  data.labels = {0};
  ml::ClusteringRun run;
  run.iteration_centers.push_back({{5.0, 5.0}});
  run.iterations = 1;
  const std::string svg = render_clustering_svg(data, run);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace vhadoop::viz

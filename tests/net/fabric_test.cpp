#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/fluid.hpp"

namespace vhadoop::net {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : model(engine), fabric(engine, model, NetConfig{}) {
    a = fabric.add_node("hostA");
    b = fabric.add_node("hostB");
  }

  sim::Engine engine;
  sim::FluidModel model{engine};
  Fabric fabric;
  Fabric::NodeId a{}, b{};
};

TEST_F(FabricTest, CrossHostFlowCappedByVirtualizedNic) {
  const double bytes = 100 * sim::kMiB;
  double done_at = -1.0;
  fabric.transfer({.src = {a, true, 0},
                   .dst = {b, true, 1},
                   .bytes = bytes,
                   .on_complete = [&] { done_at = engine.now(); }});
  engine.run();
  const NetConfig cfg;
  const double expect = bytes / (cfg.nic_bw * cfg.vm_io_efficiency);
  EXPECT_NEAR(done_at, expect, expect * 0.01);
}

TEST_F(FabricTest, BareMetalEndpointsGetFullNicRate) {
  const double bytes = 100 * sim::kMiB;
  double done_at = -1.0;
  fabric.transfer({.src = {a, false, -1},
                   .dst = {b, false, -1},
                   .bytes = bytes,
                   .on_complete = [&] { done_at = engine.now(); }});
  engine.run();
  const NetConfig cfg;
  EXPECT_NEAR(done_at, bytes / cfg.nic_bw, 0.01);
}

TEST_F(FabricTest, IntraHostFlowIsFasterThanCrossHost) {
  const double bytes = 64 * sim::kMiB;
  double intra = -1.0, cross = -1.0;
  fabric.transfer({.src = {a, true, 0},
                   .dst = {a, true, 1},
                   .bytes = bytes,
                   .on_complete = [&] { intra = engine.now(); }});
  engine.run();
  const double intra_elapsed = intra;

  sim::Engine e2;
  sim::FluidModel m2(e2);
  Fabric f2(e2, m2, NetConfig{});
  auto n0 = f2.add_node("h0");
  auto n1 = f2.add_node("h1");
  f2.transfer({.src = {n0, true, 0},
               .dst = {n1, true, 1},
               .bytes = bytes,
               .on_complete = [&] { cross = e2.now(); }});
  e2.run();
  EXPECT_LT(intra_elapsed, cross * 0.25);  // bridge is 8x the NIC
}

TEST_F(FabricTest, LoopbackIsFastest) {
  const double bytes = 64 * sim::kMiB;
  double loop = -1.0;
  fabric.transfer({.src = {a, true, 3},
                   .dst = {a, true, 3},
                   .bytes = bytes,
                   .on_complete = [&] { loop = engine.now(); }});
  engine.run();
  const NetConfig cfg;
  EXPECT_NEAR(loop, bytes / (cfg.loopback_bw * cfg.vm_io_efficiency), 0.05);
}

TEST_F(FabricTest, TwoFlowsShareTxNic) {
  const double bytes = 50 * sim::kMiB;
  int done = 0;
  double last = -1.0;
  for (int i = 0; i < 2; ++i) {
    fabric.transfer({.src = {a, false, -1},
                     .dst = {b, false, -1},
                     .bytes = bytes,
                     .on_complete = [&] {
                       ++done;
                       last = engine.now();
                     }});
  }
  engine.run();
  EXPECT_EQ(done, 2);
  const NetConfig cfg;
  EXPECT_NEAR(last, 2 * bytes / cfg.nic_bw, 0.05);
}

TEST_F(FabricTest, OppositeDirectionsDoNotContend) {
  // Full duplex: A->B and B->A each get the whole NIC.
  const double bytes = 50 * sim::kMiB;
  double ab = -1.0, ba = -1.0;
  fabric.transfer({.src = {a, false, -1}, .dst = {b, false, -1}, .bytes = bytes,
                   .on_complete = [&] { ab = engine.now(); }});
  fabric.transfer({.src = {b, false, -1}, .dst = {a, false, -1}, .bytes = bytes,
                   .on_complete = [&] { ba = engine.now(); }});
  engine.run();
  const NetConfig cfg;
  EXPECT_NEAR(ab, bytes / cfg.nic_bw, 0.01);
  EXPECT_NEAR(ba, bytes / cfg.nic_bw, 0.01);
}

TEST_F(FabricTest, ExtraResourceThrottlesFlow) {
  auto disk = model.add_resource("nfs.disk", sim::mbyte_per_s(20));
  const double bytes = 100 * sim::kMiB;
  double done = -1.0;
  fabric.transfer({.src = {a, false, -1},
                   .dst = {b, false, -1},
                   .bytes = bytes,
                   .extra_resources = {disk},
                   .on_complete = [&] { done = engine.now(); }});
  engine.run();
  EXPECT_NEAR(done, bytes / sim::mbyte_per_s(20), 0.05);
}

TEST_F(FabricTest, MessageLatencyComposition) {
  const NetConfig cfg;
  // VM to VM across hosts: 2 virtual endpoints + 1 hop.
  EXPECT_DOUBLE_EQ(fabric.message_latency({a, true, 0}, {b, true, 1}),
                   2 * cfg.vm_latency + cfg.hop_latency);
  // Bare metal across hosts: just the hop.
  EXPECT_DOUBLE_EQ(fabric.message_latency({a, false, -1}, {b, false, -1}), cfg.hop_latency);
  // Same host, two VMs: no switch hop.
  EXPECT_DOUBLE_EQ(fabric.message_latency({a, true, 0}, {a, true, 1}), 2 * cfg.vm_latency);
}

TEST_F(FabricTest, SmallMessagesAreLatencyDominated) {
  double t_small = -1.0;
  fabric.transfer({.src = {a, true, 0},
                   .dst = {b, true, 1},
                   .bytes = 100.0,
                   .on_complete = [&] { t_small = engine.now(); }});
  engine.run();
  const NetConfig cfg;
  const double lat = 2 * cfg.vm_latency + cfg.hop_latency;
  EXPECT_GE(t_small, lat);
  EXPECT_LT(t_small, lat * 1.5);
}

TEST_F(FabricTest, UnknownNodeThrows) {
  EXPECT_THROW(fabric.transfer({.src = {a, true, 0}, .dst = {99, true, 1}, .bytes = 1.0}),
               std::out_of_range);
}

TEST_F(FabricTest, UtilizationVisibleWhileFlowing) {
  fabric.transfer({.src = {a, false, -1}, .dst = {b, false, -1}, .bytes = 1e9});
  engine.run_until(1.0);
  EXPECT_NEAR(fabric.tx_utilization(a), 1.0, 1e-6);
  EXPECT_NEAR(fabric.rx_utilization(b), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(fabric.tx_utilization(b), 0.0);
}

}  // namespace
}  // namespace vhadoop::net

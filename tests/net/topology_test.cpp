#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"

namespace vhadoop::net {
namespace {

constexpr double kNicBw = 100.0;
constexpr double kHop = 1e-4;

TEST(TopologyKindTest, ParseAndPrintRoundTrip) {
  for (TopologyKind kind :
       {TopologyKind::SingleSwitch, TopologyKind::FatTree, TopologyKind::Rotor}) {
    const auto parsed = topology_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(topology_kind_from_string("mesh").has_value());
  EXPECT_FALSE(topology_kind_from_string("").has_value());
}

TEST(TopologyTest, SingleSwitchIsOneRackAndWireFree) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.racks = 8;  // ignored: the single switch is one big rack
  auto topo = make_topology(model, cfg, kNicBw, kHop);
  EXPECT_EQ(topo->rack_count(), 1);
  for (int n = 0; n < 20; ++n) topo->attach(-1);
  std::vector<sim::FluidModel::ResourceId> wires;
  topo->append_wire_resources(0, 19, wires);
  EXPECT_TRUE(wires.empty());
  EXPECT_DOUBLE_EQ(topo->wire_latency(0, 19), kHop);
}

TEST(TopologyTest, AutoAttachFillsRacksConsecutively) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.kind = TopologyKind::FatTree;
  cfg.racks = 3;
  cfg.nodes_per_rack = 2;
  auto topo = make_topology(model, cfg, kNicBw, kHop);
  EXPECT_EQ(topo->rack_count(), 3);
  std::vector<int> racks;
  for (int n = 0; n < 8; ++n) racks.push_back(topo->attach(-1));
  // 2 per rack; overflow past the grid lands in the last rack.
  EXPECT_EQ(racks, (std::vector<int>{0, 0, 1, 1, 2, 2, 2, 2}));
  for (std::size_t n = 0; n < racks.size(); ++n) {
    EXPECT_EQ(topo->rack_of(n), racks[n]);
  }
}

TEST(TopologyTest, PinnedAttachDoesNotAdvanceTheAutoCursor) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.kind = TopologyKind::FatTree;
  cfg.racks = 2;
  cfg.nodes_per_rack = 2;
  auto topo = make_topology(model, cfg, kNicBw, kHop);
  EXPECT_EQ(topo->attach(1), 1);   // pinned (a per-rack filer)
  EXPECT_EQ(topo->attach(-1), 0);  // auto assignment starts at rack 0 regardless
  EXPECT_EQ(topo->attach(-1), 0);
  EXPECT_EQ(topo->attach(-1), 1);
  EXPECT_THROW(topo->attach(2), std::invalid_argument);
}

TEST(TopologyTest, FatTreeTorUplinksCarryOversubscribedCapacity) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.kind = TopologyKind::FatTree;
  cfg.racks = 2;
  cfg.nodes_per_rack = 4;
  cfg.oversubscription = 4.0;
  auto topo = make_topology(model, cfg, kNicBw, kHop);
  for (int n = 0; n < 8; ++n) topo->attach(-1);

  std::vector<sim::FluidModel::ResourceId> wires;
  topo->append_wire_resources(0, 7, wires);  // rack 0 -> rack 1
  ASSERT_EQ(wires.size(), 2u);               // src ToR up + dst ToR down
  const double expect = cfg.nodes_per_rack * kNicBw / cfg.oversubscription;
  EXPECT_DOUBLE_EQ(model.capacity(wires[0]), expect);
  EXPECT_DOUBLE_EQ(model.capacity(wires[1]), expect);

  wires.clear();
  topo->append_wire_resources(0, 1, wires);  // same rack: ToR not involved
  EXPECT_TRUE(wires.empty());

  EXPECT_DOUBLE_EQ(topo->wire_latency(0, 1), kHop);      // intra-rack
  EXPECT_DOUBLE_EQ(topo->wire_latency(0, 7), 3 * kHop);  // ToR-core-ToR
}

TEST(TopologyTest, RotorRunsFullBisectionWithCycleLatency) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.kind = TopologyKind::Rotor;
  cfg.racks = 2;
  cfg.nodes_per_rack = 4;
  auto topo = make_topology(model, cfg, kNicBw, kHop);
  for (int n = 0; n < 8; ++n) topo->attach(-1);

  std::vector<sim::FluidModel::ResourceId> wires;
  topo->append_wire_resources(0, 7, wires);
  ASSERT_EQ(wires.size(), 2u);
  EXPECT_DOUBLE_EQ(model.capacity(wires[0]), cfg.nodes_per_rack * kNicBw);
  EXPECT_DOUBLE_EQ(model.capacity(wires[1]), cfg.nodes_per_rack * kNicBw);
  EXPECT_DOUBLE_EQ(topo->wire_latency(0, 7), 2 * kHop + cfg.rotor_cycle_latency);
  EXPECT_DOUBLE_EQ(topo->wire_latency(0, 1), kHop);
}

TEST(TopologyTest, ConfigValidationRejectsDegenerateGrids) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  TopologyConfig cfg;
  cfg.kind = TopologyKind::FatTree;
  cfg.racks = 0;
  EXPECT_THROW(make_topology(model, cfg, kNicBw, kHop), std::invalid_argument);
  cfg.racks = 2;
  cfg.nodes_per_rack = 0;
  EXPECT_THROW(make_topology(model, cfg, kNicBw, kHop), std::invalid_argument);
  cfg.nodes_per_rack = 2;
  cfg.oversubscription = 0.5;  // a ToR cannot amplify bandwidth
  EXPECT_THROW(make_topology(model, cfg, kNicBw, kHop), std::invalid_argument);
  cfg.oversubscription = 4.0;
  cfg.kind = TopologyKind::Rotor;
  cfg.rotor_cycle_latency = 0.0;
  EXPECT_THROW(make_topology(model, cfg, kNicBw, kHop), std::invalid_argument);
}

TEST(NetConfigValidationTest, FabricRejectsNonPositiveRatesAndLatencies) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  auto reject = [&](auto&& mutate) {
    NetConfig cfg;
    mutate(cfg);
    EXPECT_THROW(Fabric(engine, model, cfg), std::invalid_argument);
  };
  reject([](NetConfig& c) { c.nic_bw = 0.0; });
  reject([](NetConfig& c) { c.bridge_bw = -1.0; });
  reject([](NetConfig& c) { c.loopback_bw = 0.0; });
  reject([](NetConfig& c) { c.hop_latency = 0.0; });
  reject([](NetConfig& c) { c.vm_latency = -1e-6; });
  reject([](NetConfig& c) { c.vm_io_efficiency = 0.0; });
  reject([](NetConfig& c) { c.vm_io_efficiency = 1.5; });
  reject([](NetConfig& c) { c.topology.racks = -1; });
}

TEST(FabricRackTest, NodesReportTheirTopologyRack) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  NetConfig cfg;
  cfg.topology.kind = TopologyKind::FatTree;
  cfg.topology.racks = 2;
  cfg.topology.nodes_per_rack = 2;
  Fabric fabric(engine, model, cfg);
  const auto a = fabric.add_node("a");
  const auto b = fabric.add_node("b");
  const auto c = fabric.add_node("c");
  const auto pinned = fabric.add_node("pinned", 1);
  EXPECT_EQ(fabric.rack_count(), 2);
  EXPECT_EQ(fabric.rack_of(a), 0);
  EXPECT_EQ(fabric.rack_of(b), 0);
  EXPECT_EQ(fabric.rack_of(c), 1);
  EXPECT_EQ(fabric.rack_of(pinned), 1);
}

TEST(FabricRackTest, InterRackFlowCountedAndSlowedByTor) {
  sim::Engine engine;
  sim::FluidModel model(engine);
  NetConfig cfg;
  cfg.topology.kind = TopologyKind::FatTree;
  cfg.topology.racks = 2;
  cfg.topology.nodes_per_rack = 1;
  cfg.topology.oversubscription = 8.0;  // ToR uplink = nic/8
  Fabric fabric(engine, model, cfg);
  const auto a = fabric.add_node("a");
  const auto b = fabric.add_node("b");
  double done_at = -1.0;
  const double bytes = 100 * sim::kMiB;
  fabric.transfer({.src = {a, false, -1},
                   .dst = {b, false, -1},
                   .bytes = bytes,
                   .on_complete = [&] { done_at = engine.now(); }});
  engine.run();
  // The over-subscribed ToR uplink, not the NIC, is the bottleneck.
  EXPECT_NEAR(done_at, bytes / (cfg.nic_bw / 8.0), 0.05);
  const obs::Counter* inter = engine.metrics().find_counter("net.flows_inter_rack");
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->value(), 1.0);
}

}  // namespace
}  // namespace vhadoop::net

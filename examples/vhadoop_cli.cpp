// vhadoop_cli — command-line scenario driver, the `hadoop jar`-style entry
// point for quick experiments against the simulated testbed.
//
//   vhadoop_cli <workload> [--cross] [--workers N] [--mb SIZE]
//               [--metrics-out=FILE] [--trace-out=FILE]
//
// workloads: wordcount | terasort | dfsio | mrbench | pi
//
// --metrics-out writes the platform metrics registry as JSON after the run;
// --trace-out enables timeline tracing and writes a Chrome trace-event file
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Examples:
//   vhadoop_cli terasort --mb 800 --cross
//   vhadoop_cli wordcount --workers 7 --mb 64
//   vhadoop_cli wordcount --trace-out=trace.json --metrics-out=metrics.json
//   vhadoop_cli pi

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/platform.hpp"
#include "mapreduce/local_runner.hpp"
#include "workloads/dfsio.hpp"
#include "workloads/mrbench.hpp"
#include "workloads/pi_estimator.hpp"
#include "workloads/terasort.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

using namespace vhadoop;

namespace {

struct Options {
  std::string workload;
  bool cross = false;
  int workers = 15;
  double mb = 128.0;
  std::string metrics_out;
  std::string trace_out;
};

int usage() {
  std::fprintf(stderr,
               "usage: vhadoop_cli <wordcount|terasort|dfsio|mrbench|pi> "
               "[--cross] [--workers N] [--mb SIZE] "
               "[--metrics-out=FILE] [--trace-out=FILE]\n");
  return 2;
}

Options parse(int argc, char** argv) {
  Options opt;
  if (argc < 2) return opt;
  opt.workload = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cross") {
      opt.cross = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      opt.workers = std::atoi(argv[++i]);
    } else if (arg == "--mb" && i + 1 < argc) {
      opt.mb = std::atof(argv[++i]);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opt.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = arg.substr(12);
    }
  }
  return opt;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "vhadoop_cli: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.workload.empty()) return usage();

  core::Platform platform;
  if (!opt.trace_out.empty()) platform.enable_tracing();
  core::ClusterSpec spec;
  spec.num_workers = opt.workers;
  spec.placement = opt.cross ? core::Placement::CrossDomain : core::Placement::Normal;
  platform.boot_cluster(spec);
  std::printf("cluster: %d workers, %s placement (boot %.0f s simulated)\n", opt.workers,
              opt.cross ? "cross-domain" : "normal", platform.engine().now());

  if (opt.workload == "wordcount") {
    workloads::TextCorpus corpus(20000);
    auto lines = corpus.generate(opt.mb * sim::kMiB);
    mapreduce::LocalJobRunner local;
    const int splits = std::max(1, static_cast<int>(opt.mb / 16.0));
    auto measured = local.run(workloads::wordcount_job(4), lines, splits);
    platform.upload("/in/corpus", mapreduce::serialized_bytes(lines));
    auto t = platform.run_measured("wordcount", measured, "/in/corpus", "/out/wc");
    std::printf("wordcount %.0f MB: %.1f s (%d/%zu data-local maps, %zu distinct words)\n",
                opt.mb, t.elapsed(), t.data_local_maps(), t.maps.size(),
                measured.output.size());
  } else if (opt.workload == "terasort") {
    workloads::TeraSort ts{.total_bytes = opt.mb * sim::kMiB, .num_reduces = 1};
    const double gen = platform.run_job(ts.sim_teragen("/t/in")).elapsed();
    const double sort = platform.run_job(ts.sim_terasort("/t/in", "/t/out")).elapsed();
    const double val = platform.run_job(ts.sim_teravalidate("/t/out")).elapsed();
    std::printf("terasort %.0f MB: gen %.1f s, sort %.1f s, validate %.1f s\n", opt.mb, gen,
                sort, val);
  } else if (opt.workload == "dfsio") {
    workloads::TestDfsIo io(platform.runner(), platform.hdfs(), 10,
                            opt.mb / 10.0 * sim::kMiB);
    workloads::TestDfsIo::Result wr, rd;
    io.run_write("/dfsio", [&](const workloads::TestDfsIo::Result& r) { wr = r; });
    io.run_read("/dfsio", [&](const workloads::TestDfsIo::Result& r) { rd = r; });
    platform.engine().run();
    std::printf("dfsio 10 x %.0f MB: write %.1f MB/s, read %.1f MB/s\n", opt.mb / 10.0,
                wr.throughput_mb_s(), rd.throughput_mb_s());
  } else if (opt.workload == "mrbench") {
    for (int maps = 1; maps <= 6; ++maps) {
      workloads::MrBench bench{.num_maps = maps, .num_reduces = 1};
      auto t = platform.run_job(bench.sim_job("/out/mrb-" + std::to_string(maps)));
      std::printf("mrbench maps=%d: %.2f s\n", maps, t.elapsed());
    }
  } else if (opt.workload == "pi") {
    workloads::PiEstimator pi{.num_maps = opt.workers, .samples_per_map = 500000};
    auto real = pi.run();
    auto t = platform.run_job(pi.sim_job("/out/pi"));
    std::printf("pi: estimate %.5f (%lld samples), cluster time %.1f s\n", real.pi,
                static_cast<long long>(real.total), t.elapsed());
  } else {
    return usage();
  }

  if (!opt.metrics_out.empty()) {
    if (!write_text_file(opt.metrics_out, platform.metrics().to_json())) return 1;
    std::printf("metrics: %s (%zu metrics)\n", opt.metrics_out.c_str(),
                platform.metrics().size());
  }
  if (!opt.trace_out.empty()) {
    if (!write_text_file(opt.trace_out, platform.tracer().to_chrome_json())) return 1;
    std::printf("trace: %s (%zu events) — load in chrome://tracing or ui.perfetto.dev\n",
                opt.trace_out.c_str(), platform.tracer().events().size());
  }
  return 0;
}

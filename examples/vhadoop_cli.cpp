// vhadoop_cli — command-line scenario driver, the `hadoop jar`-style entry
// point for quick experiments against the simulated testbed.
//
//   vhadoop_cli <workload> [--cross] [--workers N] [--mb SIZE]
//               [--scheduler=fifo|fair|capacity|deadline]
//               [--workload-trace=FILE] [--trace-gen=SPEC]
//               [--metrics-out=FILE] [--trace-out=FILE] [--spans-out=FILE]
//               [--timeseries-out=FILE]
//               [--sort-parallel-threshold=N] [--small-job-fast-path-bytes=N]
//               [--merge-range-split-min=N]
//
// The three --sort/--small/--merge flags are the RunnerTuning data-path
// knobs (DESIGN.md §15): they route the real-execution LocalJobRunner
// between its serial small-job fast path and the parallel sort/merge
// stages. All must be positive; outputs are identical at every setting.
//
// workloads: wordcount | terasort | dfsio | mrbench | pi | multi | trace
//
// --scheduler selects the JobTracker scheduling policy (default fifo); the
// `multi` workload submits a mixed job stream (one long sort behind a train
// of short jobs) so the policies can be compared head-to-head.
//
// The `trace` workload replays a multi-tenant day of traffic open-loop
// through per-tenant admission control and prints a per-tenant SLO report.
// --workload-trace=FILE replays a vhadoop-trace-v1 file; otherwise a trace
// is generated deterministically from --trace-gen=SPEC, a comma-separated
// list of jobs=N, horizon=SECONDS, tenants=N, process=poisson|bursty,
// seed=N, out=FILE (out= writes the trace file and exits without
// replaying). Example:
//   vhadoop_cli trace --trace-gen=jobs=2000,seed=7,out=day.trace
//   vhadoop_cli trace --workload-trace=day.trace --scheduler=deadline
//
// --metrics-out writes the platform metrics registry as JSON after the run;
// --trace-out enables timeline tracing and writes a Chrome trace-event file
// loadable in chrome://tracing or https://ui.perfetto.dev.
// --spans-out enables tracing too and writes the causal span graph
// ("vhadoop-spans-v1") for tools/trace_query: pipe it into
// `trace_query spans.json --critical-path --attribution` for per-job
// bottleneck attribution. --timeseries-out samples the standard platform
// probes once per simulated second and writes the ring buffers as JSON.
//
// Examples:
//   vhadoop_cli terasort --mb 800 --cross
//   vhadoop_cli wordcount --workers 7 --mb 64
//   vhadoop_cli wordcount --trace-out=trace.json --metrics-out=metrics.json
//   vhadoop_cli terasort --spans-out=spans.json --timeseries-out=series.json
//   vhadoop_cli pi
//   vhadoop_cli multi --scheduler=fair

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/platform.hpp"
#include "mapreduce/local_runner.hpp"
#include "net/topology.hpp"
#include "workloads/dfsio.hpp"
#include "workloads/mrbench.hpp"
#include "workloads/pi_estimator.hpp"
#include "workloads/terasort.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/trace.hpp"
#include "workloads/trace_replay.hpp"
#include "workloads/wordcount.hpp"

using namespace vhadoop;

namespace {

struct Options {
  std::string workload;
  bool cross = false;
  int workers = 15;
  double mb = 128.0;
  std::string metrics_out;
  std::string trace_out;
  std::string spans_out;
  std::string timeseries_out;
  std::string scheduler = "fifo";
  std::string workload_trace;
  std::string trace_gen;
  std::string topology = "single-switch";
  int racks = 2;
  int hosts_per_rack = 2;
  long long sort_parallel_threshold = mapreduce::RunnerTuning::kDefaultSortParallelThreshold;
  long long small_job_fast_path_bytes = mapreduce::RunnerTuning::kDefaultSmallJobFastPathBytes;
  long long merge_range_split_min = mapreduce::RunnerTuning::kDefaultMergeRangeSplitMin;
};

int usage() {
  std::fprintf(stderr,
               "usage: vhadoop_cli <wordcount|terasort|dfsio|mrbench|pi|multi|trace> "
               "[--cross] [--workers N] [--mb SIZE] "
               "[--scheduler=fifo|fair|capacity|deadline] "
               "[--topology=single-switch|fat-tree|rotor] "
               "[--racks=N] [--hosts-per-rack=N] "
               "[--workload-trace=FILE] [--trace-gen=SPEC] "
               "[--metrics-out=FILE] [--trace-out=FILE] [--spans-out=FILE] "
               "[--timeseries-out=FILE] "
               "[--sort-parallel-threshold=N] [--small-job-fast-path-bytes=N] "
               "[--merge-range-split-min=N]\n");
  return 2;
}

Options parse(int argc, char** argv) {
  Options opt;
  if (argc < 2) return opt;
  opt.workload = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cross") {
      opt.cross = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      opt.workers = std::atoi(argv[++i]);
    } else if (arg == "--mb" && i + 1 < argc) {
      opt.mb = std::atof(argv[++i]);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opt.metrics_out = arg.substr(14);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = arg.substr(12);
    } else if (arg.rfind("--spans-out=", 0) == 0) {
      opt.spans_out = arg.substr(12);
    } else if (arg.rfind("--timeseries-out=", 0) == 0) {
      opt.timeseries_out = arg.substr(17);
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      opt.scheduler = arg.substr(12);
    } else if (arg.rfind("--workload-trace=", 0) == 0) {
      opt.workload_trace = arg.substr(17);
    } else if (arg.rfind("--trace-gen=", 0) == 0) {
      opt.trace_gen = arg.substr(12);
    } else if (arg.rfind("--topology=", 0) == 0) {
      opt.topology = arg.substr(11);
    } else if (arg.rfind("--racks=", 0) == 0) {
      opt.racks = std::atoi(arg.substr(8).c_str());
    } else if (arg.rfind("--hosts-per-rack=", 0) == 0) {
      opt.hosts_per_rack = std::atoi(arg.substr(17).c_str());
    } else if (arg.rfind("--sort-parallel-threshold=", 0) == 0) {
      opt.sort_parallel_threshold = std::atoll(arg.substr(26).c_str());
    } else if (arg.rfind("--small-job-fast-path-bytes=", 0) == 0) {
      opt.small_job_fast_path_bytes = std::atoll(arg.substr(28).c_str());
    } else if (arg.rfind("--merge-range-split-min=", 0) == 0) {
      opt.merge_range_split_min = std::atoll(arg.substr(24).c_str());
    }
  }
  return opt;
}

/// Parse a --trace-gen SPEC ("jobs=N,horizon=S,tenants=N,process=...,seed=N,
/// out=FILE"). Unknown keys are fatal so typos cannot silently produce the
/// default trace. Returns false (with a message) on a malformed spec.
bool parse_gen_spec(const std::string& spec, workloads::TraceGenConfig& gen,
                    std::string& out_file) {
  std::stringstream ss(spec);
  std::string kv;
  while (std::getline(ss, kv, ',')) {
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "vhadoop_cli: --trace-gen entry '%s' is not key=value\n", kv.c_str());
      return false;
    }
    const std::string key = kv.substr(0, eq), val = kv.substr(eq + 1);
    if (key == "jobs") {
      gen.num_jobs = std::atoi(val.c_str());
    } else if (key == "horizon") {
      gen.horizon_seconds = std::atof(val.c_str());
    } else if (key == "tenants") {
      gen.num_tenants = std::atoi(val.c_str());
    } else if (key == "seed") {
      gen.seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else if (key == "process") {
      if (val == "poisson") {
        gen.process = workloads::ArrivalProcess::Poisson;
      } else if (val == "bursty") {
        gen.process = workloads::ArrivalProcess::Bursty;
      } else {
        std::fprintf(stderr, "vhadoop_cli: unknown arrival process '%s'\n", val.c_str());
        return false;
      }
    } else if (key == "out") {
      out_file = val;
    } else {
      std::fprintf(stderr, "vhadoop_cli: unknown --trace-gen key '%s'\n", key.c_str());
      return false;
    }
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "vhadoop_cli: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.workload.empty()) return usage();

  const auto policy = mapreduce::scheduler_policy_from_string(opt.scheduler);
  if (!policy) {
    std::fprintf(stderr, "vhadoop_cli: unknown scheduler '%s' (fifo|fair|capacity|deadline)\n",
                 opt.scheduler.c_str());
    return 2;
  }

  const auto topology = net::topology_kind_from_string(opt.topology);
  if (!topology) {
    std::fprintf(stderr, "vhadoop_cli: unknown topology '%s' (single-switch|fat-tree|rotor)\n",
                 opt.topology.c_str());
    return 2;
  }

  if (opt.racks < 1 || opt.hosts_per_rack < 1) {
    std::fprintf(stderr, "vhadoop_cli: --racks and --hosts-per-rack must be >= 1\n");
    return 2;
  }

  // RunnerTuning validates at construction (rejects non-positive values);
  // surface that as a usage error instead of an uncaught exception.
  std::optional<mapreduce::RunnerTuning> tuning;
  try {
    tuning.emplace(opt.sort_parallel_threshold, opt.small_job_fast_path_bytes,
                   opt.merge_range_split_min);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "vhadoop_cli: %s\n", e.what());
    return 2;
  }

  core::TestbedConfig testbed;
  testbed.net.topology.kind = *topology;
  if (*topology != net::TopologyKind::SingleSwitch) {
    // Multi-rack testbed: the rack grid decides the host count, and VMs
    // spread round-robin so every rack actually hosts part of the cluster.
    testbed.net.topology.racks = opt.racks;
    testbed.net.topology.nodes_per_rack = opt.hosts_per_rack;
    testbed.num_hosts = opt.racks * opt.hosts_per_rack;
  }
  core::Platform platform(testbed);
  if (!opt.trace_out.empty() || !opt.spans_out.empty()) platform.enable_tracing();
  if (!opt.timeseries_out.empty()) platform.enable_timeseries(1.0);
  core::ClusterSpec spec;
  spec.num_workers = opt.workers;
  spec.placement = opt.cross ? core::Placement::CrossDomain : core::Placement::Normal;
  if (*topology != net::TopologyKind::SingleSwitch) spec.placement = core::Placement::Spread;
  spec.hadoop.scheduler = *policy;
  spec.hadoop.runner = *tuning;
  if (*policy == mapreduce::SchedulerPolicy::Capacity) {
    if (opt.workload == "trace") {
      // Generated traces route jobs to these two queues; interactive
      // traffic gets the larger guarantee.
      spec.hadoop.queues = {{"interactive", 0.6, 1.0, 1.0}, {"batch", 0.4, 1.0, 1.0}};
    } else {
      // Two demo queues: production owns 70% of the slots, adhoc the rest.
      spec.hadoop.queues = {{"prod", 0.7, 1.0, 1.0}, {"adhoc", 0.3, 0.5, 1.0}};
    }
  }
  platform.boot_cluster(spec);
  std::printf("cluster: %d workers, %s placement, %s scheduler (boot %.0f s simulated)\n",
              opt.workers, opt.cross ? "cross-domain" : "normal",
              platform.runner().scheduler_name(), platform.engine().now());

  if (opt.workload == "wordcount") {
    workloads::TextCorpus corpus(20000);
    auto lines = corpus.generate(opt.mb * sim::kMiB);
    mapreduce::LocalJobRunner local(0, *tuning);
    const int splits = std::max(1, static_cast<int>(opt.mb / 16.0));
    auto measured = local.run(workloads::wordcount_job(4), lines, splits);
    platform.upload("/in/corpus", mapreduce::serialized_bytes(lines));
    auto t = platform.run_measured("wordcount", measured, "/in/corpus", "/out/wc");
    std::printf("wordcount %.0f MB: %.1f s (%d/%zu data-local maps, %zu distinct words)\n",
                opt.mb, t.elapsed(), t.data_local_maps(), t.maps.size(),
                measured.output.size());
  } else if (opt.workload == "terasort") {
    workloads::TeraSort ts{.total_bytes = opt.mb * sim::kMiB, .num_reduces = 1};
    const double gen = platform.run_job(ts.sim_teragen("/t/in")).elapsed();
    const double sort = platform.run_job(ts.sim_terasort("/t/in", "/t/out")).elapsed();
    const double val = platform.run_job(ts.sim_teravalidate("/t/out")).elapsed();
    std::printf("terasort %.0f MB: gen %.1f s, sort %.1f s, validate %.1f s\n", opt.mb, gen,
                sort, val);
  } else if (opt.workload == "dfsio") {
    workloads::TestDfsIo io(platform.runner(), platform.hdfs(), 10,
                            opt.mb / 10.0 * sim::kMiB);
    workloads::TestDfsIo::Result wr, rd;
    io.run_write("/dfsio", [&](const workloads::TestDfsIo::Result& r) { wr = r; });
    io.run_read("/dfsio", [&](const workloads::TestDfsIo::Result& r) { rd = r; });
    platform.engine().run();
    std::printf("dfsio 10 x %.0f MB: write %.1f MB/s, read %.1f MB/s\n", opt.mb / 10.0,
                wr.throughput_mb_s(), rd.throughput_mb_s());
  } else if (opt.workload == "mrbench") {
    for (int maps = 1; maps <= 6; ++maps) {
      workloads::MrBench bench{.num_maps = maps, .num_reduces = 1};
      auto t = platform.run_job(bench.sim_job("/out/mrb-" + std::to_string(maps)));
      std::printf("mrbench maps=%d: %.2f s\n", maps, t.elapsed());
    }
  } else if (opt.workload == "pi") {
    workloads::PiEstimator pi{.num_maps = opt.workers, .samples_per_map = 500000};
    auto real = pi.run();
    auto t = platform.run_job(pi.sim_job("/out/pi"));
    std::printf("pi: estimate %.5f (%lld samples), cluster time %.1f s\n", real.pi,
                static_cast<long long>(real.total), t.elapsed());
  } else if (opt.workload == "multi") {
    // One long sort monopolizes the cluster under FIFO; a train of short
    // jobs queues behind it. Fair/Capacity interleave them instead.
    workloads::TeraSort ts{.total_bytes = opt.mb * 4 * sim::kMiB, .num_reduces = 4};
    platform.run_job(ts.sim_teragen("/multi/in"));
    const double t0 = platform.engine().now();
    std::vector<std::pair<std::string, double>> latency;
    auto record = [&latency, t0](const std::string& name) {
      return [&latency, name, t0](const mapreduce::JobTimeline& t) {
        latency.emplace_back(name, t.finished - t0);
      };
    };
    auto long_job = ts.sim_terasort("/multi/in", "/multi/out");
    long_job.queue = "prod";
    platform.submit_job(std::move(long_job), record("long-sort"));
    for (int k = 0; k < 4; ++k) {
      workloads::MrBench bench{.num_maps = 4, .num_reduces = 1};
      auto job = bench.sim_job("/multi/short-" + std::to_string(k));
      job.name = "short-" + std::to_string(k);
      job.queue = "adhoc";
      auto done = record(job.name);
      platform.submit_job(std::move(job), std::move(done));
    }
    platform.engine().run();
    double makespan = 0.0;
    for (const auto& [name, secs] : latency) {
      std::printf("  %-10s finished after %.1f s\n", name.c_str(), secs);
      makespan = std::max(makespan, secs);
    }
    std::printf("multi (%s): %zu jobs, makespan %.1f s\n",
                platform.runner().scheduler_name(), latency.size(), makespan);
  } else if (opt.workload == "trace") {
    workloads::WorkloadTrace trace;
    if (!opt.workload_trace.empty()) {
      std::ifstream in(opt.workload_trace, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "vhadoop_cli: cannot read %s\n", opt.workload_trace.c_str());
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      const auto err = workloads::parse_trace(buf.str(), trace);
      if (!err.ok()) {
        std::fprintf(stderr, "vhadoop_cli: %s: %s\n", opt.workload_trace.c_str(),
                     err.to_string().c_str());
        return 1;
      }
    } else {
      workloads::TraceGenConfig gen;
      std::string gen_out;
      if (!parse_gen_spec(opt.trace_gen, gen, gen_out)) return 2;
      trace = workloads::generate_trace(gen);
      if (!gen_out.empty()) {
        if (!write_text_file(gen_out, trace.serialize())) return 1;
        std::printf("trace: wrote %zu records to %s\n", trace.records.size(),
                    gen_out.c_str());
        return 0;
      }
    }
    workloads::TraceReplayer replayer(
        platform.engine(), platform.metrics(), std::move(trace),
        [&platform](mapreduce::SimJobSpec job,
                    std::function<void(const mapreduce::JobTimeline&)> done) {
          platform.submit_job(std::move(job), std::move(done));
        });
    const double makespan = replayer.run_to_completion();
    std::printf("trace (%s): %d accepted, %d rejected, %d completed, %d failed, "
                "makespan %.1f s\n",
                platform.runner().scheduler_name(), replayer.accepted(),
                replayer.rejected(), replayer.completed(), replayer.failed(), makespan);
    std::printf("  SLO: %d/%d missed (%.1f%%), p50 %.1f s, p95 %.1f s, p99 %.1f s\n",
                replayer.slo_missed(), replayer.slo_tracked(),
                100.0 * replayer.slo_miss_rate(), replayer.latency_percentile(0.50),
                replayer.latency_percentile(0.95), replayer.latency_percentile(0.99));
    for (const auto& ts : replayer.tenant_stats()) {
      std::printf("  %-8s acc %4d rej %3d done %4d miss %3d p95 %8.1f s\n",
                  ts.tenant.c_str(), ts.accepted, ts.rejected, ts.completed,
                  ts.slo_missed, ts.latency_percentile(0.95));
    }
  } else {
    return usage();
  }

  if (!opt.metrics_out.empty()) {
    if (!write_text_file(opt.metrics_out, platform.metrics().to_json())) return 1;
    std::printf("metrics: %s (%zu metrics)\n", opt.metrics_out.c_str(),
                platform.metrics().size());
  }
  if (!opt.trace_out.empty()) {
    if (!write_text_file(opt.trace_out, platform.tracer().to_chrome_json())) return 1;
    std::printf("trace: %s (%zu events) — load in chrome://tracing or ui.perfetto.dev\n",
                opt.trace_out.c_str(), platform.tracer().events().size());
  }
  if (!opt.spans_out.empty()) {
    if (!write_text_file(opt.spans_out, platform.tracer().to_span_graph_json())) return 1;
    std::printf("spans: %s (%zu spans, %zu cause edges) — query with trace_query\n",
                opt.spans_out.c_str(), platform.tracer().spans().size(),
                platform.tracer().cause_edges().size());
  }
  if (!opt.timeseries_out.empty()) {
    if (!write_text_file(opt.timeseries_out, platform.engine().timeseries().to_json())) {
      return 1;
    }
    std::printf("timeseries: %s (%zu series)\n", opt.timeseries_out.c_str(),
                platform.engine().timeseries().series_count());
  }
  return 0;
}

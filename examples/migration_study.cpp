// Live-migration study: migrate a whole 16-node hadoop virtual cluster
// between the two physical machines, idle and while running a Wordcount,
// and let the MapReduce Tuner react to an induced host imbalance.
//
//   ./examples/migration_study

#include <cstdio>

#include "core/platform.hpp"
#include "sim/rng.hpp"

using namespace vhadoop;

namespace {

void print_result(const char* label, const virt::ClusterMigrationResult& r) {
  double max_down = 0.0, min_down = 1e18;
  for (const auto& vm : r.per_vm) {
    max_down = std::max(max_down, vm.downtime);
    min_down = std::min(min_down, vm.downtime);
  }
  std::printf("%-24s migration %7.1f s   downtime total %7.0f ms  (per-VM %3.0f..%4.0f ms)\n",
              label, r.overall_migration_time, r.overall_downtime * 1000, min_down * 1000,
              max_down * 1000);
}

mapreduce::SimJobSpec long_wordcount_job() {
  // A Wordcount-shaped job long enough to span the whole migration.
  mapreduce::SimJobSpec job;
  job.name = "wordcount-bg";
  job.output_path = "/out/wc-bg";
  for (int m = 0; m < 120; ++m) {
    job.maps.push_back({.input_bytes = 48 * sim::kMiB, .cpu_seconds = 5.0,
                        .output_bytes = 6 * sim::kMiB});
  }
  for (int r = 0; r < 4; ++r) {
    job.reduces.push_back({.cpu_seconds = 2.0, .output_bytes = 8 * sim::kMiB});
  }
  return job;
}

}  // namespace

int main() {
  std::printf("== live migration of a 16-node hadoop virtual cluster ==\n\n");

  // --- idle cluster ---------------------------------------------------------
  {
    core::Platform p;
    p.boot_cluster({.num_workers = 15});
    auto idle = p.migrate_cluster(p.hosts()[1],
                                  [](virt::VmId) { return virt::DirtyModel::idle(); });
    print_result("idle cluster:", idle);
  }

  // --- cluster running Wordcount --------------------------------------------
  {
    core::Platform p;
    p.boot_cluster({.num_workers = 15});
    p.runner().submit(long_wordcount_job(), nullptr);
    p.engine().run_until(p.engine().now() + 30.0);  // mid-job

    sim::Rng rng(11);
    auto dirty_of = [&p, &rng](virt::VmId vm) {
      auto d = virt::DirtyModel::wordcount();
      if (p.runner().running_tasks(vm) == 0) return virt::DirtyModel::idle();
      // Per-node imbalance: task phases differ, so does the dirty set.
      const double jitter = rng.uniform(0.4, 1.8);
      d.rate *= jitter;
      d.wws_bytes *= jitter;
      return d;
    };
    auto busy = p.migrate_cluster(p.hosts()[1], dirty_of);
    print_result("running Wordcount:", busy);
    std::printf("\nHadoop masks each VM's downtime via re-execution and replica reads;\n"
                "the background job still completes:\n");
    p.engine().run();
    std::printf("  background job done at t=%.0f s (simulated)\n", p.engine().now());
  }

  // --- tuner reacting to imbalance -------------------------------------------
  {
    std::printf("\n== MapReduce Tuner reacting to host imbalance ==\n");
    core::Platform p;
    // 21 single-VCPU guests saturate host A's 16 hardware threads.
    p.boot_cluster({.num_workers = 20});
    auto& mon = p.attach_monitor(1.0);
    for (virt::VmId vm : p.workers()) p.cloud().run_compute(vm, 60.0, nullptr);
    p.engine().run_until(p.engine().now() + 10.0);
    mon.stop();
    for (const auto& rec : p.tune()) {
      std::printf("  tuner: %s\n", rec.message.c_str());
      if (rec.kind == tuner::Recommendation::Kind::MigrateVm) {
        virt::VmId vm = p.all_vms()[rec.vm_index];
        std::printf("  applying: migrating %s to %s...\n", p.cloud().vm_name(vm).c_str(),
                    p.cloud().host_name(rec.target_host).c_str());
        bool moved = false;
        p.cloud().migrate(vm, rec.target_host, virt::DirtyModel::wordcount(),
                          [&](const virt::MigrationResult& r) {
                            moved = true;
                            std::printf("  migrated in %.1f s (downtime %.0f ms)\n",
                                        r.migration_time, r.downtime * 1000);
                          });
        p.engine().run();
        if (!moved) std::printf("  (migration still in flight)\n");
      }
    }
  }
  return 0;
}

// Quickstart: the vHadoop nine-step flow end to end.
//
// Boots a 16-node hadoop virtual cluster (1 namenode + 15 workers) on the
// simulated two-server testbed, really executes a Wordcount over a
// synthetic corpus with the logical MapReduce engine, replays the measured
// job on the virtual cluster, and prints the timeline plus the nmon
// monitor's verdict.
//
//   ./examples/quickstart [corpus_mb]

#include <cstdio>
#include <cstdlib>

#include "core/platform.hpp"
#include "mapreduce/local_runner.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

using namespace vhadoop;

int main(int argc, char** argv) {
  const double corpus_mb = argc > 1 ? std::atof(argv[1]) : 16.0;

  std::printf("== vHadoop quickstart ==\n");
  std::printf("corpus: %.0f MB of Zipf text\n\n", corpus_mb);

  // Steps 1-3: request, boot and configure the hadoop virtual cluster.
  core::Platform platform;
  core::ClusterSpec spec;
  spec.num_workers = 15;
  spec.placement = core::Placement::Normal;
  platform.boot_cluster(spec);
  std::printf("cluster up: %zu workers + namenode, boot took %.1f s (simulated)\n",
              platform.workers().size(), platform.engine().now());

  // Really execute the job: generate the corpus and run Wordcount through
  // the multi-threaded logical engine.
  workloads::TextCorpus corpus(20000);
  auto lines = corpus.generate(corpus_mb * sim::kMiB);
  const double input_bytes = mapreduce::serialized_bytes(lines);
  const int splits = std::max(1, static_cast<int>(input_bytes / spec.hdfs.block_size) + 1);

  mapreduce::LocalJobRunner local;
  auto measured = local.run(workloads::wordcount_job(4), lines, splits);
  std::printf("logical run: %zu map tasks, %zu reducers, %.2f MB shuffle, %zu distinct words\n",
              measured.map_profiles.size(), measured.reduce_profiles.size(),
              measured.total_shuffle_bytes / sim::kMiB, measured.output.size());

  // Step 4: upload the input; step 9: watch with nmon.
  platform.upload("/input/corpus", input_bytes);
  auto& mon = platform.attach_monitor(1.0);

  // Steps 5-8: run the measured job on the virtual cluster.
  auto timeline = platform.run_measured("wordcount", measured, "/input/corpus", "/out/wc");
  mon.stop();

  std::printf("\nvirtual-cluster run: %.1f s elapsed, %d/%zu data-local maps\n",
              timeline.elapsed(), timeline.data_local_maps(), timeline.maps.size());

  const auto report = monitor::TraceAnalyser::analyse(mon);
  std::printf("nmon: avg VM cpu %.0f%%, avg NFS disk %.0f%%, bottleneck: %s\n",
              report.avg_vm_cpu * 100, report.avg_nfs_disk * 100, report.bottleneck.c_str());

  for (const auto& rec : platform.tune()) {
    std::printf("tuner: %s\n", rec.message.c_str());
  }
  std::printf("\ndone.\n");
  return 0;
}

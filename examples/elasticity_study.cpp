// Elastic scale-out study — the paper's stated future work ("integrating
// the vHadoop platform to open source cloud computing system to provide
// scalable on-demand computation service") implemented and demonstrated:
// the same CPU-heavy job runs on a fixed 4-worker cluster and on a cluster
// that starts with 4 workers and scales out to 12 mid-job.
//
//   ./examples/elasticity_study

#include <cstdio>

#include "core/platform.hpp"

using namespace vhadoop;

namespace {

mapreduce::SimJobSpec heavy_job() {
  mapreduce::SimJobSpec job;
  job.name = "analytics";
  job.output_path = "/out/analytics";
  for (int m = 0; m < 48; ++m) {
    job.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = 10.0,
                        .output_bytes = 2 * sim::kMiB});
  }
  for (int r = 0; r < 2; ++r) {
    job.reduces.push_back({.cpu_seconds = 3.0, .output_bytes = 4 * sim::kMiB});
  }
  return job;
}

}  // namespace

int main() {
  std::printf("== on-demand elasticity: 48-map job, 4 workers vs 4->12 workers ==\n\n");

  double fixed = 0.0;
  {
    core::Platform p;
    p.boot_cluster({.num_workers = 4});
    fixed = p.run_job(heavy_job()).elapsed();
    std::printf("fixed 4 workers:        %.1f s\n", fixed);
  }

  {
    core::Platform p;
    p.boot_cluster({.num_workers = 4});
    bool done = false;
    double elapsed = 0.0;
    mapreduce::JobTimeline timeline;
    p.runner().submit(heavy_job(), [&](const mapreduce::JobTimeline& t) {
      done = true;
      elapsed = t.elapsed();
      timeline = t;
    });
    p.engine().run_until(p.engine().now() + 20.0);
    std::printf("scaling out at t=+20 s: booting 8 more workers...\n");
    auto fresh = p.add_workers(8, p.hosts()[1]);
    p.engine().run();

    int on_fresh = 0;
    for (const auto& t : timeline.maps) {
      for (virt::VmId vm : fresh) on_fresh += (t.vm == vm);
    }
    std::printf("scaled 4->12 workers:   %.1f s  (%d of %zu maps ran on the new nodes)\n",
                elapsed, on_fresh, timeline.maps.size());
    std::printf("\nspeedup from scale-out: %.2fx\n", fixed / elapsed);
  }
  return 0;
}

// Visualizing sample clustering (paper Sec. IV-C, Fig. 8): run all six
// Mahout-style clustering algorithms on the 1000-sample/3-Gaussian
// DisplayClustering dataset and write one SVG per algorithm showing the
// sample points and the per-iteration cluster overlays (early iterations
// grey, the last few orange/yellow/green/blue/magenta, the final bold red).
//
//   ./examples/clustering_visualization [output_dir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/fuzzy_kmeans.hpp"
#include "ml/kmeans.hpp"
#include "ml/meanshift.hpp"
#include "ml/minhash.hpp"
#include "viz/svg.hpp"

using namespace vhadoop;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "clustering_svgs";
  std::filesystem::create_directories(dir);

  auto data = ml::display_clustering_samples(1000);
  std::printf("== DisplayClustering: %zu samples from 3 bivariate normals ==\n\n", data.size());

  ml::ClusteringConfig base{.num_splits = 2, .max_iterations = 10};

  auto save = [&](const ml::ClusteringRun& run, double radius) {
    viz::RenderOptions opt;
    opt.cluster_radius = radius;
    const std::string path = dir + "/" + run.algorithm + ".svg";
    viz::write_clustering_svg(path, data, run, opt);
    std::printf("%-12s %2d iteration(s), %3zu cluster(s) -> %s\n", run.algorithm.c_str(),
                run.iterations, run.centers.size(), path.c_str());
  };

  save(ml::canopy_cluster(data, {.t1 = 3.0, .t2 = 1.5, .base = base}), 1.5);
  save(ml::kmeans_cluster(data, {.k = 3, .base = base}), 1.0);
  save(ml::fuzzy_kmeans_cluster(data, {.k = 3, .m = 2.0, .base = base}), 1.0);
  save(ml::meanshift_cluster(data, {.t1 = 2.0, .t2 = 0.8, .base = base}), 0.8);
  save(ml::dirichlet_cluster(data, {.k = 10, .alpha = 1.0, .base = base}), 1.0);
  save(ml::minhash_cluster(data, {.num_hash_functions = 8, .keygroups = 2,
                                  .min_cluster_size = 5, .bucket_width = 2.0,
                                  .base = base}),
       1.0);

  std::printf("\nOpen the SVGs to see how the clusters converge across iterations\n"
              "(grey -> orange/yellow/green/blue/magenta -> bold red).\n");
  return 0;
}

// Tour of the Machine Learning Algorithm Library beyond clustering: the
// paper's library covers "clustering, classification, recommendations"
// (Sec. II-B). This example trains a Naive Bayes text classifier and an
// item-based recommender as real MapReduce jobs, then replays the measured
// training job on the hadoop virtual cluster.
//
//   ./examples/ml_library_tour

#include <cstdio>

#include "core/platform.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/recommender.hpp"

using namespace vhadoop;

int main() {
  std::printf("== ML Algorithm Library tour: classification + recommendations ==\n\n");

  // --- classification: Naive Bayes --------------------------------------------
  auto docs = ml::synthetic_labeled_corpus(3, 200, 40);
  const std::size_t split = docs.size() * 8 / 10;
  std::vector<ml::LabeledDoc> train(docs.begin(), docs.begin() + static_cast<long>(split));
  std::vector<ml::LabeledDoc> test(docs.begin() + static_cast<long>(split), docs.end());

  auto nb = ml::train_naive_bayes(train, {.num_splits = 6});
  auto [predicted, classify_job] = ml::classify_naive_bayes(nb.model, test);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) correct += (predicted[i] == test[i].label);
  std::printf("naive bayes: trained on %zu docs (vocab %zu), holdout accuracy %.1f%%\n",
              train.size(), nb.model.vocabulary_size,
              100.0 * correct / static_cast<double>(test.size()));

  // --- recommendations: item-based CF -------------------------------------------
  auto ratings = ml::synthetic_ratings(4, 25, 12, 0.5);
  auto rec = ml::recommend_items(ratings, {.top_n = 3});
  std::printf("recommender: %zu ratings -> co-occurrence rows %zu, users served %zu\n",
              ratings.size(), rec.cooccurrence.size(), rec.recommendations.size());
  int shown = 0;
  for (const auto& [user, items] : rec.recommendations) {
    if (shown++ >= 3) break;
    std::printf("  user %lld gets items:", static_cast<long long>(user));
    for (auto item : items) std::printf(" %lld", static_cast<long long>(item));
    std::printf("\n");
  }

  // --- replay the training job on the virtual cluster ----------------------------
  core::Platform platform;
  platform.boot_cluster({.num_workers = 7});
  platform.upload("/in/nb-corpus", 24 * sim::kMiB);
  auto timeline = platform.run_measured("nb-train", nb.jobs[0], "/in/nb-corpus", "/out/nb");
  std::printf("\nvirtual-cluster replay of the training job: %.1f s on %zu workers\n",
              timeline.elapsed(), platform.workers().size());
  return 0;
}

// Cross-domain placement study (the paper's Sec. III-B scenario as an
// application): the same Wordcount workload on a 16-node hadoop virtual
// cluster placed normally (one physical machine) vs cross-domain (split
// over two), with the nmon monitor explaining the difference.
//
// The corpus is staged as ~16 MB files (TOEFL reading materials are many
// small texts, one map per file), the job really executes once through the
// logical MapReduce engine, and the measured task profiles replay against
// both placements — three runs averaged, as the paper prescribes.
//
//   ./examples/cross_domain_study [corpus_mb]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "mapreduce/local_runner.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

using namespace vhadoop;

namespace {

struct Scenario {
  std::vector<std::string> paths;
  std::vector<double> file_bytes;
  mapreduce::JobResult measured;
};

Scenario prepare(double total_mb) {
  Scenario s;
  workloads::TextCorpus corpus(20000);
  auto lines = corpus.generate(total_mb * sim::kMiB);
  const int files = std::max(1, static_cast<int>(total_mb / 16.0 + 0.5));
  mapreduce::LocalJobRunner local;
  s.measured = local.run(workloads::wordcount_job(4), lines, files);
  for (int f = 0; f < files; ++f) {
    s.paths.push_back("/in/toefl-" + std::to_string(f));
    s.file_bytes.push_back(s.measured.map_profiles[static_cast<std::size_t>(f)].input_bytes);
  }
  return s;
}

struct CaseResult {
  double elapsed = 0.0;
  std::string bottleneck;
  double peak_tx = 0.0;
};

CaseResult run_case(core::Placement placement, const Scenario& s) {
  core::Platform platform;
  core::ClusterSpec spec;
  spec.num_workers = 15;
  spec.placement = placement;
  platform.boot_cluster(spec);
  for (std::size_t f = 0; f < s.paths.size(); ++f) platform.upload(s.paths[f], s.file_bytes[f]);
  auto& mon = platform.attach_monitor(1.0);

  double total = 0.0;
  for (int r = 0; r < 3; ++r) {
    auto job = mapreduce::to_sim_job_files("wordcount", s.measured, s.paths,
                                           "/out/wc-run" + std::to_string(r));
    total += platform.run_job(std::move(job)).elapsed();
  }
  mon.stop();

  CaseResult res;
  res.elapsed = total / 3.0;
  const auto report = monitor::TraceAnalyser::analyse(mon);
  res.bottleneck = report.bottleneck;
  for (double tx : report.avg_host_tx) res.peak_tx = std::max(res.peak_tx, tx);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const double corpus_mb = argc > 1 ? std::atof(argv[1]) : 192.0;

  std::printf("== cross-domain placement study: Wordcount %.0f MB, 16-node cluster ==\n\n",
              corpus_mb);
  const auto scenario = prepare(corpus_mb);
  std::printf("staged %zu input files, really executed once (%.0f MB shuffle, no combiner)\n\n",
              scenario.paths.size(), scenario.measured.total_shuffle_bytes / sim::kMiB);

  const auto normal = run_case(core::Placement::Normal, scenario);
  const auto cross = run_case(core::Placement::CrossDomain, scenario);

  std::printf("%-14s %12s %14s %10s\n", "placement", "runtime(s)", "bottleneck", "avg tx");
  std::printf("%-14s %12.1f %14s %9.0f%%\n", "normal", normal.elapsed,
              normal.bottleneck.c_str(), normal.peak_tx * 100);
  std::printf("%-14s %12.1f %14s %9.0f%%\n", "cross-domain", cross.elapsed,
              cross.bottleneck.c_str(), cross.peak_tx * 100);
  std::printf("\ncross-domain penalty: %.1f%%  (sweep the full Fig. 2 curve with "
              "bench/fig2_wordcount)\n",
              (cross.elapsed / normal.elapsed - 1.0) * 100.0);
  return 0;
}

// Figure 4 reproduction.
//
//   (a) TeraSort: data-generation time and sort time over an input-size
//       sweep, normal vs cross-domain. Paper shape: both grow with size;
//       the sort time bends sharply upward past ~400 MB (merge spills fall
//       out of memory onto the NFS-backed disks); cross-domain is worse.
//   (b) TestDFSIO: read and write throughput, normal vs cross-domain.
//       Paper shape: read throughput beats write throughput; the
//       cross-domain cluster does not exceed the normal one.

#include <cstdio>

#include "common.hpp"
#include "workloads/dfsio.hpp"
#include "workloads/terasort.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

struct TeraTimes {
  double gen = 0.0;
  double sort = 0.0;
};

TeraTimes run_terasort(core::Placement placement, double mb) {
  core::Platform platform;
  platform.boot_cluster(paper_cluster(placement));
  // Hadoop-0.20 default: mapred.reduce.tasks = 1 unless overridden.
  workloads::TeraSort ts{.total_bytes = mb * sim::kMiB, .num_reduces = 1};
  TeraTimes t;
  t.gen = platform.run_job(ts.sim_teragen("/tera/in")).elapsed();
  t.sort = platform.run_job(ts.sim_terasort("/tera/in", "/tera/out")).elapsed();
  return t;
}

struct DfsioResult {
  double write_mb_s = 0.0;
  double read_mb_s = 0.0;
};

DfsioResult run_dfsio(core::Placement placement) {
  core::Platform platform;
  platform.boot_cluster(paper_cluster(placement));
  workloads::TestDfsIo io(platform.runner(), platform.hdfs(), /*nr_files=*/10,
                          /*file_bytes=*/64 * sim::kMiB);
  DfsioResult res;
  io.run_write("/dfsio", [&](const workloads::TestDfsIo::Result& r) {
    res.write_mb_s = r.throughput_mb_s();
  });
  io.run_read("/dfsio", [&](const workloads::TestDfsIo::Result& r) {
    res.read_mb_s = r.throughput_mb_s();
  });
  platform.engine().run();
  return res;
}

}  // namespace

int main() {
  BenchResults results("fig4_terasort_dfsio");
  std::printf("== Figure 4(a): TeraSort — generation and sort time ==\n");
  std::printf("%-12s | %12s %12s | %12s %12s\n", "", "normal", "", "cross-domain", "");
  std::printf("%-12s | %12s %12s | %12s %12s\n", "input (MB)", "gen (s)", "sort (s)",
              "gen (s)", "sort (s)");
  for (double mb : {100.0, 200.0, 400.0, 800.0, 1600.0}) {
    const auto n = run_terasort(core::Placement::Normal, mb);
    const auto c = run_terasort(core::Placement::CrossDomain, mb);
    std::printf("%-12.0f | %12.1f %12.1f | %12.1f %12.1f\n", mb, n.gen, n.sort, c.gen, c.sort);
    results.row()
        .col("bench", "terasort")
        .col("input_mb", mb)
        .col("normal_gen_s", n.gen)
        .col("normal_sort_s", n.sort)
        .col("cross_gen_s", c.gen)
        .col("cross_sort_s", c.sort);
  }

  std::printf("\n== Figure 4(b): TestDFSIO — aggregate throughput (10 x 64 MB files) ==\n");
  std::printf("%-14s %14s %14s\n", "placement", "write (MB/s)", "read (MB/s)");
  const auto n = run_dfsio(core::Placement::Normal);
  const auto c = run_dfsio(core::Placement::CrossDomain);
  std::printf("%-14s %14.1f %14.1f\n", "normal", n.write_mb_s, n.read_mb_s);
  std::printf("%-14s %14.1f %14.1f\n", "cross-domain", c.write_mb_s, c.read_mb_s);
  results.row()
      .col("bench", "dfsio")
      .col("placement", "normal")
      .col("write_mb_s", n.write_mb_s)
      .col("read_mb_s", n.read_mb_s);
  results.row()
      .col("bench", "dfsio")
      .col("placement", "cross-domain")
      .col("write_mb_s", c.write_mb_s)
      .col("read_mb_s", c.read_mb_s);
  results.write();
  return 0;
}

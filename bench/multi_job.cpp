// Multi-tenant scheduling bench: a mixed job stream (one long TeraSort, a
// train of short Wordcount jobs, and a sequential k-means iteration chain)
// submitted together, replayed under each scheduler policy.
//
// Under FIFO every short job queues behind the long sort, so the p95 job
// latency tracks the sort's runtime; Fair and Capacity interleave the
// stream and collapse short-job latency while barely moving the makespan.
//
// Each tenant (scheduler queue) also gets a latency-distribution row —
// p50/p95/p99 job latency plus the SLO-miss count against per-job
// deadlines — pulled from the runner's mr.queue.<q>.* metrics.
//
// Prints one row per policy (then one per tenant) and writes
// BENCH_multi_job.json.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common.hpp"
#include "workloads/terasort.hpp"

using namespace vhadoop;

namespace {

// Short synthetic Wordcount: maps scan corpus blocks, tiny shuffle.
mapreduce::SimJobSpec short_wordcount(int idx, const hdfs::HdfsCluster& hdfs) {
  mapreduce::SimJobSpec spec;
  spec.name = "wordcount-" + std::to_string(idx);
  spec.queue = "adhoc";
  const int blocks = static_cast<int>(hdfs.blocks("/in/corpus").size());
  for (int b = 0; b < blocks; ++b) {
    spec.maps.push_back({"/in/corpus", b, 0.0, 0.4, 2 * sim::kMiB});
  }
  spec.reduces.assign(2, {0.3, sim::kMiB});
  spec.output_path = "/out/wc-" + std::to_string(idx);
  spec.deadline_seconds = 30.0;  // interactive tenant SLO
  return spec;
}

// One k-means iteration: maps assign points to centroids (CPU-heavy over
// the dataset), a single reduce recomputes the tiny centroid table.
mapreduce::SimJobSpec kmeans_iteration(int iter, const hdfs::HdfsCluster& hdfs) {
  mapreduce::SimJobSpec spec;
  spec.name = "kmeans-it" + std::to_string(iter);
  spec.queue = "adhoc";
  const int blocks = static_cast<int>(hdfs.blocks("/in/points").size());
  for (int b = 0; b < blocks; ++b) {
    spec.maps.push_back({"/in/points", b, 0.0, 0.8, 0.1 * sim::kMiB});
  }
  spec.reduces.assign(1, {0.2, 0.1 * sim::kMiB});
  spec.output_path = "/out/kmeans-it" + std::to_string(iter);
  spec.deadline_seconds = 30.0;
  return spec;
}

struct TenantStats {
  std::string queue;
  double jobs = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double slo_missed = 0.0;
};

struct PolicyResult {
  double makespan = 0.0;
  std::vector<double> latencies;  ///< per-job submit-to-finish seconds
  std::vector<double> queue_waits;
  std::vector<TenantStats> tenants;

  double p95() const {
    auto sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(sorted.size()))) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
  }
  double mean_wait() const {
    double s = 0.0;
    for (double w : queue_waits) s += w;
    return queue_waits.empty() ? 0.0 : s / static_cast<double>(queue_waits.size());
  }
};

PolicyResult run_policy(mapreduce::SchedulerPolicy policy) {
  core::ClusterSpec spec = bench::paper_cluster(core::Placement::Normal);
  spec.hadoop.scheduler = policy;
  if (policy == mapreduce::SchedulerPolicy::Capacity) {
    spec.hadoop.queues = {{"prod", 0.6, 1.0, 1.0}, {"adhoc", 0.4, 0.8, 1.0}};
  }
  core::Platform platform;
  platform.boot_cluster(spec);

  // Stage inputs: sort input, wordcount corpus, k-means points.
  workloads::TeraSort ts{.total_bytes = 512 * sim::kMiB, .num_reduces = 4};
  platform.run_job(ts.sim_teragen("/t/in"));
  platform.upload("/in/corpus", 128 * sim::kMiB);
  platform.upload("/in/points", 128 * sim::kMiB);

  PolicyResult result;
  const double t0 = platform.engine().now();
  auto record = [&result](const mapreduce::JobTimeline& t) {
    result.latencies.push_back(t.elapsed());
    result.queue_waits.push_back(t.queue_wait());
  };

  // The long job goes in first; everything else queues behind it under FIFO.
  auto long_sort = ts.sim_terasort("/t/in", "/t/out");
  long_sort.queue = "prod";
  long_sort.deadline_seconds = 60.0;  // batch tenant: a loose SLO
  platform.submit_job(std::move(long_sort), record);
  for (int k = 0; k < 3; ++k) {
    platform.submit_job(short_wordcount(k, platform.hdfs()), record);
  }
  // k-means iterations are sequential: each one is submitted when the
  // previous finishes, like the Mahout driver loop.
  std::function<void(int)> submit_iter = [&](int iter) {
    platform.submit_job(kmeans_iteration(iter, platform.hdfs()),
                        [&, iter](const mapreduce::JobTimeline& t) {
                          record(t);
                          if (iter + 1 < 3) submit_iter(iter + 1);
                        });
  };
  submit_iter(0);

  platform.engine().run();
  result.makespan = platform.engine().now() - t0;

  // Per-tenant latency distribution + SLO misses, straight from the
  // runner's queue metrics (what an operator dashboard would scrape).
  const obs::Registry& reg = platform.metrics();
  for (const char* queue : {"prod", "adhoc"}) {
    const std::string base = "mr.queue." + std::string(queue) + ".";
    const obs::Histogram* h = reg.find_histogram(base + "job_seconds");
    const obs::Counter* missed = reg.find_counter(base + "slo_missed");
    if (!h || !missed) continue;
    TenantStats t;
    t.queue = queue;
    t.jobs = static_cast<double>(h->count());
    t.p50 = h->percentile(0.50);
    t.p95 = h->percentile(0.95);
    t.p99 = h->percentile(0.99);
    t.slo_missed = missed->value();
    result.tenants.push_back(std::move(t));
  }
  return result;
}

}  // namespace

int main() {
  const std::pair<mapreduce::SchedulerPolicy, const char*> policies[] = {
      {mapreduce::SchedulerPolicy::Fifo, "fifo"},
      {mapreduce::SchedulerPolicy::Fair, "fair"},
      {mapreduce::SchedulerPolicy::Capacity, "capacity"},
      {mapreduce::SchedulerPolicy::Deadline, "deadline"},
  };

  bench::BenchResults results("multi_job");
  std::printf("%-10s %8s %12s %12s %12s\n", "scheduler", "jobs", "makespan(s)",
              "p95-lat(s)", "mean-wait(s)");
  double fifo_p95 = 0.0, fair_p95 = 0.0;
  for (const auto& [policy, name] : policies) {
    const PolicyResult r = run_policy(policy);
    if (policy == mapreduce::SchedulerPolicy::Fifo) fifo_p95 = r.p95();
    if (policy == mapreduce::SchedulerPolicy::Fair) fair_p95 = r.p95();
    std::printf("%-10s %8zu %12.1f %12.1f %12.1f\n", name, r.latencies.size(), r.makespan,
                r.p95(), r.mean_wait());
    results.row()
        .col("scheduler", name)
        .col("jobs", static_cast<double>(r.latencies.size()))
        .col("makespan_s", r.makespan)
        .col("p95_latency_s", r.p95())
        .col("mean_queue_wait_s", r.mean_wait());
    for (const TenantStats& t : r.tenants) {
      std::printf("  %-8s %-6s %5.0f jobs  p50 %6.1f  p95 %6.1f  p99 %6.1f  slo-missed %.0f\n",
                  name, t.queue.c_str(), t.jobs, t.p50, t.p95, t.p99, t.slo_missed);
      results.row()
          .col("scheduler", name)
          .col("queue", t.queue)
          .col("jobs", t.jobs)
          .col("p50_latency_s", t.p50)
          .col("p95_latency_s", t.p95)
          .col("p99_latency_s", t.p99)
          .col("slo_missed", t.slo_missed);
    }
  }
  results.write();

  if (fair_p95 >= fifo_p95) {
    std::fprintf(stderr,
                 "multi_job: expected fair p95 (%.1f) below fifo p95 (%.1f)\n",
                 fair_p95, fifo_p95);
    return 1;
  }
  return 0;
}

// Ablation study for the design choices DESIGN.md calls out. Each section
// toggles one mechanism and reruns a fixed scenario, quantifying how much
// that mechanism contributes to the reproduced behaviour.
//
//   A1  guest page cache        (off -> every warm read pays the NFS path)
//   A2  wordcount combiner      (on  -> shuffle collapses; the paper's
//                                text describes the combiner-less form)
//   A3  out-of-band heartbeats  (off -> slots refill only on the 3s period)
//   A4  speculative execution   (the mechanism that saves a job when a
//                                node silently hangs)
//   A5  migration concurrency   (1/2/4 parallel pre-copy streams)

#include <cstdio>

#include "common.hpp"
#include "sim/rng.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

double wordcount_elapsed(const WordcountScenario& scenario, core::TestbedConfig tb,
                         mapreduce::HadoopConfig hc) {
  core::Platform platform(tb);
  auto spec = paper_cluster(core::Placement::Normal);
  spec.hadoop = hc;
  platform.boot_cluster(spec);
  scenario.stage(platform);
  double total = 0.0;
  for (int r = 0; r < 3; ++r) total += scenario.run(platform, "abl" + std::to_string(r));
  return total / 3.0;
}

}  // namespace

int main() {
  std::printf("== Ablations over the 16-node cluster ==\n\n");
  auto scenario = WordcountScenario::prepare(128.0);

  // --- A1: page cache ---------------------------------------------------------
  {
    core::TestbedConfig with_cache;
    core::TestbedConfig no_cache;
    no_cache.virt.page_cache_mb = 0.0;
    const double on = wordcount_elapsed(scenario, with_cache, {});
    const double off = wordcount_elapsed(scenario, no_cache, {});
    std::printf("A1 guest page cache      : on %6.1f s   off %6.1f s   (x%.2f)\n", on, off,
                off / on);
  }

  // --- A2: combiner -------------------------------------------------------------
  {
    auto with_combiner = WordcountScenario::prepare(128.0);
    {
      // Re-measure the logical job with the combiner enabled.
      workloads::TextCorpus corpus(20000);
      auto lines = corpus.generate(128.0 * sim::kMiB);
      mapreduce::LocalJobRunner local;
      with_combiner.measured =
          local.run(workloads::wordcount_job(4, /*use_combiner=*/true), lines,
                    static_cast<int>(with_combiner.paths.size()));
    }
    const double without = wordcount_elapsed(scenario, {}, {});
    const double with = wordcount_elapsed(with_combiner, {}, {});
    double shuffle_without = scenario.measured.total_shuffle_bytes / sim::kMiB;
    double shuffle_with = with_combiner.measured.total_shuffle_bytes / sim::kMiB;
    std::printf("A2 wordcount combiner    : off %5.1f s (%5.0f MB shuffle)   on %5.1f s "
                "(%4.0f MB shuffle)\n",
                without, shuffle_without, with, shuffle_with);
  }

  // --- A3: out-of-band heartbeats ------------------------------------------------
  {
    mapreduce::HadoopConfig oob_on, oob_off;
    oob_off.out_of_band_heartbeats = false;
    const double on = wordcount_elapsed(scenario, {}, oob_on);
    const double off = wordcount_elapsed(scenario, {}, oob_off);
    std::printf("A3 out-of-band heartbeat : on %6.1f s   off %6.1f s   (x%.2f)\n", on, off,
                off / on);
  }

  // --- A4: speculative execution vs a silently hung node --------------------------
  {
    auto run_hang = [&](bool speculation) {
      core::Platform platform;
      auto spec = paper_cluster(core::Placement::Normal);
      spec.hadoop.speculative_execution = speculation;
      platform.boot_cluster(spec);
      mapreduce::SimJobSpec job;
      job.name = "hang";
      job.output_path = "/out/hang";
      for (int m = 0; m < 30; ++m) {
        job.maps.push_back({.input_bytes = 8 * sim::kMiB, .cpu_seconds = 3.0,
                            .output_bytes = 2 * sim::kMiB});
      }
      job.reduces.push_back({.cpu_seconds = 1.0, .output_bytes = sim::kMiB});
      bool done = false;
      double elapsed = -1.0;
      platform.runner().submit(job, [&](const mapreduce::JobTimeline& t) {
        done = true;
        elapsed = t.elapsed();
      });
      platform.engine().run_until(platform.engine().now() + 6.0);
      platform.cloud().hang_vm(platform.workers()[3]);  // silent wedge
      platform.engine().run_until(platform.engine().now() + 600.0);
      return done ? elapsed : -1.0;
    };
    const double with = run_hang(true);
    const double without = run_hang(false);
    std::printf("A4 speculation vs hang   : on -> %s   off -> %s\n",
                with >= 0 ? (std::to_string(with).substr(0, 5) + " s").c_str() : "STUCK",
                without >= 0 ? (std::to_string(without).substr(0, 5) + " s").c_str() : "STUCK");
  }

  // --- A5: migration concurrency ----------------------------------------------------
  {
    std::printf("A5 migration concurrency :");
    for (int conc : {1, 2, 4}) {
      core::Platform platform;
      platform.boot_cluster(paper_cluster(core::Placement::Normal));
      auto result = platform.migrate_cluster(
          platform.hosts()[1], [](virt::VmId) { return virt::DirtyModel::idle(); }, conc);
      std::printf("  c=%d %.0fs/%.0fms", conc, result.overall_migration_time,
                  result.overall_downtime * 1000);
    }
    std::printf("\n");
  }
  return 0;
}

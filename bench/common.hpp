#pragma once

// Shared helpers for the figure/table reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "mapreduce/bridge.hpp"
#include "mapreduce/local_runner.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

namespace vhadoop::bench {

inline const char* placement_name(core::Placement p) {
  return p == core::Placement::Normal ? "normal" : "cross-domain";
}

/// A staged Wordcount scenario: the corpus is split into ~file_mb files
/// (TOEFL reading materials are many small texts — one map per file), the
/// job is really executed once through the logical engine, and the measured
/// profiles replay against any cluster placement.
struct WordcountScenario {
  std::vector<std::string> paths;
  std::vector<double> file_bytes;
  mapreduce::JobResult measured;
  int num_reduces = 4;

  static WordcountScenario prepare(double total_mb, double file_mb = 16.0,
                                   int num_reduces = 4) {
    WordcountScenario s;
    s.num_reduces = num_reduces;
    workloads::TextCorpus corpus(20000);
    auto lines = corpus.generate(total_mb * sim::kMiB);

    const int files =
        std::max(1, static_cast<int>(total_mb / file_mb + 0.5));
    // One logical split per file so measured map profiles line up 1:1.
    mapreduce::LocalJobRunner local;
    s.measured = local.run(workloads::wordcount_job(num_reduces), lines, files);
    for (int f = 0; f < files; ++f) {
      s.paths.push_back("/in/toefl-" + std::to_string(f));
      s.file_bytes.push_back(s.measured.map_profiles[static_cast<std::size_t>(f)].input_bytes);
    }
    return s;
  }

  /// Upload every input file (from the namenode, as the paper's flow does).
  void stage(core::Platform& platform) const {
    for (std::size_t f = 0; f < paths.size(); ++f) {
      platform.upload(paths[f], file_bytes[f]);
    }
  }

  /// Run once on the platform; returns elapsed simulated seconds.
  double run(core::Platform& platform, const std::string& run_tag) const {
    auto spec = mapreduce::to_sim_job_files("wordcount", measured, paths, "/out/wc-" + run_tag);
    return platform.run_job(std::move(spec)).elapsed();
  }
};

/// Build the paper's 16-node cluster (1 namenode + 15 workers).
inline core::ClusterSpec paper_cluster(core::Placement placement) {
  core::ClusterSpec spec;
  spec.num_workers = 15;
  spec.placement = placement;
  return spec;
}

}  // namespace vhadoop::bench

#pragma once

// Shared helpers for the figure/table reproduction harnesses.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "mapreduce/bridge.hpp"
#include "mapreduce/local_runner.hpp"
#include "obs/metrics.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

namespace vhadoop::bench {

/// Machine-readable per-run results next to every bench's human table.
///
/// Accumulates rows of (key, value) cells and writes
/// `$VHADOOP_BENCH_DIR/BENCH_<name>.json` (current directory when the env
/// var is unset) with the schema:
///
///   {"bench": "<name>", "schema": "vhadoop-bench-v1",
///    "rows": [{"col": value, ...}, ...],
///    "metrics": {<registry snapshot>}}        // optional
///
/// `metrics` is the obs::Registry snapshot of the most recently attached
/// platform, so a sweep's last configuration is inspectable in full.
class BenchResults {
 public:
  explicit BenchResults(std::string name) : name_(std::move(name)) {}

  /// Start a new row; fill it with col() calls.
  BenchResults& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchResults& col(const std::string& key, double value) {
    rows_.back().push_back({key, true, value, {}});
    return *this;
  }
  BenchResults& col(const std::string& key, const std::string& value) {
    rows_.back().push_back({key, false, 0.0, value});
    return *this;
  }

  void attach_metrics(const obs::Registry& registry) { metrics_json_ = registry.to_json(); }
  /// Same, from a snapshot taken while the registry was still alive.
  void attach_metrics_json(std::string json) { metrics_json_ = std::move(json); }

  std::string to_json() const {
    std::string out = "{\"bench\": " + quoted(name_) +
                      ", \"schema\": \"vhadoop-bench-v1\", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r) out += ", ";
      out += '{';
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        const Cell& cell = rows_[r][c];
        if (c) out += ", ";
        out += quoted(cell.key) + ": ";
        if (cell.numeric) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.17g", cell.num);
          out += buf;
        } else {
          out += quoted(cell.str);
        }
      }
      out += '}';
    }
    out += ']';
    if (!metrics_json_.empty()) out += ", \"metrics\": " + metrics_json_;
    out += "}\n";
    return out;
  }

  /// Write BENCH_<name>.json; returns the path written, empty on failure.
  std::string write() const {
    // vlint: allow(no-os-entropy) audited PR 8: output-directory override for CI harnesses; never feeds simulation state
    const char* dir = std::getenv("VHADOOP_BENCH_DIR");
    const std::string path =
        (dir && *dir ? std::string(dir) + "/" : std::string()) + "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return {};
    }
    out << to_json();
    std::printf("results: %s\n", path.c_str());
    return path;
  }

 private:
  struct Cell {
    std::string key;
    bool numeric;
    double num;
    std::string str;
  };

  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<Cell>> rows_;
  std::string metrics_json_;
};

inline const char* placement_name(core::Placement p) {
  switch (p) {
    case core::Placement::Normal: return "normal";
    case core::Placement::CrossDomain: return "cross-domain";
    case core::Placement::Spread: return "spread";
  }
  return "unknown";
}

/// A staged Wordcount scenario: the corpus is split into ~file_mb files
/// (TOEFL reading materials are many small texts — one map per file), the
/// job is really executed once through the logical engine, and the measured
/// profiles replay against any cluster placement.
struct WordcountScenario {
  std::vector<std::string> paths;
  std::vector<double> file_bytes;
  mapreduce::JobResult measured;
  int num_reduces = 4;

  static WordcountScenario prepare(double total_mb, double file_mb = 16.0,
                                   int num_reduces = 4) {
    WordcountScenario s;
    s.num_reduces = num_reduces;
    workloads::TextCorpus corpus(20000);
    auto lines = corpus.generate(total_mb * sim::kMiB);

    const int files =
        std::max(1, static_cast<int>(total_mb / file_mb + 0.5));
    // One logical split per file so measured map profiles line up 1:1.
    mapreduce::LocalJobRunner local;
    s.measured = local.run(workloads::wordcount_job(num_reduces), lines, files);
    for (int f = 0; f < files; ++f) {
      s.paths.push_back("/in/toefl-" + std::to_string(f));
      s.file_bytes.push_back(s.measured.map_profiles[static_cast<std::size_t>(f)].input_bytes);
    }
    return s;
  }

  /// Upload every input file (from the namenode, as the paper's flow does).
  void stage(core::Platform& platform) const {
    for (std::size_t f = 0; f < paths.size(); ++f) {
      platform.upload(paths[f], file_bytes[f]);
    }
  }

  /// Run once on the platform; returns elapsed simulated seconds.
  double run(core::Platform& platform, const std::string& run_tag) const {
    auto spec = mapreduce::to_sim_job_files("wordcount", measured, paths, "/out/wc-" + run_tag);
    return platform.run_job(std::move(spec)).elapsed();
  }
};

/// Build the paper's 16-node cluster (1 namenode + 15 workers).
inline core::ClusterSpec paper_cluster(core::Placement placement) {
  core::ClusterSpec spec;
  spec.num_workers = 15;
  spec.placement = placement;
  return spec;
}

}  // namespace vhadoop::bench

// Figure 7 reproduction: visualizing-sample clustering — all six algorithms
// on the DisplayClustering dataset (1000 samples from three symmetric
// bivariate normals), hadoop virtual cluster scaled 2 -> 16 nodes.
//
// Paper claim to reproduce: unlike Fig. 6, these runs are light (tiny 2-D
// sample file, few map tasks) so the running time stays relatively smooth
// as the cluster grows — the job never pressures the network.

#include <cstdio>

#include "common.hpp"
#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/fuzzy_kmeans.hpp"
#include "ml/kmeans.hpp"
#include "ml/meanshift.hpp"
#include "ml/minhash.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

double replay(int workers, const ml::ClusteringRun& run, double bytes) {
  core::Platform platform;
  core::ClusterSpec spec;
  spec.num_workers = workers;
  platform.boot_cluster(spec);
  return platform.run_clustering(run, bytes, "/in/display");
}

}  // namespace

int main() {
  const auto data = ml::display_clustering_samples(1000);
  const double bytes = mapreduce::serialized_bytes(ml::to_records(data));

  // The display sample file is tiny: Mahout leaves it at two map tasks
  // regardless of cluster size.
  ml::ClusteringConfig base{.num_splits = 2, .num_reduces = 1, .max_iterations = 5};
  const auto canopy = ml::canopy_cluster(data, {.t1 = 3.0, .t2 = 1.5, .base = base});
  const auto kmeans = ml::kmeans_cluster(data, {.k = 3, .base = base});
  const auto fuzzy = ml::fuzzy_kmeans_cluster(data, {.k = 3, .m = 2.0, .base = base});
  const auto meanshift = ml::meanshift_cluster(data, {.t1 = 2.0, .t2 = 0.8, .base = base});
  const auto dirichlet = ml::dirichlet_cluster(data, {.k = 10, .alpha = 1.0, .base = base});
  const auto minhash = ml::minhash_cluster(
      data, {.num_hash_functions = 8, .keygroups = 2, .min_cluster_size = 5,
             .bucket_width = 2.0, .base = base});

  std::printf("== Figure 7: visualizing sample clustering (1000 samples, 3 Gaussians) ==\n");
  std::printf("%-12s %8s %8s %8s %10s %10s %8s\n", "cluster size", "canopy", "kmeans",
              "fuzzyk", "meanshift", "dirichlet", "minhash");
  for (int nodes : {2, 4, 8, 16}) {
    const int workers = nodes - 1;
    std::printf("%-12d %8.1f %8.1f %8.1f %10.1f %10.1f %8.1f\n", nodes,
                replay(workers, canopy, bytes), replay(workers, kmeans, bytes),
                replay(workers, fuzzy, bytes), replay(workers, meanshift, bytes),
                replay(workers, static_cast<const ml::ClusteringRun&>(dirichlet), bytes),
                replay(workers, static_cast<const ml::ClusteringRun&>(minhash), bytes));
  }
  std::printf("\n(times are per full driver run: all iterations of each algorithm)\n");
  return 0;
}

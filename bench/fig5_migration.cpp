// Figure 5 reproduction: per-node migration time and downtime when live-
// migrating a 16-node hadoop virtual cluster from physical machine A to B,
// for DRAM configurations 512 MB and 1024 MB, idle vs running Wordcount.
//
// Paper claims to reproduce:
//   (i)   larger memory  -> longer migration time; downtime has no causal
//         relationship with memory size;
//   (ii)  a loaded cluster migrates slightly slower but its downtime is
//         much larger;
//   (iii) per-node downtime of the loaded cluster varies widely (node
//         imbalance).

#include <cstdio>
#include <string>

#include "common.hpp"
#include "sim/rng.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

mapreduce::SimJobSpec background_wordcount() {
  mapreduce::SimJobSpec job;
  job.name = "wordcount-bg";
  job.output_path = "/out/wc-bg";
  for (int m = 0; m < 150; ++m) {
    job.maps.push_back({.input_bytes = 48 * sim::kMiB, .cpu_seconds = 3.0,
                        .output_bytes = 64 * sim::kMiB});
  }
  for (int r = 0; r < 4; ++r) {
    job.reduces.push_back({.cpu_seconds = 2.0, .output_bytes = 16 * sim::kMiB});
  }
  return job;
}

virt::ClusterMigrationResult run_case(double memory_mb, bool wordcount) {
  core::Platform platform;
  core::ClusterSpec spec = paper_cluster(core::Placement::Normal);
  spec.vm.memory_mb = memory_mb;
  platform.boot_cluster(spec);

  if (wordcount) {
    platform.runner().submit(background_wordcount(), nullptr);
    platform.engine().run_until(platform.engine().now() + 40.0);  // mid-job
  }
  sim::Rng rng(2012);
  auto dirty_of = [&](virt::VmId vm) {
    if (!wordcount || platform.runner().running_tasks(vm) == 0) {
      return virt::DirtyModel::idle();
    }
    // Node imbalance: task phase and buffer pressure differ per node.
    auto d = virt::DirtyModel::wordcount();
    const double jitter = rng.uniform(0.4, 2.2);
    d.rate *= jitter;
    d.wws_bytes *= jitter;
    return d;
  };
  return platform.migrate_cluster(platform.hosts()[1], dirty_of);
}

void print_case(const std::string& name, const virt::ClusterMigrationResult& r,
                BenchResults& results) {
  std::printf("\n-- %s --\n", name.c_str());
  std::printf("%-8s %18s %15s\n", "node", "migration time(s)", "downtime (ms)");
  for (std::size_t i = 0; i < r.per_vm.size(); ++i) {
    std::printf("vm%-6zu %18.1f %15.0f\n", i, r.per_vm[i].migration_time,
                r.per_vm[i].downtime * 1000);
    results.row()
        .col("case", name)
        .col("vm", static_cast<double>(i))
        .col("migration_time_s", r.per_vm[i].migration_time)
        .col("downtime_ms", r.per_vm[i].downtime * 1000);
  }
}

}  // namespace

int main() {
  BenchResults results("fig5_migration");
  std::printf("== Figure 5: per-node migration overheads, 16-node cluster ==\n");
  print_case("idle.512MB", run_case(512, false), results);
  print_case("idle.1024MB", run_case(1024, false), results);
  print_case("wordcount.512MB", run_case(512, true), results);
  print_case("wordcount.1024MB", run_case(1024, true), results);
  results.write();
  return 0;
}

// Critical-path attribution bench: the Figure-4 TeraSort flow (teragen +
// sort on the paper cluster) with causal tracing on, per-job bottleneck
// attribution, and a two-run determinism check.
//
// Acceptance properties enforced here (exit 1 on violation):
//   - every job's critical path tiles its makespan *exactly* — the segment
//     boundaries telescope, so the sum of segments equals the job wall time
//     bit-for-bit;
//   - two runs with the same seed export byte-identical span graphs and
//     critical-path reports.
//
// Emits BENCH_critpath.json with one row per job: makespan, exact-tiling
// flag and the attribution fraction of each category (gated by
// bench/baselines/critpath.json). Also writes SPANS_critpath.json — a real
// "vhadoop-spans-v1" export — so CI can run `trace_query --validate` over
// the artefact a user would actually produce.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/critpath.hpp"
#include "workloads/terasort.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

struct TracedRun {
  std::string spans_json;
  std::string critpath_json;
  std::vector<obs::JobCriticalPath> jobs;
};

TracedRun run_once(double mb) {
  core::Platform platform;
  platform.boot_cluster(paper_cluster(core::Placement::Normal));
  platform.enable_tracing();

  workloads::TeraSort ts{.total_bytes = mb * sim::kMiB, .num_reduces = 4};
  platform.run_job(ts.sim_teragen("/tera/in"));
  platform.run_job(ts.sim_terasort("/tera/in", "/tera/out"));

  TracedRun out;
  out.spans_json = platform.tracer().to_span_graph_json();
  const obs::SpanGraph g = obs::SpanGraph::from_tracer(platform.tracer());
  out.jobs = obs::analyze_critical_paths(g);
  out.critpath_json = obs::critical_paths_to_json(out.jobs);
  return out;
}

/// "map-compute" -> "frac_map_compute", "spill/merge" -> "frac_spill_merge".
std::string frac_col(const std::string& category) {
  std::string out = "frac_";
  for (char c : category) out += (c == '-' || c == '/') ? '_' : c;
  return out;
}

}  // namespace

int main() {
  const double mb = 400.0;  // the fig4 knee point: spills hit the NFS disks
  const TracedRun a = run_once(mb);
  const TracedRun b = run_once(mb);

  if (a.spans_json != b.spans_json || a.critpath_json != b.critpath_json) {
    std::fprintf(stderr, "critpath: same-seed runs are not byte-identical\n");
    return 1;
  }

  BenchResults results("critpath");
  std::printf("== Critical-path attribution: TeraSort %0.f MB, paper cluster ==\n", mb);
  std::printf("%-10s %12s %6s  %s\n", "job", "makespan(s)", "exact", "attribution");
  bool all_exact = true;
  for (const obs::JobCriticalPath& cp : a.jobs) {
    all_exact = all_exact && cp.tiles_exactly();
    std::printf("%-10s %12.1f %6s  ", cp.name.c_str(), cp.makespan(),
                cp.tiles_exactly() ? "yes" : "NO");
    auto& row = results.row()
                    .col("job", cp.name)
                    .col("makespan_s", cp.makespan())
                    .col("exact_tiling", cp.tiles_exactly() ? 1.0 : 0.0);
    for (const std::string& cat : obs::critpath_categories()) {
      const double frac = cp.makespan() > 0.0 ? cp.attribution.at(cat) / cp.makespan() : 0.0;
      if (frac > 0.0) std::printf("%s %.0f%%  ", cat.c_str(), frac * 100.0);
      row.col(frac_col(cat), frac);
    }
    std::printf("\n");
  }
  if (!all_exact) {
    std::fprintf(stderr, "critpath: a job's segments do not tile its makespan\n");
    return 1;
  }

  results.write();

  // A real span-graph export for the CI trace-validation step.
  // vlint: allow(no-os-entropy) audited PR 8: output-directory override for CI harnesses; never feeds simulation state
  const char* dir = std::getenv("VHADOOP_BENCH_DIR");
  const std::string path =
      (dir && *dir ? std::string(dir) + "/" : std::string()) + "SPANS_critpath.json";
  std::ofstream spans(path, std::ios::binary);
  if (!spans) {
    std::fprintf(stderr, "critpath: cannot write %s\n", path.c_str());
    return 1;
  }
  spans << a.spans_json;
  std::printf("spans: %s (%zu bytes) — query with trace_query\n", path.c_str(),
              a.spans_json.size());
  return 0;
}

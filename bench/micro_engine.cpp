// Microbenchmarks (google-benchmark) for the platform's hot kernels: the
// discrete-event queue, the fluid max-min solver, the logical MapReduce
// runtime, and the clustering arithmetic. Besides the usual console table,
// the run is captured into BENCH_micro_engine.json (one row per benchmark)
// so CI can archive it alongside the macro benches.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "mapreduce/local_runner.hpp"
#include "ml/kmeans.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "workloads/text_corpus.hpp"
#include "workloads/wordcount.hpp"

using namespace vhadoop;

namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_FluidRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FluidModel model(engine);
    std::vector<sim::FluidModel::ResourceId> res;
    for (int r = 0; r < 8; ++r) res.push_back(model.add_resource("r", 100.0));
    for (int a = 0; a < n; ++a) {
      model.start({.work = 1000.0,
                   .weight = 1.0 + (a % 3),
                   .resources = {res[static_cast<std::size_t>(a % 8)],
                                 res[static_cast<std::size_t>((a + 3) % 8)]}});
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FluidRecompute)->Arg(16)->Arg(64)->Arg(256);

void BM_WordcountLogical(benchmark::State& state) {
  workloads::TextCorpus corpus(5000);
  const auto lines = corpus.generate(1024.0 * static_cast<double>(state.range(0)));
  mapreduce::LocalJobRunner runner(4);
  for (auto _ : state) {
    auto result = runner.run(workloads::wordcount_job(2, true), lines, 4);
    benchmark::DoNotOptimize(result.output.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 1024);
}
BENCHMARK(BM_WordcountLogical)->Arg(64)->Arg(512);

void BM_KMeansIteration(benchmark::State& state) {
  auto data = ml::display_clustering_samples(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto run = ml::kmeans_cluster(data, {.k = 3, .base = {.num_splits = 4,
                                                          .max_iterations = 1,
                                                          .threads = 4}});
    benchmark::DoNotOptimize(run.centers.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeansIteration)->Arg(1000)->Arg(10000);

/// Console output as usual, plus one BenchResults row per benchmark run
/// (aggregates included, tagged via the run_type/aggregate columns).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      results_.row()
          .col("name", run.benchmark_name())
          .col("run_type", run.run_type == Run::RT_Aggregate ? "aggregate" : "iteration")
          .col("real_time_ns", run.GetAdjustedRealTime())
          .col("cpu_time_ns", run.GetAdjustedCPUTime())
          .col("iterations", static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bench::BenchResults& results() { return results_; }

 private:
  bench::BenchResults results_{"micro_engine"};
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  reporter.results().write();
  return 0;
}

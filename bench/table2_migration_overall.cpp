// Table II reproduction: overall migration time and downtime of the whole
// 16-node hadoop virtual cluster for the four configurations
// idle/wordcount x 512/1024 MB.
//
// Paper claims to reproduce: time(1024) > time(512); the Wordcount cluster
// migrates a few times slower than idle, and its overall downtime is an
// order of magnitude (the paper reports ~13x) larger.

#include <cstdio>
#include <string>

#include "common.hpp"
#include "sim/rng.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

mapreduce::SimJobSpec background_wordcount() {
  mapreduce::SimJobSpec job;
  job.name = "wordcount-bg";
  job.output_path = "/out/wc-bg";
  for (int m = 0; m < 150; ++m) {
    job.maps.push_back({.input_bytes = 48 * sim::kMiB, .cpu_seconds = 3.0,
                        .output_bytes = 64 * sim::kMiB});
  }
  for (int r = 0; r < 4; ++r) {
    job.reduces.push_back({.cpu_seconds = 2.0, .output_bytes = 16 * sim::kMiB});
  }
  return job;
}

virt::ClusterMigrationResult run_case(double memory_mb, bool wordcount) {
  core::Platform platform;
  core::ClusterSpec spec = paper_cluster(core::Placement::Normal);
  spec.vm.memory_mb = memory_mb;
  platform.boot_cluster(spec);
  if (wordcount) {
    platform.runner().submit(background_wordcount(), nullptr);
    platform.engine().run_until(platform.engine().now() + 40.0);
  }
  sim::Rng rng(2012);
  auto dirty_of = [&](virt::VmId vm) {
    if (!wordcount || platform.runner().running_tasks(vm) == 0) {
      return virt::DirtyModel::idle();
    }
    auto d = virt::DirtyModel::wordcount();
    const double jitter = rng.uniform(0.4, 2.2);
    d.rate *= jitter;
    d.wws_bytes *= jitter;
    return d;
  };
  return platform.migrate_cluster(platform.hosts()[1], dirty_of);
}

}  // namespace

int main() {
  std::printf("== Table II: overall migration time and downtime, 16-node cluster ==\n");
  std::printf("%-22s %24s %22s\n", "", "Overall Migration Time(s)", "Overall Downtime (ms)");
  struct Row {
    const char* name;
    double mem;
    bool wc;
  };
  const Row rows[] = {{"idle.1024MB", 1024, false},
                      {"idle.512MB", 512, false},
                      {"wordcount.1024MB", 1024, true},
                      {"wordcount.512MB", 512, true}};
  double idle_1024_time = 0.0, idle_1024_down = 0.0;
  for (const Row& row : rows) {
    const auto r = run_case(row.mem, row.wc);
    std::printf("%-22s %24.1f %22.0f\n", row.name, r.overall_migration_time,
                r.overall_downtime * 1000);
    if (std::string(row.name) == "idle.1024MB") {
      idle_1024_time = r.overall_migration_time;
      idle_1024_down = r.overall_downtime;
    }
    if (std::string(row.name) == "wordcount.1024MB") {
      std::printf("  -> vs idle.1024MB: migration %.1fx, downtime %.1fx\n",
                  r.overall_migration_time / idle_1024_time,
                  r.overall_downtime / idle_1024_down);
    }
  }
  return 0;
}

// Figure 2 reproduction: Wordcount on a 16-node hadoop virtual cluster,
// normal vs cross-domain placement, input size sweep.
//
// Paper claims to reproduce (shape, not absolute values):
//   * running time increases with input size;
//   * cross-domain is slower than normal, and the gap widens with size
//     (network I/O delay becomes the bottleneck).

#include <cstdio>

#include "common.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

double run_case(core::Placement placement, const WordcountScenario& scenario,
                BenchResults& results) {
  core::Platform platform;
  platform.boot_cluster(paper_cluster(placement));
  scenario.stage(platform);
  // The paper's methodology: three runs with the same configuration,
  // averaged (the first reads cold from NFS, later runs are cache-warm).
  double total = 0.0;
  for (int r = 0; r < 3; ++r) {
    total += scenario.run(platform, placement_name(placement) + std::to_string(r));
  }
  results.attach_metrics(platform.metrics());
  return total / 3.0;
}

}  // namespace

int main() {
  BenchResults results("fig2_wordcount");
  std::printf("== Figure 2: Wordcount, normal vs cross-domain (16-node cluster) ==\n");
  std::printf("%-12s %14s %18s %10s\n", "input (MB)", "normal (s)", "cross-domain (s)", "gap");
  for (double mb : {32.0, 64.0, 128.0, 256.0, 384.0}) {
    auto scenario = WordcountScenario::prepare(mb);
    const double normal = run_case(core::Placement::Normal, scenario, results);
    const double cross = run_case(core::Placement::CrossDomain, scenario, results);
    std::printf("%-12.0f %14.1f %18.1f %9.1f%%\n", mb, normal, cross,
                (cross / normal - 1.0) * 100.0);
    results.row()
        .col("input_mb", mb)
        .col("normal_s", normal)
        .col("cross_domain_s", cross)
        .col("gap_pct", (cross / normal - 1.0) * 100.0);
  }
  results.write();
  return 0;
}

// Figure 3 reproduction: MRBench small-job latency, normal vs cross-domain.
//
//   (a) reduce = 1, maps swept 1..6
//   (b) map = 15,  reduces swept 1..6
//
// Paper claims to reproduce: runtime grows with the number of maps and
// reduces (per-task overheads and coordination dominate small jobs), and
// the cross-domain placement is consistently worse.

#include <cstdio>
#include <string>

#include "common.hpp"
#include "workloads/mrbench.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

double run_case(core::Placement placement, int maps, int reduces) {
  core::Platform platform;
  platform.boot_cluster(paper_cluster(placement));
  workloads::MrBench mrbench{.num_maps = maps, .num_reduces = reduces};
  // Paper methodology: three runs averaged.
  double total = 0.0;
  for (int r = 0; r < 3; ++r) {
    const std::string out = std::string("/out/mrb-") + placement_name(placement) + "-" +
                            std::to_string(maps) + "x" + std::to_string(reduces) + "-" +
                            std::to_string(r);
    total += platform.run_job(mrbench.sim_job(out)).elapsed();
  }
  return total / 3.0;
}

}  // namespace

int main() {
  BenchResults results("fig3_mrbench");
  std::printf("== Figure 3(a): MRBench, reduce=1, map scale 1..6 ==\n");
  std::printf("%-8s %14s %18s\n", "maps", "normal (s)", "cross-domain (s)");
  for (int maps = 1; maps <= 6; ++maps) {
    const double normal = run_case(core::Placement::Normal, maps, 1);
    const double cross = run_case(core::Placement::CrossDomain, maps, 1);
    std::printf("%-8d %14.2f %18.2f\n", maps, normal, cross);
    results.row()
        .col("sweep", "maps")
        .col("maps", maps)
        .col("reduces", 1)
        .col("normal_s", normal)
        .col("cross_domain_s", cross);
  }

  std::printf("\n== Figure 3(b): MRBench, map=15, reduce scale 1..6 ==\n");
  std::printf("%-8s %14s %18s\n", "reduces", "normal (s)", "cross-domain (s)");
  for (int reduces = 1; reduces <= 6; ++reduces) {
    const double normal = run_case(core::Placement::Normal, 15, reduces);
    const double cross = run_case(core::Placement::CrossDomain, 15, reduces);
    std::printf("%-8d %14.2f %18.2f\n", reduces, normal, cross);
    results.row()
        .col("sweep", "reduces")
        .col("maps", 15)
        .col("reduces", reduces)
        .col("normal_s", normal)
        .col("cross_domain_s", cross);
  }
  results.write();
  return 0;
}

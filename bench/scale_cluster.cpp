// vlint: allow-file(no-exact-float-compare) audited PR 8: bit-identity oracle; incremental and reference solvers must agree exactly
// Solver-scaling sweep: hadoop virtual clusters of 16 → 1024 VMs running a
// Wordcount + TeraSort pair sized to the cluster, once under the incremental
// fluid solver and once with the reference oracle enabled
// (VHADOOP_FLUID_REFERENCE=1, which re-verifies every component after every
// mutation — the cost profile of the old global recompute).
//
// Both modes execute the *same* simulation (DESIGN.md §10: the stored rates
// always equal the canonical per-component solution), so simulated makespans
// must agree bit-for-bit; only wall-clock differs. The speedup column is the
// acceptance metric for the incremental solver: ≥5× at 256 VMs.
//
// Prints one row per (cluster size, job, mode) and writes
// BENCH_scale_cluster.json (BENCH_scale_cluster_<topology>.json for the
// non-default fabrics, so each topology gates against its own baseline).
// Flags:
//   --vms=16,64,256,1024   cluster sizes to sweep (total VMs incl. namenode)
//   --reference-max=256    largest size also run under the oracle (0 = never;
//                          the oracle is quadratic, 1024 takes minutes)
//   --topology=single-switch|fat-tree|rotor
//                          fabric model (default single-switch, the paper's)
//   --hosts-per-rack=2     rack width for the multi-rack fabrics; racks =
//                          ceil(hosts / hosts_per_rack)
//   --verify-every=1       oracle sampling period (VHADOOP_FLUID_VERIFY_EVERY)
//                          for reference runs; N>1 makes the oracle tractable
//                          at 1024+ VMs while still catching stale components

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "net/topology.hpp"
#include "workloads/terasort.hpp"

using namespace vhadoop;

namespace {

// vlint: allow(no-wall-clock) audited PR 8: host-clock stopwatch around engine.run(); never feeds simulation state
using WallClock = std::chrono::steady_clock;

double elapsed_ms(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

struct ScaleResult {
  int vms = 0;
  int racks = 1;
  bool reference = false;
  double boot_ms = 0.0;
  double upload_ms = 0.0;
  double wordcount_ms = 0.0;  ///< wall-clock per job
  double terasort_ms = 0.0;
  double wordcount_sim_s = 0.0;  ///< simulated seconds per job
  double terasort_sim_s = 0.0;
  double recomputes = 0.0;  ///< sim.fluid.recomputes (dirty-component solves)
  double component_p95 = 0.0;
  double events_fired = 0.0;
  std::string metrics_json;
};

// Wordcount sized to the cluster: one map per corpus block (~1 block per VM),
// CPU-bound maps (tokenizing 8 MiB of text dwarfs reading it) with a small
// shuffle into vms/32 reduces. CPU phases live in per-host {vcpu, host.cpu}
// components, so this job is the incremental solver's home turf; TeraSort
// below is the adversarial case where everything meets at the NFS disk.
mapreduce::SimJobSpec wordcount_job(const hdfs::HdfsCluster& hdfs, int reduces) {
  mapreduce::SimJobSpec spec;
  spec.name = "wordcount";
  const int blocks = static_cast<int>(hdfs.blocks("/in/corpus").size());
  for (int b = 0; b < blocks; ++b) {
    spec.maps.push_back({"/in/corpus", b, 0.0, 2.0, 2 * sim::kMiB});
  }
  spec.reduces.assign(static_cast<std::size_t>(reduces), {0.3, sim::kMiB});
  spec.output_path = "/out/wc";
  return spec;
}

ScaleResult run_scale(int vms, bool reference, net::TopologyKind topology,
                      int hosts_per_rack) {
  // The oracle switch is read by FluidModel's constructor; flip it before
  // the Platform (and its engine) exist so both modes share one code path.
  setenv("VHADOOP_FLUID_REFERENCE", reference ? "1" : "0", 1);

  ScaleResult r;
  r.vms = vms;
  r.reference = reference;

  // ~16 VMs per host (paper hosts: 16 cores / 32 GB; 1 GiB guests), VMs
  // round-robin across hosts so per-host CPU components stay bounded while
  // the shared NFS component grows with the cluster.
  core::TestbedConfig testbed;
  testbed.num_hosts = (vms + 15) / 16;
  testbed.net.topology.kind = topology;
  if (topology != net::TopologyKind::SingleSwitch) {
    testbed.net.topology.racks = (testbed.num_hosts + hosts_per_rack - 1) / hosts_per_rack;
    testbed.net.topology.nodes_per_rack = hosts_per_rack;
  }
  r.racks = topology == net::TopologyKind::SingleSwitch ? 1 : testbed.net.topology.racks;
  core::Platform platform(testbed);

  core::ClusterSpec spec;
  spec.num_workers = vms - 1;
  spec.placement = core::Placement::Spread;
  spec.hdfs.block_size = 8 * sim::kMiB;  // 1 block ≈ 1 VM keeps maps ∝ cluster
  const int reduces = std::max(4, vms / 32);

  auto t0 = WallClock::now();
  platform.boot_cluster(spec);
  r.boot_ms = elapsed_ms(t0);

  workloads::TeraSort tera;
  const double input_bytes = vms * 8.0 * sim::kMiB;
  tera.total_bytes = input_bytes;
  tera.block_size = spec.hdfs.block_size;
  tera.num_reduces = reduces;

  // Staging: corpus upload from the namenode plus a teragen run (which lays
  // out the per-map part files sim_terasort reads).
  t0 = WallClock::now();
  platform.upload("/in/corpus", input_bytes);
  platform.run_job(tera.sim_teragen("/in/tera"));
  r.upload_ms = elapsed_ms(t0);

  t0 = WallClock::now();
  r.wordcount_sim_s = platform.run_job(wordcount_job(platform.hdfs(), reduces)).elapsed();
  r.wordcount_ms = elapsed_ms(t0);

  t0 = WallClock::now();
  r.terasort_sim_s = platform.run_job(tera.sim_terasort("/in/tera", "/out/tera")).elapsed();
  r.terasort_ms = elapsed_ms(t0);

  const obs::Registry& metrics = platform.metrics();
  if (const obs::Counter* c = metrics.find_counter("sim.fluid.recomputes")) {
    r.recomputes = c->value();
  }
  if (const obs::Histogram* h = metrics.find_histogram("sim.fluid.component_size")) {
    r.component_p95 = h->percentile(0.95);
  }
  if (const obs::Counter* c = metrics.find_counter("sim.events_fired")) {
    r.events_fired = c->value();
  }
  r.metrics_json = metrics.to_json();
  return r;
}

std::vector<int> parse_sizes(const std::string& arg) {
  std::vector<int> sizes;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    sizes.push_back(std::atoi(arg.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {16, 64, 256, 1024};
  int reference_max = 256;
  int hosts_per_rack = 2;
  int verify_every = 1;
  net::TopologyKind topology = net::TopologyKind::SingleSwitch;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--vms=", 6) == 0) {
      sizes = parse_sizes(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--reference-max=", 16) == 0) {
      reference_max = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      const auto kind = net::topology_kind_from_string(argv[i] + 11);
      if (!kind) {
        std::fprintf(stderr, "unknown topology '%s' (single-switch|fat-tree|rotor)\n",
                     argv[i] + 11);
        return 2;
      }
      topology = *kind;
    } else if (std::strncmp(argv[i], "--hosts-per-rack=", 17) == 0) {
      hosts_per_rack = std::atoi(argv[i] + 17);
      if (hosts_per_rack < 1) {
        std::fprintf(stderr, "--hosts-per-rack must be >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--verify-every=", 15) == 0) {
      verify_every = std::atoi(argv[i] + 15);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vms=16,64,...] [--reference-max=N] "
                   "[--topology=single-switch|fat-tree|rotor] [--hosts-per-rack=N] "
                   "[--verify-every=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (verify_every > 1) {
    setenv("VHADOOP_FLUID_VERIFY_EVERY", std::to_string(verify_every).c_str(), 1);
  }

  // Per-topology bench name, so each fabric gates against its own baseline
  // (bench/baselines/scale_cluster_fat_tree.json etc.).
  std::string bench_name = "scale_cluster";
  if (topology == net::TopologyKind::FatTree) bench_name += "_fat_tree";
  if (topology == net::TopologyKind::Rotor) bench_name += "_rotor";

  bench::BenchResults results(bench_name);
  std::printf("topology=%s hosts_per_rack=%d\n", net::to_string(topology), hosts_per_rack);
  std::printf("%6s %12s %10s %12s %12s %12s %12s %10s\n", "vms", "mode", "boot_ms",
              "wc_ms", "tera_ms", "wc_sim_s", "tera_sim_s", "comp_p95");

  std::string last_metrics;
  for (int vms : sizes) {
    ScaleResult inc = run_scale(vms, /*reference=*/false, topology, hosts_per_rack);
    last_metrics = inc.metrics_json;
    bool have_ref = vms <= reference_max;
    ScaleResult ref;
    if (have_ref) {
      ref = run_scale(vms, /*reference=*/true, topology, hosts_per_rack);
      // Same simulation by construction; a mismatch means a stale component
      // escaped the incremental solver.
      if (ref.wordcount_sim_s != inc.wordcount_sim_s ||
          ref.terasort_sim_s != inc.terasort_sim_s) {
        std::fprintf(stderr,
                     "scale_cluster: simulated makespan diverged at %d VMs "
                     "(wc %.17g vs %.17g, tera %.17g vs %.17g)\n",
                     vms, inc.wordcount_sim_s, ref.wordcount_sim_s, inc.terasort_sim_s,
                     ref.terasort_sim_s);
        return 1;
      }
    }

    for (const ScaleResult* run : {&inc, have_ref ? &ref : nullptr}) {
      if (!run) continue;
      const char* mode = run->reference ? "reference" : "incremental";
      std::printf("%6d %12s %10.1f %12.1f %12.1f %12.2f %12.2f %10.1f\n", run->vms, mode,
                  run->boot_ms, run->wordcount_ms, run->terasort_ms, run->wordcount_sim_s,
                  run->terasort_sim_s, run->component_p95);
      results.row()
          .col("vms", run->vms)
          .col("mode", mode)
          .col("topology", net::to_string(topology))
          .col("racks", run->racks)
          .col("boot_ms", run->boot_ms)
          .col("upload_ms", run->upload_ms)
          .col("wordcount_ms", run->wordcount_ms)
          .col("terasort_ms", run->terasort_ms)
          .col("wordcount_sim_s", run->wordcount_sim_s)
          .col("terasort_sim_s", run->terasort_sim_s)
          .col("recomputes", run->recomputes)
          .col("component_p95", run->component_p95)
          .col("events_fired", run->events_fired);
    }
    if (have_ref) {
      const double inc_total = inc.wordcount_ms + inc.terasort_ms;
      const double ref_total = ref.wordcount_ms + ref.terasort_ms;
      const double speedup = inc_total > 0.0 ? ref_total / inc_total : 0.0;
      const double wc_speedup =
          inc.wordcount_ms > 0.0 ? ref.wordcount_ms / inc.wordcount_ms : 0.0;
      const double tera_speedup =
          inc.terasort_ms > 0.0 ? ref.terasort_ms / inc.terasort_ms : 0.0;
      std::printf("%6d %12s %10s %12s %12s  jobs speedup: %.1fx (wc %.1fx, tera %.1fx)\n",
                  vms, "speedup", "", "", "", speedup, wc_speedup, tera_speedup);
      results.row()
          .col("vms", vms)
          .col("mode", "speedup")
          .col("topology", net::to_string(topology))
          .col("jobs_speedup", speedup)
          .col("wordcount_speedup", wc_speedup)
          .col("terasort_speedup", tera_speedup);
    }
  }

  // Snapshot of the largest incremental run for post-hoc inspection.
  results.attach_metrics_json(std::move(last_metrics));
  results.write();
  return 0;
}

// tenant_day — multi-tenant trace-replay harness: a generated day of bursty
// traffic from 20 tenants is replayed open-loop through per-tenant admission
// control under every scheduler policy, and the per-tenant latency/SLO
// outcomes are compared head-to-head.
//
//   tenant_day [--quick]
//
// --quick replays only the 2k-job trace (the ctest fixture); the full run
// (CI bench job) replays the 2k trace AND the 10k-job day so its BENCH rows
// are a superset of the quick fixture's. Every configuration is replayed
// twice and the runs must be byte-identical (serialized trace + metrics
// registry JSON) — any divergence exits 1. The run also asserts that the
// deadline scheduler's aggregate SLO-miss rate beats FIFO's on each trace.
//
// Writes BENCH_tenant_day.json (see bench/common.hpp) gated by
// bench/baselines/tenant_day.json.

#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "workloads/trace.hpp"
#include "workloads/trace_replay.hpp"

using namespace vhadoop;

namespace {

struct ReplayResult {
  int accepted = 0;
  int rejected = 0;
  int completed = 0;
  int failed = 0;
  int slo_missed = 0;
  int slo_tracked = 0;
  double miss_rate = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double makespan = 0.0;
  double max_skew = 0.0;
  std::string metrics_json;
  std::vector<workloads::TenantReplayStats> tenants;
};

ReplayResult run_once(mapreduce::SchedulerPolicy policy, const workloads::WorkloadTrace& trace) {
  core::Platform platform;
  core::ClusterSpec spec = bench::paper_cluster(core::Placement::Normal);
  spec.hadoop.scheduler = policy;
  if (policy == mapreduce::SchedulerPolicy::Capacity) {
    spec.hadoop.queues = {{"interactive", 0.6, 1.0, 1.0}, {"batch", 0.4, 1.0, 1.0}};
  }
  platform.boot_cluster(spec);

  workloads::TraceReplayer replayer(
      platform.engine(), platform.metrics(), trace,
      [&platform](mapreduce::SimJobSpec job,
                  std::function<void(const mapreduce::JobTimeline&)> done) {
        platform.submit_job(std::move(job), std::move(done));
      });
  ReplayResult r;
  r.makespan = replayer.run_to_completion();
  r.accepted = replayer.accepted();
  r.rejected = replayer.rejected();
  r.completed = replayer.completed();
  r.failed = replayer.failed();
  r.slo_missed = replayer.slo_missed();
  r.slo_tracked = replayer.slo_tracked();
  r.miss_rate = replayer.slo_miss_rate();
  r.p50 = replayer.latency_percentile(0.50);
  r.p95 = replayer.latency_percentile(0.95);
  r.p99 = replayer.latency_percentile(0.99);
  r.max_skew = replayer.max_submit_skew();
  r.metrics_json = platform.metrics().to_json();
  r.tenants = replayer.tenant_stats();
  return r;
}

workloads::TraceGenConfig trace_config(int jobs) {
  workloads::TraceGenConfig gen;
  gen.num_jobs = jobs;
  gen.seed = 7;
  return gen;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  struct Scale {
    const char* tag;
    int jobs;
  };
  std::vector<Scale> scales = {{"quick", 2000}};
  if (!quick) scales.push_back({"full", 10000});

  const mapreduce::SchedulerPolicy policies[] = {
      mapreduce::SchedulerPolicy::Fifo, mapreduce::SchedulerPolicy::Fair,
      mapreduce::SchedulerPolicy::Capacity, mapreduce::SchedulerPolicy::Deadline};

  bench::BenchResults results("tenant_day");
  bool ok = true;

  for (const Scale& scale : scales) {
    // The generator itself must be a pure function of its config.
    const auto trace = workloads::generate_trace(trace_config(scale.jobs));
    if (workloads::generate_trace(trace_config(scale.jobs)).serialize() != trace.serialize()) {
      std::fprintf(stderr, "FAIL: trace generation (%s) is not deterministic\n", scale.tag);
      ok = false;
    }

    std::printf("== %s trace: %zu jobs over %.0f s, last arrival %.0f s ==\n", scale.tag,
                trace.records.size(), trace_config(scale.jobs).horizon_seconds,
                trace.last_arrival());
    std::printf("%-9s %9s %9s %9s %11s %10s %10s %12s\n", "scheduler", "accepted", "rejected",
                "slo_miss", "miss_rate", "p50_s", "p95_s", "makespan_s");

    double fifo_miss_rate = 0.0, deadline_miss_rate = 0.0;
    for (const auto policy : policies) {
      const ReplayResult r = run_once(policy, trace);
      // Replay the identical trace again: the whole stack (generator,
      // admission, scheduler, simulation) must reproduce byte-for-byte.
      const ReplayResult r2 = run_once(policy, trace);
      if (r.metrics_json != r2.metrics_json) {
        std::fprintf(stderr, "FAIL: %s/%s replay metrics diverge between runs\n", scale.tag,
                     mapreduce::to_string(policy));
        ok = false;
      }
      if (r.max_skew > 1e-9) {
        std::fprintf(stderr, "FAIL: %s/%s submitted %.3g s after trace arrival\n", scale.tag,
                     mapreduce::to_string(policy), r.max_skew);
        ok = false;
      }

      std::printf("%-9s %9d %9d %4d/%-4d %10.1f%% %10.1f %10.1f %12.1f\n",
                  mapreduce::to_string(policy), r.accepted, r.rejected, r.slo_missed,
                  r.slo_tracked, 100.0 * r.miss_rate, r.p50, r.p95, r.makespan);
      if (policy == mapreduce::SchedulerPolicy::Fifo) fifo_miss_rate = r.miss_rate;
      if (policy == mapreduce::SchedulerPolicy::Deadline) {
        deadline_miss_rate = r.miss_rate;
        std::printf("  per-tenant (deadline): tenant accepted rejected missed p95_s\n");
        for (const auto& ts : r.tenants) {
          std::printf("    %-6s %8d %8d %6d %8.1f\n", ts.tenant.c_str(), ts.accepted,
                      ts.rejected, ts.slo_missed, ts.latency_percentile(0.95));
        }
      }

      results.row()
          .col("scheduler", mapreduce::to_string(policy))
          .col("trace", scale.tag)
          .col("jobs", static_cast<double>(trace.records.size()))
          .col("accepted", r.accepted)
          .col("rejected", r.rejected)
          .col("completed", r.completed)
          .col("failed", r.failed)
          .col("slo_missed", r.slo_missed)
          .col("slo_tracked", r.slo_tracked)
          .col("slo_miss_pct", 100.0 * r.miss_rate)
          .col("p50_latency_s", r.p50)
          .col("p95_latency_s", r.p95)
          .col("p99_latency_s", r.p99)
          .col("makespan_s", r.makespan);
    }

    // The headline claim: EDF + admission awareness beats head-of-line
    // blocking on deadline traffic.
    if (!(deadline_miss_rate < fifo_miss_rate)) {
      std::fprintf(stderr,
                   "FAIL: deadline SLO-miss rate %.3f does not beat fifo %.3f (%s trace)\n",
                   deadline_miss_rate, fifo_miss_rate, scale.tag);
      ok = false;
    }
  }

  if (results.write().empty()) return 1;
  if (!ok) return 1;
  std::printf("tenant_day: OK\n");
  return 0;
}

// Figure 6 reproduction: parallel clustering (Canopy, Dirichlet, MeanShift)
// on the Synthetic Control Chart Time Series dataset, hadoop virtual
// cluster scaled 2 -> 16 nodes (1 namenode + 1/3/7/15 datanodes).
//
// Paper claim to reproduce: because the dataset is small and fixed, the
// running time of all three algorithms *increases* as the cluster grows —
// more nodes mean more task/communication overhead, not more useful
// parallelism.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/meanshift.hpp"

using namespace vhadoop;
using namespace vhadoop::bench;

namespace {

/// Run one algorithm's measured iteration jobs on a fresh cluster of the
/// given size. One map wave across the cluster, as the Mahout drivers of
/// the era were configured (mapred.map.tasks = cluster size).
template <typename RunFn>
double run_on_cluster(int workers, const ml::Dataset&, double dataset_bytes, RunFn fn) {
  ml::ClusteringConfig base{.num_splits = workers, .num_reduces = 1, .max_iterations = 5};
  auto run = fn(base);
  core::Platform platform;
  core::ClusterSpec spec;
  spec.num_workers = workers;
  spec.placement = core::Placement::Normal;
  platform.boot_cluster(spec);
  return platform.run_clustering(run, dataset_bytes, "/in/control");
}

}  // namespace

int main() {
  const auto data = ml::synthetic_control();
  const double bytes = mapreduce::serialized_bytes(ml::to_records(data));
  std::printf("== Figure 6: clustering the Synthetic Control dataset (600x60) ==\n");
  std::printf("%-12s %12s %14s %14s\n", "cluster size", "canopy (s)", "dirichlet (s)",
              "meanshift (s)");

  for (int nodes : {2, 4, 8, 16}) {
    const int workers = nodes - 1;
    const double canopy = run_on_cluster(workers, data, bytes, [&](ml::ClusteringConfig base) {
      return ml::canopy_cluster(data, {.t1 = 80.0, .t2 = 55.0, .base = base});
    });
    const double dirichlet = run_on_cluster(workers, data, bytes, [&](ml::ClusteringConfig base) {
      return static_cast<ml::ClusteringRun>(
          ml::dirichlet_cluster(data, {.k = 10, .alpha = 1.0, .base = base}));
    });
    const double meanshift = run_on_cluster(workers, data, bytes, [&](ml::ClusteringConfig base) {
      base.max_iterations = 5;
      return ml::meanshift_cluster(data, {.t1 = 60.0, .t2 = 30.0, .base = base});
    });
    std::printf("%-12d %12.1f %14.1f %14.1f\n", nodes, canopy, dirichlet, meanshift);
  }
  return 0;
}

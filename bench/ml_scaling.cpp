// vlint: allow-file(no-exact-float-compare) audited PR 8: byte-identity equivalence oracle; optimized and reference runners must match exactly
// ML-scaling sweep for the zero-copy KV data path: the six paper clustering
// algorithms (k-means, fuzzy k-means, canopy, Dirichlet, mean-shift, MinHash)
// run over synthetic datasets of growing (points x dims), once on the
// arena-backed optimized runner and once under the reference oracle
// (VHADOOP_RUNNER_REFERENCE=1, the original std::vector<KV> path).
//
// Both paths execute the *same* logical job (DESIGN.md §11), so outputs,
// task profiles, shuffle accounting and the mode-independent record/byte
// counters must agree bit-for-bit — the sweep re-checks that here for every
// (algorithm, seed) and exits 1 on any divergence. Only wall-clock differs;
// the speedup column on the largest configuration (minhash-1000000x2, ~2M
// shuffled records) is the acceptance metric for the data-path rewrite: ≥2×.
// Wall times on configurations marked wall_reps > 1 are best-of-N to tame
// single-core scheduler noise; every repetition is a full driver run.
//
// Prints one row per (configuration, seed) and writes BENCH_ml_scaling.json
// whose deterministic counters (records/bytes moved, sort/merge comparisons,
// arena chunks) are gated by tools/bench_check; wall-clock columns are
// recorded ungated. Flags:
//   --quick        reduced sweep for the local ctest fixture (drops the
//                  large full-sweep-only configurations; CI runs the full
//                  sweep and re-checks with --require-all)
//   --seeds=1,7    dataset seeds for the cross-mode equivalence sweep

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/fuzzy_kmeans.hpp"
#include "ml/kmeans.hpp"
#include "ml/meanshift.hpp"
#include "ml/minhash.hpp"

using namespace vhadoop;

namespace {

// vlint: allow(no-wall-clock) audited PR 8: host-clock stopwatch around the drivers; never feeds job results
using WallClock = std::chrono::steady_clock;

double elapsed_ms(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

/// One swept configuration: a seeded dataset generator plus a driver
/// closure. The dataset is built once per seed *outside* the stopwatch and
/// shared by both modes — only the driver (jobs + model assembly) is timed.
struct SweepConfig {
  std::string name;       ///< row id, e.g. "kmeans-600x60"
  std::string algorithm;
  int points = 0;
  int dims = 0;
  bool quick = false;     ///< part of the reduced --quick sweep
  int wall_reps = 1;      ///< best-of-N wall timing (outputs checked once)
  std::function<ml::Dataset(std::uint64_t seed)> data;
  std::function<ml::ClusteringRun(const ml::Dataset&)> run;
};

/// Run a driver with the runner's oracle switch set; the env is read when
/// the driver constructs its LocalJobRunner, inside `run`.
ml::ClusteringRun run_mode(const SweepConfig& c, const ml::Dataset& data, bool reference) {
  setenv("VHADOOP_RUNNER_REFERENCE", reference ? "1" : "0", 1);
  return c.run(data);
}

/// Time one mode. The first run's result is kept for the equivalence check;
/// configurations with wall_reps > 1 re-run the driver and keep the fastest
/// wall time (the runs are deterministic, so repetitions only differ in
/// scheduler noise).
double time_mode(const SweepConfig& c, const ml::Dataset& data, bool reference,
                 ml::ClusteringRun& out) {
  auto t0 = WallClock::now();
  out = run_mode(c, data, reference);
  double best = elapsed_ms(t0);
  for (int rep = 1; rep < c.wall_reps; ++rep) {
    t0 = WallClock::now();
    const ml::ClusteringRun again = run_mode(c, data, reference);
    const double ms = elapsed_ms(t0);
    if (ms < best) best = ms;
  }
  return best;
}

bool check(bool ok, const char* where, const std::string& name, std::size_t job) {
  if (!ok) {
    std::fprintf(stderr, "ml_scaling: %s diverged between modes (%s, job %zu)\n", where,
                 name.c_str(), job);
  }
  return ok;
}

bool profiles_equal(const std::vector<mapreduce::TaskProfile>& a,
                    const std::vector<mapreduce::TaskProfile>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].input_bytes != b[i].input_bytes || a[i].input_records != b[i].input_records ||
        a[i].output_bytes != b[i].output_bytes || a[i].output_records != b[i].output_records ||
        a[i].cpu_seconds != b[i].cpu_seconds) {
      return false;
    }
  }
  return true;
}

/// Byte-identity across modes: outputs, profiles, shuffle accounting and the
/// mode-independent data-path counters must match exactly.
bool jobs_equal(const ml::ClusteringRun& opt, const ml::ClusteringRun& ref,
                const std::string& name) {
  if (!check(opt.jobs.size() == ref.jobs.size(), "job count", name, 0)) return false;
  for (std::size_t j = 0; j < opt.jobs.size(); ++j) {
    const mapreduce::JobResult& o = opt.jobs[j];
    const mapreduce::JobResult& r = ref.jobs[j];
    if (!check(o.output.size() == r.output.size(), "output size", name, j)) return false;
    for (std::size_t i = 0; i < o.output.size(); ++i) {
      if (!check(o.output[i].key == r.output[i].key && o.output[i].value == r.output[i].value,
                 "output record", name, j)) {
        return false;
      }
    }
    if (!check(profiles_equal(o.map_profiles, r.map_profiles), "map profiles", name, j) ||
        !check(profiles_equal(o.reduce_profiles, r.reduce_profiles), "reduce profiles", name,
               j) ||
        !check(o.shuffle_matrix == r.shuffle_matrix, "shuffle matrix", name, j) ||
        !check(o.total_shuffle_bytes == r.total_shuffle_bytes, "shuffle bytes", name, j) ||
        !check(o.stats.map_emit_records == r.stats.map_emit_records &&
                   o.stats.map_emit_bytes == r.stats.map_emit_bytes &&
                   o.stats.shuffle_records == r.stats.shuffle_records,
               "data-path stats", name, j)) {
      return false;
    }
  }
  if (!check(opt.iterations == ref.iterations, "iterations", name, 0) ||
      !check(opt.centers == ref.centers, "centers", name, 0) ||
      !check(opt.assignments == ref.assignments, "assignments", name, 0)) {
    return false;
  }
  return true;
}

/// Sum the deterministic counters over every job of a run.
struct Counters {
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
  std::int64_t shuffle_records = 0;
  std::int64_t sort_comparisons = 0;
  std::int64_t merge_comparisons = 0;
  std::int64_t arena_chunks = 0;
};

Counters aggregate(const ml::ClusteringRun& run) {
  Counters c;
  for (const mapreduce::JobResult& j : run.jobs) {
    c.emit_records += j.stats.map_emit_records;
    c.emit_bytes += j.stats.map_emit_bytes;
    c.shuffle_records += j.stats.shuffle_records;
    c.sort_comparisons += j.stats.sort_comparisons;
    c.merge_comparisons += j.stats.merge_comparisons;
    c.arena_chunks += j.stats.arena_chunks;
  }
  return c;
}

std::vector<SweepConfig> build_sweep() {
  std::vector<SweepConfig> sweep;
  auto add = [&sweep](std::string name, std::string algorithm, int points, int dims,
                      bool quick, std::function<ml::Dataset(std::uint64_t)> data,
                      std::function<ml::ClusteringRun(const ml::Dataset&)> run) {
    sweep.push_back({std::move(name), std::move(algorithm), points, dims, quick,
                     /*wall_reps=*/1, std::move(data), std::move(run)});
  };
  auto control = [](int per_class) {
    return [per_class](std::uint64_t seed) { return ml::synthetic_control(per_class, 60, seed); };
  };
  auto display = [](int total) {
    return [total](std::uint64_t seed) { return ml::display_clustering_samples(total, seed); };
  };

  auto kmeans = [](const ml::Dataset& data) {
    ml::KMeansConfig c;
    c.k = 6;
    c.base.num_splits = 8;
    c.base.num_reduces = 2;
    return ml::kmeans_cluster(data, c);
  };
  add("kmeans-600x60", "kmeans", 600, 60, true, control(100), kmeans);
  add("kmeans-3000x60", "kmeans", 3000, 60, false, control(500), kmeans);

  add("fuzzy-600x60", "fuzzy_kmeans", 600, 60, true, control(100), [](const ml::Dataset& data) {
    ml::FuzzyKMeansConfig c;
    c.k = 6;
    c.base.num_splits = 8;
    c.base.num_reduces = 2;
    c.base.max_iterations = 5;
    return ml::fuzzy_kmeans_cluster(data, c);
  });

  auto canopy = [](const ml::Dataset& data) {
    ml::CanopyConfig c;
    c.base.num_splits = 8;
    return ml::canopy_cluster(data, c);
  };
  add("canopy-4000x2", "canopy", 4000, 2, true, display(4000), canopy);
  add("canopy-20000x2", "canopy", 20000, 2, false, display(20000), canopy);

  add("dirichlet-300x60", "dirichlet", 300, 60, true, control(50), [](const ml::Dataset& data) {
    ml::DirichletConfig c;
    c.k = 10;
    c.base.num_splits = 8;
    c.base.max_iterations = 5;
    return ml::dirichlet_cluster(data, c);
  });

  add("meanshift-1500x2", "meanshift", 1500, 2, true, display(1500),
      [](const ml::Dataset& data) {
        ml::MeanShiftConfig c;
        c.base.num_splits = 8;
        c.base.max_iterations = 5;
        return ml::meanshift_cluster(data, c);
      });

  // Two short hash bands (keygroups=1) keep the per-point hashing cost —
  // identical in both modes — small relative to the records shuffled, so
  // the sweep measures the data path rather than the hash bank.
  auto minhash = [](const ml::Dataset& data) {
    ml::MinHashConfig c;
    c.num_hash_functions = 2;
    c.keygroups = 1;
    c.base.num_splits = 8;
    c.base.num_reduces = 4;
    return ml::minhash_cluster(data, c);
  };
  add("minhash-100000x2", "minhash", 100000, 2, true, display(100000), minhash);
  // The acceptance configuration: ~2M shuffled records of short string
  // keys — the record-bound regime the arena/merge rewrite targets.
  add("minhash-1000000x2", "minhash", 1000000, 2, false, display(1000000), minhash);
  sweep.back().wall_reps = 3;

  return sweep;
}

std::vector<std::uint64_t> parse_seeds(const std::string& arg) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    seeds.push_back(std::strtoull(arg.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::uint64_t> seeds = {1, 7};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds = parse_seeds(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--seeds=1,7,...]\n", argv[0]);
      return 2;
    }
  }
  if (seeds.empty()) seeds = {1};

  bench::BenchResults results("ml_scaling");
  std::printf("%-18s %5s %9s %9s %12s %12s %12s %7s %9s %9s %8s\n", "config", "seed", "iters",
              "emit_rec", "shuffle_rec", "sort_cmp", "merge_cmp", "chunks", "opt_ms",
              "ref_ms", "speedup");

  for (const SweepConfig& c : build_sweep()) {
    if (quick && !c.quick) continue;
    for (std::uint64_t seed : seeds) {
      const ml::Dataset data = c.data(seed);

      ml::ClusteringRun opt, ref;
      const double opt_ms = time_mode(c, data, /*reference=*/false, opt);
      const double ref_ms = time_mode(c, data, /*reference=*/true, ref);

      if (!jobs_equal(opt, ref, c.name)) return 1;

      const Counters agg = aggregate(opt);
      const Counters ref_agg = aggregate(ref);
      // The oracle fills only the mode-independent counters; nonzero
      // comparison/arena counts there mean the paths were swapped.
      if (ref_agg.sort_comparisons != 0 || ref_agg.arena_chunks != 0) {
        std::fprintf(stderr, "ml_scaling: reference run reported optimized-path counters (%s)\n",
                     c.name.c_str());
        return 1;
      }
      const double speedup = opt_ms > 0.0 ? ref_ms / opt_ms : 0.0;

      std::printf("%-18s %5llu %9d %9lld %12lld %12lld %12lld %7lld %9.1f %9.1f %7.2fx\n",
                  c.name.c_str(), static_cast<unsigned long long>(seed), opt.iterations,
                  static_cast<long long>(agg.emit_records),
                  static_cast<long long>(agg.shuffle_records),
                  static_cast<long long>(agg.sort_comparisons),
                  static_cast<long long>(agg.merge_comparisons),
                  static_cast<long long>(agg.arena_chunks), opt_ms, ref_ms, speedup);
      results.row()
          .col("config", c.name)
          .col("algorithm", c.algorithm)
          .col("seed", static_cast<double>(seed))
          .col("points", c.points)
          .col("dims", c.dims)
          .col("iterations", opt.iterations)
          .col("map_emit_records", static_cast<double>(agg.emit_records))
          .col("map_emit_bytes", static_cast<double>(agg.emit_bytes))
          .col("shuffle_records", static_cast<double>(agg.shuffle_records))
          .col("sort_comparisons", static_cast<double>(agg.sort_comparisons))
          .col("merge_comparisons", static_cast<double>(agg.merge_comparisons))
          .col("arena_chunks", static_cast<double>(agg.arena_chunks))
          .col("opt_ms", opt_ms)
          .col("ref_ms", ref_ms)
          .col("speedup", speedup);
    }
  }

  results.write();
  return 0;
}

// vlint: allow-file(no-exact-float-compare) audited PR 8: byte-identity equivalence oracle; optimized and reference runners must match exactly
// ML-scaling sweep for the zero-copy KV data path: the six paper clustering
// algorithms (k-means, fuzzy k-means, canopy, Dirichlet, mean-shift, MinHash)
// run over synthetic datasets of growing (points x dims), once on the
// arena-backed optimized runner and once under the reference oracle
// (VHADOOP_RUNNER_REFERENCE=1, the original std::vector<KV> path).
//
// Both paths execute the *same* logical job (DESIGN.md §11), so outputs,
// task profiles, shuffle accounting and the mode-independent record/byte
// counters must agree bit-for-bit — the sweep re-checks that here for every
// (algorithm, seed) and exits 1 on any divergence. Only wall-clock differs.
// Two speedup acceptance gates (DESIGN.md §15, "win everywhere"):
//  - the largest configuration (minhash-10000000x2, ~20M shuffled records)
//    must hold the data-path rewrite's ≥2× win at scale;
//  - *every* configuration, tiny jobs included, must be at least as fast as
//    the reference path (speedup >= 1.0) — the sweep exits 1 otherwise.
// Wall times on configurations marked wall_reps > 1 are best-of-N to tame
// single-core scheduler noise; every repetition is a full driver run. A
// configuration that still measures a loss is granted extra best-of rounds
// before the gate counts it: per-mode minima only go down, so a path that
// is genuinely no slower eventually shows opt <= ref, while a real
// regression keeps losing every round.
//
// Prints one row per (configuration, seed) and writes BENCH_ml_scaling.json
// whose deterministic counters (records/bytes moved, sort/merge comparisons,
// arena chunks) are gated by tools/bench_check; wall-clock columns are
// recorded ungated. Flags:
//   --quick         reduced sweep for the local ctest fixture (drops the
//                   large full-sweep-only configurations; CI runs the full
//                   sweep and re-checks with --require-all)
//   --no-wall-gate  record speedups but never fail on them (the Debug/
//                   sanitizer ctest fixture uses this: wall ratios are only
//                   meaningful on optimized builds)
//   --seeds=1,7     dataset seeds for the cross-mode equivalence sweep

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "ml/canopy.hpp"
#include "ml/dirichlet.hpp"
#include "ml/fuzzy_kmeans.hpp"
#include "ml/kmeans.hpp"
#include "ml/meanshift.hpp"
#include "ml/minhash.hpp"

using namespace vhadoop;

namespace {

// vlint: allow(no-wall-clock) audited PR 8: host-clock stopwatch around the drivers; never feeds job results
using WallClock = std::chrono::steady_clock;

double elapsed_ms(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0).count();
}

/// One swept configuration: a seeded dataset generator plus a driver
/// closure. The dataset is built once per seed *outside* the stopwatch and
/// shared by both modes — only the driver (jobs + model assembly) is timed.
struct SweepConfig {
  std::string name;       ///< row id, e.g. "kmeans-600x60"
  std::string algorithm;
  int points = 0;
  int dims = 0;
  bool quick = false;     ///< part of the reduced --quick sweep
  int wall_reps = 1;      ///< best-of-N wall timing (outputs checked once)
  std::function<ml::Dataset(std::uint64_t seed)> data;
  std::function<ml::ClusteringRun(const ml::Dataset&)> run;
};

/// Run a driver with the runner's oracle switch set; the env is read when
/// the driver constructs its LocalJobRunner, inside `run`.
ml::ClusteringRun run_mode(const SweepConfig& c, const ml::Dataset& data, bool reference) {
  setenv("VHADOOP_RUNNER_REFERENCE", reference ? "1" : "0", 1);
  return c.run(data);
}

/// One round of best-of interleaved repetitions, folding each mode's
/// fastest sample into the running minima. Millisecond-scale drivers can't
/// be timed to the ~1% the wall gate needs from a single run — batch
/// enough runs per stopwatch sample to clear the floor_ms floor. The same
/// batch factor applies to both modes, so the speedup ratio is unaffected;
/// per-run times divide the sample. Which mode is timed first alternates
/// per rep, so any fixed cost of switching modes (cache/branch state from
/// the other path) charges both sides evenly instead of biasing whichever
/// mode always ran second.
void best_of_reps(const SweepConfig& c, const ml::Dataset& data, int reps, double floor_ms,
                  double& opt_ms, double& ref_ms) {
  const double slower = opt_ms > ref_ms ? opt_ms : ref_ms;
  int inner = 1;
  if (slower < floor_ms) {
    inner = static_cast<int>(floor_ms / (slower > 0.05 ? slower : 0.05)) + 1;
    if (inner > 32) inner = 32;
  }
  for (int rep = 0; rep < reps; ++rep) {
    const bool ref_first = (rep % 2) != 0;
    for (int half = 0; half < 2; ++half) {
      const bool reference = (half == 0) == ref_first;
      auto t0 = WallClock::now();
      for (int i = 0; i < inner; ++i) run_mode(c, data, reference);
      const double ms = elapsed_ms(t0) / inner;
      double& best = reference ? ref_ms : opt_ms;
      if (ms < best) best = ms;
    }
  }
}

/// Time both modes with their repetitions interleaved (opt, ref, opt, ref,
/// …) rather than in per-mode blocks: host-speed drift across the
/// measurement window then degrades adjacent reps of *both* modes, so
/// best-of-N speedup ratios stay honest on a noisy machine — with per-mode
/// blocks a slow spell during one block flips the every-config wall gate
/// on configurations where the data path is a sliver of the run. The first
/// run of each mode is kept for the equivalence check; repetitions are
/// deterministic re-runs that only differ in scheduler noise.
void time_both(const SweepConfig& c, const ml::Dataset& data, ml::ClusteringRun& opt,
               ml::ClusteringRun& ref, double& opt_ms, double& ref_ms) {
  auto t0 = WallClock::now();
  opt = run_mode(c, data, /*reference=*/false);
  opt_ms = elapsed_ms(t0);
  t0 = WallClock::now();
  ref = run_mode(c, data, /*reference=*/true);
  ref_ms = elapsed_ms(t0);
  if (c.wall_reps > 1) best_of_reps(c, data, c.wall_reps - 1, /*floor_ms=*/20.0, opt_ms, ref_ms);
}

bool check(bool ok, const char* where, const std::string& name, std::size_t job) {
  if (!ok) {
    std::fprintf(stderr, "ml_scaling: %s diverged between modes (%s, job %zu)\n", where,
                 name.c_str(), job);
  }
  return ok;
}

bool profiles_equal(const std::vector<mapreduce::TaskProfile>& a,
                    const std::vector<mapreduce::TaskProfile>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].input_bytes != b[i].input_bytes || a[i].input_records != b[i].input_records ||
        a[i].output_bytes != b[i].output_bytes || a[i].output_records != b[i].output_records ||
        a[i].cpu_seconds != b[i].cpu_seconds) {
      return false;
    }
  }
  return true;
}

/// Byte-identity across modes: outputs, profiles, shuffle accounting and the
/// mode-independent data-path counters must match exactly.
bool jobs_equal(const ml::ClusteringRun& opt, const ml::ClusteringRun& ref,
                const std::string& name) {
  if (!check(opt.jobs.size() == ref.jobs.size(), "job count", name, 0)) return false;
  for (std::size_t j = 0; j < opt.jobs.size(); ++j) {
    const mapreduce::JobResult& o = opt.jobs[j];
    const mapreduce::JobResult& r = ref.jobs[j];
    if (!check(o.output.size() == r.output.size(), "output size", name, j)) return false;
    for (std::size_t i = 0; i < o.output.size(); ++i) {
      if (!check(o.output[i].key == r.output[i].key && o.output[i].value == r.output[i].value,
                 "output record", name, j)) {
        return false;
      }
    }
    if (!check(profiles_equal(o.map_profiles, r.map_profiles), "map profiles", name, j) ||
        !check(profiles_equal(o.reduce_profiles, r.reduce_profiles), "reduce profiles", name,
               j) ||
        !check(o.shuffle_matrix == r.shuffle_matrix, "shuffle matrix", name, j) ||
        !check(o.total_shuffle_bytes == r.total_shuffle_bytes, "shuffle bytes", name, j) ||
        !check(o.stats.map_emit_records == r.stats.map_emit_records &&
                   o.stats.map_emit_bytes == r.stats.map_emit_bytes &&
                   o.stats.shuffle_records == r.stats.shuffle_records,
               "data-path stats", name, j)) {
      return false;
    }
  }
  if (!check(opt.iterations == ref.iterations, "iterations", name, 0) ||
      !check(opt.centers == ref.centers, "centers", name, 0) ||
      !check(opt.assignments == ref.assignments, "assignments", name, 0)) {
    return false;
  }
  return true;
}

/// Sum the deterministic counters over every job of a run.
struct Counters {
  std::int64_t emit_records = 0;
  std::int64_t emit_bytes = 0;
  std::int64_t shuffle_records = 0;
  std::int64_t sort_comparisons = 0;
  std::int64_t merge_comparisons = 0;
  std::int64_t arena_chunks = 0;
};

Counters aggregate(const ml::ClusteringRun& run) {
  Counters c;
  for (const mapreduce::JobResult& j : run.jobs) {
    c.emit_records += j.stats.map_emit_records;
    c.emit_bytes += j.stats.map_emit_bytes;
    c.shuffle_records += j.stats.shuffle_records;
    c.sort_comparisons += j.stats.sort_comparisons;
    c.merge_comparisons += j.stats.merge_comparisons;
    c.arena_chunks += j.stats.arena_chunks;
  }
  return c;
}

std::vector<SweepConfig> build_sweep() {
  std::vector<SweepConfig> sweep;
  // Small configurations finish in milliseconds and are compute-dominated,
  // so their true speedup sits barely above 1.0 — resolving that against
  // the every-config wall gate needs a deep best-of-N (the min of each
  // mode's interleaved samples converges to the true floor). Each rep is
  // ~tens of ms, so 21 reps stay cheap; big configurations fall back to
  // fewer, longer reps where the ratio is far from the gate.
  auto add = [&sweep](std::string name, std::string algorithm, int points, int dims,
                      bool quick, std::function<ml::Dataset(std::uint64_t)> data,
                      std::function<ml::ClusteringRun(const ml::Dataset&)> run) {
    sweep.push_back({std::move(name), std::move(algorithm), points, dims, quick,
                     /*wall_reps=*/quick ? 21 : 1, std::move(data), std::move(run)});
  };
  auto control = [](int per_class) {
    return [per_class](std::uint64_t seed) { return ml::synthetic_control(per_class, 60, seed); };
  };
  auto display = [](int total) {
    return [total](std::uint64_t seed) { return ml::display_clustering_samples(total, seed); };
  };

  auto kmeans = [](const ml::Dataset& data) {
    ml::KMeansConfig c;
    c.k = 6;
    c.base.num_splits = 8;
    c.base.num_reduces = 2;
    return ml::kmeans_cluster(data, c);
  };
  add("kmeans-600x60", "kmeans", 600, 60, true, control(100), kmeans);
  add("kmeans-3000x60", "kmeans", 3000, 60, false, control(500), kmeans);
  sweep.back().wall_reps = 15;

  add("fuzzy-600x60", "fuzzy_kmeans", 600, 60, true, control(100), [](const ml::Dataset& data) {
    ml::FuzzyKMeansConfig c;
    c.k = 6;
    c.base.num_splits = 8;
    c.base.num_reduces = 2;
    c.base.max_iterations = 5;
    return ml::fuzzy_kmeans_cluster(data, c);
  });

  auto canopy = [](const ml::Dataset& data) {
    ml::CanopyConfig c;
    c.base.num_splits = 8;
    return ml::canopy_cluster(data, c);
  };
  add("canopy-4000x2", "canopy", 4000, 2, true, display(4000), canopy);
  add("canopy-20000x2", "canopy", 20000, 2, false, display(20000), canopy);
  sweep.back().wall_reps = 15;

  add("dirichlet-300x60", "dirichlet", 300, 60, true, control(50), [](const ml::Dataset& data) {
    ml::DirichletConfig c;
    c.k = 10;
    c.base.num_splits = 8;
    c.base.max_iterations = 5;
    return ml::dirichlet_cluster(data, c);
  });

  add("meanshift-1500x2", "meanshift", 1500, 2, true, display(1500),
      [](const ml::Dataset& data) {
        ml::MeanShiftConfig c;
        c.base.num_splits = 8;
        c.base.max_iterations = 5;
        return ml::meanshift_cluster(data, c);
      });

  // Two short hash bands (keygroups=1) keep the per-point hashing cost —
  // identical in both modes — small relative to the records shuffled, so
  // the sweep measures the data path rather than the hash bank.
  auto minhash = [](const ml::Dataset& data) {
    ml::MinHashConfig c;
    c.num_hash_functions = 2;
    c.keygroups = 1;
    c.base.num_splits = 8;
    c.base.num_reduces = 4;
    return ml::minhash_cluster(data, c);
  };
  add("minhash-100000x2", "minhash", 100000, 2, true, display(100000), minhash);
  // Far from the gate (>2x) and ~70 ms per run — a shallow best-of-N is
  // plenty and keeps the quick fixture fast.
  sweep.back().wall_reps = 5;
  // ~2M shuffled records of short string keys — the record-bound regime the
  // arena/merge rewrite targets.
  add("minhash-1000000x2", "minhash", 1000000, 2, false, display(1000000), minhash);
  sweep.back().wall_reps = 3;
  // The at-scale acceptance configuration (~20M shuffled records): spill
  // sorts and reduce merges here are far past every parallel threshold, so
  // this row exercises the run-split sorts and prefix-range merges end to
  // end while the quick-tier rows guard the small-job fast path.
  add("minhash-10000000x2", "minhash", 10000000, 2, false, display(10000000), minhash);

  return sweep;
}

std::vector<std::uint64_t> parse_seeds(const std::string& arg) {
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    seeds.push_back(std::strtoull(arg.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool wall_gate = true;
  std::vector<std::uint64_t> seeds = {1, 7};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--no-wall-gate") == 0) {
      wall_gate = false;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds = parse_seeds(argv[i] + 8);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--no-wall-gate] [--seeds=1,7,...]\n", argv[0]);
      return 2;
    }
  }
  if (seeds.empty()) seeds = {1};

  bench::BenchResults results("ml_scaling");
  std::vector<std::string> wall_losses;  // configs where the optimized path lost
  std::printf("%-18s %5s %9s %9s %12s %12s %12s %7s %9s %9s %8s\n", "config", "seed", "iters",
              "emit_rec", "shuffle_rec", "sort_cmp", "merge_cmp", "chunks", "opt_ms",
              "ref_ms", "speedup");

  for (const SweepConfig& c : build_sweep()) {
    if (quick && !c.quick) continue;
    for (std::uint64_t seed : seeds) {
      const ml::Dataset data = c.data(seed);

      ml::ClusteringRun opt, ref;
      double opt_ms = 0.0, ref_ms = 0.0;
      time_both(c, data, opt, ref, opt_ms, ref_ms);

      if (!jobs_equal(opt, ref, c.name)) return 1;

      const Counters agg = aggregate(opt);
      const Counters ref_agg = aggregate(ref);
      // The oracle fills only the mode-independent counters; nonzero
      // comparison/arena counts there mean the paths were swapped.
      if (ref_agg.sort_comparisons != 0 || ref_agg.arena_chunks != 0) {
        std::fprintf(stderr, "ml_scaling: reference run reported optimized-path counters (%s)\n",
                     c.name.c_str());
        return 1;
      }
      // Compute-dominated rows have a true speedup barely above 1.0 —
      // inside measurement noise even with batched best-of reps. Re-examine
      // a measured loss with extra best-of rounds at escalating sample
      // lengths before the gate counts it; the minima are monotone, so the
      // rounds can only sharpen both floors, never manufacture a win that
      // isn't there.
      for (int retry = 0; wall_gate && c.wall_reps > 1 && opt_ms > ref_ms && retry < 6; ++retry) {
        best_of_reps(c, data, c.wall_reps, /*floor_ms=*/20.0 * (retry + 1), opt_ms, ref_ms);
      }
      const double speedup = opt_ms > 0.0 ? ref_ms / opt_ms : 0.0;
      if (speedup < 1.0) {
        wall_losses.push_back(c.name + " seed " + std::to_string(seed) + ": " +
                              std::to_string(speedup) + "x");
      }

      std::printf("%-18s %5llu %9d %9lld %12lld %12lld %12lld %7lld %9.1f %9.1f %7.2fx\n",
                  c.name.c_str(), static_cast<unsigned long long>(seed), opt.iterations,
                  static_cast<long long>(agg.emit_records),
                  static_cast<long long>(agg.shuffle_records),
                  static_cast<long long>(agg.sort_comparisons),
                  static_cast<long long>(agg.merge_comparisons),
                  static_cast<long long>(agg.arena_chunks), opt_ms, ref_ms, speedup);
      results.row()
          .col("config", c.name)
          .col("algorithm", c.algorithm)
          .col("seed", static_cast<double>(seed))
          .col("points", c.points)
          .col("dims", c.dims)
          .col("iterations", opt.iterations)
          .col("map_emit_records", static_cast<double>(agg.emit_records))
          .col("map_emit_bytes", static_cast<double>(agg.emit_bytes))
          .col("shuffle_records", static_cast<double>(agg.shuffle_records))
          .col("sort_comparisons", static_cast<double>(agg.sort_comparisons))
          .col("merge_comparisons", static_cast<double>(agg.merge_comparisons))
          .col("arena_chunks", static_cast<double>(agg.arena_chunks))
          .col("opt_ms", opt_ms)
          .col("ref_ms", ref_ms)
          .col("speedup", speedup);
    }
  }

  results.write();
  if (!wall_losses.empty()) {
    for (const std::string& loss : wall_losses) {
      std::fprintf(stderr, "ml_scaling: optimized path slower than reference: %s\n", loss.c_str());
    }
    if (wall_gate) {
      std::fprintf(stderr,
                   "ml_scaling: wall gate failed on %zu configuration(s) — the optimized path "
                   "must win everywhere (pass --no-wall-gate on unoptimized builds)\n",
                   wall_losses.size());
      return 1;
    }
  }
  return 0;
}

#pragma once

#include <string>
#include <vector>

namespace vlint {

/// The determinism & hygiene contract, as named rules (DESIGN.md §9).
///
///  no-wall-clock          — std::chrono clocks, time(), clock(), gettimeofday
///                           et al. are banned outside src/sim/time.hpp: all
///                           time must flow through the simulated clock.
///  no-os-entropy          — rand(), std::random_device, getenv() et al. are
///                           banned outside src/sim/rng.*: all randomness must
///                           flow through the seeded sim::Rng.
///  no-unordered-iteration — range-for / .begin() iteration over
///                           std::unordered_map/set is hash-layout-dependent;
///                           sort a snapshot or suppress with a reason.
///  header-guard           — every header opens with #pragma once (or an
///                           #ifndef guard) before any other directive.
///  using-namespace-header — `using namespace` in a header leaks into every
///                           includer.
///  metric-name            — string literals passed to Registry::counter/
///                           gauge/histogram must follow the
///                           `subsystem.metric_name` convention (lowercase
///                           dot-separated segments); concatenated literals
///                           are checked as prefixes.
///  bad-suppression        — a `// vlint: allow(...)` comment that names an
///                           unknown rule or carries no reason. Never itself
///                           suppressible.
///
/// Suppression syntax, on the finding line or the line directly above:
///   // vlint: allow(rule-name) reason text (mandatory)
extern const std::vector<std::string> kRules;

bool is_known_rule(const std::string& name);

enum class TokKind { Ident, Punct, Number, String, CharLit, Directive };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Suppression {
  std::string rule;
  std::string reason;  // empty = malformed (reported as bad-suppression)
  int line = 0;
};

struct SourceFile {
  std::string path;  ///< path for diagnostics (as given by the caller)
  std::string rel;   ///< forward-slash path relative to the lint root
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;  ///< suppression reason when suppressed
};

/// Lex one translation unit. Comments and char-literal bodies are discarded;
/// string-literal bodies are kept (as String tokens, never Ident, so banned
/// names inside them never fire) for rules that inspect literals, like
/// metric-name. `vlint:` directives hidden in comments come back as
/// suppressions.
SourceFile lex(std::string path, std::string rel, const std::string& text);

struct Result {
  std::vector<Finding> findings;  ///< every finding, suppressed ones included
  int unsuppressed = 0;
};

/// Run every rule (or only `only_rules`) over the file set. The
/// no-unordered-iteration rule resolves container names across the whole
/// set, so headers and their .cpp files should be linted together.
Result run(const std::vector<SourceFile>& files,
           const std::vector<std::string>& only_rules = {});

}  // namespace vlint

#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace vlint {

/// The determinism & hygiene contract, as named rules (DESIGN.md §9).
///
/// Per-file (token) rules:
///  no-wall-clock            — std::chrono clocks, time(), clock(), gettimeofday
///                             et al. are banned outside src/sim/time.hpp: all
///                             time must flow through the simulated clock.
///  no-os-entropy            — rand(), std::random_device, getenv() et al. are
///                             banned outside src/sim/rng.*: all randomness must
///                             flow through the seeded sim::Rng.
///  no-unordered-iteration   — range-for / .begin() iteration over
///                             std::unordered_map/set is hash-layout-dependent;
///                             sort a snapshot or suppress with a reason.
///  header-guard             — every header opens with #pragma once (or an
///                             #ifndef guard) before any other directive.
///  using-namespace-header   — `using namespace` in a header leaks into every
///                             includer.
///  metric-name              — string literals passed to Registry::counter/
///                             gauge/histogram must follow the
///                             `subsystem.metric_name` convention.
///  no-exact-float-compare   — `==`/`!=` with a floating-point operand: exact
///                             comparison encodes accidental bit-identity.
///                             Audited files (determinism oracles) use a
///                             file-scope `allow-file` suppression.
///  bad-suppression          — an allow() suppression directive that names an
///                             unknown rule, carries no reason, or whose reason
///                             does not cite the auditing PR ("PR <n>"). Never
///                             itself suppressible.
///
/// Cross-TU (graph) rules, built on the include/symbol graph and the
/// worker-reachability index (see analysis.hpp):
///  thread-shared-mutation        — code reachable from a lambda handed to
///                                  ThreadPool::submit / parallel_for writes a
///                                  non-atomic, non-lock-guarded captured
///                                  reference, member, or namespace-scope
///                                  variable. Per-index slot writes
///                                  (out[i] = ...) are the sanctioned pattern.
///  no-unordered-float-accumulation — a floating accumulator (`+=`, `x = x + ...`)
///                                  inside a loop over an unordered container:
///                                  the reduction order follows the hash
///                                  layout, so the sum is not reproducible.
///  layer-dag                     — enforce the src/ module layering
///                                  sim -> {net,virt} -> {hdfs,mapreduce} ->
///                                  {workloads,ml,tuner}; obs and sim are the
///                                  base, core/viz the top. No upward includes.
///  include-self-sufficiency      — every repo symbol a TU uses must be
///                                  declared somewhere in that TU's transitive
///                                  include closure, so each file (headers
///                                  especially) compiles on its own includes.
///
/// Suppressions are comment directives: the marker word "vlint" plus a
/// colon, then `allow(rule-name) audited PR <n>: reason` on the finding
/// line or the line directly above — or `allow-file(rule-name) ...` once
/// anywhere to cover a whole audited file (e.g. exact-comparison oracles).
/// Exact syntax with examples: DESIGN.md §9.
extern const std::vector<std::string> kRules;

bool is_known_rule(const std::string& name);

enum class TokKind { Ident, Punct, Number, String, CharLit, Directive };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
  int col = 0;  ///< 1-based byte column of the token start
};

struct Suppression {
  std::string rule;
  std::string reason;  // empty = malformed (reported as bad-suppression)
  int line = 0;
  bool file_scope = false;  // allow-file(...): suppresses the rule file-wide
};

struct SourceFile {
  std::string path;  ///< path for diagnostics (as given by the caller)
  std::string rel;   ///< forward-slash path relative to the lint root
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

struct Finding {
  std::string path;
  int line = 0;
  int col = 1;
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string reason;       ///< suppression reason when suppressed
  std::string fix_include;  ///< include spec apply_fixes() can insert (or "")
};

/// Lex one translation unit. Comments and char-literal bodies are discarded;
/// string-literal bodies are kept (as String tokens, never Ident, so banned
/// names inside them never fire) for rules that inspect literals, like
/// metric-name. Punctuators are maximal-munch (`==`, `+=`, `::`, ...), so
/// rules can tell assignment from comparison. Suppression directives found
/// in comments come back in `suppressions`.
SourceFile lex(std::string path, std::string rel, const std::string& text);

struct Result {
  std::vector<Finding> findings;  ///< every finding, suppressed ones included
  int unsuppressed = 0;
};

/// Run every rule (or only `only_rules`) over the file set. Cross-TU rules
/// (thread-shared-mutation, layer-dag, include-self-sufficiency, and the
/// name-resolution of no-unordered-iteration) see the whole set at once, so
/// headers and their .cpp files must be linted together.
Result run(const std::vector<SourceFile>& files,
           const std::vector<std::string>& only_rules = {});

/// Plain JSON findings array — for scripting (`jq`). `rel_of` maps a
/// finding's path to the root-relative uri to report (missing = use path).
void write_json(std::ostream& os, const Result& res,
                const std::map<std::string, std::string>& rel_of);

/// Minimal valid SARIF 2.1.0: one run, the rule table in tool.driver.rules,
/// one result per finding with a physical location. Suppressed findings are
/// carried with suppressions[] so code scanning shows them as dismissed
/// rather than new.
void write_sarif(std::ostream& os, const Result& res,
                 const std::map<std::string, std::string>& rel_of);

/// Mechanical fixer for --fix: returns the repaired text for one file, or an
/// empty string when no finding in `findings` (matched by path) is fixable.
/// Fixes: header-guard (insert `#pragma once` above the first code line) and
/// include-self-sufficiency (insert the missing `#include "..."` into the
/// quoted-include block). Unsuppressed findings only.
std::string apply_fixes(const SourceFile& file, const std::string& text,
                        const std::vector<Finding>& findings);

}  // namespace vlint

#include "vhadoop_lint/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <deque>

namespace vlint {

std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j + 1;
    if (t[j].text == ">>") {
      depth -= 2;  // nested close: map<K, vector<V>>
      if (depth <= 0) return j + 1;
    }
    if (t[j].text == ";") break;  // never crosses a statement
  }
  return i;
}

namespace {

std::size_t match_delim(const std::vector<Token>& t, std::size_t open, const char* o,
                        const char* c) {
  int depth = 0;
  for (std::size_t j = open; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == o) ++depth;
    if (t[j].text == c && --depth == 0) return j;
  }
  return t.size();
}

}  // namespace

std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  return match_delim(t, open, "{", "}");
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  return match_delim(t, open, "(", ")");
}

bool is_float_literal(const Token& tok) {
  if (tok.kind != TokKind::Number) return false;
  const std::string& s = tok.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) return false;
  for (char c : s) {
    if (c == '.' || c == 'e' || c == 'E') return true;
  }
  return !s.empty() && (s.back() == 'f' || s.back() == 'F');
}

const std::set<std::string>& expr_keywords() {
  static const std::set<std::string> kExpr = {
      "return", "co_return", "co_yield", "co_await", "throw", "case", "else",
      "do",     "goto",      "new",      "delete",   "sizeof", "and",  "or",
      "not",    "xor",
  };
  return kExpr;
}

bool is_cpp_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "and",        "asm",          "auto",      "bool",
      "break",     "case",     "catch",      "char",         "class",     "co_await",
      "co_return", "co_yield", "const",      "consteval",    "constexpr", "constinit",
      "continue",  "decltype", "default",    "delete",       "do",        "double",
      "else",      "enum",     "explicit",   "extern",       "false",     "final",
      "float",     "for",      "friend",     "goto",         "if",        "inline",
      "int",       "long",     "mutable",    "namespace",    "new",       "noexcept",
      "not",       "nullptr",  "operator",   "or",           "override",  "private",
      "protected", "public",   "register",   "requires",     "return",    "short",
      "signed",    "sizeof",   "static",     "static_assert", "struct",   "switch",
      "template",  "this",     "thread_local", "throw",      "true",      "try",
      "typedef",   "typeid",   "typename",   "union",        "unsigned",  "using",
      "virtual",   "void",     "volatile",   "wchar_t",      "while",     "xor",
  };
  return kKeywords.count(s) != 0;
}

namespace {

bool is_ident(const Token& t) { return t.kind == TokKind::Ident; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Type-introducing / qualifier keywords that precede a declared name.
bool is_decl_qualifier(const std::string& s) {
  static const std::set<std::string> kQuals = {
      "const",  "constexpr", "constinit", "static", "inline",   "extern",
      "mutable", "volatile",  "unsigned",  "signed", "long",     "short",
      "thread_local", "struct", "class",   "enum",   "typename", "register",
  };
  return kQuals.count(s) != 0;
}

/// The macro name of a `#define NAME ...` directive (or "").
std::string defined_macro(const std::string& directive) {
  std::size_t p = directive.find('#');
  if (p == std::string::npos) return {};
  ++p;
  while (p < directive.size() && (directive[p] == ' ' || directive[p] == '\t')) ++p;
  if (directive.compare(p, 6, "define") != 0) return {};
  p += 6;
  while (p < directive.size() && (directive[p] == ' ' || directive[p] == '\t')) ++p;
  std::size_t e = p;
  while (e < directive.size() &&
         (std::isalnum(static_cast<unsigned char>(directive[e])) || directive[e] == '_')) {
    ++e;
  }
  return directive.substr(p, e - p);
}

// --- include graph ---------------------------------------------------------

/// Extract the quoted path from an `#include "..."` directive token.
std::string quoted_include(const std::string& directive) {
  if (directive.find("include") == std::string::npos) return {};
  const std::size_t open = directive.find('"');
  if (open == std::string::npos) return {};
  const std::size_t close = directive.find('"', open + 1);
  if (close == std::string::npos) return {};
  return directive.substr(open + 1, close - open - 1);
}

void build_include_graph(const std::vector<SourceFile>& files, Analysis& an) {
  // Suffix index: a quoted include resolves to any repo file whose rel path
  // is exactly the spec, `<dir-of-includer>/<spec>`, or ends with `/<spec>`.
  const int n = static_cast<int>(files.size());
  an.includes.assign(static_cast<std::size_t>(n), {});
  an.closure.assign(static_cast<std::size_t>(n), {});

  for (int fi = 0; fi < n; ++fi) {
    const SourceFile& f = files[static_cast<std::size_t>(fi)];
    std::string dir;
    if (const std::size_t slash = f.rel.rfind('/'); slash != std::string::npos) {
      dir = f.rel.substr(0, slash + 1);
    }
    for (const Token& tok : f.tokens) {
      if (tok.kind != TokKind::Directive) continue;
      const std::string spec = quoted_include(tok.text);
      if (spec.empty()) continue;
      IncludeEdge edge;
      edge.spec = spec;
      edge.line = tok.line;
      edge.col = tok.col;
      const std::string suffix = "/" + spec;
      for (int ti = 0; ti < n; ++ti) {
        const std::string& rel = files[static_cast<std::size_t>(ti)].rel;
        if (rel == spec || rel == dir + spec ||
            (rel.size() > suffix.size() &&
             rel.compare(rel.size() - suffix.size(), suffix.size(), suffix) == 0)) {
          edge.targets.push_back(ti);
        }
      }
      an.includes[static_cast<std::size_t>(fi)].push_back(std::move(edge));
    }
  }

  for (int fi = 0; fi < n; ++fi) {
    std::set<int>& cl = an.closure[static_cast<std::size_t>(fi)];
    std::deque<int> work{fi};
    cl.insert(fi);
    while (!work.empty()) {
      const int cur = work.front();
      work.pop_front();
      for (const IncludeEdge& e : an.includes[static_cast<std::size_t>(cur)]) {
        for (int ti : e.targets) {
          if (cl.insert(ti).second) work.push_back(ti);
        }
      }
    }
  }
}

// --- declaration-scope walk: symbols, globals, functions -------------------

/// The declared name of a statement's first declarator: the identifier that
/// directly precedes `=`, `;`, `{`, `[` or a top-level `(` — after skipping
/// template argument lists. Returns npos-style empty string when the
/// statement declares nothing nameable.
std::string stmt_decl_name(const std::vector<Token>& t, std::size_t begin, std::size_t end) {
  std::string last_ident;
  for (std::size_t j = begin; j < end;) {
    const Token& tok = t[j];
    if (tok.kind == TokKind::Directive || tok.kind == TokKind::String ||
        tok.kind == TokKind::CharLit || tok.kind == TokKind::Number) {
      ++j;
      continue;
    }
    if (is_ident(tok)) {
      if (tok.text == "using" && j + 2 < end && is_ident(t[j + 1]) &&
          is_punct(t[j + 2], "=")) {
        return t[j + 1].text;  // using Name = ...
      }
      if (tok.text == "operator") return {};
      if (!is_cpp_keyword(tok.text)) last_ident = tok.text;
      ++j;
      // Skip a template argument list hanging off this identifier.
      if (j < end && is_punct(t[j], "<")) {
        const std::size_t after = skip_angles(t, j);
        if (after != j) j = after;
      }
      continue;
    }
    if (is_punct(tok, "=") || is_punct(tok, ";") || is_punct(tok, "{") ||
        is_punct(tok, "(") || is_punct(tok, "[")) {
      return last_ident;
    }
    if (is_punct(tok, "::")) {
      // Qualified name: the previous identifier was a scope, not the name.
      ++j;
      continue;
    }
    if (is_punct(tok, "&") || is_punct(tok, "*") || is_punct(tok, "&&") ||
        is_punct(tok, ",") || is_punct(tok, ":")) {
      ++j;
      continue;
    }
    ++j;
  }
  return {};
}

struct ScopeFrame {
  enum Kind { Ns, AnonNs, Class } kind = Ns;
};

/// One pass over a file at declaration scope. Function bodies are skipped
/// (their extents are recorded as FunctionDefs); class bodies are entered
/// (member functions and atomic members matter); namespace bodies are
/// entered. Exported symbols require: namespace scope, not anonymous, not
/// `static`.
void scan_decl_scope(const SourceFile& f, int file_idx, Analysis& an) {
  const auto& t = f.tokens;
  std::vector<ScopeFrame> stack{{ScopeFrame::Ns}};
  int anon_depth = 0;

  std::size_t stmt_begin = 0;
  std::size_t i = 0;
  const std::size_t n = t.size();

  auto exported_here = [&]() {
    if (anon_depth > 0) return false;
    for (const ScopeFrame& s : stack) {
      if (s.kind == ScopeFrame::Class) return false;
    }
    return true;
  };
  auto stmt_has = [&](std::size_t end, const char* word) {
    for (std::size_t j = stmt_begin; j < end; ++j) {
      if (is_ident(t[j]) && t[j].text == word) return true;
    }
    return false;
  };
  auto add_provider = [&](const std::string& name) {
    if (!name.empty() && exported_here() && !stmt_has(i, "static")) {
      an.providers[name].insert(file_idx);
    }
  };
  /// Variable declared by the statement ending at `end`: classify into
  /// atomic / mutable-global buckets.
  auto classify_variable = [&](std::size_t end, const std::string& name) {
    if (name.empty()) return;
    if (stmt_has(end, "atomic")) {
      an.atomic_names.insert(name);
      return;
    }
    const bool in_class =
        !stack.empty() && stack.back().kind == ScopeFrame::Class;
    if (in_class) return;  // members: object identity unknowable by name
    if (stmt_has(end, "const") || stmt_has(end, "constexpr") ||
        stmt_has(end, "thread_local") || stmt_has(end, "using")) {
      return;
    }
    an.mutable_globals.insert(name);
  };

  while (i < n) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::Directive) {
      // Macros are file-scope symbols regardless of the brace nesting the
      // #define happens to sit in.
      const std::string macro = defined_macro(tok.text);
      if (!macro.empty()) an.providers[macro].insert(file_idx);
      ++i;
      stmt_begin = i;
      continue;
    }
    if (is_punct(tok, "}")) {
      if (stack.size() > 1) {
        if (stack.back().kind == ScopeFrame::AnonNs) --anon_depth;
        stack.pop_back();
      }
      ++i;
      stmt_begin = i;
      continue;
    }
    if (is_punct(tok, ";")) {
      // Brace-less statement: forward decl, alias, function decl, variable.
      const std::string name = stmt_decl_name(t, stmt_begin, i);
      if (!name.empty()) {
        add_provider(name);
        // `name(` => function declaration, not a variable.
        bool is_fn_decl = false;
        for (std::size_t j = stmt_begin; j + 1 < i; ++j) {
          if (is_ident(t[j]) && t[j].text == name && is_punct(t[j + 1], "(")) {
            is_fn_decl = true;
            break;
          }
        }
        if (!is_fn_decl) classify_variable(i, name);
      }
      ++i;
      stmt_begin = i;
      continue;
    }
    if (!is_punct(tok, "{")) {
      ++i;
      continue;
    }

    // A `{` at declaration scope: namespace, class, function body, or
    // brace initializer.
    if (stmt_has(i, "namespace")) {
      std::string ns_name;
      for (std::size_t j = stmt_begin; j < i; ++j) {
        if (is_ident(t[j]) && !is_cpp_keyword(t[j].text)) ns_name = t[j].text;
      }
      if (ns_name.empty()) {
        stack.push_back({ScopeFrame::AnonNs});
        ++anon_depth;
      } else {
        an.namespaces.insert(ns_name);
        stack.push_back({ScopeFrame::Ns});
      }
      ++i;
      stmt_begin = i;
      continue;
    }

    // `= { ... }` or `Name{ ... }` initializer at declaration scope: record
    // the variable, skip the braces, keep scanning the same statement.
    bool has_eq = false;
    bool has_paren_group = false;
    for (std::size_t j = stmt_begin; j < i; ++j) {
      if (is_punct(t[j], "=")) has_eq = true;
      if (is_punct(t[j], "(")) {
        has_paren_group = true;
        j = match_paren(t, j);
        if (j >= i) break;
      }
    }
    const bool class_head = !has_paren_group && !has_eq &&
                            (stmt_has(i, "struct") || stmt_has(i, "class") ||
                             stmt_has(i, "union") || stmt_has(i, "enum"));
    if (class_head) {
      // `struct Name ... {` — the name is the first identifier after the
      // class key (skipping `class` of `enum class` and `final`).
      std::string cls;
      for (std::size_t j = stmt_begin; j < i; ++j) {
        if (!is_ident(t[j])) continue;
        const std::string& s = t[j].text;
        if (s == "struct" || s == "class" || s == "union" || s == "enum" ||
            s == "template" || s == "typename" || s == "final" || is_decl_qualifier(s)) {
          continue;
        }
        if (is_cpp_keyword(s)) continue;
        cls = s;
        break;
      }
      add_provider(cls);
      stack.push_back({ScopeFrame::Class});
      ++i;
      stmt_begin = i;
      continue;
    }

    if (has_eq || (!has_paren_group && i > stmt_begin && is_ident(t[i - 1]))) {
      // Brace initializer (`= {...}`, `= [](){...}`, `Name{...}`): the
      // statement continues past the matching brace to its `;`.
      const std::string name = stmt_decl_name(t, stmt_begin, i);
      add_provider(name);
      classify_variable(i, name);
      std::size_t close = match_brace(t, i);
      // `= [](...) { ... };` — the lambda body may be followed by more
      // initializer tokens; skip to the statement's `;` at depth 0.
      std::size_t j = (close == n) ? n : close + 1;
      int pdepth = 0;
      while (j < n) {
        if (is_punct(t[j], "(") || is_punct(t[j], "{") || is_punct(t[j], "[")) ++pdepth;
        if (is_punct(t[j], ")") || is_punct(t[j], "}") || is_punct(t[j], "]")) --pdepth;
        if (pdepth == 0 && is_punct(t[j], ";")) break;
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      stmt_begin = i;
      continue;
    }

    if (has_paren_group) {
      // Function definition: `[quals] name ( params ) [quals / ctor-init] {`.
      // The name is the identifier directly before the first top-level `(`.
      std::string fn_name;
      int fn_line = t[i].line;
      for (std::size_t j = stmt_begin; j < i; ++j) {
        if (is_punct(t[j], "(")) {
          if (j > stmt_begin && is_ident(t[j - 1]) && !is_cpp_keyword(t[j - 1].text)) {
            fn_name = t[j - 1].text;
            fn_line = t[j - 1].line;
          }
          break;
        }
      }
      const std::size_t close = match_brace(t, i);
      if (!fn_name.empty()) {
        // Exported only when unqualified, at plain namespace scope, and not
        // static — but the FunctionDef itself is always recorded:
        // reachability is name-based and members matter.
        bool qualified = false;
        for (std::size_t j = stmt_begin; j + 1 < i; ++j) {
          if (is_ident(t[j]) && t[j].text == fn_name && j >= 1 &&
              is_punct(t[j - 1], "::")) {
            qualified = true;
          }
        }
        if (!qualified) add_provider(fn_name);
        FunctionDef def;
        def.name = fn_name;
        def.file = file_idx;
        def.line = fn_line;
        def.body_begin = i + 1;
        def.body_end = close;
        an.functions_by_name[def.name].push_back(an.functions.size());
        an.functions.push_back(std::move(def));
      }
      i = (close == n) ? n : close + 1;
      stmt_begin = i;
      continue;
    }

    // Unclassifiable brace (extern "C" { ... } etc.): treat as transparent.
    stack.push_back({ScopeFrame::Ns});
    ++i;
    stmt_begin = i;
  }
}

// --- name sets: unordered containers, floats -------------------------------

const std::set<std::string> kUnorderedTemplates = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};

bool prev_is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i > 0 && t[i - 1].kind == TokKind::Punct && t[i - 1].text == text;
}

/// Collect names bound to unordered containers: type aliases
/// (`using M = std::unordered_map<...>`) and declared variables/members
/// (`std::unordered_map<K,V> name`, `const M& name`).
void collect_unordered_names(const std::vector<SourceFile>& files, Analysis& an) {
  std::set<std::string> aliases;
  for (const auto& f : files) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
          t[i + 1].kind == TokKind::Ident && t[i + 2].text == "=") {
        for (std::size_t j = i + 3; j < t.size(); ++j) {
          if (is_punct(t[j], ";")) break;
          if (t[j].kind == TokKind::Ident && kUnorderedTemplates.count(t[j].text)) {
            aliases.insert(t[i + 1].text);
            break;
          }
        }
      }
    }
  }
  for (const auto& f : files) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::Ident) continue;
      std::size_t after = 0;
      if (kUnorderedTemplates.count(t[i].text)) {
        after = skip_angles(t, i + 1);
        if (after == i + 1) continue;  // not a template instantiation
      } else if (aliases.count(t[i].text) && !prev_is(t, i, ".") && !prev_is(t, i, "->")) {
        after = i + 1;
      } else {
        continue;
      }
      // `Type [const] [&|*] name` — the next identifier is the declared name.
      std::size_t j = after;
      while (j < t.size() &&
             ((t[j].kind == TokKind::Punct &&
               (t[j].text == "&" || t[j].text == "*" || t[j].text == "&&")) ||
              (t[j].kind == TokKind::Ident && t[j].text == "const"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::Ident && !is_cpp_keyword(t[j].text)) {
        an.unordered_names.insert(t[j].text);
      }
    }
  }
  an.unordered_names.insert(aliases.begin(), aliases.end());
}

/// Type keywords that make a declaration integral (never a float compare).
const std::set<std::string>& integral_type_words() {
  static const std::set<std::string> kWords = {
      "int",      "unsigned", "signed",   "long",    "short",    "char",
      "bool",     "size_t",   "ptrdiff_t", "uint8_t", "uint16_t", "uint32_t",
      "uint64_t", "int8_t",   "int16_t",  "int32_t", "int64_t",  "uintptr_t",
      "intptr_t", "wchar_t",  "char8_t",  "char16_t", "char32_t"};
  return kWords;
}

/// Every identifier declared `double x` / `float y, z` (float_names) and every
/// one declared with an integral type (nonfloat_names), per file. The scan
/// keys off the type keyword and walks forward to the declarator, skipping
/// cv/ref/ptr noise and the closing `>` of `std::vector<double> xs`-style
/// element types; integral scans additionally skip multi-word type spellings
/// (`unsigned long long n`). At use sites, a file's own integral declaration
/// overrides a same-named float declaration in an included header.
void collect_float_names(const std::vector<SourceFile>& files, Analysis& an) {
  an.float_names.assign(files.size(), {});
  an.nonfloat_names.assign(files.size(), {});
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& t = files[fi].tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i])) continue;
      const bool is_float_kw = t[i].text == "double" || t[i].text == "float";
      const bool is_int_kw = integral_type_words().count(t[i].text) != 0;
      if (!is_float_kw && !is_int_kw) continue;
      std::set<std::string>& out = is_float_kw ? an.float_names[fi] : an.nonfloat_names[fi];
      std::size_t j = i + 1;
      while (j < t.size() &&
             (is_punct(t[j], "&") || is_punct(t[j], "*") || is_punct(t[j], ">") ||
              is_punct(t[j], ">>") || (is_ident(t[j]) && t[j].text == "const") ||
              (is_int_kw && is_ident(t[j]) && integral_type_words().count(t[j].text)))) {
        ++j;
      }
      while (j + 1 < t.size() && is_ident(t[j]) && !is_cpp_keyword(t[j].text) &&
             (is_punct(t[j + 1], "=") || is_punct(t[j + 1], ";") ||
              is_punct(t[j + 1], ",") || is_punct(t[j + 1], ")") ||
              is_punct(t[j + 1], "{") || is_punct(t[j + 1], ":"))) {
        out.insert(t[j].text);
        if (!is_punct(t[j + 1], ",")) break;
        j += 2;  // `double a, b` — next declarator
        while (j < t.size() && (is_punct(t[j], "&") || is_punct(t[j], "*"))) ++j;
      }
    }
  }
}

/// Names declared at ANY scope in each file, by declarator shape:
/// `Type name <terminator>`, `namespace X`, `struct/class/enum X`,
/// `using X = ...`, `#define X`. Deliberately over-collects (parameter
/// names, locals): declared-ness only ever *suppresses*
/// include-self-sufficiency findings, so the bias keeps false positives out.
void collect_declared_names(const std::vector<SourceFile>& files, Analysis& an) {
  an.declared.assign(files.size(), {});
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& t = files[fi].tokens;
    std::set<std::string>& out = an.declared[fi];
    auto terminator = [&](std::size_t k) {
      if (k >= t.size()) return false;
      return is_punct(t[k], "=") || is_punct(t[k], ";") || is_punct(t[k], "{") ||
             is_punct(t[k], "(") || is_punct(t[k], ":") || is_punct(t[k], ",") ||
             is_punct(t[k], ")") || is_punct(t[k], "[");
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokKind::Directive) {
        const std::string macro = defined_macro(t[i].text);
        if (!macro.empty()) out.insert(macro);
        continue;
      }
      if (!is_ident(t[i])) continue;
      const std::string& s = t[i].text;
      if (s == "namespace" && i + 1 < t.size() && is_ident(t[i + 1])) {
        out.insert(t[i + 1].text);
        continue;
      }
      if ((s == "struct" || s == "class" || s == "union" || s == "enum") &&
          i + 1 < t.size()) {
        std::size_t k = i + 1;
        while (k < t.size() && is_ident(t[k]) &&
               (t[k].text == "class" || t[k].text == "struct")) {
          ++k;  // enum class X
        }
        if (k < t.size() && is_ident(t[k]) && !is_cpp_keyword(t[k].text)) {
          out.insert(t[k].text);
        }
        continue;
      }
      if (s == "using" && i + 2 < t.size() && is_ident(t[i + 1]) &&
          is_punct(t[i + 2], "=")) {
        out.insert(t[i + 1].text);
        continue;
      }
      // `<type-ish> [<T...>] [&|*|const] name <terminator>`
      if (is_cpp_keyword(s) && !is_decl_qualifier(s) && s != "auto" && s != "void" &&
          s != "int" && s != "double" && s != "float" && s != "char" && s != "bool") {
        continue;
      }
      std::size_t k = i + 1;
      if (k < t.size() && is_punct(t[k], "<")) {
        const std::size_t after = skip_angles(t, k);
        if (after != k) k = after;
      }
      while (k < t.size() && (is_punct(t[k], "&") || is_punct(t[k], "&&") ||
                              is_punct(t[k], "*") ||
                              (is_ident(t[k]) && t[k].text == "const"))) {
        ++k;
      }
      if (k < t.size() && is_ident(t[k]) && !is_cpp_keyword(t[k].text) &&
          terminator(k + 1)) {
        out.insert(t[k].text);
      }
    }
  }
}

// --- worker lambdas and reachability ---------------------------------------

const std::set<std::string> kWorkerEntryPoints = {"parallel_for", "submit", "spawn"};

/// `parallel_for(...)` always hands its lambda to worker threads. `submit` /
/// `spawn` are worker entry points only when called on something pool-ish
/// (`pool.submit(...)`, `workers->spawn(...)`, `ThreadPool::submit`): the
/// simulation's Engine/Runner `submit()` callbacks run on the sim thread and
/// must not trip the race rules.
bool is_worker_entry(const std::vector<Token>& t, std::size_t i) {
  if (t[i].text == "parallel_for") return true;
  if (i < 2) return false;
  if (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->") && !is_punct(t[i - 1], "::")) {
    return false;
  }
  if (!is_ident(t[i - 2])) return false;
  std::string recv = t[i - 2].text;
  std::transform(recv.begin(), recv.end(), recv.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return recv.find("pool") != std::string::npos ||
         recv.find("worker") != std::string::npos;
}

/// Parse one lambda starting at t[i] == "[" inside a worker-entry argument
/// list; returns the index one past the lambda body (or i+1 when it is not
/// a lambda after all).
std::size_t parse_lambda(const std::vector<Token>& t, std::size_t i, int file_idx,
                         const std::string& entry, std::vector<WorkerLambda>& out) {
  WorkerLambda lam;
  lam.file = file_idx;
  lam.entry = entry;
  lam.line = t[i].line;
  std::size_t j = i + 1;
  // Capture list.
  while (j < t.size() && !is_punct(t[j], "]")) {
    if (is_punct(t[j], "&")) {
      if (j + 1 < t.size() && is_ident(t[j + 1])) {
        lam.ref_captures.insert(t[j + 1].text);
        j += 2;
      } else {
        lam.ref_default = true;
        lam.captures_this = true;
        ++j;
      }
      continue;
    }
    if (is_punct(t[j], "=")) {
      lam.captures_this = true;  // [=] captures this in member contexts
      ++j;
      continue;
    }
    if (is_ident(t[j])) {
      if (t[j].text == "this") {
        lam.captures_this = true;
      } else if (j + 1 < t.size() && is_punct(t[j + 1], "=")) {
        lam.val_captures.insert(t[j].text);  // init capture [x = expr]
        while (j < t.size() && !is_punct(t[j], ",") && !is_punct(t[j], "]")) ++j;
        continue;
      } else {
        lam.val_captures.insert(t[j].text);
      }
    }
    ++j;
  }
  if (j >= t.size()) return i + 1;
  ++j;  // past ']'
  // Parameter list.
  if (j < t.size() && is_punct(t[j], "(")) {
    const std::size_t close = match_paren(t, j);
    for (std::size_t k = j + 1; k < close && k < t.size(); ++k) {
      if (is_ident(t[k]) && !is_cpp_keyword(t[k].text) && k + 1 <= close &&
          (is_punct(t[k + 1], ",") || is_punct(t[k + 1], ")") ||
           is_punct(t[k + 1], "="))) {
        lam.params.insert(t[k].text);
      }
    }
    j = (close == t.size()) ? close : close + 1;
  }
  // Skip mutable / noexcept / -> ret up to the body.
  while (j < t.size() && !is_punct(t[j], "{")) {
    if (is_punct(t[j], ";") || is_punct(t[j], ")")) return i + 1;  // not a lambda body
    ++j;
  }
  if (j >= t.size()) return i + 1;
  const std::size_t close = match_brace(t, j);
  lam.body_begin = j + 1;
  lam.body_end = close;
  out.push_back(std::move(lam));
  return (close == t.size()) ? close : close + 1;
}

void collect_worker_lambdas(const std::vector<SourceFile>& files, Analysis& an) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& t = files[fi].tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t[i]) || !kWorkerEntryPoints.count(t[i].text)) continue;
      if (!is_punct(t[i + 1], "(")) continue;
      if (!is_worker_entry(t, i)) continue;
      const std::size_t close = match_paren(t, i + 1);
      for (std::size_t j = i + 2; j < close && j < t.size();) {
        if (is_punct(t[j], "[") &&
            (is_punct(t[j - 1], "(") || is_punct(t[j - 1], ","))) {
          j = parse_lambda(t, j, static_cast<int>(fi), t[i].text, an.worker_lambdas);
          continue;
        }
        ++j;
      }
    }
  }
}

/// Call names inside a token range: `name(` where `name` is not a keyword.
/// Member calls count — reachability is name-based across the set.
void calls_in_range(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    std::set<std::string>& out) {
  for (std::size_t j = b; j + 1 < e; ++j) {
    if (is_ident(t[j]) && !is_cpp_keyword(t[j].text) && is_punct(t[j + 1], "(")) {
      out.insert(t[j].text);
    }
  }
}

void build_worker_reachability(const std::vector<SourceFile>& files, Analysis& an) {
  std::deque<std::pair<std::size_t, std::string>> work;  // (function, witness)
  for (const WorkerLambda& lam : an.worker_lambdas) {
    const std::string witness =
        lam.entry + " at " + files[static_cast<std::size_t>(lam.file)].rel + ":" +
        std::to_string(lam.line);
    std::set<std::string> called;
    calls_in_range(files[static_cast<std::size_t>(lam.file)].tokens, lam.body_begin,
                   lam.body_end, called);
    for (const std::string& name : called) {
      auto it = an.functions_by_name.find(name);
      if (it == an.functions_by_name.end()) continue;
      for (std::size_t idx : it->second) {
        if (an.worker_reachable.emplace(idx, witness).second) work.emplace_back(idx, witness);
      }
    }
  }
  while (!work.empty()) {
    auto [idx, witness] = work.front();
    work.pop_front();
    const FunctionDef& def = an.functions[idx];
    std::set<std::string> called;
    calls_in_range(files[static_cast<std::size_t>(def.file)].tokens, def.body_begin,
                   def.body_end, called);
    for (const std::string& name : called) {
      auto it = an.functions_by_name.find(name);
      if (it == an.functions_by_name.end()) continue;
      for (std::size_t next : it->second) {
        if (an.worker_reachable.emplace(next, witness).second) {
          work.emplace_back(next, witness);
        }
      }
    }
  }
}

}  // namespace

Analysis analyze(const std::vector<SourceFile>& files) {
  Analysis an;
  build_include_graph(files, an);
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    scan_decl_scope(files[fi], static_cast<int>(fi), an);
  }
  collect_unordered_names(files, an);
  collect_float_names(files, an);
  collect_declared_names(files, an);
  collect_worker_lambdas(files, an);
  build_worker_reachability(files, an);
  return an;
}

}  // namespace vlint

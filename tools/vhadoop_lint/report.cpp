// Machine-readable finding reports: plain JSON (for jq-style scripting) and
// SARIF 2.1.0 (for CI code-scanning upload). Kept in the library so the
// self-tests can check the shapes without spawning the CLI.

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "vhadoop_lint/lint.hpp"

namespace vlint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::string& uri_for(const Finding& f,
                           const std::map<std::string, std::string>& rel_of) {
  const auto it = rel_of.find(f.path);
  return it == rel_of.end() ? f.path : it->second;
}

}  // namespace

void write_json(std::ostream& os, const Result& res,
                const std::map<std::string, std::string>& rel_of) {
  os << "[\n";
  bool first = true;
  for (const auto& f : res.findings) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"file\": \"" << json_escape(uri_for(f, rel_of)) << "\", \"line\": " << f.line
       << ", \"col\": " << f.col << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.suppressed ? f.reason : f.message) << "\"}";
  }
  os << "\n]\n";
}

void write_sarif(std::ostream& os, const Result& res,
                 const std::map<std::string, std::string>& rel_of) {
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"vhadoop_lint\",\n"
     << "          \"informationUri\": \"https://example.invalid/vhadoop\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < kRules.size(); ++i) {
    os << "            {\"id\": \"" << kRules[i] << "\"}"
       << (i + 1 < kRules.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  bool first = true;
  for (const auto& f : res.findings) {
    if (!first) os << ",\n";
    first = false;
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(f.message) << "\"},\n";
    if (f.suppressed) {
      os << "          \"suppressions\": [{\"kind\": \"inSource\", "
         << "\"justification\": \"" << json_escape(f.reason) << "\"}],\n";
    }
    os << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \""
       << json_escape(uri_for(f, rel_of)) << "\"},\n"
       << "                \"region\": {\"startLine\": " << std::max(f.line, 1)
       << ", \"startColumn\": " << std::max(f.col, 1) << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }";
  }
  os << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
}

}  // namespace vlint

#pragma once

// Cross-TU analysis passes for vhadoop_lint (DESIGN.md §9).
//
// Two indexes are built over the whole linted file set before any rule runs:
//
//  1. The include/symbol graph: every quoted #include resolved against the
//     repo file set (suffix matching, so `sim/engine.hpp`, `common.hpp` and
//     `testutil/mini_json.hpp` all land), its transitive closure per TU, and
//     a symbol table of which files declare each namespace-scope type,
//     alias, function, or constant.
//
//  2. The call-reachability index: lambdas handed to worker-thread entry
//     points (`parallel_for`, `ThreadPool::submit`-style calls) and the set
//     of named functions transitively reachable from their bodies, across
//     translation units.
//
// The graph rules (thread-shared-mutation, layer-dag,
// include-self-sufficiency, no-unordered-float-accumulation) are built on
// top; the passes themselves know nothing about findings.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vhadoop_lint/lint.hpp"

namespace vlint {

/// One resolved `#include "..."` directive.
struct IncludeEdge {
  std::string spec;          ///< the quoted path as written
  int line = 0;
  int col = 1;
  std::vector<int> targets;  ///< indices of matching repo files (usually 1)
};

/// A named function with a body, at namespace or class scope (members and
/// out-of-line `T::f` definitions included — reachability is name-based).
struct FunctionDef {
  std::string name;
  int file = 0;
  int line = 0;
  std::size_t body_begin = 0;  ///< first token index inside the '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
};

/// A lambda passed to a worker-thread entry point.
struct WorkerLambda {
  int file = 0;
  int line = 0;
  std::string entry;                  ///< parallel_for / submit / ...
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  bool ref_default = false;           ///< [&] / [&, x]
  bool captures_this = false;         ///< this / [&] / [=]
  std::set<std::string> ref_captures;  ///< explicit [&x]
  std::set<std::string> val_captures;  ///< explicit [x] / [x = init]
  std::set<std::string> params;
};

struct Analysis {
  /// Per-file resolved include directives, parallel to the file vector.
  std::vector<std::vector<IncludeEdge>> includes;
  /// Transitive include closure per file (file indices; always contains
  /// the file itself).
  std::vector<std::set<int>> closure;
  /// Symbol name -> files that declare or define it at exported namespace
  /// scope (anonymous-namespace and `static` declarations stay file-local
  /// and are never entered here).
  std::map<std::string, std::set<int>> providers;

  std::vector<FunctionDef> functions;
  std::map<std::string, std::vector<std::size_t>> functions_by_name;
  std::vector<WorkerLambda> worker_lambdas;
  /// Indices into `functions` reachable from any worker lambda, with a
  /// human-readable witness ("entry at <file>:<line>") per function.
  std::map<std::size_t, std::string> worker_reachable;

  /// Names declared *anywhere* in each file — any scope, including class
  /// members, anonymous namespaces, macros and statics. Superset of that
  /// file's providers entries; include-self-sufficiency resolves against
  /// the closure union of these so member declarations never read as uses
  /// of a same-named symbol from an unrelated TU.
  std::vector<std::set<std::string>> declared;

  /// Name sets resolved across the whole file set.
  std::set<std::string> unordered_names;   ///< unordered container vars/aliases
  /// Per-file variables declared double/float (closure-unioned at use, so a
  /// `float c` in one TU cannot poison `c == '_'` in an unrelated one).
  std::vector<std::set<std::string>> float_names;
  /// Per-file variables declared with an integral type. A file's own integral
  /// declaration beats a same-named float from an included header, so
  /// `std::uint64_t v` is never misread as the `double v` of another TU.
  std::vector<std::set<std::string>> nonfloat_names;
  std::set<std::string> atomic_names;      ///< variables/members of atomic type
  std::set<std::string> mutable_globals;   ///< non-const namespace-scope vars
  std::set<std::string> namespaces;        ///< every `namespace X {` name
};

Analysis analyze(const std::vector<SourceFile>& files);

// --- shared token helpers (used by analysis passes and rules) --------------

/// Skip a balanced `<...>` template argument list starting at t[i] == "<".
/// Returns the index one past the closing ">", or i on mismatch.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i);

/// t[open] == "{": index of the matching "}", or t.size() when unbalanced.
std::size_t match_brace(const std::vector<Token>& t, std::size_t open);

/// t[open] == "(": index of the matching ")", or t.size() when unbalanced.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open);

/// True for numeric literals with floating syntax (1.5, 2e9, .25, 1.f) —
/// hex literals and plain integers are not.
bool is_float_literal(const Token& tok);

/// Identifiers that can never be a variable/function use.
bool is_cpp_keyword(const std::string& s);

/// Expression-context keywords: an identifier directly after one of these is
/// being *used*, not declared (`return Result{...}` vs `Result run(...)`).
const std::set<std::string>& expr_keywords();

}  // namespace vlint

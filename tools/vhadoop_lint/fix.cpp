#include "vhadoop_lint/lint.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace vlint {

namespace {

/// Split into lines, each WITHOUT its trailing '\n'.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) lines.push_back(text.substr(start));
  return lines;
}

std::string ltrim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  return b == std::string::npos ? std::string() : s.substr(b);
}

}  // namespace

std::string apply_fixes(const SourceFile& file, const std::string& text,
                        const std::vector<Finding>& findings) {
  bool want_guard = false;
  std::set<std::string> missing_includes;
  for (const Finding& f : findings) {
    if (f.suppressed || f.path != file.path) continue;
    if (f.rule == "header-guard" && file.is_header) want_guard = true;
    if (f.rule == "include-self-sufficiency" && !f.fix_include.empty()) {
      missing_includes.insert(f.fix_include);
    }
  }
  if (!want_guard && missing_includes.empty()) return {};

  std::vector<std::string> lines = split_lines(text);

  if (want_guard) {
    // Insert `#pragma once` above the first line that is neither blank nor
    // part of the leading comment block.
    std::size_t at = 0;
    bool in_block = false;
    for (; at < lines.size(); ++at) {
      const std::string s = ltrim(lines[at]);
      if (in_block) {
        if (s.find("*/") != std::string::npos) in_block = false;
        continue;
      }
      if (s.empty() || s.starts_with("//")) continue;
      if (s.starts_with("/*")) {
        if (s.find("*/") == std::string::npos) in_block = true;
        continue;
      }
      break;
    }
    lines.insert(lines.begin() + static_cast<long>(at), {"#pragma once", ""});
  }

  if (!missing_includes.empty()) {
    // Drop specs already present (e.g. inserted by an earlier --fix run).
    for (const std::string& line : lines) {
      const std::string s = ltrim(line);
      if (s.starts_with("#include \"")) {
        const std::size_t open = s.find('"');
        const std::size_t close = s.find('"', open + 1);
        if (close != std::string::npos) {
          missing_includes.erase(s.substr(open + 1, close - open - 1));
        }
      }
    }
  }
  if (!missing_includes.empty()) {
    // Insertion point: after the last quoted include; else after the header
    // guard / leading comments, where the include block belongs.
    std::size_t at = 0;
    bool found_quoted = false;
    bool in_block = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string s = ltrim(lines[i]);
      if (s.starts_with("#include \"")) {
        at = i + 1;
        found_quoted = true;
      }
    }
    if (!found_quoted) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string s = ltrim(lines[i]);
        if (in_block) {
          if (s.find("*/") != std::string::npos) in_block = false;
          at = i + 1;
          continue;
        }
        if (s.empty() || s.starts_with("//")) {
          continue;
        }
        if (s.starts_with("/*")) {
          if (s.find("*/") == std::string::npos) in_block = true;
          at = i + 1;
          continue;
        }
        if (s.starts_with("#pragma once") || s.starts_with("#ifndef") ||
            s.starts_with("#define") || s.starts_with("#include")) {
          at = i + 1;
          continue;
        }
        break;
      }
    }
    std::vector<std::string> block;
    for (const std::string& spec : missing_includes) {
      block.push_back("#include \"" + spec + "\"");
    }
    if (!found_quoted && at < lines.size() && !ltrim(lines[at]).empty()) {
      block.push_back("");
    }
    if (!found_quoted && at > 0 && !ltrim(lines[at - 1]).empty()) {
      block.insert(block.begin(), "");
    }
    lines.insert(lines.begin() + static_cast<long>(at), block.begin(), block.end());
  }

  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace vlint

// vhadoop_lint — the project's determinism & hygiene linter (DESIGN.md §9).
//
// Usage:
//   vhadoop_lint [--root=DIR] [--rule=NAME ...] [--show-suppressed]
//                [--list-rules] [paths...]
//
// With no positional paths, lints src/, tests/, bench/ and examples/ under
// --root (default: the current directory), skipping tests/lint/ (rule
// fixtures trip rules on purpose) and build directories. Positional paths
// (files or directories) are linted unconditionally.
//
// Exit status: 0 when the tree is clean (suppressed findings are fine),
// 1 when any unsuppressed finding remains, 2 on usage/IO errors.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "vhadoop_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (!name.empty() && name[0] == '.') return true;        // .git, .github, ...
  if (name.rfind("build", 0) == 0) return true;            // build, build-asan, ...
  return false;
}

/// Lint fixtures violate rules by design; the tree walk must not see them.
bool is_fixture_path(const std::string& rel) {
  return rel.rfind("tests/lint/", 0) == 0 || rel.find("/tests/lint/") != std::string::npos;
}

void collect(const fs::path& dir, const fs::path& root, bool skip_fixtures,
             std::vector<std::pair<std::string, std::string>>& out) {
  if (!fs::exists(dir)) return;
  if (fs::is_regular_file(dir)) {
    if (has_source_extension(dir)) {
      out.emplace_back(dir.string(), fs::relative(dir, root).generic_string());
    }
    return;
  }
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file() || !has_source_extension(it->path())) continue;
    std::string rel = fs::relative(it->path(), root).generic_string();
    if (skip_fixtures && is_fixture_path(rel)) continue;
    out.emplace_back(it->path().string(), std::move(rel));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> only_rules;
  std::vector<std::string> paths;
  bool show_suppressed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--rule=", 0) == 0) {
      only_rules.push_back(arg.substr(7));
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : vlint::kRules) std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vhadoop_lint [--root=DIR] [--rule=NAME ...] "
                   "[--show-suppressed] [--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "vhadoop_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  for (const auto& r : only_rules) {
    if (!vlint::is_known_rule(r)) {
      std::cerr << "vhadoop_lint: unknown rule '" << r << "' (--list-rules)\n";
      return 2;
    }
  }

  const fs::path root_path = fs::path(root);
  std::vector<std::pair<std::string, std::string>> sources;  // (path, rel)
  if (paths.empty()) {
    for (const char* sub : {"src", "tests", "bench", "examples"}) {
      collect(root_path / sub, root_path, /*skip_fixtures=*/true, sources);
    }
  } else {
    for (const auto& p : paths) {
      collect(fs::path(p), root_path, /*skip_fixtures=*/false, sources);
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<vlint::SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, rel] : sources) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "vhadoop_lint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(vlint::lex(path, rel, buf.str()));
  }

  const vlint::Result res = vlint::run(files, only_rules);
  int suppressed = 0;
  for (const auto& f : res.findings) {
    if (f.suppressed) {
      ++suppressed;
      if (show_suppressed) {
        std::cout << f.path << ":" << f.line << ": [" << f.rule
                  << "] suppressed: " << f.reason << "\n";
      }
      continue;
    }
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "vhadoop_lint: " << files.size() << " files, " << res.unsuppressed
            << " finding(s), " << suppressed << " suppressed\n";
  return res.unsuppressed == 0 ? 0 : 1;
}

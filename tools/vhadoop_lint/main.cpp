// vhadoop_lint — the project's determinism & hygiene linter (DESIGN.md §9).
//
// Usage:
//   vhadoop_lint [--root=DIR] [--rule=NAME ...] [--show-suppressed]
//                [--format=text|json|sarif] [--sarif-out=FILE] [--fix]
//                [--list-rules] [paths...]
//
// With no positional paths, lints src/, tests/, bench/, examples/ and tools/
// under --root (default: the current directory), skipping tests/lint/ (rule
// fixtures trip rules on purpose) and build directories. Positional paths
// (files or directories) are linted unconditionally. Cross-TU rules see the
// whole set at once, so lint the tree rather than single files when possible.
//
// --format=json|sarif writes the findings to stdout in that shape instead of
// text; --sarif-out=FILE writes SARIF 2.1.0 to FILE *in addition to* the
// normal text output (for CI upload). --fix rewrites files in place for the
// mechanical rules (header-guard, include-self-sufficiency).
//
// Exit status: 0 when the tree is clean (suppressed findings are fine),
// 1 when any unsuppressed finding remains, 2 on usage/IO errors.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "vhadoop_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".h" ||
         ext == ".hh";
}

bool skip_directory(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (!name.empty() && name[0] == '.') return true;        // .git, .github, ...
  if (name.rfind("build", 0) == 0) return true;            // build, build-asan, ...
  return false;
}

/// Lint fixtures violate rules by design; the tree walk must not see them.
bool is_fixture_path(const std::string& rel) {
  return rel.rfind("tests/lint/", 0) == 0 || rel.find("/tests/lint/") != std::string::npos;
}

void collect(const fs::path& dir, const fs::path& root, bool skip_fixtures,
             std::vector<std::pair<std::string, std::string>>& out) {
  if (!fs::exists(dir)) return;
  if (fs::is_regular_file(dir)) {
    if (has_source_extension(dir)) {
      out.emplace_back(dir.string(), fs::relative(dir, root).generic_string());
    }
    return;
  }
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (it->is_directory()) {
      if (skip_directory(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file() || !has_source_extension(it->path())) continue;
    std::string rel = fs::relative(it->path(), root).generic_string();
    if (skip_fixtures && is_fixture_path(rel)) continue;
    out.emplace_back(it->path().string(), std::move(rel));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> only_rules;
  std::vector<std::string> paths;
  std::string format = "text";
  std::string sarif_out;
  bool show_suppressed = false;
  bool fix = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--rule=", 0) == 0) {
      only_rules.push_back(arg.substr(7));
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "vhadoop_lint: --format must be text, json or sarif\n";
        return 2;
      }
    } else if (arg.rfind("--sarif-out=", 0) == 0) {
      sarif_out = arg.substr(12);
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : vlint::kRules) std::cout << r << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: vhadoop_lint [--root=DIR] [--rule=NAME ...] "
                   "[--show-suppressed] [--format=text|json|sarif] "
                   "[--sarif-out=FILE] [--fix] [--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "vhadoop_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  for (const auto& r : only_rules) {
    if (!vlint::is_known_rule(r)) {
      std::cerr << "vhadoop_lint: unknown rule '" << r << "' (--list-rules)\n";
      return 2;
    }
  }

  const fs::path root_path = fs::path(root);
  std::vector<std::pair<std::string, std::string>> sources;  // (path, rel)
  if (paths.empty()) {
    for (const char* sub : {"src", "tests", "bench", "examples", "tools"}) {
      collect(root_path / sub, root_path, /*skip_fixtures=*/true, sources);
    }
  } else {
    for (const auto& p : paths) {
      collect(fs::path(p), root_path, /*skip_fixtures=*/false, sources);
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<vlint::SourceFile> files;
  std::vector<std::string> texts;
  std::map<std::string, std::string> rel_of;
  files.reserve(sources.size());
  texts.reserve(sources.size());
  for (const auto& [path, rel] : sources) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "vhadoop_lint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    texts.push_back(buf.str());
    files.push_back(vlint::lex(path, rel, texts.back()));
    rel_of[path] = rel;
  }

  const vlint::Result res = vlint::run(files, only_rules);

  if (fix) {
    int fixed = 0;
    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::string repaired = vlint::apply_fixes(files[i], texts[i], res.findings);
      if (repaired.empty() || repaired == texts[i]) continue;
      std::ofstream out(files[i].path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "vhadoop_lint: cannot write " << files[i].path << "\n";
        return 2;
      }
      out << repaired;
      std::cout << "fixed: " << files[i].rel << "\n";
      ++fixed;
    }
    std::cout << "vhadoop_lint: rewrote " << fixed
              << " file(s); re-run to verify the remaining findings\n";
  }

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "vhadoop_lint: cannot write " << sarif_out << "\n";
      return 2;
    }
    vlint::write_sarif(out, res, rel_of);
  }

  if (format == "json") {
    vlint::write_json(std::cout, res, rel_of);
  } else if (format == "sarif") {
    vlint::write_sarif(std::cout, res, rel_of);
  } else {
    int suppressed = 0;
    for (const auto& f : res.findings) {
      if (f.suppressed) {
        ++suppressed;
        if (show_suppressed) {
          std::cout << f.path << ":" << f.line << ":" << f.col << ": [" << f.rule
                    << "] suppressed: " << f.reason << "\n";
        }
        continue;
      }
      std::cout << f.path << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
                << f.message << "\n";
    }
    std::cout << "vhadoop_lint: " << files.size() << " files, " << res.unsuppressed
              << " finding(s), " << suppressed << " suppressed\n";
  }
  return res.unsuppressed == 0 ? 0 : 1;
}

#include "vhadoop_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

namespace vlint {

const std::vector<std::string> kRules = {
    "no-wall-clock", "no-os-entropy",          "no-unordered-iteration",
    "header-guard",  "using-namespace-header", "metric-name",
    "bad-suppression",
};

bool is_known_rule(const std::string& name) {
  return std::find(kRules.begin(), kRules.end(), name) != kRules.end();
}

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parse `vlint: allow(rule) reason` directives out of a comment body.
/// Malformed directives are kept with an empty rule/reason so the
/// bad-suppression rule can report them at the right line.
void scan_comment_for_directives(const std::string& body, int line,
                                 std::vector<Suppression>& out) {
  std::size_t pos = 0;
  while ((pos = body.find("vlint:", pos)) != std::string::npos) {
    std::size_t p = pos + 6;
    // The directive's line: count newlines inside a block comment.
    int dline = line + static_cast<int>(std::count(body.begin(),
                                                   body.begin() + static_cast<long>(pos), '\n'));
    while (p < body.size() && (body[p] == ' ' || body[p] == '\t')) ++p;
    Suppression sup;
    sup.line = dline;
    if (body.compare(p, 6, "allow(") == 0) {
      p += 6;
      std::size_t close = body.find(')', p);
      if (close != std::string::npos) {
        sup.rule = trim(body.substr(p, close - p));
        std::size_t eol = body.find('\n', close);
        std::string reason = body.substr(close + 1, eol == std::string::npos
                                                        ? std::string::npos
                                                        : eol - close - 1);
        sup.reason = trim(reason);
      }
    }
    out.push_back(std::move(sup));
    pos += 6;
  }
}

}  // namespace

SourceFile lex(std::string path, std::string rel, const std::string& text) {
  SourceFile f;
  f.path = std::move(path);
  f.rel = std::move(rel);
  std::replace(f.rel.begin(), f.rel.end(), '\\', '/');
  f.is_header = f.rel.size() > 2 &&
                (f.rel.ends_with(".hpp") || f.rel.ends_with(".h") || f.rel.ends_with(".hh"));

  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto push = [&](TokKind k, std::string t) {
    f.tokens.push_back(Token{k, std::move(t), line});
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = n;
      scan_comment_for_directives(text.substr(i + 2, eol - i - 2), line, f.suppressions);
      i = eol;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = text.substr(i + 2, end - i - 2);
      scan_comment_for_directives(body, line, f.suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Preprocessor directive: keep the logical line as one token.
    if (c == '#' && at_line_start) {
      std::size_t start = i;
      std::size_t eol;
      for (;;) {
        eol = text.find('\n', i);
        if (eol == std::string::npos) {
          eol = n;
          break;
        }
        // Backslash continuation (allow trailing \r).
        std::size_t back = eol;
        while (back > i && (text[back - 1] == '\r')) --back;
        if (back > i && text[back - 1] == '\\') {
          ++line;
          i = eol + 1;
          continue;
        }
        break;
      }
      push(TokKind::Directive, text.substr(start, eol - start));
      i = eol;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t open = text.find('(', i + 2);
      if (open != std::string::npos) {
        std::string delim = text.substr(i + 2, open - i - 2);
        std::string closer = ")" + delim + "\"";
        std::size_t end = text.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        line += static_cast<int>(
            std::count(text.begin() + static_cast<long>(i),
                       text.begin() + static_cast<long>(std::min(end, n)), '\n'));
        push(TokKind::String, "R\"...\"");
        i = (end == n) ? n : end + closer.size();
        continue;
      }
    }
    // String / char literal. String bodies are kept (the metric-name rule
    // inspects them); char bodies are discarded. Neither kind is ever an
    // Ident token, so name-matching rules cannot fire inside literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      if (quote == '"') {
        push(TokKind::String, text.substr(i + 1, j - i - 1));
      } else {
        push(TokKind::CharLit, std::string(1, quote));
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      push(TokKind::Ident, text.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      // Numbers, including 1'000'000 separators and exponents.
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '\'' || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
                         text[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::Number, text.substr(i, j - i));
      i = j;
      continue;
    }
    // Multi-char punctuators the rules care about; everything else is 1 char.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      push(TokKind::Punct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      push(TokKind::Punct, "->");
      i += 2;
      continue;
    }
    push(TokKind::Punct, std::string(1, c));
    ++i;
  }
  return f;
}

namespace {

struct RuleCtx {
  const SourceFile& f;
  std::vector<Finding>& out;

  void report(int line, const std::string& rule, std::string msg) const {
    out.push_back(Finding{f.path, line, rule, std::move(msg), false, {}});
  }
};

bool prev_is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i > 0 && t[i - 1].kind == TokKind::Punct && t[i - 1].text == text;
}

/// True when the call at token i (an identifier followed by `(`) resolves to
/// the global/std function of that name: bare `time(`, `std::time(` or
/// `::time(` — but not `obj.time(`, `obj->time(` or `other::time(`.
bool is_global_or_std_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || t[i + 1].kind != TokKind::Punct || t[i + 1].text != "(") return false;
  if (prev_is(t, i, ".") || prev_is(t, i, "->")) return false;
  if (prev_is(t, i, "::")) {
    if (i < 2) return true;  // leading `::name(` is the global namespace
    const Token& q = t[i - 2];
    if (q.kind == TokKind::Ident) return q.text == "std";
    return true;  // `= ::name(...)`: still the global namespace
  }
  // `double time(...)` declares a function of that name; a *call* never
  // directly follows a type identifier. Expression keywords still count as
  // call context (`return time(0)`).
  static const std::set<std::string> kExprKeywords = {
      "return", "co_return", "co_yield", "co_await", "throw", "case",
      "else",   "do",        "and",      "or",       "not",   "xor",
  };
  if (i > 0 && t[i - 1].kind == TokKind::Ident && !kExprKeywords.count(t[i - 1].text)) {
    return false;
  }
  return true;
}

// --- no-wall-clock ---------------------------------------------------------

const std::set<std::string> kClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get",
};
const std::set<std::string> kClockCalls = {
    "time", "clock", "localtime", "gmtime", "mktime", "difftime", "ftime",
};

void rule_no_wall_clock(const RuleCtx& ctx) {
  if (ctx.f.rel == "src/sim/time.hpp") return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kClockTypes.count(t[i].text)) {
      ctx.report(t[i].line, "no-wall-clock",
                 "'" + t[i].text +
                     "' reads the host clock; simulated code must take time "
                     "from sim::Engine::now() (see src/sim/time.hpp)");
    } else if (kClockCalls.count(t[i].text) && is_global_or_std_call(t, i)) {
      ctx.report(t[i].line, "no-wall-clock",
                 "call to '" + t[i].text +
                     "()' reads the host clock; use the simulated clock "
                     "(sim::Engine::now())");
    }
  }
}

// --- no-os-entropy ---------------------------------------------------------

const std::set<std::string> kEntropyTypes = {"random_device"};
const std::set<std::string> kEntropyCalls = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "getenv", "secure_getenv",
};

void rule_no_os_entropy(const RuleCtx& ctx) {
  if (ctx.f.rel.starts_with("src/sim/rng.")) return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kEntropyTypes.count(t[i].text)) {
      ctx.report(t[i].line, "no-os-entropy",
                 "'" + t[i].text +
                     "' draws OS entropy; all randomness must flow through "
                     "the seeded sim::Rng");
    } else if (kEntropyCalls.count(t[i].text) && is_global_or_std_call(t, i)) {
      ctx.report(t[i].line, "no-os-entropy",
                 "call to '" + t[i].text +
                     "()' is environment-dependent; use sim::Rng (or CLI "
                     "arguments) and suppress with a reason if this really "
                     "is argument parsing");
    }
  }
}

// --- no-unordered-iteration ------------------------------------------------

const std::set<std::string> kUnorderedTemplates = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
};

/// Skip a balanced `<...>` template argument list starting at t[i] == "<".
/// Returns the index one past the closing ">", or i on mismatch.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  std::size_t j = i;
  for (; j < t.size(); ++j) {
    if (t[j].kind != TokKind::Punct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">" && --depth == 0) return j + 1;
    if (t[j].text == ";") break;  // never crosses a statement
  }
  return i;
}

/// Collect names bound to unordered containers: type aliases
/// (`using M = std::unordered_map<...>`) and declared variables/members
/// (`std::unordered_map<K,V> name`, `const M& name`).
void collect_unordered_names(const std::vector<SourceFile>& files,
                             std::set<std::string>& aliases,
                             std::set<std::string>& vars) {
  for (const auto& f : files) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
          t[i + 1].kind == TokKind::Ident && t[i + 2].text == "=") {
        // `using Name = ... unordered_xxx ... ;`
        for (std::size_t j = i + 3; j < t.size(); ++j) {
          if (t[j].kind == TokKind::Punct && t[j].text == ";") break;
          if (t[j].kind == TokKind::Ident && kUnorderedTemplates.count(t[j].text)) {
            aliases.insert(t[i + 1].text);
            break;
          }
        }
      }
    }
  }
  for (const auto& f : files) {
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::Ident) continue;
      std::size_t after = 0;
      if (kUnorderedTemplates.count(t[i].text)) {
        after = skip_angles(t, i + 1);
        if (after == i + 1) continue;  // not a template instantiation
      } else if (aliases.count(t[i].text) && !prev_is(t, i, ".") && !prev_is(t, i, "->")) {
        after = i + 1;
      } else {
        continue;
      }
      // `Type [const] [&|*] name` — the next identifier is the declared name.
      std::size_t j = after;
      while (j < t.size() &&
             ((t[j].kind == TokKind::Punct && (t[j].text == "&" || t[j].text == "*")) ||
              (t[j].kind == TokKind::Ident && t[j].text == "const"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::Ident && t[j].text != "const") {
        vars.insert(t[j].text);
      }
    }
  }
}

void rule_no_unordered_iteration(const RuleCtx& ctx, const std::set<std::string>& vars) {
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    // Range-for: `for ( decl : expr )` where expr's last identifier is an
    // unordered container.
    if (t[i].text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].kind != TokKind::Punct) continue;
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
        if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon && close) {
        // Walk back from the closing paren: a plain identifier chain like
        // `obj.member` or `member` names the ranged container.
        const Token& last = t[close - 1];
        if (last.kind == TokKind::Ident && vars.count(last.text)) {
          ctx.report(t[i].line, "no-unordered-iteration",
                     "range-for over unordered container '" + last.text +
                         "': iteration order depends on the hash layout; "
                         "iterate a sorted snapshot, use std::map, or "
                         "suppress with a reason if order provably cannot "
                         "be observed");
        }
      }
    }
    // Iterator style: `container.begin()` / `.cbegin()`.
    if (vars.count(t[i].text) && i + 3 < t.size() &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && t[i + 2].kind == TokKind::Ident &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") && t[i + 3].text == "(") {
      ctx.report(t[i].line, "no-unordered-iteration",
                 "iterator over unordered container '" + t[i].text +
                     "': iteration order depends on the hash layout; "
                     "iterate a sorted snapshot, use std::map, or suppress "
                     "with a reason if order provably cannot be observed");
    }
  }
}

// --- header hygiene --------------------------------------------------------

void rule_header_guard(const RuleCtx& ctx) {
  if (!ctx.f.is_header) return;
  for (const auto& tok : ctx.f.tokens) {
    if (tok.kind != TokKind::Directive) {
      // Code before any directive: no guard protects it.
      break;
    }
    const std::string d = tok.text;
    if (d.find("pragma") != std::string::npos && d.find("once") != std::string::npos) return;
    if (d.find("ifndef") != std::string::npos) return;
    if (d.find("if") != std::string::npos && d.find("defined") != std::string::npos) return;
    break;  // some other directive (e.g. #include) came first
  }
  ctx.report(1, "header-guard",
             "header does not open with '#pragma once' (or an #ifndef "
             "include guard)");
}

// --- metric-name -----------------------------------------------------------

bool metric_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/// Full metric name: `segment(.segment)+`, segments lowercase [a-z0-9_].
bool metric_name_ok(const std::string& s) {
  std::size_t start = 0;
  int segments = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '.') {
      if (i == start) return false;  // empty segment
      for (std::size_t k = start; k < i; ++k) {
        if (!metric_char_ok(s[k])) return false;
      }
      ++segments;
      start = i + 1;
    }
  }
  return segments >= 2;
}

/// Prefix of a concatenated metric name: same charset, must already name
/// the subsystem (contain a dot), may end with a dot ("mr.queue.").
bool metric_prefix_ok(const std::string& s) {
  if (s.empty() || s.front() == '.') return false;
  bool has_dot = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '.') {
      if (i > 0 && s[i - 1] == '.') return false;  // empty segment
      has_dot = true;
      continue;
    }
    if (!metric_char_ok(s[i])) return false;
  }
  return has_dot;
}

const std::set<std::string> kMetricFactories = {"counter", "gauge", "histogram"};

/// Registry::counter/gauge/histogram with a literal first argument must use
/// the `subsystem.metric_name` convention (lowercase, dot-separated). A
/// literal that is concatenated onward (`"mr.queue." + q + ...`) is checked
/// as a prefix. Non-literal first arguments are out of scope.
void rule_metric_name(const RuleCtx& ctx) {
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !kMetricFactories.count(t[i].text)) continue;
    if (!prev_is(t, i, ".") && !prev_is(t, i, "->")) continue;  // member call only
    if (t[i + 1].kind != TokKind::Punct || t[i + 1].text != "(") continue;
    const Token& lit = t[i + 2];
    if (lit.kind != TokKind::String) continue;
    const bool concatenated =
        i + 3 < t.size() && t[i + 3].kind == TokKind::Punct && t[i + 3].text == "+";
    const bool ok = concatenated ? metric_prefix_ok(lit.text) : metric_name_ok(lit.text);
    if (!ok) {
      ctx.report(lit.line, "metric-name",
                 "metric name \"" + lit.text + "\" passed to " + t[i].text +
                     "() must follow 'subsystem.metric_name': lowercase "
                     "[a-z0-9_] segments joined by dots" +
                     (concatenated ? " (checked as a concatenation prefix)" : ""));
    }
  }
}

void rule_using_namespace_header(const RuleCtx& ctx) {
  if (!ctx.f.is_header) return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
        t[i + 1].kind == TokKind::Ident && t[i + 1].text == "namespace") {
      ctx.report(t[i].line, "using-namespace-header",
                 "'using namespace' in a header leaks the namespace into "
                 "every includer");
    }
  }
}

}  // namespace

Result run(const std::vector<SourceFile>& files, const std::vector<std::string>& only_rules) {
  auto enabled = [&](const std::string& rule) {
    return only_rules.empty() ||
           std::find(only_rules.begin(), only_rules.end(), rule) != only_rules.end();
  };

  std::set<std::string> aliases, unordered_vars;
  collect_unordered_names(files, aliases, unordered_vars);

  Result res;
  for (const auto& f : files) {
    std::vector<Finding> raw;
    RuleCtx ctx{f, raw};
    if (enabled("no-wall-clock")) rule_no_wall_clock(ctx);
    if (enabled("no-os-entropy")) rule_no_os_entropy(ctx);
    if (enabled("no-unordered-iteration")) rule_no_unordered_iteration(ctx, unordered_vars);
    if (enabled("header-guard")) rule_header_guard(ctx);
    if (enabled("using-namespace-header")) rule_using_namespace_header(ctx);
    if (enabled("metric-name")) rule_metric_name(ctx);

    // Malformed suppressions are findings themselves — and never
    // suppressible, or a bad suppression could excuse itself.
    for (const auto& sup : f.suppressions) {
      if (sup.rule.empty()) {
        raw.push_back(Finding{f.path, sup.line, "bad-suppression",
                              "malformed vlint directive: expected "
                              "'vlint: allow(rule-name) reason'",
                              false,
                              {}});
      } else if (!is_known_rule(sup.rule) || sup.rule == "bad-suppression") {
        raw.push_back(Finding{f.path, sup.line, "bad-suppression",
                              "unknown rule '" + sup.rule + "' in vlint directive", false,
                              {}});
      } else if (sup.reason.empty()) {
        raw.push_back(Finding{f.path, sup.line, "bad-suppression",
                              "suppression of '" + sup.rule +
                                  "' carries no reason; every allow() must say why",
                              false,
                              {}});
      }
    }

    // Apply suppressions: a well-formed allow(rule) on the finding's line or
    // the line directly above silences it.
    for (auto& finding : raw) {
      if (finding.rule == "bad-suppression") continue;
      for (const auto& sup : f.suppressions) {
        if (sup.rule != finding.rule || sup.reason.empty()) continue;
        if (sup.line == finding.line || sup.line == finding.line - 1) {
          finding.suppressed = true;
          finding.reason = sup.reason;
          break;
        }
      }
    }

    std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    for (auto& finding : raw) {
      if (!finding.suppressed) ++res.unsuppressed;
      res.findings.push_back(std::move(finding));
    }
  }
  return res;
}

}  // namespace vlint

#include "vhadoop_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vhadoop_lint/analysis.hpp"

namespace vlint {

const std::vector<std::string> kRules = {
    "no-wall-clock",
    "no-os-entropy",
    "no-unordered-iteration",
    "header-guard",
    "using-namespace-header",
    "metric-name",
    "thread-shared-mutation",
    "no-unordered-float-accumulation",
    "no-exact-float-compare",
    "layer-dag",
    "include-self-sufficiency",
    "bad-suppression",
};

bool is_known_rule(const std::string& name) {
  return std::find(kRules.begin(), kRules.end(), name) != kRules.end();
}

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parse allow()/allow-file() suppression directives (marked by the word
/// "vlint" and a colon) out of a comment body. Malformed directives are
/// kept with an empty rule/reason so the bad-suppression rule can report
/// them at the right line.
void scan_comment_for_directives(const std::string& body, int line,
                                 std::vector<Suppression>& out) {
  std::size_t pos = 0;
  while ((pos = body.find("vlint:", pos)) != std::string::npos) {
    std::size_t p = pos + 6;
    // The directive's line: count newlines inside a block comment.
    int dline = line + static_cast<int>(std::count(body.begin(),
                                                   body.begin() + static_cast<long>(pos), '\n'));
    while (p < body.size() && (body[p] == ' ' || body[p] == '\t')) ++p;
    Suppression sup;
    sup.line = dline;
    std::size_t name_at = std::string::npos;
    if (body.compare(p, 6, "allow(") == 0) {
      name_at = p + 6;
    } else if (body.compare(p, 11, "allow-file(") == 0) {
      name_at = p + 11;
      sup.file_scope = true;
    }
    if (name_at != std::string::npos) {
      std::size_t close = body.find(')', name_at);
      if (close != std::string::npos) {
        sup.rule = trim(body.substr(name_at, close - name_at));
        std::size_t eol = body.find('\n', close);
        std::string reason = body.substr(close + 1, eol == std::string::npos
                                                        ? std::string::npos
                                                        : eol - close - 1);
        sup.reason = trim(reason);
      }
    }
    out.push_back(std::move(sup));
    pos += 6;
  }
}

/// Multi-character punctuators, longest first (maximal munch).
const char* kPuncts3[] = {"<<=", ">>=", "->*", "..."};
const char* kPuncts2[] = {"::", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=",
                          "/=", "%=", "&=", "|=", "^=", "<<", ">>", "&&", "||",
                          "++", "--"};

}  // namespace

SourceFile lex(std::string path, std::string rel, const std::string& text) {
  SourceFile f;
  f.path = std::move(path);
  f.rel = std::move(rel);
  std::replace(f.rel.begin(), f.rel.end(), '\\', '/');
  f.is_header = f.rel.size() > 2 &&
                (f.rel.ends_with(".hpp") || f.rel.ends_with(".h") || f.rel.ends_with(".hh"));

  int line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // byte offset of the current line's first char
  const std::size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto col_of = [&](std::size_t off) { return static_cast<int>(off - line_start) + 1; };
  auto push = [&](TokKind k, std::string t, std::size_t off) {
    f.tokens.push_back(Token{k, std::move(t), line, col_of(off)});
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = n;
      scan_comment_for_directives(text.substr(i + 2, eol - i - 2), line, f.suppressions);
      i = eol;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      std::string body = text.substr(i + 2, end - i - 2);
      scan_comment_for_directives(body, line, f.suppressions);
      const long newlines = std::count(body.begin(), body.end(), '\n');
      if (newlines > 0) {
        line += static_cast<int>(newlines);
        line_start = text.rfind('\n', end) + 1;
      }
      i = (end == n) ? n : end + 2;
      continue;
    }
    // Preprocessor directive: keep the logical line as one token.
    if (c == '#' && at_line_start) {
      std::size_t start = i;
      std::size_t eol;
      for (;;) {
        eol = text.find('\n', i);
        if (eol == std::string::npos) {
          eol = n;
          break;
        }
        // Backslash continuation (allow trailing \r).
        std::size_t back = eol;
        while (back > i && (text[back - 1] == '\r')) --back;
        if (back > i && text[back - 1] == '\\') {
          ++line;
          i = eol + 1;
          line_start = i;
          continue;
        }
        break;
      }
      push(TokKind::Directive, text.substr(start, eol - start), start);
      i = eol;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t open = text.find('(', i + 2);
      if (open != std::string::npos) {
        std::string delim = text.substr(i + 2, open - i - 2);
        std::string closer = ")" + delim + "\"";
        std::size_t end = text.find(closer, open + 1);
        if (end == std::string::npos) end = n;
        push(TokKind::String, "R\"...\"", i);
        const std::size_t stop = std::min(end, n);
        for (std::size_t k = i; k < stop; ++k) {
          if (text[k] == '\n') {
            ++line;
            line_start = k + 1;
          }
        }
        i = (end == n) ? n : end + closer.size();
        continue;
      }
    }
    // String / char literal. String bodies are kept (the metric-name rule
    // inspects them); char bodies are discarded. Neither kind is ever an
    // Ident token, so name-matching rules cannot fire inside literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start = i;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') {
          ++line;
          line_start = j + 1;
        }
        ++j;
      }
      if (quote == '"') {
        push(TokKind::String, text.substr(start + 1, j - start - 1), start);
      } else {
        push(TokKind::CharLit, std::string(1, quote), start);
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      push(TokKind::Ident, text.substr(i, j - i), i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      // Numbers, including 1'000'000 separators and exponents.
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '\'' || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
                         text[j - 1] == 'P')))) {
        ++j;
      }
      push(TokKind::Number, text.substr(i, j - i), i);
      i = j;
      continue;
    }
    // Maximal-munch punctuators; everything unmatched is 1 char.
    bool matched = false;
    for (const char* p : kPuncts3) {
      if (text.compare(i, 3, p) == 0) {
        push(TokKind::Punct, p, i);
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPuncts2) {
      if (text.compare(i, 2, p) == 0) {
        push(TokKind::Punct, p, i);
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    push(TokKind::Punct, std::string(1, c), i);
    ++i;
  }
  return f;
}

namespace {

struct RuleCtx {
  const SourceFile& f;
  std::vector<Finding>& out;
  std::size_t file_index = 0;  ///< index into the linted file set

  void report(int line, int col, const std::string& rule, std::string msg,
              std::string fix_include = {}) const {
    out.push_back(
        Finding{f.path, line, col, rule, std::move(msg), false, {}, std::move(fix_include)});
  }
  void report(const Token& tok, const std::string& rule, std::string msg) const {
    report(tok.line, tok.col, rule, std::move(msg));
  }
};

bool prev_is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i > 0 && t[i - 1].kind == TokKind::Punct && t[i - 1].text == text;
}

bool tok_is(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// True when the call at token i (an identifier followed by `(`) resolves to
/// the global/std function of that name: bare `time(`, `std::time(` or
/// `::time(` — but not `obj.time(`, `obj->time(` or `other::time(`.
bool is_global_or_std_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !tok_is(t[i + 1], "(")) return false;
  if (prev_is(t, i, ".") || prev_is(t, i, "->")) return false;
  if (prev_is(t, i, "::")) {
    if (i < 2) return true;  // leading `::name(` is the global namespace
    const Token& q = t[i - 2];
    if (q.kind == TokKind::Ident) return q.text == "std";
    return true;  // `= ::name(...)`: still the global namespace
  }
  // `double time(...)` declares a function of that name; a *call* never
  // directly follows a type identifier. Expression keywords still count as
  // call context (`return time(0)`).
  if (i > 0 && t[i - 1].kind == TokKind::Ident && !expr_keywords().count(t[i - 1].text)) {
    return false;
  }
  return true;
}

// --- no-wall-clock ---------------------------------------------------------

const std::set<std::string> kClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get",
};
const std::set<std::string> kClockCalls = {
    "time", "clock", "localtime", "gmtime", "mktime", "difftime", "ftime",
};

void rule_no_wall_clock(const RuleCtx& ctx) {
  if (ctx.f.rel == "src/sim/time.hpp") return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kClockTypes.count(t[i].text)) {
      ctx.report(t[i], "no-wall-clock",
                 "'" + t[i].text +
                     "' reads the host clock; simulated code must take time "
                     "from sim::Engine::now() (see src/sim/time.hpp)");
    } else if (kClockCalls.count(t[i].text) && is_global_or_std_call(t, i)) {
      ctx.report(t[i], "no-wall-clock",
                 "call to '" + t[i].text +
                     "()' reads the host clock; use the simulated clock "
                     "(sim::Engine::now())");
    }
  }
}

// --- no-os-entropy ---------------------------------------------------------

const std::set<std::string> kEntropyTypes = {"random_device"};
const std::set<std::string> kEntropyCalls = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "getenv", "secure_getenv",
};

void rule_no_os_entropy(const RuleCtx& ctx) {
  if (ctx.f.rel.starts_with("src/sim/rng.")) return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kEntropyTypes.count(t[i].text)) {
      ctx.report(t[i], "no-os-entropy",
                 "'" + t[i].text +
                     "' draws OS entropy; all randomness must flow through "
                     "the seeded sim::Rng");
    } else if (kEntropyCalls.count(t[i].text) && is_global_or_std_call(t, i)) {
      ctx.report(t[i], "no-os-entropy",
                 "call to '" + t[i].text +
                     "()' is environment-dependent; use sim::Rng (or CLI "
                     "arguments) and suppress with a reason if this really "
                     "is argument parsing");
    }
  }
}

// --- no-unordered-iteration / no-unordered-float-accumulation --------------

/// A loop whose visit order follows the hash layout: range-for over an
/// unordered container, or a classic for whose header calls .begin() on one.
struct UnorderedLoop {
  std::size_t for_tok = 0;     // index of `for`
  std::size_t body_begin = 0;  // token after `{` (or the single statement)
  std::size_t body_end = 0;    // matching `}` (or the `;`)
  std::string container;
};

std::vector<UnorderedLoop> find_unordered_loops(const SourceFile& f,
                                                const std::set<std::string>& vars) {
  std::vector<UnorderedLoop> loops;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || t[i].text != "for" || !tok_is(t[i + 1], "(")) continue;
    const std::size_t close = match_paren(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t colon = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (tok_is(t[j], ":") && colon == 0) colon = j;
    }
    std::string container;
    if (colon) {
      // Range-for: the expression's last identifier names the container.
      const Token& last = t[close - 1];
      if (last.kind == TokKind::Ident && vars.count(last.text)) container = last.text;
    } else {
      // Iterator loop: `U.begin()` / `U.cbegin()` inside the header.
      for (std::size_t j = i + 2; j + 3 < close; ++j) {
        if (t[j].kind == TokKind::Ident && vars.count(t[j].text) &&
            (tok_is(t[j + 1], ".") || tok_is(t[j + 1], "->")) &&
            t[j + 2].kind == TokKind::Ident &&
            (t[j + 2].text == "begin" || t[j + 2].text == "cbegin") && tok_is(t[j + 3], "(")) {
          container = t[j].text;
          break;
        }
      }
    }
    if (container.empty()) continue;
    UnorderedLoop loop;
    loop.for_tok = i;
    loop.container = container;
    if (close + 1 < t.size() && tok_is(t[close + 1], "{")) {
      loop.body_begin = close + 2;
      loop.body_end = match_brace(t, close + 1);
    } else {
      loop.body_begin = close + 1;
      loop.body_end = loop.body_begin;
      while (loop.body_end < t.size() && !tok_is(t[loop.body_end], ";")) ++loop.body_end;
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

void rule_no_unordered_iteration(const RuleCtx& ctx, const std::set<std::string>& vars) {
  const auto& t = ctx.f.tokens;
  for (const UnorderedLoop& loop : find_unordered_loops(ctx.f, vars)) {
    // Iterator loops are reported by the .begin() clause below.
    bool range_for = false;
    const std::size_t close = match_paren(t, loop.for_tok + 1);
    for (std::size_t j = loop.for_tok + 2; j < close; ++j) {
      if (tok_is(t[j], ":")) range_for = true;
    }
    if (range_for) {
      ctx.report(t[loop.for_tok], "no-unordered-iteration",
                 "range-for over unordered container '" + loop.container +
                     "': iteration order depends on the hash layout; "
                     "iterate a sorted snapshot, use std::map, or "
                     "suppress with a reason if order provably cannot "
                     "be observed");
    }
  }
  // Iterator style: `container.begin()` / `.cbegin()` anywhere.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !vars.count(t[i].text)) continue;
    if (i + 3 < t.size() && (tok_is(t[i + 1], ".") || tok_is(t[i + 1], "->")) &&
        t[i + 2].kind == TokKind::Ident &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") && tok_is(t[i + 3], "(")) {
      ctx.report(t[i], "no-unordered-iteration",
                 "iterator over unordered container '" + t[i].text +
                     "': iteration order depends on the hash layout; "
                     "iterate a sorted snapshot, use std::map, or suppress "
                     "with a reason if order provably cannot be observed");
    }
  }
}

const std::set<std::string> kCompoundAssign = {"+=", "-=", "*=", "/="};

void rule_no_unordered_float_accumulation(const RuleCtx& ctx, const Analysis& an) {
  const auto& t = ctx.f.tokens;
  std::set<std::string> floats;
  for (int p : an.closure[ctx.file_index]) {
    const auto& names = an.float_names[static_cast<std::size_t>(p)];
    floats.insert(names.begin(), names.end());
  }
  for (const UnorderedLoop& loop : find_unordered_loops(ctx.f, an.unordered_names)) {
    for (std::size_t j = loop.body_begin; j < loop.body_end && j < t.size(); ++j) {
      if (t[j].kind != TokKind::Punct) continue;
      std::string target;
      if (kCompoundAssign.count(t[j].text) && j > 0 && t[j - 1].kind == TokKind::Ident) {
        target = t[j - 1].text;
      } else if (t[j].text == "=" && j > 0 && t[j - 1].kind == TokKind::Ident) {
        // `x = x + ...` — the accumulator reappears on the right-hand side.
        const std::string& lhs = t[j - 1].text;
        for (std::size_t k = j + 1; k < loop.body_end && !tok_is(t[k], ";"); ++k) {
          if (t[k].kind == TokKind::Ident && t[k].text == lhs) {
            target = lhs;
            break;
          }
        }
      }
      if (target.empty() || !floats.count(target)) continue;
      ctx.report(t[j - 1], "no-unordered-float-accumulation",
                 "floating-point accumulation into '" + target +
                     "' inside a loop over unordered container '" + loop.container +
                     "': the reduction order follows the hash layout, so the "
                     "result is not reproducible; iterate a sorted snapshot "
                     "or accumulate per-entry and reduce in key order");
    }
  }
}

// --- no-exact-float-compare ------------------------------------------------

void rule_no_exact_float_compare(const RuleCtx& ctx, const Analysis& an) {
  const auto& t = ctx.f.tokens;
  // Float-declared names visible to this TU: its own plus its includes'.
  std::set<std::string> floats;
  for (int p : an.closure[ctx.file_index]) {
    const auto& names = an.float_names[static_cast<std::size_t>(p)];
    floats.insert(names.begin(), names.end());
  }
  const std::set<std::string>& own_floats = an.float_names[ctx.file_index];
  const std::set<std::string>& own_nonfloats =
      an.nonfloat_names[ctx.file_index];
  auto float_name = [&](const std::string& name) {
    // This TU's own integral declaration wins over a same-named float
    // pulled in from an included header (`std::uint64_t v` vs `double v`).
    if (own_nonfloats.count(name) && !own_floats.count(name)) return false;
    return floats.count(name) != 0;
  };
  // The value actually compared is the *terminal* of the postfix chain:
  // for `a[i].cpu_seconds == x` it is `cpu_seconds`, for `xs.size() != n`
  // it is the call to `size`. Resolve the terminal name going left from
  // the operator (backwards over `)`/`]` groups) and right from it
  // (forwards over `(`/`[`/`.`/`->`/`::` links).
  auto lhs_terminal = [&](std::size_t i) -> const Token* {
    std::size_t k = i;  // index of the token just left of ==/!=
    bool via_call = false;
    while (true) {
      if (tok_is(t[k], ")") || tok_is(t[k], "]")) {
        via_call = tok_is(t[k], ")");
        int depth = 1;
        while (k > 0 && depth > 0) {
          --k;
          if (tok_is(t[k], ")") || tok_is(t[k], "]")) ++depth;
          if (tok_is(t[k], "(") || tok_is(t[k], "[")) --depth;
        }
        if (k == 0) return nullptr;
        --k;
        continue;
      }
      // An identifier reached by backing out of a `(...)` group is a
      // callee: its return type is unknowable name-based, so a same-named
      // double *variable* elsewhere is not evidence (`xs.size()` vs the
      // `double size` member of an unrelated struct).
      if (via_call && t[k].kind == TokKind::Ident) return nullptr;
      return &t[k];
    }
  };
  auto rhs_terminal = [&](std::size_t i) -> const Token* {
    std::size_t k = i;  // index of the token just right of ==/!=
    if ((tok_is(t[k], "-") || tok_is(t[k], "+")) && k + 1 < t.size()) ++k;
    if (t[k].kind != TokKind::Ident) return &t[k];
    const Token* name = &t[k];
    while (k + 1 < t.size()) {
      if (tok_is(t[k + 1], "(")) {
        k = match_paren(t, k + 1);
        if (k >= t.size()) return name;
      } else if (tok_is(t[k + 1], "[")) {
        std::size_t d = 1, j = k + 2;
        while (j < t.size() && d > 0) {
          if (tok_is(t[j], "[")) ++d;
          if (tok_is(t[j], "]")) --d;
          ++j;
        }
        k = j - 1;
      } else if (tok_is(t[k + 1], ".") || tok_is(t[k + 1], "->") ||
                 tok_is(t[k + 1], "::")) {
        if (k + 2 >= t.size() || t[k + 2].kind != TokKind::Ident) return name;
        k += 2;
        name = &t[k];
      } else {
        break;
      }
    }
    // Terminal is a call: the return type is unknowable name-based (see
    // lhs_terminal), so do not treat the callee name as a float variable.
    if (name + 1 <= &t.back() && tok_is(*(name + 1), "(")) return nullptr;
    return name;
  };
  auto floaty = [&](const Token* tok) {
    if (tok == nullptr) return false;
    if (is_float_literal(*tok)) return true;
    return tok->kind == TokKind::Ident && float_name(tok->text);
  };
  auto never_float = [](const Token* tok) {
    if (tok == nullptr) return false;
    if (tok->kind == TokKind::String || tok->kind == TokKind::CharLit) return true;
    return tok->kind == TokKind::Ident &&
           (tok->text == "nullptr" || tok->text == "true" || tok->text == "false");
  };
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!tok_is(t[i], "==") && !tok_is(t[i], "!=")) continue;
    const Token* lhs = lhs_terminal(i - 1);
    const Token* rhs = rhs_terminal(i + 1);
    // A string/char/bool/nullptr operand means this is not a float
    // comparison, no matter what names are in play.
    if (never_float(lhs) || never_float(rhs)) continue;
    if (!floaty(lhs) && !floaty(rhs)) continue;
    ctx.report(t[i], "no-exact-float-compare",
               "exact floating-point comparison ('" + t[i].text +
                   "'): equality on float/double encodes accidental "
                   "bit-identity; compare against a tolerance, use integer "
                   "state, or mark the file as an audited determinism oracle "
                   "with a file-scope suppression");
  }
}

// --- header hygiene --------------------------------------------------------

void rule_header_guard(const RuleCtx& ctx) {
  if (!ctx.f.is_header) return;
  for (const auto& tok : ctx.f.tokens) {
    if (tok.kind != TokKind::Directive) {
      // Code before any directive: no guard protects it.
      break;
    }
    const std::string d = tok.text;
    if (d.find("pragma") != std::string::npos && d.find("once") != std::string::npos) return;
    if (d.find("ifndef") != std::string::npos) return;
    if (d.find("if") != std::string::npos && d.find("defined") != std::string::npos) return;
    break;  // some other directive (e.g. #include) came first
  }
  ctx.report(1, 1, "header-guard",
             "header does not open with '#pragma once' (or an #ifndef "
             "include guard)");
}

void rule_using_namespace_header(const RuleCtx& ctx) {
  if (!ctx.f.is_header) return;
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::Ident && t[i].text == "using" &&
        t[i + 1].kind == TokKind::Ident && t[i + 1].text == "namespace") {
      ctx.report(t[i], "using-namespace-header",
                 "'using namespace' in a header leaks the namespace into "
                 "every includer");
    }
  }
}

// --- metric-name -----------------------------------------------------------

bool metric_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

/// Full metric name: `segment(.segment)+`, segments lowercase [a-z0-9_].
bool metric_name_ok(const std::string& s) {
  std::size_t start = 0;
  int segments = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '.') {
      if (i == start) return false;  // empty segment
      for (std::size_t k = start; k < i; ++k) {
        if (!metric_char_ok(s[k])) return false;
      }
      ++segments;
      start = i + 1;
    }
  }
  return segments >= 2;
}

/// Prefix of a concatenated metric name: same charset, must already name
/// the subsystem (contain a dot), may end with a dot ("mr.queue.").
bool metric_prefix_ok(const std::string& s) {
  if (s.empty() || s.front() == '.') return false;
  bool has_dot = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '.') {
      if (i > 0 && s[i - 1] == '.') return false;  // empty segment
      has_dot = true;
      continue;
    }
    if (!metric_char_ok(s[i])) return false;
  }
  return has_dot;
}

const std::set<std::string> kMetricFactories = {"counter", "gauge", "histogram"};

/// Registry::counter/gauge/histogram with a literal first argument must use
/// the `subsystem.metric_name` convention (lowercase, dot-separated). A
/// literal that is concatenated onward (`"mr.queue." + q + ...`) is checked
/// as a prefix. Non-literal first arguments are out of scope.
void rule_metric_name(const RuleCtx& ctx) {
  const auto& t = ctx.f.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !kMetricFactories.count(t[i].text)) continue;
    if (!prev_is(t, i, ".") && !prev_is(t, i, "->")) continue;  // member call only
    if (!tok_is(t[i + 1], "(")) continue;
    const Token& lit = t[i + 2];
    if (lit.kind != TokKind::String) continue;
    const bool concatenated = i + 3 < t.size() && tok_is(t[i + 3], "+");
    const bool ok = concatenated ? metric_prefix_ok(lit.text) : metric_name_ok(lit.text);
    if (!ok) {
      ctx.report(lit, "metric-name",
                 "metric name \"" + lit.text + "\" passed to " + t[i].text +
                     "() must follow 'subsystem.metric_name': lowercase "
                     "[a-z0-9_] segments joined by dots" +
                     (concatenated ? " (checked as a concatenation prefix)" : ""));
    }
  }
}

// --- layer-dag -------------------------------------------------------------

/// The module layering (DESIGN.md §9): each src/<module> may include only
/// the modules listed here. obs is base infrastructure (pure, depends on
/// nothing); sim sits above it; core and viz are the top of the DAG.
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"obs", {}},
      {"sim", {"obs"}},
      {"net", {"sim", "obs"}},
      {"virt", {"net", "sim", "obs"}},
      {"monitor", {"virt", "net", "sim", "obs"}},
      {"hdfs", {"virt", "net", "sim", "obs"}},
      {"mapreduce", {"hdfs", "virt", "net", "sim", "obs"}},
      {"ml", {"mapreduce", "hdfs", "virt", "net", "sim", "obs"}},
      {"workloads", {"mapreduce", "hdfs", "virt", "net", "sim", "obs", "monitor"}},
      {"tuner", {"mapreduce", "hdfs", "virt", "net", "sim", "obs", "monitor"}},
      {"viz", {"ml", "mapreduce", "hdfs", "virt", "net", "sim", "obs"}},
      {"core",
       {"ml", "mapreduce", "hdfs", "virt", "net", "sim", "obs", "monitor", "tuner",
        "workloads", "viz"}},
  };
  return kDeps;
}

std::string src_module(const std::string& rel) {
  if (!rel.starts_with("src/")) return {};
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return {};
  return rel.substr(4, slash - 4);
}

void rule_layer_dag(const std::vector<SourceFile>& files, const Analysis& an,
                    std::vector<std::vector<Finding>>& buckets) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::string mod = src_module(f.rel);
    if (mod.empty()) continue;  // layering constrains src/ only
    const auto deps = layer_deps().find(mod);
    for (const IncludeEdge& e : an.includes[fi]) {
      for (int ti : e.targets) {
        const std::string dep = src_module(files[static_cast<std::size_t>(ti)].rel);
        if (dep.empty() || dep == mod) continue;
        if (deps == layer_deps().end()) {
          buckets[fi].push_back(Finding{
              f.path, e.line, e.col, "layer-dag",
              "module 'src/" + mod +
                  "' is not in the layering table; add it to layer_deps() in "
                  "tools/vhadoop_lint/lint.cpp with its allowed dependencies",
              false,
              {},
              {}});
          break;
        }
        if (!deps->second.count(dep)) {
          buckets[fi].push_back(Finding{
              f.path, e.line, e.col, "layer-dag",
              "layering violation: src/" + mod + " must not include src/" + dep +
                  " ('" + e.spec +
                  "'); the module DAG is sim -> {net,virt} -> {hdfs,mapreduce} "
                  "-> {workloads,ml,tuner} with obs at the base and core/viz "
                  "on top (DESIGN.md §9)",
              false,
              {},
              {}});
        }
      }
    }
  }
}

// --- include-self-sufficiency ----------------------------------------------

/// Strip the include-root prefix so a repo path becomes the string a file
/// would actually #include.
std::string include_spec_for(const std::string& rel) {
  for (const char* root : {"src/", "tests/", "tools/", "bench/", "examples/"}) {
    if (rel.starts_with(root)) return rel.substr(std::string(root).size());
  }
  return rel;
}

/// Does the identifier at t[i] look like a *use* of a type/function — a
/// call, template-id, qualified name, or the type of a declaration — rather
/// than an arbitrary word? Keeps the symbol-resolution check precise.
bool looks_like_symbol_use(const std::vector<Token>& t, std::size_t i, const Analysis& an) {
  if (prev_is(t, i, ".") || prev_is(t, i, "->")) return false;
  if (prev_is(t, i, "::")) {
    if (i < 2) return true;
    const Token& q = t[i - 2];
    if (q.kind != TokKind::Ident) return true;  // leading `::`
    // Only names qualified by a *repo namespace* are uses of the bare
    // symbol; `SomeClass::member` resolves through the class, which was
    // already checked as a use at its own position.
    return an.namespaces.count(q.text) != 0;
  }
  // Directly after another identifier this is a declarator name, not a use:
  // `Result run(...)` declares run. Expression keywords (`return Foo{...}`)
  // still count as use context.
  if (i > 0 && t[i - 1].kind == TokKind::Ident && !is_cpp_keyword(t[i - 1].text)) {
    return false;
  }
  static const std::set<std::string> kBuiltinTypes = {
      "int",  "double", "float",    "char", "bool",  "auto",
      "void", "long",   "unsigned", "short", "signed", "wchar_t",
  };
  if (i > 0 && t[i - 1].kind == TokKind::Ident && kBuiltinTypes.count(t[i - 1].text)) {
    return false;  // `unsigned Foo;` — declarator after a builtin type
  }
  if (i + 1 >= t.size()) return false;
  const Token& nx = t[i + 1];
  if (tok_is(nx, "(") || tok_is(nx, "{") || tok_is(nx, "::")) return true;
  if (nx.kind == TokKind::Ident && !is_cpp_keyword(nx.text)) return true;  // `Type name`
  if ((tok_is(nx, "&") || tok_is(nx, "&&") || tok_is(nx, "*")) && i + 2 < t.size() &&
      t[i + 2].kind == TokKind::Ident) {
    return true;  // `Type& name`
  }
  if (tok_is(nx, "<")) {
    const std::size_t after = skip_angles(t, i + 1);
    return after != i + 1;  // balanced template argument list
  }
  return false;
}

void rule_include_self_sufficiency(const std::vector<SourceFile>& files, const Analysis& an,
                                   std::vector<std::vector<Finding>>& buckets) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const std::set<int>& cl = an.closure[fi];
    std::set<std::string> reported;
    const auto& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::Ident || is_cpp_keyword(t[i].text)) continue;
      const auto prov = an.providers.find(t[i].text);
      if (prov == an.providers.end()) continue;  // nobody exports this name
      // Only header-declared symbols are actionable: a name exported solely
      // by .cpp files (e.g. gtest's TEST macro re-detected at use sites)
      // cannot be reached by adding an include, so the real declaration
      // must live outside the repo file set.
      bool header_provider = false;
      for (int p : prov->second) {
        if (files[static_cast<std::size_t>(p)].is_header) {
          header_provider = true;
          break;
        }
      }
      if (!header_provider) continue;
      if (an.declared[fi].count(t[i].text)) continue;  // declared here (any scope)
      if (reported.count(t[i].text)) continue;
      if (!looks_like_symbol_use(t, i, an)) continue;
      // Resolvable when ANY file in the closure declares the name at any
      // scope — biased against false positives: the tree compiles, so a
      // finding must mean the declaring header genuinely isn't reachable.
      bool resolvable = false;
      for (int p : cl) {
        if (an.declared[static_cast<std::size_t>(p)].count(t[i].text)) {
          resolvable = true;
          break;
        }
      }
      if (resolvable) continue;
      reported.insert(t[i].text);
      // Suggest the first header (by path) that declares the symbol.
      std::string fix, where;
      for (int p : prov->second) {
        const SourceFile& pf = files[static_cast<std::size_t>(p)];
        if (where.empty()) where = pf.rel;
        if (pf.is_header) {
          fix = include_spec_for(pf.rel);
          where = pf.rel;
          break;
        }
      }
      buckets[fi].push_back(Finding{
          f.path, t[i].line, t[i].col, "include-self-sufficiency",
          "'" + t[i].text + "' is declared in " + where +
              ", which is not in this file's transitive include closure; the "
              "TU only compiles through accidental include order" +
              (fix.empty() ? "" : " — add #include \"" + fix + "\""),
          false,
          {},
          fix});
    }
  }
}

// --- thread-shared-mutation ------------------------------------------------

const std::set<std::string> kAssignOps = {"=",  "+=", "-=", "*=",  "/=",  "%=",
                                          "&=", "|=", "^=", "<<=", ">>=", "++",
                                          "--"};
const std::set<std::string> kLockTokens = {"lock_guard", "scoped_lock", "unique_lock",
                                           "shared_lock"};
const std::set<std::string> kTypeKeywords = {
    "int",  "double", "float",    "char", "bool",  "auto",  "unsigned",
    "long", "short",  "signed",   "const", "static", "void",
};

/// The written-to expression ending just before the operator at `op`:
/// a chain of identifiers, member accesses and subscripts. Returns the
/// chain's root identifier index (npos when the target is not a chain).
struct WriteTarget {
  std::size_t root = static_cast<std::size_t>(-1);
  std::string root_name;
  bool via_this = false;
  std::vector<std::pair<std::size_t, std::size_t>> subscripts;  // [begin,end)
};

WriteTarget walk_back_target(const std::vector<Token>& t, std::size_t op) {
  WriteTarget w;
  if (op == 0) return w;
  std::size_t j = op - 1;
  for (;;) {
    if (tok_is(t[j], "]")) {
      int depth = 0;
      std::size_t k = j;
      for (;;) {
        if (tok_is(t[k], "]")) ++depth;
        if (tok_is(t[k], "[")) {
          if (--depth == 0) break;
        }
        if (k == 0) return w;
        --k;
      }
      w.subscripts.emplace_back(k + 1, j);
      if (k == 0) return w;
      j = k - 1;
      continue;
    }
    if (t[j].kind == TokKind::Ident) {
      if (is_cpp_keyword(t[j].text) && t[j].text != "this") return w;
      w.root = j;
      w.root_name = t[j].text;
      if (t[j].text == "this") w.via_this = true;
      if (j >= 2 && (tok_is(t[j - 1], ".") || tok_is(t[j - 1], "->"))) {
        j -= 2;
        continue;
      }
      return w;
    }
    return w;
  }
}

/// Names declared inside a token range (locals): `Type name =`, `auto& x :`,
/// structured bindings, and `static` locals (returned separately — those
/// stay shared across worker iterations).
void collect_locals(const std::vector<Token>& t, std::size_t b, std::size_t e,
                    std::set<std::string>& locals, std::set<std::string>& statics) {
  bool static_stmt = false;
  for (std::size_t j = b; j < e && j < t.size(); ++j) {
    if (tok_is(t[j], ";")) static_stmt = false;
    if (t[j].kind != TokKind::Ident) continue;
    if (t[j].text == "static") static_stmt = true;
    // `auto [a, b] = ...` / `auto& [k, v] :`
    if (t[j].text == "auto") {
      std::size_t k = j + 1;
      while (k < e && (tok_is(t[k], "&") || tok_is(t[k], "&&") || tok_is(t[k], "*") ||
                       (t[k].kind == TokKind::Ident && t[k].text == "const"))) {
        ++k;
      }
      if (k < e && tok_is(t[k], "[")) {
        for (++k; k < e && !tok_is(t[k], "]"); ++k) {
          if (t[k].kind == TokKind::Ident) locals.insert(t[k].text);
        }
        continue;
      }
    }
    // `<type-ish> name` followed by a declarator terminator.
    const bool type_ish =
        !is_cpp_keyword(t[j].text) || kTypeKeywords.count(t[j].text) != 0;
    if (!type_ish) continue;
    std::size_t k = j + 1;
    if (k < e && tok_is(t[k], "<")) {
      const std::size_t after = skip_angles(t, k);
      if (after != k) k = after;
    }
    while (k < e && (tok_is(t[k], "&") || tok_is(t[k], "&&") || tok_is(t[k], "*") ||
                     (t[k].kind == TokKind::Ident && t[k].text == "const"))) {
      ++k;
    }
    if (k < e && k + 1 < t.size() && t[k].kind == TokKind::Ident &&
        !is_cpp_keyword(t[k].text) &&
        (tok_is(t[k + 1], "=") || tok_is(t[k + 1], ";") || tok_is(t[k + 1], "{") ||
         tok_is(t[k + 1], ":") || tok_is(t[k + 1], "("))) {
      // `(` is a terminator only because the pattern already demands the
      // two-ident shape `Type name(...)` (paren-init declaration); a bare
      // call `name(...)` has no preceding type identifier to match.
      (static_stmt ? statics : locals).insert(t[k].text);
    }
  }
}

/// Index of the first lock acquisition inside [b, e): a lock-guard type or
/// a member `.lock()` call. Writes after it count as guarded.
std::size_t first_lock_at(const std::vector<Token>& t, std::size_t b, std::size_t e) {
  for (std::size_t j = b; j < e && j < t.size(); ++j) {
    if (t[j].kind != TokKind::Ident) continue;
    if (kLockTokens.count(t[j].text)) return j;
    if ((t[j].text == "lock" || t[j].text == "lock_shared") && j + 1 < t.size() &&
        tok_is(t[j + 1], "(") && (prev_is(t, j, ".") || prev_is(t, j, "->"))) {
      return j;
    }
  }
  return e;
}

/// Scan one body region for unsynchronized writes. `classify` decides, for
/// a chain root that is not local/atomic/guarded/per-slot, whether and how
/// to report it (empty string = ignore).
template <typename Classify>
void scan_writes(const RuleCtx& ctx, const Analysis& an, std::size_t b, std::size_t e,
                 const std::set<std::string>& locals, const std::set<std::string>& statics,
                 const Classify& classify) {
  const auto& t = ctx.f.tokens;
  const std::size_t lock_at = first_lock_at(t, b, e);
  int bracket_depth = 0;
  for (std::size_t j = b; j < e && j < t.size(); ++j) {
    if (tok_is(t[j], "[")) ++bracket_depth;
    if (tok_is(t[j], "]")) --bracket_depth;
    if (t[j].kind != TokKind::Punct || !kAssignOps.count(t[j].text)) continue;
    if (bracket_depth > 0) continue;  // subscript / capture-init expressions
    if (j > 0 && t[j - 1].kind == TokKind::Ident && t[j - 1].text == "operator") continue;
    WriteTarget w;
    if ((t[j].text == "++" || t[j].text == "--") && j + 1 < t.size() &&
        t[j + 1].kind == TokKind::Ident && !(j > 0 && t[j - 1].kind == TokKind::Ident)) {
      // Pre-increment: walk the chain forward (`++counts[p]`, `++s.n`).
      w.root = j + 1;
      w.root_name = t[j + 1].text;
      std::size_t k = j + 2;
      while (k < t.size()) {
        if (tok_is(t[k], "[")) {
          int depth = 0;
          std::size_t c = k;
          for (; c < t.size(); ++c) {
            if (tok_is(t[c], "[")) ++depth;
            if (tok_is(t[c], "]") && --depth == 0) break;
          }
          if (c >= t.size()) break;
          w.subscripts.emplace_back(k + 1, c);
          k = c + 1;
          continue;
        }
        if ((tok_is(t[k], ".") || tok_is(t[k], "->")) && k + 1 < t.size() &&
            t[k + 1].kind == TokKind::Ident) {
          k += 2;
          continue;
        }
        break;
      }
    } else {
      w = walk_back_target(t, j);
    }
    if (w.root == static_cast<std::size_t>(-1)) continue;
    // Per-index slot: any subscript mentioning a local/param is the
    // sanctioned parallel output pattern (out[i] = ...).
    bool per_slot = false;
    for (const auto& [sb, se] : w.subscripts) {
      for (std::size_t k = sb; k < se; ++k) {
        if (t[k].kind == TokKind::Ident && locals.count(t[k].text)) per_slot = true;
      }
    }
    if (per_slot) continue;
    if (statics.count(w.root_name)) {
      ctx.report(t[w.root], "thread-shared-mutation",
                 classify(w, /*is_static_local=*/true));
      continue;
    }
    if (locals.count(w.root_name) && !w.via_this) continue;
    if (an.atomic_names.count(w.root_name)) continue;
    if (j >= lock_at) continue;  // a lock is held by this point
    const std::string msg = classify(w, /*is_static_local=*/false);
    if (!msg.empty()) ctx.report(t[w.root], "thread-shared-mutation", msg);
  }
}

void rule_thread_shared_mutation(const std::vector<SourceFile>& files, const Analysis& an,
                                 std::vector<std::vector<Finding>>& buckets) {
  // Pass 1: the worker lambda bodies themselves.
  for (const WorkerLambda& lam : an.worker_lambdas) {
    const SourceFile& f = files[static_cast<std::size_t>(lam.file)];
    RuleCtx ctx{f, buckets[static_cast<std::size_t>(lam.file)],
                static_cast<std::size_t>(lam.file)};
    std::set<std::string> locals = lam.params;
    std::set<std::string> statics;
    collect_locals(f.tokens, lam.body_begin, lam.body_end, locals, statics);
    const std::string where = lam.entry + " lambda at " + f.rel + ":" +
                              std::to_string(lam.line);
    scan_writes(ctx, an, lam.body_begin, lam.body_end, locals, statics,
                [&](const WriteTarget& w, bool is_static_local) -> std::string {
                  const std::string head = "worker threads (" + where + ") write '" +
                                           w.root_name + "' ";
                  if (is_static_local) {
                    return head + "— a function-local static shared across "
                                  "iterations — without synchronization";
                  }
                  if (an.mutable_globals.count(w.root_name)) {
                    return head + "— namespace-scope state — without "
                                  "synchronization; guard it with a lock or "
                                  "make it atomic";
                  }
                  if (w.via_this || (lam.captures_this && w.root_name.ends_with("_"))) {
                    return head + "— member state captured via this — without "
                                  "synchronization; use a per-index slot, an "
                                  "atomic, or a lock";
                  }
                  if (lam.ref_captures.count(w.root_name) || lam.ref_default) {
                    if (lam.val_captures.count(w.root_name)) return {};
                    return head + "captured by reference without "
                                  "synchronization; use a per-index slot "
                                  "(out[i] = ...), an atomic, or a lock";
                  }
                  return {};
                });
  }

  // Pass 2: functions transitively reachable from a worker lambda (across
  // TUs). Only definitely-shared sinks are flagged here: namespace-scope
  // variables and function-local statics — member identity is unknowable
  // by name alone.
  for (const auto& [fidx, witness] : an.worker_reachable) {
    const FunctionDef& def = an.functions[fidx];
    const SourceFile& f = files[static_cast<std::size_t>(def.file)];
    RuleCtx ctx{f, buckets[static_cast<std::size_t>(def.file)],
                static_cast<std::size_t>(def.file)};
    std::set<std::string> locals, statics;
    collect_locals(f.tokens, def.body_begin, def.body_end, locals, statics);
    scan_writes(ctx, an, def.body_begin, def.body_end, locals, statics,
                [&](const WriteTarget& w, bool is_static_local) -> std::string {
                  const std::string head = "'" + def.name +
                                           "' runs on worker threads (reachable from " +
                                           witness + ") and writes '" + w.root_name + "' ";
                  if (is_static_local) {
                    return head + "— a function-local static — without "
                                  "synchronization";
                  }
                  if (an.mutable_globals.count(w.root_name) && !locals.count(w.root_name)) {
                    return head + "— namespace-scope state — without "
                                  "synchronization; guard it with a lock or "
                                  "make it atomic";
                  }
                  return {};
                });
  }
}

// --- suppression well-formedness -------------------------------------------

/// Audit-trail requirement: every reason must cite the PR that audited the
/// suppression ("... PR 8 ...").
bool cites_pr(const std::string& reason) {
  for (std::size_t i = 0; i + 1 < reason.size(); ++i) {
    if (reason[i] == 'P' && reason[i + 1] == 'R') {
      std::size_t j = i + 2;
      while (j < reason.size() && (reason[j] == ' ' || reason[j] == '#')) ++j;
      if (j < reason.size() && std::isdigit(static_cast<unsigned char>(reason[j]))) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Result run(const std::vector<SourceFile>& files, const std::vector<std::string>& only_rules) {
  auto enabled = [&](const std::string& rule) {
    return only_rules.empty() ||
           std::find(only_rules.begin(), only_rules.end(), rule) != only_rules.end();
  };

  const Analysis an = analyze(files);

  // Cross-TU rules run once over the whole set, bucketing findings by file.
  std::vector<std::vector<Finding>> buckets(files.size());
  if (enabled("thread-shared-mutation")) rule_thread_shared_mutation(files, an, buckets);
  if (enabled("layer-dag")) rule_layer_dag(files, an, buckets);
  if (enabled("include-self-sufficiency")) {
    rule_include_self_sufficiency(files, an, buckets);
  }

  Result res;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    std::vector<Finding> raw = std::move(buckets[fi]);
    RuleCtx ctx{f, raw, fi};
    if (enabled("no-wall-clock")) rule_no_wall_clock(ctx);
    if (enabled("no-os-entropy")) rule_no_os_entropy(ctx);
    if (enabled("no-unordered-iteration")) {
      rule_no_unordered_iteration(ctx, an.unordered_names);
    }
    if (enabled("no-unordered-float-accumulation")) {
      rule_no_unordered_float_accumulation(ctx, an);
    }
    if (enabled("no-exact-float-compare")) rule_no_exact_float_compare(ctx, an);
    if (enabled("header-guard")) rule_header_guard(ctx);
    if (enabled("using-namespace-header")) rule_using_namespace_header(ctx);
    if (enabled("metric-name")) rule_metric_name(ctx);

    // Malformed suppressions are findings themselves — and never
    // suppressible, or a bad suppression could excuse itself.
    for (const auto& sup : f.suppressions) {
      if (sup.rule.empty()) {
        raw.push_back(Finding{f.path, sup.line, 1, "bad-suppression",
                              "malformed vlint directive: expected "
                              "'vlint: allow(rule-name) audited PR <n>: reason'",
                              false,
                              {},
                              {}});
      } else if (!is_known_rule(sup.rule) || sup.rule == "bad-suppression") {
        raw.push_back(Finding{f.path, sup.line, 1, "bad-suppression",
                              "unknown rule '" + sup.rule + "' in vlint directive", false,
                              {},
                              {}});
      } else if (sup.reason.empty()) {
        raw.push_back(Finding{f.path, sup.line, 1, "bad-suppression",
                              "suppression of '" + sup.rule +
                                  "' carries no reason; every allow() must say why",
                              false,
                              {},
                              {}});
      } else if (!cites_pr(sup.reason)) {
        raw.push_back(Finding{f.path, sup.line, 1, "bad-suppression",
                              "suppression of '" + sup.rule +
                                  "' does not cite its audit: the reason must name "
                                  "the PR that reviewed it (e.g. 'audited PR 8: ...')",
                              false,
                              {},
                              {}});
      }
    }

    // Apply suppressions: a well-formed allow(rule) on the finding's line or
    // the line directly above silences it; a well-formed allow-file(rule)
    // anywhere in the file silences the rule file-wide.
    for (auto& finding : raw) {
      if (finding.rule == "bad-suppression") continue;
      for (const auto& sup : f.suppressions) {
        if (sup.rule != finding.rule || sup.reason.empty() || !cites_pr(sup.reason)) continue;
        if (sup.file_scope || sup.line == finding.line || sup.line == finding.line - 1) {
          finding.suppressed = true;
          finding.reason = sup.reason;
          break;
        }
      }
    }

    std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
      if (a.line != b.line) return a.line < b.line;
      if (a.col != b.col) return a.col < b.col;
      return a.rule < b.rule;
    });
    for (auto& finding : raw) {
      if (!finding.suppressed) ++res.unsuppressed;
      res.findings.push_back(std::move(finding));
    }
  }
  return res;
}

}  // namespace vlint

// vlint: allow-file(no-exact-float-compare) audited PR 8: baseline regression oracle; recorded JSON numbers are compared exactly
// bench_check — benchmark-regression gate over BENCH_*.json results.
//
// Reads every baseline file in --baselines (schema
// "vhadoop-bench-baseline-v1"), locates the matching BENCH_<bench>.json in
// --results, and compares each tracked metric against its recorded value:
//
//   {"schema": "vhadoop-bench-baseline-v1", "bench": "scale_cluster",
//    "checks": [{"name": "wc_sim_64",
//                "row": {"vms": 64, "mode": "incremental"},
//                "col": "wordcount_sim_s",
//                "value": 8.25, "direction": "lower_better",
//                "max_regress_pct": 15, "gate": true}, ...]}
//
// A check regresses when the result moves against `direction` by more than
// max_regress_pct. Gated regressions fail the run (exit 1); ungated ones
// (wall-clock metrics, which vary across machines) only warn. Checks whose
// row/col is absent from the results are skipped unless --require-all (the
// CI mode) makes that an error; locally a reduced sweep may legitimately
// omit the largest cluster sizes. --update rewrites every baseline file
// with the values just measured (the intentional-refresh workflow in the
// README).
//
// The reverse direction is also enforced: a BENCH_*.json in --results with
// no baseline covering it is reported as an orphan — a warning locally, a
// failure under --require-all, so a new benchmark cannot silently ship
// ungated. --only=NAME[,NAME] restricts both directions to the named
// benches (the CI matrix runs one leg per topology out of a shared
// baseline directory).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testutil/mini_json.hpp"

namespace fs = std::filesystem;
using vhadoop::testutil::JsonParser;
using vhadoop::testutil::JsonValue;

namespace {

struct Options {
  std::string baselines;
  std::string results;
  bool update = false;
  bool require_all = false;
  /// Bench names to gate; empty = all. Both the baseline walk and the
  /// orphan scan honour it.
  std::vector<std::string> only;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baselines=DIR --results=DIR [--update] [--require-all] "
               "[--only=NAME[,NAME...]]\n",
               argv0);
  return 2;
}

bool selected(const Options& opt, const std::string& bench) {
  if (opt.only.empty()) return true;
  return std::find(opt.only.begin(), opt.only.end(), bench) != opt.only.end();
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// True when every key of `sel` matches the row (numbers by value, strings
/// exactly) — the baseline's way of pinning one row of a sweep.
bool row_matches(const JsonValue& row, const JsonValue& sel) {
  for (const auto& [key, want] : sel.object) {
    if (!row.has(key)) return false;
    const JsonValue& got = row.at(key);
    if (want.is_number()) {
      if (!got.is_number() || got.number != want.number) return false;
    } else if (want.is_string()) {
      if (!got.is_string() || got.str != want.str) return false;
    } else {
      return false;
    }
  }
  return true;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
  return out;
}

/// Serialize a baseline back to disk (canonical key order; values replaced
/// by --update). The file is machine-managed, so the layout is ours.
std::string baseline_to_json(const std::string& bench, const std::vector<JsonValue>& checks) {
  std::string out = "{\"schema\": \"vhadoop-bench-baseline-v1\", \"bench\": " + quoted(bench) +
                    ", \"checks\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const JsonValue& c = checks[i];
    out += "  {\"name\": " + quoted(c.at("name").str) + ", \"row\": {";
    bool first = true;
    for (const auto& [key, v] : c.at("row").object) {
      if (!first) out += ", ";
      first = false;
      out += quoted(key) + ": " + (v.is_string() ? quoted(v.str) : fmt(v.number));
    }
    out += "}, \"col\": " + quoted(c.at("col").str);
    out += ", \"value\": " + fmt(c.at("value").number);
    out += ", \"direction\": " + quoted(c.at("direction").str);
    out += ", \"max_regress_pct\": " + fmt(c.at("max_regress_pct").number);
    out += ", \"gate\": " + std::string(c.at("gate").boolean ? "true" : "false") + "}";
    out += (i + 1 < checks.size()) ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--baselines=", 12) == 0) {
      opt.baselines = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--results=", 10) == 0) {
      opt.results = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--update") == 0) {
      opt.update = true;
    } else if (std::strcmp(argv[i], "--require-all") == 0) {
      opt.require_all = true;
    } else if (std::strncmp(argv[i], "--only=", 7) == 0) {
      std::string list = argv[i] + 7;
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        if (comma > pos) opt.only.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
      }
      if (opt.only.empty()) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.baselines.empty() || opt.results.empty()) return usage(argv[0]);

  int failures = 0;
  int checked = 0;
  int skipped = 0;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(opt.baselines)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "bench_check: no baseline files in %s\n", opt.baselines.c_str());
    return 2;
  }

  std::vector<std::string> baselined;
  for (const fs::path& file : files) {
    JsonValue base;
    try {
      base = JsonParser::parse(read_file(file));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_check: %s: %s\n", file.string().c_str(), e.what());
      return 2;
    }
    if (!base.has("schema") || base.at("schema").str != "vhadoop-bench-baseline-v1") {
      std::fprintf(stderr, "bench_check: %s: not a vhadoop-bench-baseline-v1 file\n",
                   file.string().c_str());
      return 2;
    }
    const std::string bench = base.at("bench").str;
    baselined.push_back(bench);
    if (!selected(opt, bench)) continue;
    const fs::path results_path = fs::path(opt.results) / ("BENCH_" + bench + ".json");

    JsonValue results;
    bool have_results = fs::exists(results_path);
    if (have_results) {
      try {
        results = JsonParser::parse(read_file(results_path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_check: %s: %s\n", results_path.string().c_str(), e.what());
        return 2;
      }
    } else if (opt.require_all) {
      std::fprintf(stderr, "FAIL %s: missing results file %s\n", bench.c_str(),
                   results_path.string().c_str());
      ++failures;
      continue;
    } else {
      std::printf("skip %s: no %s\n", bench.c_str(), results_path.string().c_str());
      skipped += static_cast<int>(base.at("checks").array.size());
      continue;
    }

    std::vector<JsonValue> checks = base.at("checks").array;
    for (JsonValue& check : checks) {
      const std::string& name = check.at("name").str;
      const std::string& col = check.at("col").str;
      const double want = check.at("value").number;
      const bool lower_better = check.at("direction").str == "lower_better";
      const double max_pct = check.at("max_regress_pct").number;
      const bool gate = check.at("gate").boolean;

      const JsonValue* row = nullptr;
      for (const JsonValue& r : results.at("rows").array) {
        if (row_matches(r, check.at("row"))) {
          row = &r;
          break;
        }
      }
      if (row == nullptr || !row->has(col) || !row->at(col).is_number()) {
        if (opt.require_all) {
          std::fprintf(stderr, "FAIL %s/%s: row or column missing from results\n",
                       bench.c_str(), name.c_str());
          ++failures;
        } else {
          std::printf("skip %s/%s: row or column not in results\n", bench.c_str(),
                      name.c_str());
          ++skipped;
        }
        continue;
      }
      const double got = row->at(col).number;
      if (opt.update) {
        check.object["value"].number = got;
        continue;
      }
      // Positive = worse than baseline by that many percent.
      double regress_pct = 0.0;
      if (want != 0.0) {
        regress_pct = (lower_better ? (got - want) : (want - got)) / std::abs(want) * 100.0;
      } else if (got != 0.0) {
        regress_pct = lower_better ? 100.0 : -100.0;
      }
      ++checked;
      if (regress_pct > max_pct) {
        std::fprintf(stderr, "%s %s/%s (%s): %s vs baseline %s — %+.1f%% (limit %.0f%%)\n",
                     gate ? "FAIL" : "warn", bench.c_str(), name.c_str(), col.c_str(),
                     fmt(got).c_str(), fmt(want).c_str(), regress_pct, max_pct);
        if (gate) ++failures;
      } else {
        std::printf("ok   %s/%s (%s): %s vs baseline %s — %+.1f%%\n", bench.c_str(),
                    name.c_str(), col.c_str(), fmt(got).c_str(), fmt(want).c_str(),
                    regress_pct);
      }
    }

    if (opt.update) {
      std::ofstream out(file, std::ios::binary);
      out << baseline_to_json(bench, checks);
      std::printf("updated %s\n", file.string().c_str());
    }
  }

  // Orphan scan: every produced result must be gated by some baseline. A
  // silent gap here is how a new benchmark regresses unnoticed for months.
  std::vector<fs::path> produced;
  if (fs::exists(opt.results)) {
    for (const auto& entry : fs::directory_iterator(opt.results)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
        produced.push_back(entry.path());
      }
    }
  }
  std::sort(produced.begin(), produced.end());
  for (const fs::path& path : produced) {
    const std::string stem = path.stem().string();       // BENCH_<bench>
    const std::string bench = stem.substr(6);
    if (!selected(opt, bench)) continue;
    if (std::find(baselined.begin(), baselined.end(), bench) != baselined.end()) continue;
    std::fprintf(stderr, "%s %s: results file %s has no baseline\n",
                 opt.require_all ? "FAIL" : "warn", bench.c_str(),
                 path.filename().string().c_str());
    std::fprintf(stderr,
                 "     add one: write %s/%s.json as {\"schema\": "
                 "\"vhadoop-bench-baseline-v1\", \"bench\": \"%s\", \"checks\": [...]} "
                 "then refresh values with: bench_check --baselines=%s --results=%s --update\n",
                 opt.baselines.c_str(), bench.c_str(), bench.c_str(), opt.baselines.c_str(),
                 opt.results.c_str());
    if (opt.require_all) ++failures;
  }

  if (!opt.update) {
    std::printf("bench_check: %d checked, %d skipped, %d failure(s)\n", checked, skipped,
                failures);
  }
  return failures == 0 ? 0 : 1;
}

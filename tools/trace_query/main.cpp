// trace_query — queries over a vhadoop span-graph JSON file.
//
// Usage:
//   trace_query <spans.json> [--validate] [--critical-path[=<job>]]
//               [--slowest-tasks=N] [--attribution]
//
//   --validate            structural checks (acyclic cause graph, no orphan
//                         edges, proper lane nesting); exit 1 on problems
//   --critical-path[=J]   per-job critical path as vhadoop-critpath-v1 JSON
//                         (J = job id or name; omitted/all = every job)
//   --slowest-tasks=N     the N longest task attempts
//   --attribution         per-job makespan attribution table
//
// Flags run in the order listed above; with no flags, --validate runs.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "trace_query/query.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_query <spans.json> [--validate] [--critical-path[=<job>]] "
               "[--slowest-tasks=N] [--attribution]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool do_validate = false;
  bool do_critpath = false;
  std::string critpath_job;
  long slowest_n = -1;
  bool do_attribution = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      do_validate = true;
    } else if (arg == "--critical-path" || arg.rfind("--critical-path=", 0) == 0) {
      do_critpath = true;
      if (arg.size() > std::strlen("--critical-path")) {
        critpath_job = arg.substr(std::strlen("--critical-path="));
      }
    } else if (arg.rfind("--slowest-tasks=", 0) == 0) {
      slowest_n = std::strtol(arg.c_str() + std::strlen("--slowest-tasks="), nullptr, 10);
      if (slowest_n < 0) return usage();
    } else if (arg == "--attribution") {
      do_attribution = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (!do_validate && !do_critpath && slowest_n < 0 && !do_attribution) do_validate = true;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "trace_query: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    const vhadoop::obs::SpanGraph g = vhadoop::tracequery::load_span_graph(buf.str());

    if (do_validate) {
      const auto problems = vhadoop::tracequery::validate(g);
      if (!problems.empty()) {
        for (const std::string& p : problems) std::fprintf(stderr, "INVALID: %s\n", p.c_str());
        return 1;
      }
      std::printf("OK: %zu spans, %zu cause edges; acyclic, properly nested\n",
                  g.spans.size(), g.edges.size());
    }
    if (do_critpath) {
      const auto jobs = vhadoop::tracequery::critical_paths(g, critpath_job);
      if (!critpath_job.empty() && critpath_job != "all" && jobs.empty()) {
        std::fprintf(stderr, "trace_query: no job matches '%s'\n", critpath_job.c_str());
        return 1;
      }
      std::printf("%s\n", vhadoop::obs::critical_paths_to_json(jobs).c_str());
    }
    if (slowest_n >= 0) {
      const auto rows =
          vhadoop::tracequery::slowest_tasks(g, static_cast<std::size_t>(slowest_n));
      for (const auto& r : rows) {
        std::printf("%-16s job=%llu vm=%d slot=%d %12.6fs\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.job), r.pid, r.tid, r.seconds());
      }
    }
    if (do_attribution) {
      const auto jobs = vhadoop::tracequery::critical_paths(g, "");
      std::printf("%s", vhadoop::tracequery::attribution_report(jobs).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_query: %s\n", e.what());
    return 2;
  }
  return 0;
}

// vlint: allow-file(no-exact-float-compare) audited PR 8: span timestamps are exact simulated times; comparator tie-breaks are deliberate
#include "trace_query/query.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "testutil/mini_json.hpp"

namespace vhadoop::tracequery {

using testutil::JsonParser;
using testutil::JsonValue;

obs::SpanGraph load_span_graph(const std::string& json_text) {
  const JsonValue doc = JsonParser::parse(json_text);
  if (!doc.is_object() || !doc.has("schema") || doc.at("schema").str != "vhadoop-spans-v1") {
    throw std::runtime_error("trace_query: not a vhadoop-spans-v1 document");
  }
  obs::SpanGraph g;
  g.final_ts = doc.at("final_ts").number;
  for (const JsonValue& js : doc.at("spans").array) {
    obs::Tracer::Span s;
    s.id = static_cast<obs::SpanId>(js.at("id").number);
    s.parent = static_cast<obs::SpanId>(js.at("parent").number);
    s.job = static_cast<std::uint64_t>(js.at("job").number);
    s.pid = static_cast<int>(js.at("pid").number);
    s.tid = static_cast<int>(js.at("tid").number);
    s.name = js.at("name").str;
    s.cat = js.at("cat").str;
    s.t0 = js.at("t0").number;
    s.t1 = js.at("t1").number;
    g.spans.push_back(std::move(s));
  }
  for (const JsonValue& je : doc.at("edges").array) {
    obs::Tracer::CauseEdge e;
    e.from = static_cast<obs::SpanId>(je.at("from").number);
    e.to = static_cast<obs::SpanId>(je.at("to").number);
    e.type = je.at("type").str;
    e.at = je.at("at").number;
    e.start = je.at("start").number;
    g.edges.push_back(std::move(e));
  }
  return g;
}

namespace {

std::string span_label(const obs::Tracer::Span& s) {
  return "span " + std::to_string(s.id) + " (" + s.name + ")";
}

void check_spans(const obs::SpanGraph& g, std::vector<std::string>& out) {
  std::set<obs::SpanId> ids;
  for (const obs::Tracer::Span& s : g.spans) {
    if (s.id == 0) out.push_back("span with id 0");
    if (!ids.insert(s.id).second) {
      out.push_back("duplicate span id " + std::to_string(s.id));
    }
    if (s.t1 < s.t0) out.push_back(span_label(s) + " ends before it starts");
  }
}

void check_parents(const obs::SpanGraph& g, std::vector<std::string>& out) {
  for (const obs::Tracer::Span& s : g.spans) {
    if (s.parent == 0) continue;
    const obs::Tracer::Span* p = g.find(s.parent);
    if (!p) {
      out.push_back(span_label(s) + " has unknown parent " + std::to_string(s.parent));
      continue;
    }
    if (p->pid != s.pid || p->tid != s.tid) {
      out.push_back(span_label(s) + " parent " + span_label(*p) + " is on another lane");
    }
    if (s.t0 < p->t0 || s.t1 > p->t1) {
      out.push_back(span_label(s) + " escapes parent " + span_label(*p));
    }
  }
}

void check_edges(const obs::SpanGraph& g, std::vector<std::string>& out) {
  for (const obs::Tracer::CauseEdge& e : g.edges) {
    if (!g.find(e.from)) {
      out.push_back("edge " + e.type + " from unknown span " + std::to_string(e.from));
    }
    if (!g.find(e.to)) {
      out.push_back("edge " + e.type + " to unknown span " + std::to_string(e.to));
    }
    if (e.from == e.to) {
      out.push_back("edge " + e.type + " is a self-loop on span " + std::to_string(e.from));
    }
  }
}

void check_acyclic(const obs::SpanGraph& g, std::vector<std::string>& out) {
  std::map<obs::SpanId, std::vector<obs::SpanId>> adj;
  for (const obs::Tracer::CauseEdge& e : g.edges) adj[e.from].push_back(e.to);
  // Iterative three-color DFS; a back edge is a cycle.
  std::map<obs::SpanId, int> color;  // 0 white, 1 grey, 2 black
  for (const auto& [start, unused] : adj) {
    if (color[start] != 0) continue;
    std::vector<std::pair<obs::SpanId, std::size_t>> stack{{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto it = adj.find(node);
      if (it == adj.end() || next >= it->second.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const obs::SpanId succ = it->second[next++];
      if (color[succ] == 1) {
        out.push_back("cause cycle through span " + std::to_string(succ));
        return;
      }
      if (color[succ] == 0) {
        color[succ] = 1;
        stack.push_back({succ, 0});
      }
    }
  }
}

void check_nesting(const obs::SpanGraph& g, std::vector<std::string>& out) {
  std::map<std::pair<int, int>, std::vector<const obs::Tracer::Span*>> lanes;
  for (const obs::Tracer::Span& s : g.spans) lanes[{s.pid, s.tid}].push_back(&s);
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const obs::Tracer::Span* a, const obs::Tracer::Span* b) {
                if (a->t0 != b->t0) return a->t0 < b->t0;
                if (a->t1 != b->t1) return a->t1 > b->t1;  // enclosing span first
                return a->id < b->id;
              });
    std::vector<const obs::Tracer::Span*> stack;
    for (const obs::Tracer::Span* s : spans) {
      while (!stack.empty() && stack.back()->t1 <= s->t0) stack.pop_back();
      if (!stack.empty() && s->t1 > stack.back()->t1) {
        out.push_back(span_label(*s) + " partially overlaps " + span_label(*stack.back()) +
                      " on lane " + std::to_string(lane.first) + "/" +
                      std::to_string(lane.second));
      }
      stack.push_back(s);
    }
  }
}

}  // namespace

std::vector<std::string> validate(const obs::SpanGraph& g) {
  std::vector<std::string> out;
  check_spans(g, out);
  check_parents(g, out);
  check_edges(g, out);
  check_acyclic(g, out);
  check_nesting(g, out);
  return out;
}

std::vector<TaskRow> slowest_tasks(const obs::SpanGraph& g, std::size_t n) {
  // Effective job, as in the analyzer: explicit tag or inherited.
  std::map<obs::SpanId, std::uint64_t> eff_job;
  for (const obs::Tracer::Span& s : g.spans) {
    std::uint64_t j = s.job;
    if (j == 0 && s.parent != 0) {
      auto it = eff_job.find(s.parent);
      if (it != eff_job.end()) j = it->second;
    }
    eff_job[s.id] = j;
  }
  std::vector<TaskRow> rows;
  for (const obs::Tracer::Span& s : g.spans) {
    if (s.parent != 0) continue;
    if (s.cat != "map" && s.cat != "reduce") continue;
    rows.push_back({s.name, eff_job[s.id], s.pid, s.tid, s.t0, s.t1});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const TaskRow& a, const TaskRow& b) {
    return a.seconds() > b.seconds();
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::vector<obs::JobCriticalPath> critical_paths(const obs::SpanGraph& g,
                                                 const std::string& job_selector) {
  std::vector<obs::JobCriticalPath> jobs = obs::analyze_critical_paths(g);
  if (job_selector.empty() || job_selector == "all") return jobs;
  std::vector<obs::JobCriticalPath> out;
  for (obs::JobCriticalPath& cp : jobs) {
    if (cp.name == job_selector || std::to_string(cp.job) == job_selector) {
      out.push_back(std::move(cp));
    }
  }
  return out;
}

std::string attribution_report(const std::vector<obs::JobCriticalPath>& jobs) {
  std::ostringstream os;
  for (const obs::JobCriticalPath& cp : jobs) {
    char head[160];
    std::snprintf(head, sizeof(head), "job %llu %s: makespan %.6fs (tiling %s)\n",
                  static_cast<unsigned long long>(cp.job), cp.name.c_str(), cp.makespan(),
                  cp.tiles_exactly() ? "exact" : "INEXACT");
    os << head;
    for (const std::string& cat : obs::critpath_categories()) {
      const double secs = cp.attribution.at(cat);
      const double pct = cp.makespan() > 0.0 ? 100.0 * secs / cp.makespan() : 0.0;
      char line[128];
      std::snprintf(line, sizeof(line), "  %-16s %12.6fs  %6.2f%%\n", cat.c_str(), secs, pct);
      os << line;
    }
  }
  return os.str();
}

}  // namespace vhadoop::tracequery

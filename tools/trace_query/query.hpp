#pragma once

// trace_query: offline queries over a "vhadoop-spans-v1" span graph
// (obs::Tracer::to_span_graph_json). The query engine is a library so
// tests/obs/ can drive it in-process; tools/trace_query/main.cpp is the
// thin CLI used by the quickstart and the CI trace-validation step.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/trace.hpp"

namespace vhadoop::tracequery {

/// Parse a "vhadoop-spans-v1" document back into a SpanGraph. Throws
/// std::runtime_error on malformed JSON or a wrong/missing schema tag.
obs::SpanGraph load_span_graph(const std::string& json_text);

/// Structural validation of a span graph. Returns human-readable problem
/// descriptions (empty = valid):
///  - span ids unique and nonzero, t1 >= t0
///  - parents exist, live on the same (pid, tid) lane, and enclose the child
///  - cause edges reference existing spans and are not self-loops
///  - the cause graph is acyclic
///  - spans on one lane nest properly (no partial overlap)
std::vector<std::string> validate(const obs::SpanGraph& g);

/// One row of the --slowest-tasks report.
struct TaskRow {
  std::string name;
  std::uint64_t job = 0;
  int pid = 0;
  int tid = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  double seconds() const { return t1 - t0; }
};

/// Top-level task attempt spans (cat "map"/"reduce", lane top level) sorted
/// by descending duration, ties by ascending id; at most `n`.
std::vector<TaskRow> slowest_tasks(const obs::SpanGraph& g, std::size_t n);

/// Critical paths of every job in the graph (obs::analyze_critical_paths),
/// optionally filtered to one job by numeric id or by name ("" = all).
std::vector<obs::JobCriticalPath> critical_paths(const obs::SpanGraph& g,
                                                 const std::string& job_selector);

/// Plain-text per-job attribution table: one line per category with seconds
/// and percentage of the makespan, deterministic ordering.
std::string attribution_report(const std::vector<obs::JobCriticalPath>& jobs);

}  // namespace vhadoop::tracequery

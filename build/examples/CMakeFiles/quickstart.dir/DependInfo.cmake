
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vhadoop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vhadoop_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vhadoop_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/vhadoop_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/vhadoop_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/vhadoop_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/vhadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/vhadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vhadoop_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhadoop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhadoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cross_domain_study.dir/cross_domain_study.cpp.o"
  "CMakeFiles/cross_domain_study.dir/cross_domain_study.cpp.o.d"
  "cross_domain_study"
  "cross_domain_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_domain_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cross_domain_study.
# This may be replaced when dependencies are built.

# Empty dependencies file for elasticity_study.
# This may be replaced when dependencies are built.

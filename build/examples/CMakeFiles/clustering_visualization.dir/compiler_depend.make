# Empty compiler generated dependencies file for clustering_visualization.
# This may be replaced when dependencies are built.

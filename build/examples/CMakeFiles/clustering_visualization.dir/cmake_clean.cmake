file(REMOVE_RECURSE
  "CMakeFiles/clustering_visualization.dir/clustering_visualization.cpp.o"
  "CMakeFiles/clustering_visualization.dir/clustering_visualization.cpp.o.d"
  "clustering_visualization"
  "clustering_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_cli.dir/vhadoop_cli.cpp.o"
  "CMakeFiles/vhadoop_cli.dir/vhadoop_cli.cpp.o.d"
  "vhadoop_cli"
  "vhadoop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vhadoop_cli.
# This may be replaced when dependencies are built.

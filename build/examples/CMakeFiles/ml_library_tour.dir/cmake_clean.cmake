file(REMOVE_RECURSE
  "CMakeFiles/ml_library_tour.dir/ml_library_tour.cpp.o"
  "CMakeFiles/ml_library_tour.dir/ml_library_tour.cpp.o.d"
  "ml_library_tour"
  "ml_library_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_library_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ml_library_tour.
# This may be replaced when dependencies are built.

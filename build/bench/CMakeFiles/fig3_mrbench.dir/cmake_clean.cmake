file(REMOVE_RECURSE
  "CMakeFiles/fig3_mrbench.dir/fig3_mrbench.cpp.o"
  "CMakeFiles/fig3_mrbench.dir/fig3_mrbench.cpp.o.d"
  "fig3_mrbench"
  "fig3_mrbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mrbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

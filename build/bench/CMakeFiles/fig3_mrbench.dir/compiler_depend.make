# Empty compiler generated dependencies file for fig3_mrbench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_display_clustering.dir/fig7_display_clustering.cpp.o"
  "CMakeFiles/fig7_display_clustering.dir/fig7_display_clustering.cpp.o.d"
  "fig7_display_clustering"
  "fig7_display_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_display_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_control_clustering.
# This may be replaced when dependencies are built.

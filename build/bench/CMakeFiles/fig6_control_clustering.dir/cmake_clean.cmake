file(REMOVE_RECURSE
  "CMakeFiles/fig6_control_clustering.dir/fig6_control_clustering.cpp.o"
  "CMakeFiles/fig6_control_clustering.dir/fig6_control_clustering.cpp.o.d"
  "fig6_control_clustering"
  "fig6_control_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_control_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_terasort_dfsio.
# This may be replaced when dependencies are built.

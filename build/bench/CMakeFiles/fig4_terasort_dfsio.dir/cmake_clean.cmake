file(REMOVE_RECURSE
  "CMakeFiles/fig4_terasort_dfsio.dir/fig4_terasort_dfsio.cpp.o"
  "CMakeFiles/fig4_terasort_dfsio.dir/fig4_terasort_dfsio.cpp.o.d"
  "fig4_terasort_dfsio"
  "fig4_terasort_dfsio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_terasort_dfsio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_migration.dir/fig5_migration.cpp.o"
  "CMakeFiles/fig5_migration.dir/fig5_migration.cpp.o.d"
  "fig5_migration"
  "fig5_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

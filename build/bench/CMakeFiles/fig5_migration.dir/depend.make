# Empty dependencies file for fig5_migration.
# This may be replaced when dependencies are built.

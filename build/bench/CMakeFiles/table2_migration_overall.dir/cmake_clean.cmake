file(REMOVE_RECURSE
  "CMakeFiles/table2_migration_overall.dir/table2_migration_overall.cpp.o"
  "CMakeFiles/table2_migration_overall.dir/table2_migration_overall.cpp.o.d"
  "table2_migration_overall"
  "table2_migration_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_migration_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_wordcount.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_wordcount.dir/fig2_wordcount.cpp.o"
  "CMakeFiles/fig2_wordcount.dir/fig2_wordcount.cpp.o.d"
  "fig2_wordcount"
  "fig2_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

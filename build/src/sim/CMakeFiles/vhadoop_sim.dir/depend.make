# Empty dependencies file for vhadoop_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_sim.dir/engine.cpp.o"
  "CMakeFiles/vhadoop_sim.dir/engine.cpp.o.d"
  "CMakeFiles/vhadoop_sim.dir/fluid.cpp.o"
  "CMakeFiles/vhadoop_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/vhadoop_sim.dir/rng.cpp.o"
  "CMakeFiles/vhadoop_sim.dir/rng.cpp.o.d"
  "libvhadoop_sim.a"
  "libvhadoop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

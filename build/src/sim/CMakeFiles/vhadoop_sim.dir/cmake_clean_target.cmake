file(REMOVE_RECURSE
  "libvhadoop_sim.a"
)

file(REMOVE_RECURSE
  "libvhadoop_ml.a"
)

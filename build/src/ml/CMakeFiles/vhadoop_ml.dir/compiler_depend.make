# Empty compiler generated dependencies file for vhadoop_ml.
# This may be replaced when dependencies are built.

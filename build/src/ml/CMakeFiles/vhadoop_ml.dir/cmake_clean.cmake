file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_ml.dir/canopy.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/canopy.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/clustering.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/clustering.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/dataset.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/dirichlet.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/dirichlet.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/fuzzy_kmeans.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/fuzzy_kmeans.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/kmeans.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/meanshift.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/meanshift.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/minhash.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/minhash.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/quality.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/quality.cpp.o.d"
  "CMakeFiles/vhadoop_ml.dir/recommender.cpp.o"
  "CMakeFiles/vhadoop_ml.dir/recommender.cpp.o.d"
  "libvhadoop_ml.a"
  "libvhadoop_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/canopy.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/canopy.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/canopy.cpp.o.d"
  "/root/repo/src/ml/clustering.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/clustering.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/clustering.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/dirichlet.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/dirichlet.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/dirichlet.cpp.o.d"
  "/root/repo/src/ml/fuzzy_kmeans.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/fuzzy_kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/fuzzy_kmeans.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/meanshift.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/meanshift.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/meanshift.cpp.o.d"
  "/root/repo/src/ml/minhash.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/minhash.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/minhash.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/quality.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/quality.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/quality.cpp.o.d"
  "/root/repo/src/ml/recommender.cpp" "src/ml/CMakeFiles/vhadoop_ml.dir/recommender.cpp.o" "gcc" "src/ml/CMakeFiles/vhadoop_ml.dir/recommender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/vhadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhadoop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/vhadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vhadoop_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhadoop_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for vhadoop_net.
# This may be replaced when dependencies are built.

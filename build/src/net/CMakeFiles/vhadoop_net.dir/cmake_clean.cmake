file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_net.dir/fabric.cpp.o"
  "CMakeFiles/vhadoop_net.dir/fabric.cpp.o.d"
  "libvhadoop_net.a"
  "libvhadoop_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

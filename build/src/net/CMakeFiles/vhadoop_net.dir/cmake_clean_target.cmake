file(REMOVE_RECURSE
  "libvhadoop_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_workloads.dir/dfsio.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/dfsio.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/grep.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/grep.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/mrbench.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/mrbench.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/pi_estimator.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/pi_estimator.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/terasort.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/terasort.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/text_corpus.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/text_corpus.cpp.o.d"
  "CMakeFiles/vhadoop_workloads.dir/wordcount.cpp.o"
  "CMakeFiles/vhadoop_workloads.dir/wordcount.cpp.o.d"
  "libvhadoop_workloads.a"
  "libvhadoop_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

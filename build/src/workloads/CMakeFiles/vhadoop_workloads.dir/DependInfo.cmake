
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dfsio.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/dfsio.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/dfsio.cpp.o.d"
  "/root/repo/src/workloads/grep.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/grep.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/grep.cpp.o.d"
  "/root/repo/src/workloads/mrbench.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/mrbench.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/mrbench.cpp.o.d"
  "/root/repo/src/workloads/pi_estimator.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/pi_estimator.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/pi_estimator.cpp.o.d"
  "/root/repo/src/workloads/terasort.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/terasort.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/terasort.cpp.o.d"
  "/root/repo/src/workloads/text_corpus.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/text_corpus.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/text_corpus.cpp.o.d"
  "/root/repo/src/workloads/wordcount.cpp" "src/workloads/CMakeFiles/vhadoop_workloads.dir/wordcount.cpp.o" "gcc" "src/workloads/CMakeFiles/vhadoop_workloads.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/vhadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/vhadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vhadoop_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhadoop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhadoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

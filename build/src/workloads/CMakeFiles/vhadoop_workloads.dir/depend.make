# Empty dependencies file for vhadoop_workloads.
# This may be replaced when dependencies are built.

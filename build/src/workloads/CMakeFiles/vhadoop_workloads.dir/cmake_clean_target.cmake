file(REMOVE_RECURSE
  "libvhadoop_workloads.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_tuner.dir/tuner.cpp.o"
  "CMakeFiles/vhadoop_tuner.dir/tuner.cpp.o.d"
  "libvhadoop_tuner.a"
  "libvhadoop_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

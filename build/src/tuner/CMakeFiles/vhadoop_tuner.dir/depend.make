# Empty dependencies file for vhadoop_tuner.
# This may be replaced when dependencies are built.

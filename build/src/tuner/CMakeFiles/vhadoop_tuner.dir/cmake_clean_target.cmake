file(REMOVE_RECURSE
  "libvhadoop_tuner.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_core.dir/platform.cpp.o"
  "CMakeFiles/vhadoop_core.dir/platform.cpp.o.d"
  "libvhadoop_core.a"
  "libvhadoop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

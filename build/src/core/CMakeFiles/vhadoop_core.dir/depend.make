# Empty dependencies file for vhadoop_core.
# This may be replaced when dependencies are built.

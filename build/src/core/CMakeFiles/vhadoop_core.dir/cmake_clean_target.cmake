file(REMOVE_RECURSE
  "libvhadoop_core.a"
)

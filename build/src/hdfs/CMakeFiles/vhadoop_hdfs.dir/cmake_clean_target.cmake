file(REMOVE_RECURSE
  "libvhadoop_hdfs.a"
)

# Empty dependencies file for vhadoop_hdfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_hdfs.dir/hdfs.cpp.o"
  "CMakeFiles/vhadoop_hdfs.dir/hdfs.cpp.o.d"
  "libvhadoop_hdfs.a"
  "libvhadoop_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vhadoop_mapreduce.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_mapreduce.dir/bridge.cpp.o"
  "CMakeFiles/vhadoop_mapreduce.dir/bridge.cpp.o.d"
  "CMakeFiles/vhadoop_mapreduce.dir/local_runner.cpp.o"
  "CMakeFiles/vhadoop_mapreduce.dir/local_runner.cpp.o.d"
  "CMakeFiles/vhadoop_mapreduce.dir/sim_runner.cpp.o"
  "CMakeFiles/vhadoop_mapreduce.dir/sim_runner.cpp.o.d"
  "libvhadoop_mapreduce.a"
  "libvhadoop_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

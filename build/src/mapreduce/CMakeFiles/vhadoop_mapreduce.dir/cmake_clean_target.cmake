file(REMOVE_RECURSE
  "libvhadoop_mapreduce.a"
)

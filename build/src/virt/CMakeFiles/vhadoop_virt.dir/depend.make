# Empty dependencies file for vhadoop_virt.
# This may be replaced when dependencies are built.

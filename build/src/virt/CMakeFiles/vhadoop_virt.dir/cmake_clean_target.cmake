file(REMOVE_RECURSE
  "libvhadoop_virt.a"
)

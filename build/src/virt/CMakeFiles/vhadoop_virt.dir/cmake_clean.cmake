file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_virt.dir/cloud.cpp.o"
  "CMakeFiles/vhadoop_virt.dir/cloud.cpp.o.d"
  "CMakeFiles/vhadoop_virt.dir/migration_bench.cpp.o"
  "CMakeFiles/vhadoop_virt.dir/migration_bench.cpp.o.d"
  "libvhadoop_virt.a"
  "libvhadoop_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

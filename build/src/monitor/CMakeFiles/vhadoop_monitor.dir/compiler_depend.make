# Empty compiler generated dependencies file for vhadoop_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_monitor.dir/nmon.cpp.o"
  "CMakeFiles/vhadoop_monitor.dir/nmon.cpp.o.d"
  "libvhadoop_monitor.a"
  "libvhadoop_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

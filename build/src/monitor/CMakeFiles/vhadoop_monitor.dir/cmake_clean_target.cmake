file(REMOVE_RECURSE
  "libvhadoop_monitor.a"
)

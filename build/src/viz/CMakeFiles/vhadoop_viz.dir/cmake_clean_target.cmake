file(REMOVE_RECURSE
  "libvhadoop_viz.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vhadoop_viz.dir/svg.cpp.o"
  "CMakeFiles/vhadoop_viz.dir/svg.cpp.o.d"
  "libvhadoop_viz.a"
  "libvhadoop_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhadoop_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

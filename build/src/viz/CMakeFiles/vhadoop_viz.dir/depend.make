# Empty dependencies file for vhadoop_viz.
# This may be replaced when dependencies are built.

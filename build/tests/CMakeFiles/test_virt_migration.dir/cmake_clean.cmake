file(REMOVE_RECURSE
  "CMakeFiles/test_virt_migration.dir/virt/migration_bench_test.cpp.o"
  "CMakeFiles/test_virt_migration.dir/virt/migration_bench_test.cpp.o.d"
  "test_virt_migration"
  "test_virt_migration.pdb"
  "test_virt_migration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mr_fault.dir/mapreduce/fault_tolerance_test.cpp.o"
  "CMakeFiles/test_mr_fault.dir/mapreduce/fault_tolerance_test.cpp.o.d"
  "test_mr_fault"
  "test_mr_fault.pdb"
  "test_mr_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_mr_fault.
# This may be replaced when dependencies are built.

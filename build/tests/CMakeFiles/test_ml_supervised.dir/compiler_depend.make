# Empty compiler generated dependencies file for test_ml_supervised.
# This may be replaced when dependencies are built.

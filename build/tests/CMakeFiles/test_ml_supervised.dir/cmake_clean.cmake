file(REMOVE_RECURSE
  "CMakeFiles/test_ml_supervised.dir/ml/supervised_test.cpp.o"
  "CMakeFiles/test_ml_supervised.dir/ml/supervised_test.cpp.o.d"
  "test_ml_supervised"
  "test_ml_supervised.pdb"
  "test_ml_supervised[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_supervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

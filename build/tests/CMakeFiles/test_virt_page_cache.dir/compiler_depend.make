# Empty compiler generated dependencies file for test_virt_page_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_virt_page_cache.dir/virt/page_cache_test.cpp.o"
  "CMakeFiles/test_virt_page_cache.dir/virt/page_cache_test.cpp.o.d"
  "test_virt_page_cache"
  "test_virt_page_cache.pdb"
  "test_virt_page_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt_page_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ml_clustering.dir/ml/clustering_test.cpp.o"
  "CMakeFiles/test_ml_clustering.dir/ml/clustering_test.cpp.o.d"
  "test_ml_clustering"
  "test_ml_clustering.pdb"
  "test_ml_clustering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

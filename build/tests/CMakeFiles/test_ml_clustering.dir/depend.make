# Empty dependencies file for test_ml_clustering.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_workloads_extra.
# This may be replaced when dependencies are built.

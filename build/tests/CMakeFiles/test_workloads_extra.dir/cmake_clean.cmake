file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_extra.dir/workloads/extra_workloads_test.cpp.o"
  "CMakeFiles/test_workloads_extra.dir/workloads/extra_workloads_test.cpp.o.d"
  "test_workloads_extra"
  "test_workloads_extra.pdb"
  "test_workloads_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

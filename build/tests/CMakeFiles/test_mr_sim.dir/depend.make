# Empty dependencies file for test_mr_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mr_sim.dir/mapreduce/sim_runner_test.cpp.o"
  "CMakeFiles/test_mr_sim.dir/mapreduce/sim_runner_test.cpp.o.d"
  "test_mr_sim"
  "test_mr_sim.pdb"
  "test_mr_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_daemon.dir/sim/daemon_test.cpp.o"
  "CMakeFiles/test_sim_daemon.dir/sim/daemon_test.cpp.o.d"
  "test_sim_daemon"
  "test_sim_daemon.pdb"
  "test_sim_daemon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

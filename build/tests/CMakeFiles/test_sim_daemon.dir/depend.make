# Empty dependencies file for test_sim_daemon.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hdfs.dir/hdfs/hdfs_test.cpp.o"
  "CMakeFiles/test_hdfs.dir/hdfs/hdfs_test.cpp.o.d"
  "test_hdfs"
  "test_hdfs.pdb"
  "test_hdfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ml_quality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ml_quality.dir/ml/quality_test.cpp.o"
  "CMakeFiles/test_ml_quality.dir/ml/quality_test.cpp.o.d"
  "test_ml_quality"
  "test_ml_quality.pdb"
  "test_ml_quality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

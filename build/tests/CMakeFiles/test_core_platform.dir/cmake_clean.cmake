file(REMOVE_RECURSE
  "CMakeFiles/test_core_platform.dir/core/platform_test.cpp.o"
  "CMakeFiles/test_core_platform.dir/core/platform_test.cpp.o.d"
  "test_core_platform"
  "test_core_platform.pdb"
  "test_core_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

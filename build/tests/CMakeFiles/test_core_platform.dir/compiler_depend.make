# Empty compiler generated dependencies file for test_core_platform.
# This may be replaced when dependencies are built.

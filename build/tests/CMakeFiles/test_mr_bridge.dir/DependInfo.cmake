
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapreduce/bridge_test.cpp" "tests/CMakeFiles/test_mr_bridge.dir/mapreduce/bridge_test.cpp.o" "gcc" "tests/CMakeFiles/test_mr_bridge.dir/mapreduce/bridge_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapreduce/CMakeFiles/vhadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vhadoop_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/vhadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/vhadoop_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vhadoop_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vhadoop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

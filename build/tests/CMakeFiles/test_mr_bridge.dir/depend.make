# Empty dependencies file for test_mr_bridge.
# This may be replaced when dependencies are built.

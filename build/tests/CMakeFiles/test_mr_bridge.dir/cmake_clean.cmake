file(REMOVE_RECURSE
  "CMakeFiles/test_mr_bridge.dir/mapreduce/bridge_test.cpp.o"
  "CMakeFiles/test_mr_bridge.dir/mapreduce/bridge_test.cpp.o.d"
  "test_mr_bridge"
  "test_mr_bridge.pdb"
  "test_mr_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_virt_cloud.
# This may be replaced when dependencies are built.

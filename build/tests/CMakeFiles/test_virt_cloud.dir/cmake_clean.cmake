file(REMOVE_RECURSE
  "CMakeFiles/test_virt_cloud.dir/virt/cloud_test.cpp.o"
  "CMakeFiles/test_virt_cloud.dir/virt/cloud_test.cpp.o.d"
  "test_virt_cloud"
  "test_virt_cloud.pdb"
  "test_virt_cloud[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_core_elasticity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_core_elasticity.dir/core/elasticity_test.cpp.o"
  "CMakeFiles/test_core_elasticity.dir/core/elasticity_test.cpp.o.d"
  "test_core_elasticity"
  "test_core_elasticity.pdb"
  "test_core_elasticity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

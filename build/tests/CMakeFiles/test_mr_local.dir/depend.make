# Empty dependencies file for test_mr_local.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mr_local.dir/mapreduce/local_runner_test.cpp.o"
  "CMakeFiles/test_mr_local.dir/mapreduce/local_runner_test.cpp.o.d"
  "test_mr_local"
  "test_mr_local.pdb"
  "test_mr_local[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mr_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_fluid[1]_include.cmake")
include("/root/repo/build/tests/test_sim_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sim_daemon[1]_include.cmake")
include("/root/repo/build/tests/test_virt_page_cache[1]_include.cmake")
include("/root/repo/build/tests/test_net_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_virt_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_virt_migration[1]_include.cmake")
include("/root/repo/build/tests/test_hdfs[1]_include.cmake")
include("/root/repo/build/tests/test_mr_local[1]_include.cmake")
include("/root/repo/build/tests/test_mr_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mr_bridge[1]_include.cmake")
include("/root/repo/build/tests/test_mr_fault[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_workloads_extra[1]_include.cmake")
include("/root/repo/build/tests/test_ml_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_ml_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_ml_supervised[1]_include.cmake")
include("/root/repo/build/tests/test_ml_quality[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_core_platform[1]_include.cmake")
include("/root/repo/build/tests/test_core_elasticity[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")

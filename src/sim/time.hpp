#pragma once

#include <limits>

namespace vhadoop::sim {

/// Simulated time in seconds since simulation start.
using SimTime = double;

/// Sentinel for "never".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// Comparison slack used throughout the fluid model. Work amounts are bytes
/// or core-seconds, so 1e-9 is far below anything observable.
inline constexpr double kEps = 1e-9;

/// Convenience unit helpers (work amounts are expressed in bytes).
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

/// Bandwidths are bytes/second.
inline constexpr double gbit_per_s(double gbit) { return gbit * 1e9 / 8.0; }
inline constexpr double mbyte_per_s(double mb) { return mb * 1e6; }

}  // namespace vhadoop::sim

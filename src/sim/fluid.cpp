#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

namespace vhadoop::sim {

namespace {

// When a completion event fires slightly early by fp rounding, force the
// finish if it is within a microsecond of simulated time (far below
// anything the platform measures) — otherwise rescheduling could ping-pong
// at a frozen timestamp forever.
constexpr double kForcedFinishEta = 1e-6;

// Canonical order for component member lists (pointer values never decide
// anything — ids do, so the solve order is reproducible run to run).
constexpr auto by_id = [](const auto* a, const auto* b) { return a->id < b->id; };

bool reference_mode_from_env() {
  // vlint: allow(no-os-entropy) audited PR 8: opt-in oracle switch; both modes produce bit-identical simulations, verified by the churn suite
  const char* v = std::getenv("VHADOOP_FLUID_REFERENCE");
  return v != nullptr && *v != '\0' && *v != '0';
}

int verify_every_from_env() {
  // vlint: allow(no-os-entropy) audited PR 9: oracle sampling period only; never read outside reference mode, never alters the simulation itself
  const char* v = std::getenv("VHADOOP_FLUID_VERIFY_EVERY");
  if (v == nullptr || *v == '\0') return 1;
  const int every = std::atoi(v);
  return every > 1 ? every : 1;
}

}  // namespace

FluidModel::FluidModel(Engine& engine) : FluidModel(engine, reference_mode_from_env()) {}

FluidModel::FluidModel(Engine& engine, bool reference)
    : engine_(engine),
      reference_(reference),
      verify_every_(reference ? verify_every_from_env() : 1),
      activities_started_(engine.metrics().counter("sim.fluid.activities_started")),
      rate_recomputes_(engine.metrics().counter("sim.fluid.rate_recomputes")),
      recomputes_(engine.metrics().counter("sim.fluid.recomputes")),
      component_size_(engine.metrics().histogram(
          "sim.fluid.component_size", obs::Histogram::exponential_buckets(1.0, 2.0, 16))) {}

FluidModel::ResourceId FluidModel::add_resource(std::string name, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity < 0");
  const std::uint64_t id = next_id_++;
  Resource r;
  r.name = std::move(name);
  r.capacity = capacity;
  r.last_update = engine_.now();
  r.id = id;
  resources_.emplace(id, std::move(r));
  return ResourceId{id};
}

void FluidModel::set_capacity(ResourceId id, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity < 0");
  Resource& res = resources_.at(id.v);
  Component comp = collect_component(nullptr, &res);
  settle_component(comp);
  res.capacity = capacity;
  rate_recomputes_->inc();
  update_component(std::move(comp));
  maybe_verify();
}

double FluidModel::capacity(ResourceId id) const { return resources_.at(id.v).capacity; }

double FluidModel::allocated(ResourceId id) const {
  // The maintained sum equals a fresh summation over users: apply_rates
  // recomputes it from scratch (same order) whenever any user's rate moves.
  return resources_.at(id.v).allocated;
}

double FluidModel::utilization(ResourceId id) const {
  const Resource& r = resources_.at(id.v);
  if (r.capacity <= 0.0) return 0.0;
  return std::min(1.0, r.allocated / r.capacity);
}

double FluidModel::busy_integral(ResourceId id) const {
  const Resource& r = resources_.at(id.v);
  // Include the lazily unsettled interval since the resource's last touch.
  return r.busy_integral + r.allocated * (engine_.now() - r.last_update);
}

const std::string& FluidModel::name(ResourceId id) const { return resources_.at(id.v).name; }

FluidModel::ActivityId FluidModel::start(ActivitySpec spec) {
  if (spec.work < 0.0) throw std::invalid_argument("activity work < 0");
  if (spec.weight <= 0.0) throw std::invalid_argument("activity weight <= 0");
  if (spec.resources.empty() && !std::isfinite(spec.cap)) {
    throw std::invalid_argument("activity with no resource must have a finite cap");
  }
  const std::uint64_t id = next_id_++;
  Activity act;
  act.remaining = spec.work;
  act.total = spec.work;
  act.weight = spec.weight;
  act.cap = spec.cap;
  act.last_update = engine_.now();
  act.id = id;
  act.on_complete = std::move(spec.on_complete);
  // Wire adjacency only once the node lives in the map: its address is
  // stable from then on (unordered_map never moves nodes on rehash).
  Activity& node = activities_.emplace(id, std::move(act)).first->second;
  node.resources.reserve(spec.resources.size());
  for (ResourceId r : spec.resources) {
    Resource& res = resources_.at(r.v);
    // Ids are handed out monotonically, so push_back keeps `users` sorted.
    res.users.push_back(&node);
    node.resources.push_back(&res);
  }
  activities_started_->inc();

  // The new activity may bridge previously separate components; the BFS
  // from it finds the merged (true) component.
  Component comp = collect_component(&node, nullptr);
  settle_component(comp);
  rate_recomputes_->inc();
  update_component(std::move(comp));
  maybe_verify();
  return ActivityId{id};
}

void FluidModel::detach(Activity& act) {
  for (Resource* res : act.resources) {
    auto& users = res->users;
    // `users` is sorted ascending by id; duplicates (an activity listed
    // twice on one resource) are erased one per detach pass, matching attach.
    auto it = std::lower_bound(users.begin(), users.end(), &act, by_id);
    if (it != users.end() && (*it)->id == act.id) users.erase(it);
  }
}

bool FluidModel::cancel(ActivityId id) {
  auto it = activities_.find(id.v);
  if (it == activities_.end()) return false;
  Activity& act = it->second;
  Component comp = collect_component(&act, nullptr);
  settle_component(comp);
  if (act.finish_event.valid()) engine_.cancel(act.finish_event);
  comp_cache_.erase(id.v);
  detach(act);
  comp.acts.erase(std::find(comp.acts.begin(), comp.acts.end(), &act));
  activities_.erase(it);
  rate_recomputes_->inc();
  update_partition(std::move(comp));
  maybe_verify();
  return true;
}

void FluidModel::add_work(ActivityId id, double extra) {
  if (extra < 0.0) throw std::invalid_argument("add_work: extra < 0");
  Activity& act = activities_.at(id.v);
  Component comp = collect_component(&act, nullptr);
  settle_component(comp);
  act.remaining += extra;
  act.total += extra;
  rate_recomputes_->inc();
  // The rate is typically unchanged (same sharing problem), but the ETA
  // moved with the extra work: force this activity's timer to re-arm.
  update_component(std::move(comp), &act);
  maybe_verify();
}

void FluidModel::set_cap(ActivityId id, double cap) {
  if (cap < 0.0) throw std::invalid_argument("set_cap: cap < 0");
  Activity& act = activities_.at(id.v);
  Component comp = collect_component(&act, nullptr);
  settle_component(comp);
  act.cap = cap;
  rate_recomputes_->inc();
  update_component(std::move(comp));
  maybe_verify();
}

double FluidModel::rate(ActivityId id) const { return activities_.at(id.v).rate; }

double FluidModel::remaining(ActivityId id) const {
  const Activity& act = activities_.at(id.v);
  return std::max(0.0, act.remaining - act.rate * (engine_.now() - act.last_update));
}

FluidModel::Component FluidModel::collect_component(Activity* seed_act, Resource* seed_res) {
  Component comp;
  // Epoch-stamped visit marks instead of hash sets: one counter bump makes
  // every stale stamp invalid, so the BFS allocates nothing in steady state.
  const std::uint64_t epoch = ++visit_epoch_;
  bfs_act_stack_.clear();
  bfs_res_stack_.clear();
  if (seed_act != nullptr) {
    seed_act->seen = epoch;
    bfs_act_stack_.push_back(seed_act);
  }
  if (seed_res != nullptr) {
    seed_res->seen = epoch;
    bfs_res_stack_.push_back(seed_res);
  }
  while (!bfs_act_stack_.empty() || !bfs_res_stack_.empty()) {
    if (!bfs_act_stack_.empty()) {
      Activity* act = bfs_act_stack_.back();
      bfs_act_stack_.pop_back();
      comp.acts.push_back(act);
      for (Resource* r : act->resources) {
        if (r->seen != epoch) {
          r->seen = epoch;
          bfs_res_stack_.push_back(r);
        }
      }
    } else {
      Resource* res = bfs_res_stack_.back();
      bfs_res_stack_.pop_back();
      comp.res.push_back(res);
      for (Activity* a : res->users) {
        if (a->seen != epoch) {
          a->seen = epoch;
          bfs_act_stack_.push_back(a);
        }
      }
    }
  }
  // Canonical order: the solver and every per-member loop run ascending by
  // id, independent of traversal order.
  std::sort(comp.acts.begin(), comp.acts.end(), by_id);
  std::sort(comp.res.begin(), comp.res.end(), by_id);
  return comp;
}

std::size_t FluidModel::reach_component(Activity* seed) {
  const std::uint64_t epoch = ++visit_epoch_;
  bfs_act_stack_.clear();
  bfs_res_stack_.clear();
  seed->seen = epoch;
  bfs_act_stack_.push_back(seed);
  std::size_t acts_reached = 0;
  while (!bfs_act_stack_.empty() || !bfs_res_stack_.empty()) {
    if (!bfs_act_stack_.empty()) {
      Activity* act = bfs_act_stack_.back();
      bfs_act_stack_.pop_back();
      ++acts_reached;
      for (Resource* r : act->resources) {
        if (r->seen != epoch) {
          r->seen = epoch;
          bfs_res_stack_.push_back(r);
        }
      }
    } else {
      Resource* res = bfs_res_stack_.back();
      bfs_res_stack_.pop_back();
      for (Activity* a : res->users) {
        if (a->seen != epoch) {
          a->seen = epoch;
          bfs_act_stack_.push_back(a);
        }
      }
    }
  }
  return acts_reached;
}

void FluidModel::settle_component(const Component& comp) {
  const SimTime now = engine_.now();
  for (Activity* act : comp.acts) {
    const double elapsed = now - act->last_update;
    if (elapsed > 0.0) {
      act->remaining = std::max(0.0, act->remaining - act->rate * elapsed);
    }
    act->last_update = now;
  }
  for (Resource* r : comp.res) {
    const double elapsed = now - r->last_update;
    if (elapsed > 0.0) r->busy_integral += r->allocated * elapsed;
    r->last_update = now;
  }
}

void FluidModel::solve_component(const Component& comp, std::vector<double>& rates) {
  // Progressive filling: raise a common water level theta; each unfrozen
  // activity's rate grows as weight*theta until either one of its resources
  // saturates (freezing every unfrozen user of that resource) or its own
  // cap is reached. Scoped to one component — by definition no activity
  // outside it shares any of its resources, so the component solution *is*
  // the global max-min solution restricted to these activities.
  const std::size_t na = comp.acts.size();
  const std::size_t nr = comp.res.size();
  rates.assign(na, 0.0);

  s_slack_.resize(nr);
  s_rescap_.resize(nr);
  for (std::size_t j = 0; j < nr; ++j) {
    Resource* r = comp.res[j];
    r->local_idx = j;  // lets each edge resolve its slot in O(1) below
    s_rescap_[j] = r->capacity;
    s_slack_[j] = s_rescap_[j];
  }

  // Cache each activity's parameters and local resource indices once
  // (flat index array + offsets; all scratch, reused across solves).
  s_weight_.resize(na);
  s_cap_.resize(na);
  s_roff_.resize(na + 1);
  s_ridx_.clear();
  s_unfrozen_.clear();
  for (std::size_t i = 0; i < na; ++i) {
    const Activity* act = comp.acts[i];
    s_weight_[i] = act->weight;
    s_cap_[i] = act->cap;
    s_roff_[i] = s_ridx_.size();
    for (const Resource* r : act->resources) s_ridx_.push_back(r->local_idx);
    if (act->cap > 0.0) s_unfrozen_.push_back(i);  // cap <= 0 is paused
  }
  s_roff_[na] = s_ridx_.size();

  // Weight sum (and count) of unfrozen users per resource, maintained
  // incrementally: built once, then each freeze subtracts the frozen
  // activity's weight. The count snaps a sum exactly to zero when the last
  // user freezes, so subtraction residue can never keep a userless
  // resource in the theta minimization.
  s_sumw_.assign(nr, 0.0);
  s_cnt_.assign(nr, 0);
  for (std::size_t i : s_unfrozen_) {
    for (std::size_t k = s_roff_[i]; k < s_roff_[i + 1]; ++k) {
      s_sumw_[s_ridx_[k]] += s_weight_[i];
      ++s_cnt_[s_ridx_[k]];
    }
  }
  while (!s_unfrozen_.empty()) {
    double theta = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < nr; ++j) {
      if (s_sumw_[j] > 0.0) theta = std::min(theta, std::max(0.0, s_slack_[j]) / s_sumw_[j]);
    }
    for (std::size_t i : s_unfrozen_) {
      theta = std::min(theta, (s_cap_[i] - rates[i]) / s_weight_[i]);
    }
    assert(std::isfinite(theta));
    theta = std::max(theta, 0.0);

    for (std::size_t i : s_unfrozen_) rates[i] += s_weight_[i] * theta;
    for (std::size_t j = 0; j < nr; ++j) {
      if (s_sumw_[j] > 0.0) s_slack_[j] -= theta * s_sumw_[j];
    }

    // Freeze activities at saturated resources or at their cap.
    s_next_.clear();
    bool froze_any = false;
    for (std::size_t i : s_unfrozen_) {
      bool frozen = rates[i] >= s_cap_[i] * (1.0 - 1e-12) - kEps;
      if (!frozen) {
        for (std::size_t k = s_roff_[i]; k < s_roff_[i + 1]; ++k) {
          const std::size_t j = s_ridx_[k];
          if (s_slack_[j] <= kEps * std::max(1.0, s_rescap_[j])) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        froze_any = true;
        for (std::size_t k = s_roff_[i]; k < s_roff_[i + 1]; ++k) {
          const std::size_t j = s_ridx_[k];
          s_sumw_[j] -= s_weight_[i];
          if (--s_cnt_[j] == 0) s_sumw_[j] = 0.0;
        }
      } else {
        s_next_.push_back(i);
      }
    }
    if (!froze_any) {
      // Numerical guard: theta was the exact minimum, so something must
      // freeze; if rounding prevented it, freeze everything to terminate.
      break;
    }
    s_unfrozen_.swap(s_next_);
  }
}

void FluidModel::project_finish(Activity& act) const {
  const SimTime now = engine_.now();
  if (finished(act)) {
    act.finish_at = now;
  } else if (act.rate > 0.0) {
    act.finish_at = now + act.remaining / act.rate;
  } else {
    act.finish_at = kNever;
  }
}

FluidModel::Activity* FluidModel::arm_component_timer(const Component& comp) {
  // Earliest projected finisher, smallest id on ties (ascending scan).
  Activity* best = nullptr;
  SimTime best_t = kNever;
  for (Activity* act : comp.acts) {
    if (act->finish_at < best_t) {
      best_t = act->finish_at;
      best = act;
    }
  }
  for (Activity* act : comp.acts) {
    if (act == best) {
      if (act->finish_event.valid() && act->armed_at == act->finish_at) continue;
      if (act->finish_event.valid()) engine_.cancel(act->finish_event);
      act->armed_at = act->finish_at;
      const std::uint64_t aid = act->id;
      act->finish_event =
          engine_.schedule_at(act->finish_at, [this, aid] { on_finish_event(aid); });
    } else if (act->finish_event.valid()) {
      // This member held the timer under an older partition of the graph;
      // its cached component (if any) is superseded by the caller's.
      engine_.cancel(act->finish_event);
      act->finish_event = {};
      act->armed_at = kNever;
      comp_cache_.erase(act->id);
    }
  }
  return best;
}

FluidModel::Activity* FluidModel::apply_rates(const Component& comp,
                                              const std::vector<double>& rates,
                                              Activity* force_rearm) {
  // Reuses the flat edge index solve_component just built for this very
  // component (s_roff_/s_ridx_ are untouched between solve and apply).
  std::fill(s_sumw_.begin(), s_sumw_.end(), 0.0);
  for (std::size_t i = 0; i < comp.acts.size(); ++i) {
    Activity* act = comp.acts[i];
    // vlint: allow(no-exact-float-compare) audited PR 8: change detection on deterministically recomputed rates; exact compare only skips a redundant re-projection
    if (rates[i] != act->rate || act == force_rearm) {
      act->rate = rates[i];
      project_finish(*act);
    }
    // Ascending i == ascending activity id == the order a fresh summation
    // over Resource::users would use, so the sums are bit-identical to one.
    for (std::size_t k = s_roff_[i]; k < s_roff_[i + 1]; ++k) s_sumw_[s_ridx_[k]] += rates[i];
  }
  for (std::size_t j = 0; j < comp.res.size(); ++j) {
    comp.res[j]->allocated = s_sumw_[j];
  }
  return arm_component_timer(comp);
}

void FluidModel::update_component(Component comp, Activity* force_rearm) {
  recomputes_->inc();
  component_size_->observe(static_cast<double>(comp.acts.size()));
  solve_component(comp, s_rates_);
  Activity* holder = apply_rates(comp, s_rates_, force_rearm);
  // Hand the sorted member lists to the timer holder: when its finish event
  // fires, on_finish_event reuses them instead of redoing the BFS + sorts.
  if (holder != nullptr) comp_cache_[holder->id] = std::move(comp);
}

void FluidModel::update_partition(Component comp) {
  // Removals may have split the component; re-partition the survivors and
  // solve each true sub-component on its own (the canonical form the
  // reference oracle verifies against).
  if (comp.acts.empty()) {
    for (Resource* r : comp.res) r->allocated = 0.0;
    return;
  }
  // Fast path — by far the common case: one BFS proves the survivors are
  // still a single component, and the member lists (already sorted) are
  // reused as-is. Only resources the BFS reached stay in the component;
  // the rest lost their last user and carry no load.
  if (reach_component(comp.acts.front()) == comp.acts.size()) {
    const std::uint64_t epoch = visit_epoch_;
    std::size_t keep = 0;
    for (Resource* r : comp.res) {
      if (r->seen == epoch) {
        comp.res[keep++] = r;
      } else {
        r->allocated = 0.0;
      }
    }
    comp.res.resize(keep);
    update_component(std::move(comp));
    return;
  }
  // Split: re-collect each true sub-component. The sets are only
  // membership-tested, never iterated, so their unordered layout cannot
  // leak into the results.
  std::unordered_set<const Activity*> pending(comp.acts.begin(), comp.acts.end());
  std::unordered_set<const Resource*> live_res;
  for (Activity* act : comp.acts) {
    if (!pending.contains(act)) continue;
    Component sub = collect_component(act, nullptr);
    for (const Activity* a : sub.acts) pending.erase(a);
    for (const Resource* r : sub.res) live_res.insert(r);
    update_component(std::move(sub));
  }
  // Resources left with no path to any surviving activity carry no load.
  for (Resource* r : comp.res) {
    if (!live_res.contains(r)) r->allocated = 0.0;
  }
}

void FluidModel::on_finish_event(std::uint64_t activity_id) {
  auto it = activities_.find(activity_id);
  if (it == activities_.end()) {
    comp_cache_.erase(activity_id);
    return;  // completed in a batch meanwhile
  }
  Activity& self = it->second;
  self.finish_event = {};
  self.armed_at = kNever;

  // A firing timer means no mutation touched this component since it was
  // armed (any mutation re-solves and re-arms, replacing the cache entry),
  // so the cached membership is exact — no BFS, no sort.
  Component comp;
  if (auto cit = comp_cache_.find(activity_id); cit != comp_cache_.end()) {
    comp = std::move(cit->second);
    comp_cache_.erase(cit);
  } else {
    comp = collect_component(&self, nullptr);
  }
  settle_component(comp);

  // Everything in the component that is done completes in one batch: the
  // co-finishers would fire at this same instant anyway, and batching
  // keeps callback order independent of timer arming order.
  std::vector<Activity*> done;
  for (Activity* act : comp.acts) {
    if (finished(*act)) done.push_back(act);
  }
  if (done.empty()) {
    // Scheduled slightly early by fp rounding; force the finish when it is
    // within kForcedFinishEta of simulated time, else re-arm.
    if (self.rate > 0.0 && self.remaining / self.rate < kForcedFinishEta) {
      done.push_back(&self);
    } else {
      // This activity held the component's timer; re-project its finish and
      // pick the component's earliest finisher afresh.
      project_finish(self);
      Activity* holder = arm_component_timer(comp);
      if (holder != nullptr) comp_cache_[holder->id] = std::move(comp);
      return;
    }
  }

  // Partition the survivors before the done nodes are erased (their
  // pointers dangle afterwards). `done` is ascending by id: it is either a
  // subsequence of the sorted comp.acts or the single forced finisher.
  Component survivors;
  survivors.res = std::move(comp.res);
  std::set_difference(comp.acts.begin(), comp.acts.end(), done.begin(), done.end(),
                      std::back_inserter(survivors.acts), by_id);

  std::vector<Callback> callbacks;
  callbacks.reserve(done.size());
  for (Activity* act : done) {  // ascending id: deterministic callbacks
    if (act->finish_event.valid()) engine_.cancel(act->finish_event);
    comp_cache_.erase(act->id);
    detach(*act);
    if (act->on_complete) callbacks.push_back(std::move(act->on_complete));
    activities_.erase(act->id);
  }

  rate_recomputes_->inc();
  update_partition(std::move(survivors));
  maybe_verify();

  // Callbacks run last: the model is consistent and reentrant calls
  // (start/cancel) each re-settle and re-schedule on their own.
  for (Callback& cb : callbacks) cb();
}

void FluidModel::maybe_verify() {
  if (!reference_) return;
  // Sampled oracle: a stale component stays stale until the next mutation
  // touches it, so checking every Nth mutation still observes the bad state
  // — just a few mutations later. N=1 (the default) is the exhaustive PR-4
  // behaviour.
  if (verify_every_ > 1 &&
      ++verify_tick_ % static_cast<std::uint64_t>(verify_every_) != 0) {
    return;
  }
  verify_all_components();
}

void FluidModel::verify_all_components() {
  // The reference is the pre-incremental algorithm verbatim: one global
  // progressive filling over every live activity at once. Components are
  // independent subproblems, so the joint water level reaches each
  // component's own bottlenecks and the result is mathematically identical
  // to the per-component solves — but the cost is the old cost, O(freeze
  // rounds × total activities) per mutation, which is exactly what
  // bench/scale_cluster measures the incremental solver against.
  Component all;
  all.acts.reserve(activities_.size());
  // vlint: allow(no-unordered-iteration) audited PR 8: collects pointers, sorted by id before use
  for (auto& [aid, act] : activities_) all.acts.push_back(&act);
  std::sort(all.acts.begin(), all.acts.end(), by_id);
  for (const Activity* act : all.acts) {
    for (Resource* r : act->resources) all.res.push_back(r);
  }
  std::sort(all.res.begin(), all.res.end(), by_id);
  all.res.erase(std::unique(all.res.begin(), all.res.end()), all.res.end());

  std::vector<double> rates;
  solve_component(all, rates);
  for (std::size_t i = 0; i < all.acts.size(); ++i) {
    const double stored = all.acts[i]->rate;
    // The joint solve reaches each bottleneck through more (smaller) water-
    // level increments, so accumulation differs in the last bits; compare
    // relative, not bitwise.
    const double tol = 1e-9 * std::max(1.0, std::max(std::abs(stored), std::abs(rates[i])));
    if (std::abs(stored - rates[i]) > tol) {
      std::fprintf(stderr,
                   "FluidModel reference oracle: activity %llu rate %.17g != reference "
                   "%.17g (stale component?)\n",
                   static_cast<unsigned long long>(all.acts[i]->id), stored, rates[i]);
      std::abort();
    }
  }
}

}  // namespace vhadoop::sim

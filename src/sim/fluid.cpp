#include "sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace vhadoop::sim {

namespace {
// An activity is finished when less than this much work remains. Work units
// are bytes or core-seconds; a micro-unit is far below observability.
constexpr double kWorkEps = 1e-6;
}  // namespace

FluidModel::ResourceId FluidModel::add_resource(std::string name, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity < 0");
  const std::uint64_t id = next_id_++;
  resources_.emplace(id, Resource{std::move(name), capacity, 0.0, {}});
  return ResourceId{id};
}

void FluidModel::set_capacity(ResourceId id, double capacity) {
  if (capacity < 0.0) throw std::invalid_argument("resource capacity < 0");
  settle();
  resources_.at(id.v).capacity = capacity;
  recompute_and_reschedule();
}

double FluidModel::capacity(ResourceId id) const { return resources_.at(id.v).capacity; }

double FluidModel::allocated(ResourceId id) const {
  const Resource& r = resources_.at(id.v);
  double sum = 0.0;
  for (std::uint64_t a : r.users) sum += activities_.at(a).rate;
  return sum;
}

double FluidModel::utilization(ResourceId id) const {
  const Resource& r = resources_.at(id.v);
  if (r.capacity <= 0.0) return 0.0;
  return std::min(1.0, allocated(id) / r.capacity);
}

double FluidModel::busy_integral(ResourceId id) const {
  const Resource& r = resources_.at(id.v);
  // Include the partially elapsed interval since the last settle.
  return r.busy_integral + allocated(id) * (engine_.now() - last_update_);
}

const std::string& FluidModel::name(ResourceId id) const { return resources_.at(id.v).name; }

FluidModel::ActivityId FluidModel::start(ActivitySpec spec) {
  if (spec.work < 0.0) throw std::invalid_argument("activity work < 0");
  if (spec.weight <= 0.0) throw std::invalid_argument("activity weight <= 0");
  if (spec.resources.empty() && !std::isfinite(spec.cap)) {
    throw std::invalid_argument("activity with no resource must have a finite cap");
  }
  settle();
  const std::uint64_t id = next_id_++;
  Activity act;
  act.remaining = spec.work;
  act.total = spec.work;
  act.weight = spec.weight;
  act.cap = spec.cap;
  act.on_complete = std::move(spec.on_complete);
  act.resources.reserve(spec.resources.size());
  for (ResourceId r : spec.resources) {
    resources_.at(r.v).users.push_back(id);
    act.resources.push_back(r.v);
  }
  activities_.emplace(id, std::move(act));
  activities_started_->inc();
  recompute_and_reschedule();
  return ActivityId{id};
}

void FluidModel::detach(std::uint64_t activity_id, const Activity& act) {
  for (std::uint64_t rid : act.resources) {
    auto& users = resources_.at(rid).users;
    users.erase(std::remove(users.begin(), users.end(), activity_id), users.end());
  }
}

bool FluidModel::cancel(ActivityId id) {
  auto it = activities_.find(id.v);
  if (it == activities_.end()) return false;
  settle();
  detach(id.v, it->second);
  activities_.erase(it);
  recompute_and_reschedule();
  return true;
}

void FluidModel::add_work(ActivityId id, double extra) {
  if (extra < 0.0) throw std::invalid_argument("add_work: extra < 0");
  settle();
  Activity& act = activities_.at(id.v);
  act.remaining += extra;
  act.total += extra;
  recompute_and_reschedule();
}

void FluidModel::set_cap(ActivityId id, double cap) {
  if (cap < 0.0) throw std::invalid_argument("set_cap: cap < 0");
  settle();
  activities_.at(id.v).cap = cap;
  recompute_and_reschedule();
}

double FluidModel::rate(ActivityId id) const { return activities_.at(id.v).rate; }

double FluidModel::remaining(ActivityId id) const {
  const Activity& act = activities_.at(id.v);
  return std::max(0.0, act.remaining - act.rate * (engine_.now() - last_update_));
}

void FluidModel::settle() {
  const SimTime now = engine_.now();
  const double elapsed = now - last_update_;
  if (elapsed <= 0.0) {
    last_update_ = now;
    return;
  }
  // vlint: allow(no-unordered-iteration) per-entry update, no cross-entry state
  for (auto& [id, r] : resources_) {
    double alloc = 0.0;
    for (std::uint64_t a : r.users) alloc += activities_.at(a).rate;
    r.busy_integral += alloc * elapsed;
  }
  // vlint: allow(no-unordered-iteration) per-entry update, no cross-entry state
  for (auto& [id, act] : activities_) {
    act.remaining = std::max(0.0, act.remaining - act.rate * elapsed);
  }
  last_update_ = now;
}

void FluidModel::recompute_rates() {
  rate_recomputes_->inc();
  // Progressive filling: raise a common water level theta; each unfrozen
  // activity's rate grows as weight*theta until either one of its resources
  // saturates (freezing every unfrozen user of that resource) or its own
  // cap is reached.
  std::unordered_map<std::uint64_t, double> slack;
  slack.reserve(resources_.size());
  // vlint: allow(no-unordered-iteration) keyed copy, one write per entry
  for (auto& [rid, r] : resources_) slack[rid] = r.capacity;

  std::vector<std::uint64_t> unfrozen;
  unfrozen.reserve(activities_.size());
  // vlint: allow(no-unordered-iteration) collects ids, sorted before use below
  for (auto& [aid, act] : activities_) {
    act.rate = 0.0;
    if (act.cap <= 0.0) continue;  // paused
    unfrozen.push_back(aid);
  }
  // Deterministic iteration order regardless of hash-map layout.
  std::sort(unfrozen.begin(), unfrozen.end());

  while (!unfrozen.empty()) {
    // Weight sum of unfrozen users per resource.
    std::unordered_map<std::uint64_t, double> sumw;
    for (std::uint64_t aid : unfrozen) {
      const Activity& act = activities_.at(aid);
      for (std::uint64_t rid : act.resources) sumw[rid] += act.weight;
    }

    double theta = std::numeric_limits<double>::infinity();
    // vlint: allow(no-unordered-iteration) min-reduction, order-independent
    for (const auto& [rid, w] : sumw) {
      if (w > 0.0) theta = std::min(theta, std::max(0.0, slack.at(rid)) / w);
    }
    for (std::uint64_t aid : unfrozen) {
      const Activity& act = activities_.at(aid);
      theta = std::min(theta, (act.cap - act.rate) / act.weight);
    }
    assert(std::isfinite(theta));
    theta = std::max(theta, 0.0);

    for (std::uint64_t aid : unfrozen) {
      Activity& act = activities_.at(aid);
      act.rate += act.weight * theta;
    }
    // vlint: allow(no-unordered-iteration) per-entry update, no cross-entry state
    for (auto& [rid, w] : sumw) slack.at(rid) -= theta * w;

    // Freeze activities at saturated resources or at their cap.
    std::vector<std::uint64_t> next;
    next.reserve(unfrozen.size());
    bool froze_any = false;
    for (std::uint64_t aid : unfrozen) {
      Activity& act = activities_.at(aid);
      bool frozen = act.rate >= act.cap * (1.0 - 1e-12) - kEps;
      if (!frozen) {
        for (std::uint64_t rid : act.resources) {
          const double cap = resources_.at(rid).capacity;
          if (slack.at(rid) <= kEps * std::max(1.0, cap)) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        froze_any = true;
      } else {
        next.push_back(aid);
      }
    }
    if (!froze_any) {
      // Numerical guard: theta was the exact minimum, so something must
      // freeze; if rounding prevented it, freeze everything to terminate.
      break;
    }
    unfrozen = std::move(next);
  }
}

void FluidModel::recompute_and_reschedule() {
  recompute_rates();
  if (pending_event_.valid()) {
    engine_.cancel(pending_event_);
    pending_event_ = {};
  }
  double eta = std::numeric_limits<double>::infinity();
  // vlint: allow(no-unordered-iteration) min-reduction, order-independent
  for (const auto& [aid, act] : activities_) {
    if (act.rate > 0.0) eta = std::min(eta, std::max(0.0, act.remaining) / act.rate);
  }
  if (std::isfinite(eta)) {
    pending_event_ = engine_.schedule_in(eta, [this] { on_completion_event(); });
  }
}

void FluidModel::on_completion_event() {
  pending_event_ = {};
  settle();

  // Collect everything that is done. Tolerance is absolute: kWorkEps work
  // units remaining cannot be observed by any consumer of the model.
  std::vector<std::uint64_t> done;
  // vlint: allow(no-unordered-iteration) collects ids, sorted before callbacks
  for (const auto& [aid, act] : activities_) {
    if (act.remaining <= kWorkEps && (act.rate > 0.0 || act.total <= kWorkEps)) {
      done.push_back(aid);
    }
  }
  if (done.empty()) {
    // Scheduled slightly early by fp rounding; force the closest finisher
    // if it is within a microsecond of simulated time (far below anything
    // the platform measures) — otherwise rescheduling could ping-pong at a
    // frozen timestamp forever.
    std::uint64_t best = 0;
    double best_eta = std::numeric_limits<double>::infinity();
    // Ties break on the smaller activity id, so the chosen finisher does not
    // depend on the hash-map layout (determinism contract, DESIGN.md §9).
    // vlint: allow(no-unordered-iteration) selection by (eta, id) minimum, order-independent
    for (const auto& [aid, act] : activities_) {
      if (act.rate <= 0.0) continue;
      const double a_eta = act.remaining / act.rate;
      if (a_eta < best_eta || (a_eta == best_eta && (best == 0 || aid < best))) {
        best_eta = a_eta;
        best = aid;
      }
    }
    if (best != 0 && best_eta < 1e-6) {
      done.push_back(best);
    } else {
      recompute_and_reschedule();
      return;
    }
  }
  std::sort(done.begin(), done.end());  // deterministic callback order

  std::vector<Callback> callbacks;
  callbacks.reserve(done.size());
  for (std::uint64_t aid : done) {
    auto it = activities_.find(aid);
    detach(aid, it->second);
    if (it->second.on_complete) callbacks.push_back(std::move(it->second.on_complete));
    activities_.erase(it);
  }
  recompute_and_reschedule();
  // Callbacks run last: the model is consistent and reentrant calls
  // (start/cancel) each re-settle and re-schedule on their own.
  for (Callback& cb : callbacks) cb();
}

}  // namespace vhadoop::sim

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vhadoop::sim {

/// Fluid (flow-level) resource-sharing model.
///
/// Every ongoing transfer or computation in the simulated testbed is an
/// *activity*: a fixed amount of work (bytes, core-seconds) draining at a
/// rate decided by weighted max-min fair sharing over the *resources* it
/// consumes. An activity may consume several resources at once at the same
/// rate — e.g. a cross-host flow uses the sender NIC, the receiver NIC and
/// the NFS disk; a virtual CPU burn uses the VM's VCPU allotment and the
/// host's physical CPU. This is the standard methodology for simulating
/// contention phenomena at datacenter scale (flow-level network models):
/// exact packet/instruction interleaving is abstracted away, while
/// bottleneck formation — the subject of the vHadoop paper — is preserved.
///
/// ## Incremental recomputation (DESIGN.md §10)
///
/// Activities and resources form a bipartite sharing graph whose connected
/// components are independent max-min problems: progressive filling in one
/// component never reads state from another. The model exploits that by
/// recomputing, on every change (activity start/finish/cancel, capacity or
/// cap change), only the component touched by the change. Rates of all
/// other components — and their already-armed completion timers — are left
/// intact, which turns the per-event cost from O(all activities × all
/// resources) into O(component). Work remaining and busy integrals are
/// settled lazily, also per component.
///
/// The invariant that makes this safe: *the stored rate of every activity
/// always equals the canonical progressive-filling solution of its own
/// (true, maximal) connected component*. Solving is deterministic, so a
/// reference re-solve of an untouched component reproduces the stored
/// rates bit for bit. `VHADOOP_FLUID_REFERENCE=1` (or the constructor
/// flag) turns on the reference oracle: after every update the model
/// re-solves *every* component from scratch and verifies the invariant,
/// aborting on divergence beyond 1e-9 — the stale-component bug class an
/// incremental solver can introduce cannot then go unnoticed.
///
/// Completion times are exact under the piecewise-constant rate
/// assumption. Projected finish times are plain arithmetic; only one
/// engine timer is armed per component — on its earliest finisher — and it
/// is re-armed only when that earliest ETA actually moves. A rate change
/// that shifts every member of a 500-activity component therefore costs
/// one heap operation, not 500.
class FluidModel {
 public:
  struct ResourceId {
    std::uint64_t v = 0;
    bool valid() const { return v != 0; }
    bool operator==(const ResourceId&) const = default;
  };
  struct ActivityId {
    std::uint64_t v = 0;
    bool valid() const { return v != 0; }
    bool operator==(const ActivityId&) const = default;
  };

  /// Completion callback. Runs after the model is consistent, so it may
  /// freely start or cancel other activities.
  using Callback = std::function<void()>;

  struct ActivitySpec {
    /// Total work: bytes for transfers, core-seconds for computation.
    double work = 0.0;
    /// Max-min weight (share of each contended resource).
    double weight = 1.0;
    /// Hard rate ceiling (e.g. a VCPU can use at most one core; a paced
    /// migration stream). Infinity = unlimited.
    double cap = std::numeric_limits<double>::infinity();
    /// Resources consumed, all at the activity's single rate. May be empty
    /// only if `cap` is finite (pure rate-limited work, e.g. latency pacing).
    std::vector<ResourceId> resources;
    Callback on_complete;
  };

  /// Reference-oracle mode defaults to the VHADOOP_FLUID_REFERENCE
  /// environment variable; pass `reference` explicitly in tests.
  explicit FluidModel(Engine& engine);
  FluidModel(Engine& engine, bool reference);
  FluidModel(const FluidModel&) = delete;
  FluidModel& operator=(const FluidModel&) = delete;

  /// True when every update re-solves all components and verifies the
  /// incremental invariant (see class comment).
  bool reference_mode() const { return reference_; }

  // --- resources ---------------------------------------------------------
  ResourceId add_resource(std::string name, double capacity);
  void set_capacity(ResourceId id, double capacity);
  double capacity(ResourceId id) const;
  /// Sum of the current rates of all activities using the resource.
  double allocated(ResourceId id) const;
  /// allocated / capacity in [0,1]; 0 for a zero-capacity resource.
  double utilization(ResourceId id) const;
  /// ∫ allocated(t) dt since simulation start (for average utilization).
  double busy_integral(ResourceId id) const;
  const std::string& name(ResourceId id) const;

  // --- activities --------------------------------------------------------
  ActivityId start(ActivitySpec spec);
  /// Cancel an in-flight activity (its callback never runs). Returns false
  /// if it already completed or was cancelled.
  bool cancel(ActivityId id);
  /// Extend an in-flight activity by `extra` work units.
  void add_work(ActivityId id, double extra);
  /// Change the rate cap of an in-flight activity (0 pauses it).
  void set_cap(ActivityId id, double cap);
  bool active(ActivityId id) const { return activities_.contains(id.v); }
  double rate(ActivityId id) const;
  double remaining(ActivityId id) const;

  std::size_t active_count() const { return activities_.size(); }

 private:
  struct Activity;

  struct Resource {
    std::string name;
    double capacity = 0.0;
    /// ∫ allocated dt, integrated up to `last_update`.
    double busy_integral = 0.0;
    /// Sum of users' rates (kept current by apply_rates).
    double allocated = 0.0;
    SimTime last_update = 0.0;
    std::uint64_t id = 0;
    /// Users ascending by id (ids are handed out monotonically). Raw
    /// pointers: unordered_map nodes are pointer-stable across rehashes,
    /// and pointer adjacency keeps hash lookups out of the per-event path.
    std::vector<Activity*> users;
    /// BFS visit stamp (see visit_epoch_); scratch, not model state.
    std::uint64_t seen = 0;
    /// Position in the component currently being solved; scratch written by
    /// solve_component so edge targets resolve in O(1).
    std::size_t local_idx = 0;
  };

  struct Activity {
    /// Work left as of `last_update`; drains at `rate` since then.
    double remaining = 0.0;
    double total = 0.0;
    double weight = 1.0;
    double cap = 0.0;
    double rate = 0.0;
    SimTime last_update = 0.0;
    /// Absolute projected completion time (kNever when paused/stalled).
    SimTime finish_at = kNever;
    /// Engine timer, armed only while this activity is its component's
    /// earliest finisher (one live timer per component, see apply_rates).
    Engine::EventId finish_event{};
    /// The time finish_event is armed at (kNever when not armed); lets a
    /// re-arm be skipped when the projected finish did not move.
    SimTime armed_at = kNever;
    std::uint64_t id = 0;
    std::vector<Resource*> resources;
    Callback on_complete;
    /// BFS visit stamp (see visit_epoch_); scratch, not model state.
    std::uint64_t seen = 0;
  };

  /// One connected component of the activity↔resource bipartite graph;
  /// both lists are sorted ascending by id (canonical order for solving).
  struct Component {
    std::vector<Activity*> acts;
    std::vector<Resource*> res;
  };

  /// BFS over shared resources from the given seeds (either may be null).
  Component collect_component(Activity* seed_act, Resource* seed_res);
  /// Count-only BFS from `seed`: stamps everything reachable with a fresh
  /// visit epoch and returns how many activities were reached. Lets
  /// update_partition prove "no split" without re-collecting and re-sorting
  /// the member lists.
  std::size_t reach_component(Activity* seed);
  /// Bring `remaining` / `busy_integral` of every member up to now.
  void settle_component(const Component& comp);
  /// Canonical progressive filling over one component. Writes the solution
  /// into `rates` (parallel to comp.acts); touches only scratch state.
  void solve_component(const Component& comp, std::vector<double>& rates);
  /// Write solved rates back, refresh per-resource allocation sums and
  /// re-arm the component's timer if its earliest ETA moved. `force_rearm`
  /// names an activity whose remaining changed without a rate change
  /// (add_work), so its projection must be refreshed regardless. Returns
  /// the member holding the component's timer (null when none finishes).
  Activity* apply_rates(const Component& comp, const std::vector<double>& rates,
                        Activity* force_rearm);
  /// Solve + apply for one dirty component (metrics included). Takes the
  /// component by value: it is moved into comp_cache_ under the timer
  /// holder, so the holder's finish event can reuse it without a BFS.
  void update_component(Component comp, Activity* force_rearm = nullptr);
  /// After removals a component may have split: re-partition the remaining
  /// members into true components and solve each.
  void update_partition(Component comp);
  /// Arm one engine timer for the component, on its earliest projected
  /// finisher (smallest id on ties); cancel timers of all other members.
  /// A component with no finite finish keeps no timer at all. Returns the
  /// timer holder (even when the existing timer was kept), or null.
  Activity* arm_component_timer(const Component& comp);
  /// Recompute `act.finish_at` from rate/remaining as of now.
  void project_finish(Activity& act) const;
  void on_finish_event(std::uint64_t activity_id);
  void detach(Activity& act);
  /// Reference-mode gate: runs the oracle on every mutation by default, or
  /// on every Nth one when VHADOOP_FLUID_VERIFY_EVERY=N — the full oracle
  /// is O(all activities × all resources) per mutation, which is fine for
  /// the churn suite but prohibitive at 4096 VMs. Sampling still catches a
  /// stale component: staleness persists until the component is next
  /// touched, so any later sampled check over the same state trips it.
  void maybe_verify();
  /// Reference oracle: re-solve every component, verify stored rates.
  void verify_all_components();

  /// An activity is finished when less than this much work remains. Work
  /// units are bytes or core-seconds; a micro-unit is far below
  /// observability.
  static constexpr double kWorkEps = 1e-6;

  bool finished(const Activity& act) const {
    return act.remaining <= kWorkEps && (act.rate > 0.0 || act.total <= kWorkEps);
  }

  Engine& engine_;
  bool reference_;
  /// Oracle sampling period (1 = every mutation); see maybe_verify().
  int verify_every_ = 1;
  std::uint64_t verify_tick_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Resource> resources_;
  std::unordered_map<std::uint64_t, Activity> activities_;
  /// Solved component of each armed timer holder, keyed by its activity id.
  /// Valid by construction: any mutation touching the component re-solves
  /// and re-arms it, replacing the entry — so when the timer actually
  /// fires, the membership is exactly what it was at arming time and the
  /// finish path needs neither a BFS nor a sort. Entries die with their
  /// timer (consumed on fire, erased on cancel/re-arm).
  std::unordered_map<std::uint64_t, Component> comp_cache_;
  obs::Counter* activities_started_;
  obs::Counter* rate_recomputes_;
  obs::Counter* recomputes_;
  obs::Histogram* component_size_;

  // Scratch reused across calls so the per-event hot path (BFS + solve on
  // the dirty component) allocates nothing in steady state. The engine is
  // single-threaded and no solve nests inside another, so sharing is safe.
  std::uint64_t visit_epoch_ = 0;
  std::vector<Activity*> bfs_act_stack_;
  std::vector<Resource*> bfs_res_stack_;
  std::vector<double> s_slack_, s_rescap_, s_weight_, s_cap_, s_sumw_;
  std::vector<std::size_t> s_ridx_, s_roff_, s_unfrozen_, s_next_;
  std::vector<int> s_cnt_;
  std::vector<double> s_rates_;
};

}  // namespace vhadoop::sim

#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace vhadoop::sim {

/// Fluid (flow-level) resource-sharing model.
///
/// Every ongoing transfer or computation in the simulated testbed is an
/// *activity*: a fixed amount of work (bytes, core-seconds) draining at a
/// rate decided by weighted max-min fair sharing over the *resources* it
/// consumes. An activity may consume several resources at once at the same
/// rate — e.g. a cross-host flow uses the sender NIC, the receiver NIC and
/// the NFS disk; a virtual CPU burn uses the VM's VCPU allotment and the
/// host's physical CPU. This is the standard methodology for simulating
/// contention phenomena at datacenter scale (flow-level network models):
/// exact packet/instruction interleaving is abstracted away, while
/// bottleneck formation — the subject of the vHadoop paper — is preserved.
///
/// Rates are recomputed with progressive filling whenever the activity set
/// or a capacity changes; completion times are exact under the piecewise-
/// constant rate assumption. The model owns a single pending engine event
/// for the earliest completion.
class FluidModel {
 public:
  struct ResourceId {
    std::uint64_t v = 0;
    bool valid() const { return v != 0; }
    bool operator==(const ResourceId&) const = default;
  };
  struct ActivityId {
    std::uint64_t v = 0;
    bool valid() const { return v != 0; }
    bool operator==(const ActivityId&) const = default;
  };

  /// Completion callback. Runs after the model is consistent, so it may
  /// freely start or cancel other activities.
  using Callback = std::function<void()>;

  struct ActivitySpec {
    /// Total work: bytes for transfers, core-seconds for computation.
    double work = 0.0;
    /// Max-min weight (share of each contended resource).
    double weight = 1.0;
    /// Hard rate ceiling (e.g. a VCPU can use at most one core; a paced
    /// migration stream). Infinity = unlimited.
    double cap = std::numeric_limits<double>::infinity();
    /// Resources consumed, all at the activity's single rate. May be empty
    /// only if `cap` is finite (pure rate-limited work, e.g. latency pacing).
    std::vector<ResourceId> resources;
    Callback on_complete;
  };

  explicit FluidModel(Engine& engine)
      : engine_(engine),
        activities_started_(engine.metrics().counter("sim.fluid.activities_started")),
        rate_recomputes_(engine.metrics().counter("sim.fluid.rate_recomputes")) {}
  FluidModel(const FluidModel&) = delete;
  FluidModel& operator=(const FluidModel&) = delete;

  // --- resources ---------------------------------------------------------
  ResourceId add_resource(std::string name, double capacity);
  void set_capacity(ResourceId id, double capacity);
  double capacity(ResourceId id) const;
  /// Sum of the current rates of all activities using the resource.
  double allocated(ResourceId id) const;
  /// allocated / capacity in [0,1]; 0 for a zero-capacity resource.
  double utilization(ResourceId id) const;
  /// ∫ allocated(t) dt since simulation start (for average utilization).
  double busy_integral(ResourceId id) const;
  const std::string& name(ResourceId id) const;

  // --- activities --------------------------------------------------------
  ActivityId start(ActivitySpec spec);
  /// Cancel an in-flight activity (its callback never runs). Returns false
  /// if it already completed or was cancelled.
  bool cancel(ActivityId id);
  /// Extend an in-flight activity by `extra` work units.
  void add_work(ActivityId id, double extra);
  /// Change the rate cap of an in-flight activity (0 pauses it).
  void set_cap(ActivityId id, double cap);
  bool active(ActivityId id) const { return activities_.contains(id.v); }
  double rate(ActivityId id) const;
  double remaining(ActivityId id) const;

  std::size_t active_count() const { return activities_.size(); }

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;
    double busy_integral = 0.0;
    std::vector<std::uint64_t> users;  // activity ids (unordered)
  };

  struct Activity {
    double remaining = 0.0;
    double total = 0.0;
    double weight = 1.0;
    double cap = 0.0;
    double rate = 0.0;
    std::vector<std::uint64_t> resources;
    Callback on_complete;
  };

  void settle();
  void recompute_and_reschedule();
  void recompute_rates();
  void on_completion_event();
  void detach(std::uint64_t activity_id, const Activity& act);

  Engine& engine_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Resource> resources_;
  std::unordered_map<std::uint64_t, Activity> activities_;
  SimTime last_update_ = 0.0;
  Engine::EventId pending_event_{};
  obs::Counter* activities_started_;
  obs::Counter* rate_recomputes_;
};

}  // namespace vhadoop::sim

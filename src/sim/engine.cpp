#include "sim/engine.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

namespace vhadoop::sim {

Engine::Engine()
    : events_scheduled_(metrics_.counter("sim.events_scheduled")),
      events_fired_(metrics_.counter("sim.events_fired")),
      events_cancelled_(metrics_.counter("sim.events_cancelled")),
      queue_compactions_(metrics_.counter("sim.queue_compactions")),
      queue_depth_(metrics_.gauge("sim.queue_depth")) {
  tracer_.set_clock([this] { return now_; });
}

Engine::EventId Engine::schedule_at(SimTime t, Callback cb, bool daemon) {
  if (t < now_ - kEps) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  if (t < now_) t = now_;  // absorb fp slop
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueEntry{t, seq});
  callbacks_.emplace(seq, Pending{std::move(cb), daemon, t});
  if (!daemon) ++regular_pending_;
  events_scheduled_->inc();
  if (static_cast<double>(callbacks_.size()) > queue_depth_->max()) {
    queue_depth_->set(static_cast<double>(callbacks_.size()));
  }
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  // The heap entry becomes a tombstone; it is skipped on pop.
  auto it = callbacks_.find(id.seq);
  if (it == callbacks_.end()) return false;
  if (!it->second.daemon) --regular_pending_;
  callbacks_.erase(it);
  events_cancelled_->inc();
  ++tombstones_;
  if (tombstones_ > 64 && tombstones_ > callbacks_.size()) compact_queue();
  return true;
}

void Engine::compact_queue() {
  std::vector<QueueEntry> live;
  live.reserve(callbacks_.size());
  // vlint: allow(no-unordered-iteration) audited PR 8: collects entries, sorted before the heap is rebuilt
  for (const auto& [seq, pending] : callbacks_) live.push_back(QueueEntry{pending.time, seq});
  // Sorted input gives one canonical heap layout; pop order is total
  // ((time, seq) is a strict order) either way.
  std::sort(live.begin(), live.end(),
            [](const QueueEntry& a, const QueueEntry& b) { return b > a; });
  queue_ = decltype(queue_)(std::greater<>(), std::move(live));
  tombstones_ = 0;
  queue_compactions_->inc();
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) {  // cancelled
      if (tombstones_ > 0) --tombstones_;
      continue;
    }
    Callback cb = std::move(it->second.cb);
    if (!it->second.daemon) --regular_pending_;
    callbacks_.erase(it);
    assert(top.time >= now_ - kEps);
    now_ = std::max(now_, top.time);
    ++processed_;
    events_fired_->inc();
    cb();
    return true;
  }
  return false;
}

void Engine::run() {
  while (regular_pending_ > 0 && step()) {
  }
}

void Engine::sample_timeseries_every(SimTime period) {
  timeseries_period_ = period;
  if (period <= 0.0 || timeseries_armed_) return;
  timeseries_armed_ = true;
  // Self-re-arming daemon chain; the std::function recursion trick keeps
  // the whole sampler local to this call.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, tick] {
    if (timeseries_period_ <= 0.0) {
      timeseries_armed_ = false;
      return;
    }
    timeseries_.sample(now_);
    schedule_in(timeseries_period_, *tick, /*daemon=*/true);
  };
  schedule_in(timeseries_period_, *tick, /*daemon=*/true);
}

bool Engine::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip tombstones without advancing time.
    if (!callbacks_.contains(queue_.top().seq)) {
      queue_.pop();
      if (tombstones_ > 0) --tombstones_;
      continue;
    }
    if (queue_.top().time > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

}  // namespace vhadoop::sim

#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace vhadoop::sim {

Engine::Engine()
    : events_scheduled_(metrics_.counter("sim.events_scheduled")),
      events_fired_(metrics_.counter("sim.events_fired")),
      events_cancelled_(metrics_.counter("sim.events_cancelled")),
      queue_depth_(metrics_.gauge("sim.queue_depth")) {
  tracer_.set_clock([this] { return now_; });
}

Engine::EventId Engine::schedule_at(SimTime t, Callback cb, bool daemon) {
  if (t < now_ - kEps) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  if (t < now_) t = now_;  // absorb fp slop
  const std::uint64_t seq = next_seq_++;
  queue_.push(QueueEntry{t, seq});
  callbacks_.emplace(seq, Pending{std::move(cb), daemon});
  if (!daemon) ++regular_pending_;
  events_scheduled_->inc();
  if (static_cast<double>(callbacks_.size()) > queue_depth_->max()) {
    queue_depth_->set(static_cast<double>(callbacks_.size()));
  }
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  // The heap entry becomes a tombstone; it is skipped on pop.
  auto it = callbacks_.find(id.seq);
  if (it == callbacks_.end()) return false;
  if (!it->second.daemon) --regular_pending_;
  callbacks_.erase(it);
  events_cancelled_->inc();
  return true;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second.cb);
    if (!it->second.daemon) --regular_pending_;
    callbacks_.erase(it);
    assert(top.time >= now_ - kEps);
    now_ = std::max(now_, top.time);
    ++processed_;
    events_fired_->inc();
    cb();
    return true;
  }
  return false;
}

void Engine::run() {
  while (regular_pending_ > 0 && step()) {
  }
}

bool Engine::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip tombstones without advancing time.
    if (!callbacks_.contains(queue_.top().seq)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

}  // namespace vhadoop::sim

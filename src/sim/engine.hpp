#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace vhadoop::sim {

/// Deterministic discrete-event engine.
///
/// Events scheduled at the same instant fire in scheduling order (FIFO by
/// sequence number), which makes every simulation run reproducible. The
/// engine is single-threaded by design: all parallelism in vHadoop is
/// *modeled* through the fluid resource model, while real computation
/// (the logical MapReduce executor) happens outside the engine.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancellation. Default-constructed ids are invalid.
  struct EventId {
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedule `cb` at absolute time `t` (must be >= now()). Daemon events
  /// (periodic samplers, watchdogs) fire normally while the simulation is
  /// driven by regular events, but never keep `run()` alive on their own —
  /// like daemon threads.
  EventId schedule_at(SimTime t, Callback cb, bool daemon = false);

  /// Schedule `cb` after `dt` seconds of simulated time.
  EventId schedule_in(SimTime dt, Callback cb, bool daemon = false) {
    return schedule_at(now_ + dt, std::move(cb), daemon);
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventId id);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Run until no regular (non-daemon) events remain.
  void run();

  /// Run until simulated time `t` (inclusive of events at exactly `t`).
  /// Afterwards now() == t if the horizon was reached, otherwise now() is
  /// the time of the last event. Returns true if pending events remain.
  bool run_until(SimTime t);

  /// Fire at most one event. Returns false if the queue was empty.
  bool step();

  std::size_t pending() const { return callbacks_.size(); }
  std::uint64_t processed() const { return processed_; }

  /// Platform-wide observability, anchored here because every component
  /// already holds an Engine reference. Metrics are always live (untouched
  /// metrics cost nothing); the tracer records only once enabled and is
  /// pre-wired to this engine's simulated clock.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  obs::TimeSeries& timeseries() { return timeseries_; }
  const obs::TimeSeries& timeseries() const { return timeseries_; }

  /// Sample every registered time series each `period` simulated seconds,
  /// via a self-re-arming daemon event (so an armed sampler never keeps
  /// run() alive). Calling again adjusts the period; period <= 0 stops the
  /// chain at its next firing.
  void sample_timeseries_every(SimTime period);

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    bool operator>(const QueueEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct Pending {
    Callback cb;
    bool daemon = false;
    SimTime time = 0.0;
  };

  /// Cancelled events leave tombstones in the heap; once they outnumber the
  /// live entries the heap is rebuilt from the cancellation index. Timer
  /// re-arming (the fluid model cancels and re-schedules completion events
  /// as rates change) would otherwise grow the heap without bound.
  void compact_queue();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t regular_pending_ = 0;
  std::size_t tombstones_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Pending> callbacks_;

  obs::Registry metrics_;
  obs::Tracer tracer_;
  obs::TimeSeries timeseries_;
  SimTime timeseries_period_ = 0.0;
  bool timeseries_armed_ = false;
  obs::Counter* events_scheduled_;
  obs::Counter* events_fired_;
  obs::Counter* events_cancelled_;
  obs::Counter* queue_compactions_;
  obs::Gauge* queue_depth_;
};

}  // namespace vhadoop::sim

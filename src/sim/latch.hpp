#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <utility>

namespace vhadoop::sim {

/// Countdown latch for event-driven fan-in: fires `done` when `count`
/// arrivals have been recorded. Shared-ptr based so concurrent branches can
/// each hold a reference while the initiator goes out of scope.
///
///   auto latch = Latch::create(n_fetches, [this]{ start_merge(); });
///   for (...) start_fetch(..., [latch]{ latch->arrive(); });
class Latch {
 public:
  static std::shared_ptr<Latch> create(std::size_t count, std::function<void()> done) {
    assert(count > 0);
    return std::shared_ptr<Latch>(new Latch(count, std::move(done)));
  }

  /// Create-and-fire helper: a latch over zero branches fires immediately.
  static std::shared_ptr<Latch> create_or_fire(std::size_t count, std::function<void()> done) {
    if (count == 0) {
      done();
      return nullptr;
    }
    return create(count, std::move(done));
  }

  void arrive() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) {
      auto done = std::move(done_);
      done_ = nullptr;
      done();
    }
  }

  std::size_t remaining() const { return remaining_; }

 private:
  Latch(std::size_t count, std::function<void()> done)
      : remaining_(count), done_(std::move(done)) {}

  std::size_t remaining_;
  std::function<void()> done_;
};

}  // namespace vhadoop::sim

#include "sim/rng.hpp"

#include <algorithm>

namespace vhadoop::sim {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace vhadoop::sim

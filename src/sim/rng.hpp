#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace vhadoop::sim {

/// Deterministic, platform-independent pseudo-random generator.
///
/// All stochastic behaviour in the platform (dataset synthesis, placement
/// tie-breaking, workload jitter) flows through this class so that every
/// experiment is reproducible bit-for-bit from its seed. The core generator
/// is SplitMix64, which passes BigCrush and needs no warm-up.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no state caching: deterministic and
  /// branch-free at the cost of one extra uniform per sample).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Derive an independent child stream; children of distinct tags never
  /// collide with the parent sequence.
  Rng fork(std::uint64_t tag) {
    return Rng(next_u64() ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_int(i)]);
    }
  }

 private:
  std::uint64_t state_;
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed CDF. Used by the
/// text-corpus generator (word frequencies in natural language are Zipfian).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Sample a rank (0 = most frequent).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace vhadoop::sim

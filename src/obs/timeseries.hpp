#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vhadoop::obs {

/// Metrics-over-time: named series of (t, value) samples taken on a
/// simulated-clock cadence, so benches can plot utilization curves instead
/// of a single end-of-run snapshot.
///
/// Each series wraps a probe callback read at every `sample()`; samples
/// land in a fixed-capacity ring buffer (oldest overwritten), which bounds
/// memory for arbitrarily long runs. The sampling cadence itself lives in
/// sim::Engine (`sample_timeseries_every`), which drives `sample()` from a
/// daemon event chain — daemon so an armed sampler never keeps `run()`
/// alive once the workload drains.
///
/// Series are stored by name in a sorted map and exported in name order,
/// so the JSON snapshot is deterministic for identical runs.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  struct Point {
    double t = 0.0;
    double v = 0.0;
  };

  /// Probe returning the series' current value (gauge level, counter
  /// cumulative value, utilization fraction, ...).
  using Probe = std::function<double()>;

  /// Register a series; re-registering an existing name replaces its probe
  /// but keeps recorded samples. `capacity` is only consulted on creation.
  void add(const std::string& name, Probe probe,
           std::size_t capacity = kDefaultCapacity);
  bool has(const std::string& name) const { return series_.contains(name); }
  std::size_t series_count() const { return series_.size(); }

  /// Read every probe once, stamping samples with `now`.
  void sample(double now);

  /// Samples of one series in chronological order (empty when unknown).
  std::vector<Point> points(const std::string& name) const;

  /// Drop all recorded samples; registered series (and probes) survive.
  void clear_samples();

  /// Deterministic "vhadoop-timeseries-v1" JSON:
  /// {"schema":...,"series":{name:{"capacity":N,"points":[[t,v],...]}}}
  std::string to_json() const;

 private:
  struct Series {
    Probe probe;
    std::size_t capacity = kDefaultCapacity;
    std::vector<Point> ring;
    std::size_t head = 0;  ///< next write position once the ring is full
    bool full = false;
  };

  std::map<std::string, Series> series_;
};

}  // namespace vhadoop::obs

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vhadoop::obs {

/// Span graph decoupled from the live Tracer, so the same analyzer runs
/// in-process (SpanGraph::from_tracer) and offline in tools/trace_query
/// (graph parsed back from "vhadoop-spans-v1" JSON). Spans are closed:
/// anything the tracer still had open is clipped to the final timestamp.
struct SpanGraph {
  std::vector<Tracer::Span> spans;
  std::vector<Tracer::CauseEdge> edges;
  double final_ts = 0.0;

  static SpanGraph from_tracer(const Tracer& t);
  /// Span by id; nullptr when unknown (ids need not be dense).
  const Tracer::Span* find(SpanId id) const;

 private:
  mutable std::map<SpanId, std::size_t> index_;  // lazily built by find()
};

/// The attribution categories, in report order. Every JobCriticalPath
/// carries all of them (0.0 when absent) so downstream gating can rely on
/// the keys existing.
extern const std::vector<std::string>& critpath_categories();

/// One tile of a job's [submitted, finished] interval. Adjacent segments
/// share their boundary *exactly* (the same double), so the tiling — not a
/// floating-point sum — is what reproduces the makespan.
struct CritSegment {
  double t0 = 0.0;
  double t1 = 0.0;
  std::string category;  ///< one of critpath_categories()
  std::string span;      ///< name of the span this tile came from ("" = queue)
  double seconds() const { return t1 - t0; }
};

/// Per-job critical path: the chain of spans (and the waits between them)
/// that determined the job's end-to-end latency, tiled into categorized
/// segments covering [submitted, finished] with no gaps or overlaps.
struct JobCriticalPath {
  std::uint64_t job = 0;
  std::string name;
  double submitted = 0.0;
  double finished = 0.0;
  std::vector<CritSegment> segments;            ///< chronological
  std::map<std::string, double> attribution;    ///< category -> seconds

  double makespan() const { return finished - submitted; }
  double segment_sum() const;
  /// Exact tiling check: first segment starts at `submitted`, last ends at
  /// `finished`, and every boundary is shared bit-for-bit.
  bool tiles_exactly() const;
};

/// Walk the span graph backwards from each job's last-finishing task,
/// following lane nesting and typed cause edges (shuffle arrivals jump to
/// the critical map attempt; re-executed attempts charge their lost first
/// attempt to straggler-wait). Deterministic: ties break on span id.
/// Jobs are returned in id order.
std::vector<JobCriticalPath> analyze_critical_paths(const SpanGraph& g);

/// "vhadoop-critpath-v1" JSON report for a set of analyzed jobs.
std::string critical_paths_to_json(const std::vector<JobCriticalPath>& jobs);

/// Publish one job's attribution as gauges:
/// critpath.job<id>.<category>_seconds (category sanitized to the metric
/// naming convention: '-' and '/' become '_').
void record_critpath_metrics(const JobCriticalPath& cp, Registry& reg);

}  // namespace vhadoop::obs

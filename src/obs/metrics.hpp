#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vhadoop::obs {

/// Monotonically increasing metric. Values are doubles because most of what
/// the platform counts (bytes, simulated seconds) is continuous; discrete
/// counts stay exactly representable far beyond anything a run produces.
class Counter {
 public:
  void add(double delta) { value_ += delta; }
  void inc() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value plus its high-water mark (queue depths, memory).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  double value() const { return value_; }
  double max() const { return max_; }

 private:
  double value_ = 0.0;
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram. Buckets are upper bounds (ascending); one
/// implicit overflow bucket catches everything past the last bound. Keeps
/// count/sum/min/max exactly and estimates percentiles by linear
/// interpolation inside the winning bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  /// Evenly spaced bounds over [0, hi] — the common utilization shape.
  static std::vector<double> linear_buckets(double hi, int n);
  /// Geometric bounds from `lo` multiplying by `factor` — latency shape.
  static std::vector<double> exponential_buckets(double lo, double factor, int n);

  void observe(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Value at quantile q. Edge cases are pinned: empty histogram -> 0.0,
  /// q <= 0 -> min(), q >= 1 -> max(); results are clamped to the observed
  /// [min, max] so interpolation never extrapolates off the bucket ends.
  /// Within a bucket the mass is assumed uniform; the overflow bucket
  /// reports the observed max.
  double percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named-metric registry. Lookup is idempotent: the first call creates the
/// metric, later calls with the same name return the same object, so hot
/// paths cache the pointer once and pay a bare increment afterwards.
/// Metric names follow the `module.noun_verb` convention (DESIGN.md §Obs).
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// `bounds` is only consulted on first creation.
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  /// Lookup without creation; nullptr when absent (used by tests/exports).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Deterministic JSON snapshot (keys sorted by name):
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  ///  max,mean,p50,p95,p99,bounds:[...],counts:[...]}}}
  /// Bucket bounds and per-bucket counts are included so consumers
  /// (tools/bench_check, tools/trace_query) can diff distributions, not
  /// just moments.
  std::string to_json() const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: pointer-stable values and sorted iteration for the snapshot.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer: observes the elapsed time between construction and
/// destruction into a histogram. The clock is injectable so simulated-time
/// callers pass `[&engine]{ return engine.now(); }`.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* hist, std::function<double()> clock)
      : hist_(hist), clock_(std::move(clock)), started_(clock_ ? clock_() : 0.0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ && clock_) hist_->observe(clock_() - started_);
  }

 private:
  Histogram* hist_;
  std::function<double()> clock_;
  double started_;
};

}  // namespace vhadoop::obs

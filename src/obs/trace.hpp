#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vhadoop::obs {

/// Identifier of one span in the span graph. Ids are handed out sequentially
/// starting at 1; 0 is "no span" (disabled tracer, empty lane, no parent).
using SpanId = std::uint64_t;

/// Timeline tracer on an injected clock (the simulated clock, in practice).
///
/// Records begin/end spans and instant events on (pid, tid) lanes —
/// exported as Chrome trace-event JSON, where pid/tid map to the "process"
/// and "thread" rows of chrome://tracing / Perfetto. The platform uses one
/// process per VM and one thread per task slot.
///
/// On top of the flat timeline the tracer keeps a *span graph*: every begin
/// returns a stable SpanId, spans record their parent (the innermost open
/// span on the same lane at begin time) and an optional job id, and callers
/// can link any two spans with a typed, timestamped *cause edge* (map output
/// → shuffle fetch, block write → pipeline ack, dispatch → task launch).
/// The graph exports as "vhadoop-spans-v1" JSON for tools/trace_query and
/// the critical-path analyzer (obs/critpath.*).
///
/// Recording is off by default: a disabled tracer turns every begin/end/
/// instant into a cheap early-return, so long benches do not accumulate
/// unbounded event memory. Lane metadata (process/thread names) is kept
/// even while disabled — it is tiny and lets callers register names at
/// boot regardless of whether a trace was requested.
///
/// Spans nest per lane: `end` closes the innermost open span, and the
/// exporters synthesize closing events for anything still open, so the
/// emitted JSON always has balanced B/E pairs even if a task attempt was
/// abandoned mid-flight (crash, timeout, speculative loss).
class Tracer {
 public:
  enum class Phase { Begin, End, Instant };

  struct Event {
    Phase phase = Phase::Instant;
    double ts = 0.0;  ///< simulated seconds
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string cat;
  };

  /// One node of the span graph. `t1 < t0` means the span is still open;
  /// exports close such spans at the trace's final timestamp.
  struct Span {
    SpanId id = 0;
    SpanId parent = 0;        ///< innermost open span on the lane at begin
    std::uint64_t job = 0;    ///< owning job id; 0 = inherit from parent/none
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string cat;
    double t0 = 0.0;
    double t1 = -1.0;
    bool closed() const { return t1 >= t0; }
  };

  /// Typed causal link between two spans: `from` made `to` runnable.
  /// `at` stamps when the effect fired (e.g. fetch arrival); `start` is the
  /// optional time the causal activity began (e.g. fetch transfer start,
  /// 0 = not recorded).
  struct CauseEdge {
    SpanId from = 0;
    SpanId to = 0;
    std::string type;
    double at = 0.0;
    double start = 0.0;
  };

  /// Clock supplying "now" in simulated seconds. Without one, events are
  /// stamped 0 (tests may prefer explicit control via `at`-suffixed calls).
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- recording ----------------------------------------------------------
  /// Open a span; returns its id (0 when disabled). `job` tags the span as
  /// belonging to a job for per-job critical-path analysis; children left
  /// at 0 inherit their parent's job.
  SpanId begin(int pid, int tid, std::string name, std::string cat = {},
               std::uint64_t job = 0);
  /// Close the innermost open span on the lane; no-op when none is open.
  void end(int pid, int tid);
  /// Close every open span on the lane (task attempt abandoned).
  void end_all(int pid, int tid);
  void instant(int pid, int tid, std::string name, std::string cat = {});

  /// Innermost open span on the lane (0 when none / disabled).
  SpanId current(int pid, int tid) const;

  /// Record a typed cause edge stamped at the current clock. No-op when
  /// disabled or either endpoint is 0, so call sites need no guards.
  void cause(SpanId from, SpanId to, std::string type, double start = 0.0);

  /// Ambient causal context: the span whose activity is "driving" the
  /// current (single-threaded) call chain. Subsystems that cannot see their
  /// caller (e.g. the network fabric) link new spans to the ambient span.
  void set_ambient(SpanId s) { ambient_ = s; }
  SpanId ambient() const { return ambient_; }

  // --- lane metadata ------------------------------------------------------
  void set_process_name(int pid, std::string name) { process_names_[pid] = std::move(name); }
  void set_thread_name(int pid, int tid, std::string name) {
    thread_names_[lane(pid, tid)] = std::move(name);
  }

  // --- introspection ------------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<CauseEdge>& cause_edges() const { return edges_; }
  std::size_t open_span_count() const;
  int open_depth(int pid, int tid) const;
  void clear();

  // --- export -------------------------------------------------------------
  /// Chrome trace-event JSON ("traceEvents" array): metadata rows first,
  /// then all events sorted by timestamp (stable, so same-instant B/E keep
  /// recording order). Timestamps are emitted in microseconds as Chrome
  /// expects. Open spans are closed at the trace's final timestamp.
  std::string to_chrome_json() const;
  /// Compact CSV: ts_seconds,phase,pid,tid,name,cat — same ordering and
  /// auto-closing as the Chrome export.
  std::string to_csv() const;
  /// Span graph as "vhadoop-spans-v1" JSON: spans in id order (open spans
  /// closed at the final timestamp), cause edges in recording order, plus
  /// lane names. Input format of tools/trace_query and obs/critpath.
  std::string to_span_graph_json() const;

 private:
  static std::uint64_t lane(int pid, int tid) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)) << 32) |
           static_cast<std::uint32_t>(tid);
  }
  double now() const { return clock_ ? clock_() : 0.0; }
  /// Events plus synthesized closers, sorted for export.
  std::vector<Event> export_events() const;
  double final_ts() const;

  bool enabled_ = false;
  std::function<double()> clock_;
  std::vector<Event> events_;
  std::vector<Span> spans_;        // spans_[id - 1] has id `id`
  std::vector<CauseEdge> edges_;
  SpanId ambient_ = 0;
  std::map<std::uint64_t, std::vector<SpanId>> open_;  // lane -> open span stack
  std::map<int, std::string> process_names_;
  std::map<std::uint64_t, std::string> thread_names_;
};

/// RAII span: begins on construction, ends on destruction. For spans whose
/// lifetime matches a C++ scope (the simulator's callback chains usually
/// call begin/end explicitly instead).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, int pid, int tid, std::string name, std::string cat = {})
      : tracer_(tracer), pid_(pid), tid_(tid) {
    id_ = tracer_.begin(pid_, tid_, std::move(name), std::move(cat));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { tracer_.end(pid_, tid_); }

  SpanId id() const { return id_; }

 private:
  Tracer& tracer_;
  int pid_;
  int tid_;
  SpanId id_ = 0;
};

/// RAII ambient-cause scope: marks `s` as the driving span for the duration
/// of a synchronous call chain, restoring the previous ambient on exit.
class AmbientCause {
 public:
  AmbientCause(Tracer& tracer, SpanId s) : tracer_(tracer), prev_(tracer.ambient()) {
    tracer_.set_ambient(s);
  }
  AmbientCause(const AmbientCause&) = delete;
  AmbientCause& operator=(const AmbientCause&) = delete;
  ~AmbientCause() { tracer_.set_ambient(prev_); }

 private:
  Tracer& tracer_;
  SpanId prev_;
};

}  // namespace vhadoop::obs

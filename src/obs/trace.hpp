#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace vhadoop::obs {

/// Timeline tracer on an injected clock (the simulated clock, in practice).
///
/// Records begin/end spans and instant events on (pid, tid) lanes —
/// exported as Chrome trace-event JSON, where pid/tid map to the "process"
/// and "thread" rows of chrome://tracing / Perfetto. The platform uses one
/// process per VM and one thread per task slot.
///
/// Recording is off by default: a disabled tracer turns every begin/end/
/// instant into a cheap early-return, so long benches do not accumulate
/// unbounded event memory. Lane metadata (process/thread names) is kept
/// even while disabled — it is tiny and lets callers register names at
/// boot regardless of whether a trace was requested.
///
/// Spans nest per lane: `end` closes the innermost open span, and the
/// exporters synthesize closing events for anything still open, so the
/// emitted JSON always has balanced B/E pairs even if a task attempt was
/// abandoned mid-flight (crash, timeout, speculative loss).
class Tracer {
 public:
  enum class Phase { Begin, End, Instant };

  struct Event {
    Phase phase = Phase::Instant;
    double ts = 0.0;  ///< simulated seconds
    int pid = 0;
    int tid = 0;
    std::string name;
    std::string cat;
  };

  /// Clock supplying "now" in simulated seconds. Without one, events are
  /// stamped 0 (tests may prefer explicit control via `at`-suffixed calls).
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- recording ----------------------------------------------------------
  void begin(int pid, int tid, std::string name, std::string cat = {});
  /// Close the innermost open span on the lane; no-op when none is open.
  void end(int pid, int tid);
  /// Close every open span on the lane (task attempt abandoned).
  void end_all(int pid, int tid);
  void instant(int pid, int tid, std::string name, std::string cat = {});

  // --- lane metadata ------------------------------------------------------
  void set_process_name(int pid, std::string name) { process_names_[pid] = std::move(name); }
  void set_thread_name(int pid, int tid, std::string name) {
    thread_names_[lane(pid, tid)] = std::move(name);
  }

  // --- introspection ------------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  std::size_t open_span_count() const;
  int open_depth(int pid, int tid) const;
  void clear();

  // --- export -------------------------------------------------------------
  /// Chrome trace-event JSON ("traceEvents" array): metadata rows first,
  /// then all events sorted by timestamp (stable, so same-instant B/E keep
  /// recording order). Timestamps are emitted in microseconds as Chrome
  /// expects. Open spans are closed at the trace's final timestamp.
  std::string to_chrome_json() const;
  /// Compact CSV: ts_seconds,phase,pid,tid,name,cat — same ordering and
  /// auto-closing as the Chrome export.
  std::string to_csv() const;

 private:
  static std::uint64_t lane(int pid, int tid) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)) << 32) |
           static_cast<std::uint32_t>(tid);
  }
  double now() const { return clock_ ? clock_() : 0.0; }
  /// Events plus synthesized closers, sorted for export.
  std::vector<Event> export_events() const;

  bool enabled_ = false;
  std::function<double()> clock_;
  std::vector<Event> events_;
  std::map<std::uint64_t, std::vector<std::string>> open_;  // lane -> span-name stack
  std::map<int, std::string> process_names_;
  std::map<std::uint64_t, std::string> thread_names_;
};

/// RAII span: begins on construction, ends on destruction. For spans whose
/// lifetime matches a C++ scope (the simulator's callback chains usually
/// call begin/end explicitly instead).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, int pid, int tid, std::string name, std::string cat = {})
      : tracer_(tracer), pid_(pid), tid_(tid) {
    tracer_.begin(pid_, tid_, std::move(name), std::move(cat));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { tracer_.end(pid_, tid_); }

 private:
  Tracer& tracer_;
  int pid_;
  int tid_;
};

}  // namespace vhadoop::obs

// vlint: allow-file(no-exact-float-compare) audited PR 8: simulated timestamps are exact by construction; tiling invariants and comparator tie-breaks are deliberate
#include "obs/critpath.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace vhadoop::obs {

SpanGraph SpanGraph::from_tracer(const Tracer& t) {
  SpanGraph g;
  g.spans = t.spans();
  g.edges = t.cause_edges();
  for (const Tracer::Span& s : g.spans) {
    g.final_ts = std::max(g.final_ts, std::max(s.t0, s.t1));
  }
  for (Tracer::Span& s : g.spans) {
    if (!s.closed()) s.t1 = g.final_ts;
  }
  return g;
}

const Tracer::Span* SpanGraph::find(SpanId id) const {
  if (index_.empty() && !spans.empty()) {
    for (std::size_t i = 0; i < spans.size(); ++i) index_[spans[i].id] = i;
  }
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans[it->second];
}

const std::vector<std::string>& critpath_categories() {
  static const std::vector<std::string> kCategories = {
      "map-compute",   "shuffle-network", "spill/merge",    "reduce-compute",
      "scheduler-queue", "hdfs-io",       "straggler-wait",
  };
  return kCategories;
}

double JobCriticalPath::segment_sum() const {
  double s = 0.0;
  for (const CritSegment& seg : segments) s += seg.seconds();
  return s;
}

bool JobCriticalPath::tiles_exactly() const {
  if (segments.empty()) return makespan() == 0.0;
  if (segments.front().t0 != submitted) return false;
  if (segments.back().t1 != finished) return false;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].t0 != segments[i - 1].t1) return false;
  }
  return true;
}

namespace {

/// Category of a span when it is the innermost tile on the path.
std::string leaf_category(const Tracer::Span& s) {
  const std::string& n = s.name;
  if (n == "compute") return s.cat == "reduce" ? "reduce-compute" : "map-compute";
  if (n == "read" || n == "localize" || n == "commit") return "hdfs-io";
  if (n == "spill" || n == "merge") return "spill/merge";
  if (n == "jvm_spawn") return "scheduler-queue";  // task-launch overhead
  if (n == "shuffle") return "shuffle-network";
  if (s.cat == "hdfs") return "hdfs-io";
  if (s.cat == "net") return "shuffle-network";
  if (s.cat == "map") return "map-compute";
  if (s.cat == "reduce") return "reduce-compute";
  return "scheduler-queue";
}

/// Category of dead time *inside* a span, between its children: engine
/// dispatch latency for task/job spans, the span's own nature otherwise.
std::string gap_category(const Tracer::Span& s) {
  if (s.cat == "job" || s.name.rfind("map-", 0) == 0 || s.name.rfind("reduce-", 0) == 0) {
    return "scheduler-queue";
  }
  return leaf_category(s);
}

/// "map-3/a1" -> "map-3": the task identity shared by all attempts.
std::string attempt_base(const std::string& name) {
  const std::size_t slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

struct JobWalker {
  const SpanGraph& g;
  std::uint64_t job;
  double submitted;
  // Children (same effective job) per parent, sorted by (t0, id).
  std::map<SpanId, std::vector<const Tracer::Span*>> children;
  // Incoming "shuffle" cause edges per target span.
  std::map<SpanId, std::vector<const Tracer::CauseEdge*>> shuffle_in;
  // Earliest attempt span per task base name (straggler attribution).
  std::map<std::string, const Tracer::Span*> first_attempt;
  std::set<SpanId> visited;
  std::vector<CritSegment> out;  ///< reverse chronological while walking

  void emit(double t0, double t1, const std::string& cat, const std::string& span) {
    if (t1 <= t0) return;  // zero-length tiles add nothing and break no chain
    out.push_back({t0, t1, cat, span});
  }

  /// Walk span `s` backwards from `upto` (<= s.t1), emitting tiles. Returns
  /// the time where this chain starts — usually s.t0, earlier if a cause
  /// edge jumped to an older span (the critical shuffle source).
  double walk(const Tracer::Span& s, double upto) {
    if (!visited.insert(s.id).second) {
      // Defensive: a cyclic (malformed) graph degrades to a plain tile
      // instead of recursing forever.
      emit(s.t0, upto, leaf_category(s), s.name);
      return s.t0;
    }
    auto cit = children.find(s.id);
    if (cit != children.end()) {
      const auto& kids = cit->second;
      for (auto k = kids.rbegin(); k != kids.rend(); ++k) {
        const Tracer::Span& c = **k;
        if (c.t1 > upto) continue;  // beyond the cursor: not on the path
        emit(c.t1, upto, gap_category(s), s.name);
        upto = walk(c, c.t1);
        if (upto <= s.t0) return upto;  // the chain escaped this span
      }
    }
    // Shuffle tiles end at the critical (last-arriving) map's finish; the
    // rest of the wait *is* that map running, so the walk jumps into it.
    auto eit = shuffle_in.find(s.id);
    if (eit != shuffle_in.end()) {
      const Tracer::CauseEdge* best = nullptr;
      for (const Tracer::CauseEdge* e : eit->second) {
        if (e->at > upto) continue;
        if (!best || e->at > best->at || (e->at == best->at && e->from > best->from)) {
          best = e;
        }
      }
      const Tracer::Span* m = best ? g.find(best->from) : nullptr;
      if (m && m->t1 > s.t0 && m->t1 <= upto) {
        emit(m->t1, upto, "shuffle-network", s.name);
        return straggler_adjust(*m, walk(*m, m->t1));
      }
    }
    emit(s.t0, upto, leaf_category(s), s.name);
    return s.t0;
  }

  /// If `task` is a re-executed/speculative attempt, the window since the
  /// original attempt began was lost to the straggler: charge it.
  double straggler_adjust(const Tracer::Span& task, double chain_start) {
    auto it = first_attempt.find(attempt_base(task.name));
    if (it == first_attempt.end()) return chain_start;
    const Tracer::Span* fa = it->second;
    if (fa->id == task.id || fa->t0 >= chain_start) return chain_start;
    const double from = std::max(fa->t0, submitted);
    emit(from, chain_start, "straggler-wait", task.name);
    return from;
  }
};

}  // namespace

std::vector<JobCriticalPath> analyze_critical_paths(const SpanGraph& g) {
  // Effective job of every span: explicit tag, else inherited from the
  // parent. Tracer ids are begin-ordered so parents resolve before
  // children; loaded graphs with exotic id orders fall back to "untagged".
  std::map<SpanId, std::uint64_t> eff_job;
  for (const Tracer::Span& s : g.spans) {
    std::uint64_t j = s.job;
    if (j == 0 && s.parent != 0) {
      auto it = eff_job.find(s.parent);
      if (it != eff_job.end()) j = it->second;
    }
    eff_job[s.id] = j;
  }

  std::vector<JobCriticalPath> out;
  for (const Tracer::Span& root : g.spans) {
    if (root.cat != "job" || root.job == 0) continue;

    JobCriticalPath cp;
    cp.job = root.job;
    cp.name = root.name.rfind("job:", 0) == 0 ? root.name.substr(4) : root.name;
    cp.submitted = root.t0;
    cp.finished = root.t1;
    for (const std::string& cat : critpath_categories()) cp.attribution[cat] = 0.0;

    JobWalker w{g, root.job, cp.submitted, {}, {}, {}, {}, {}};
    const Tracer::Span* sink = nullptr;
    for (const Tracer::Span& s : g.spans) {
      if (eff_job.at(s.id) != root.job || s.id == root.id) continue;
      if (s.parent != 0) {
        w.children[s.parent].push_back(&s);
      } else {
        // Task attempt spans sit at lane top level. Track the earliest
        // attempt per task, and the last finisher overall (the sink).
        auto [it, fresh] = w.first_attempt.emplace(attempt_base(s.name), &s);
        if (!fresh && (s.t0 < it->second->t0 ||
                       (s.t0 == it->second->t0 && s.id < it->second->id))) {
          it->second = &s;
        }
        if (!sink || s.t1 > sink->t1 || (s.t1 == sink->t1 && s.id > sink->id)) {
          sink = &s;
        }
      }
    }
    for (auto& [parent, kids] : w.children) {
      std::sort(kids.begin(), kids.end(),
                [](const Tracer::Span* a, const Tracer::Span* b) {
                  if (a->t0 != b->t0) return a->t0 < b->t0;
                  return a->id < b->id;
                });
    }
    for (const Tracer::CauseEdge& e : g.edges) {
      if (e.type == "shuffle") w.shuffle_in[e.to].push_back(&e);
    }

    if (sink) {
      double cursor = cp.finished;
      if (sink->t1 < cursor) {
        w.emit(sink->t1, cursor, "scheduler-queue", root.name);
        cursor = sink->t1;
      }
      const double cs = w.straggler_adjust(*sink, w.walk(*sink, cursor));
      w.emit(cp.submitted, cs, "scheduler-queue", "");
    } else {
      w.emit(cp.submitted, cp.finished, "scheduler-queue", "");
    }
    std::reverse(w.out.begin(), w.out.end());
    cp.segments = std::move(w.out);
    for (const CritSegment& seg : cp.segments) cp.attribution[seg.category] += seg.seconds();
    out.push_back(std::move(cp));
  }
  std::sort(out.begin(), out.end(),
            [](const JobCriticalPath& a, const JobCriticalPath& b) { return a.job < b.job; });
  return out;
}

namespace {

void put_str(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string critical_paths_to_json(const std::vector<JobCriticalPath>& jobs) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\":\"vhadoop-critpath-v1\",\"jobs\":[";
  bool jfirst = true;
  for (const JobCriticalPath& cp : jobs) {
    if (!jfirst) os << ',';
    jfirst = false;
    os << "{\"job\":" << cp.job << ",\"name\":";
    put_str(os, cp.name);
    os << ",\"submitted\":" << cp.submitted << ",\"finished\":" << cp.finished
       << ",\"makespan\":" << cp.makespan() << ",\"segment_sum\":" << cp.segment_sum()
       << ",\"exact_tiling\":" << (cp.tiles_exactly() ? "true" : "false")
       << ",\"attribution\":{";
    bool afirst = true;
    for (const auto& [cat, secs] : cp.attribution) {
      if (!afirst) os << ',';
      afirst = false;
      put_str(os, cat);
      os << ':' << secs;
    }
    os << "},\"segments\":[";
    bool sfirst = true;
    for (const CritSegment& seg : cp.segments) {
      if (!sfirst) os << ',';
      sfirst = false;
      os << "{\"t0\":" << seg.t0 << ",\"t1\":" << seg.t1 << ",\"category\":";
      put_str(os, seg.category);
      os << ",\"span\":";
      put_str(os, seg.span);
      os << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void record_critpath_metrics(const JobCriticalPath& cp, Registry& reg) {
  const std::string prefix = "critpath.job" + std::to_string(cp.job) + ".";
  for (const auto& [cat, secs] : cp.attribution) {
    std::string key = cat;
    for (char& c : key) {
      if (c == '-' || c == '/') c = '_';
    }
    reg.gauge(prefix + key + "_seconds")->set(secs);
  }
  reg.gauge(prefix + "makespan_seconds")->set(cp.makespan());
}

}  // namespace vhadoop::obs

#include "obs/timeseries.hpp"

#include <sstream>

namespace vhadoop::obs {

void TimeSeries::add(const std::string& name, Probe probe, std::size_t capacity) {
  auto it = series_.find(name);
  if (it != series_.end()) {
    it->second.probe = std::move(probe);
    return;
  }
  Series s;
  s.probe = std::move(probe);
  s.capacity = capacity == 0 ? 1 : capacity;
  s.ring.reserve(s.capacity);
  series_.emplace(name, std::move(s));
}

void TimeSeries::sample(double now) {
  for (auto& [name, s] : series_) {
    const Point p{now, s.probe ? s.probe() : 0.0};
    if (s.ring.size() < s.capacity) {
      s.ring.push_back(p);
    } else {
      s.full = true;
      s.ring[s.head] = p;
      s.head = (s.head + 1) % s.capacity;
    }
  }
}

std::vector<TimeSeries::Point> TimeSeries::points(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  const Series& s = it->second;
  if (!s.full) return s.ring;
  std::vector<Point> out;
  out.reserve(s.ring.size());
  out.insert(out.end(), s.ring.begin() + static_cast<std::ptrdiff_t>(s.head), s.ring.end());
  out.insert(out.end(), s.ring.begin(), s.ring.begin() + static_cast<std::ptrdiff_t>(s.head));
  return out;
}

void TimeSeries::clear_samples() {
  for (auto& [name, s] : series_) {
    s.ring.clear();
    s.head = 0;
    s.full = false;
  }
}

std::string TimeSeries::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"schema\":\"vhadoop-timeseries-v1\",\"series\":{";
  bool first = true;
  for (const auto& [name, s] : series_) {
    if (!first) os << ',';
    first = false;
    os << '"';
    for (char c : name) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\":{\"capacity\":" << s.capacity << ",\"points\":[";
    bool pfirst = true;
    for (const Point& p : points(name)) {
      if (!pfirst) os << ',';
      pfirst = false;
      os << '[' << p.t << ',' << p.v << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace vhadoop::obs

#include "obs/metrics.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vhadoop::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::linear_buckets(double hi, int n) {
  if (hi <= 0.0 || n < 1) throw std::invalid_argument("linear_buckets: bad shape");
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) b.push_back(hi * static_cast<double>(i) / n);
  return b;
}

std::vector<double> Histogram::exponential_buckets(double lo, double factor, int n) {
  if (lo <= 0.0 || factor <= 1.0 || n < 1) {
    throw std::invalid_argument("exponential_buckets: bad shape");
  }
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(n));
  double v = lo;
  for (int i = 0; i < n; ++i, v *= factor) b.push_back(v);
  return b;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;   // empty: well-defined, NaN-free
  if (q <= 0.0) return min();    // never interpolate below the observed range
  if (q >= 1.0) return max();
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) < target) continue;
    if (i == bounds_.size()) return max_;  // overflow bucket
    // The winning bucket has mass (the loop stops at the *first* bucket
    // whose cumulative count reaches a strictly positive target), so the
    // interpolation divisor is never zero; hi <= lo only when every
    // observation in the bucket is one repeated value.
    const double hi = std::min(bounds_[i], max_);
    const double lo = std::max(i == 0 ? 0.0 : bounds_[i - 1], min_);
    if (hi <= lo) return hi;
    const double into = target - static_cast<double>(cum - counts_[i]);
    const double v = lo + (hi - lo) * into / static_cast<double>(counts_[i]);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

Counter* Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name, std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

// JSON numbers must be finite; shortest round-trip text keeps snapshots
// byte-identical across runs of the same simulation.
void put_number(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // vlint: allow(no-exact-float-compare) audited PR 8: integer-valuedness test for canonical JSON rendering
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out.precision(17);
    out << v;
  }
}

void put_key(std::ostringstream& out, const std::string& k) {
  out << '"';
  for (char c : k) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << "\":";
}

/// Debug-mode guard for the determinism contract (DESIGN.md §9): keys in a
/// snapshot section must be emitted in strictly increasing order. Sorted
/// output is an invariant that golden tests and replay diffing rely on —
/// asserted here so it cannot silently regress to an accident of whichever
/// container the registry happens to use.
class SortedKeyCheck {
 public:
  void emit(const std::string& key) {
    assert((prev_ == nullptr || *prev_ < key) &&
           "Registry snapshot keys must be strictly sorted");
    prev_ = &key;
  }

 private:
  const std::string* prev_ = nullptr;  // owned by the registry map, stable
};

}  // namespace

std::string Registry::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  SortedKeyCheck counters_sorted;
  for (const auto& [name, c] : counters_) {
    counters_sorted.emit(name);
    if (!first) out << ',';
    first = false;
    put_key(out, name);
    put_number(out, c->value());
  }
  out << "},\"gauges\":{";
  first = true;
  SortedKeyCheck gauges_sorted;
  for (const auto& [name, g] : gauges_) {
    gauges_sorted.emit(name);
    if (!first) out << ',';
    first = false;
    put_key(out, name);
    out << "{\"value\":";
    put_number(out, g->value());
    out << ",\"max\":";
    put_number(out, g->max());
    out << '}';
  }
  out << "},\"histograms\":{";
  first = true;
  SortedKeyCheck histograms_sorted;
  for (const auto& [name, h] : histograms_) {
    histograms_sorted.emit(name);
    if (!first) out << ',';
    first = false;
    put_key(out, name);
    out << "{\"count\":" << h->count();
    out << ",\"sum\":";
    put_number(out, h->sum());
    out << ",\"min\":";
    put_number(out, h->min());
    out << ",\"max\":";
    put_number(out, h->max());
    out << ",\"mean\":";
    put_number(out, h->mean());
    out << ",\"p50\":";
    put_number(out, h->percentile(0.50));
    out << ",\"p95\":";
    put_number(out, h->percentile(0.95));
    out << ",\"p99\":";
    put_number(out, h->percentile(0.99));
    out << ",\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out << ',';
      put_number(out, h->bounds()[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < h->bucket_counts().size(); ++i) {
      if (i) out << ',';
      out << h->bucket_counts()[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace vhadoop::obs

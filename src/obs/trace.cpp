#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

namespace vhadoop::obs {

SpanId Tracer::begin(int pid, int tid, std::string name, std::string cat,
                     std::uint64_t job) {
  if (!enabled_) return 0;
  auto& stack = open_[lane(pid, tid)];
  Span s;
  s.id = spans_.size() + 1;
  s.parent = stack.empty() ? 0 : stack.back();
  s.job = job;
  s.pid = pid;
  s.tid = tid;
  s.name = name;
  s.cat = cat;
  s.t0 = now();
  stack.push_back(s.id);
  spans_.push_back(std::move(s));
  events_.push_back({Phase::Begin, spans_.back().t0, pid, tid, std::move(name),
                     std::move(cat)});
  return spans_.back().id;
}

void Tracer::end(int pid, int tid) {
  if (!enabled_) return;
  auto it = open_.find(lane(pid, tid));
  if (it == open_.end() || it->second.empty()) return;
  Span& s = spans_[it->second.back() - 1];
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
  s.t1 = now();
  events_.push_back({Phase::End, s.t1, pid, tid, s.name, {}});
}

void Tracer::end_all(int pid, int tid) {
  if (!enabled_) return;
  auto it = open_.find(lane(pid, tid));
  if (it == open_.end()) return;
  const double ts = now();
  while (!it->second.empty()) {
    Span& s = spans_[it->second.back() - 1];
    it->second.pop_back();
    s.t1 = ts;
    events_.push_back({Phase::End, ts, pid, tid, s.name, {}});
  }
  open_.erase(it);
}

void Tracer::instant(int pid, int tid, std::string name, std::string cat) {
  if (!enabled_) return;
  events_.push_back({Phase::Instant, now(), pid, tid, std::move(name), std::move(cat)});
}

SpanId Tracer::current(int pid, int tid) const {
  auto it = open_.find(lane(pid, tid));
  if (it == open_.end() || it->second.empty()) return 0;
  return it->second.back();
}

void Tracer::cause(SpanId from, SpanId to, std::string type, double start) {
  if (!enabled_ || from == 0 || to == 0) return;
  edges_.push_back({from, to, std::move(type), now(), start});
}

std::size_t Tracer::open_span_count() const {
  std::size_t n = 0;
  for (const auto& [l, stack] : open_) n += stack.size();
  return n;
}

int Tracer::open_depth(int pid, int tid) const {
  auto it = open_.find(lane(pid, tid));
  return it == open_.end() ? 0 : static_cast<int>(it->second.size());
}

void Tracer::clear() {
  events_.clear();
  spans_.clear();
  edges_.clear();
  open_.clear();
  ambient_ = 0;
}

double Tracer::final_ts() const {
  double last_ts = 0.0;
  for (const Event& e : events_) last_ts = std::max(last_ts, e.ts);
  return last_ts;
}

std::vector<Tracer::Event> Tracer::export_events() const {
  std::vector<Event> out = events_;
  // Anything still open closes at the trace's final instant so every B has
  // a matching E no matter how the simulation ended.
  const double last_ts = final_ts();
  for (const auto& [l, stack] : open_) {
    const int pid = static_cast<int>(static_cast<std::int32_t>(l >> 32));
    const int tid = static_cast<int>(static_cast<std::int32_t>(l & 0xffffffffu));
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      out.push_back({Phase::End, last_ts, pid, tid, spans_[*it - 1].name, {}});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return out;
}

namespace {

void put_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

char phase_letter(Tracer::Phase p) {
  switch (p) {
    case Tracer::Phase::Begin: return 'B';
    case Tracer::Phase::End: return 'E';
    default: return 'i';
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":";
    put_string(os, name);
    os << "}}";
  }
  for (const auto& [l, name] : thread_names_) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
       << static_cast<std::int32_t>(l >> 32)
       << ",\"tid\":" << static_cast<std::int32_t>(l & 0xffffffffu)
       << ",\"ts\":0,\"args\":{\"name\":";
    put_string(os, name);
    os << "}}";
  }
  for (const Event& e : export_events()) {
    sep();
    os << "{\"ph\":\"" << phase_letter(e.phase) << "\",\"ts\":" << e.ts * 1e6
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"name\":";
    put_string(os, e.name);
    if (!e.cat.empty()) {
      os << ",\"cat\":";
      put_string(os, e.cat);
    }
    if (e.phase == Phase::Instant) os << ",\"s\":\"t\"";
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os.precision(17);
  os << "ts_seconds,phase,pid,tid,name,cat\n";
  for (const Event& e : export_events()) {
    os << e.ts << ',' << phase_letter(e.phase) << ',' << e.pid << ',' << e.tid << ','
       << e.name << ',' << e.cat << '\n';
  }
  return os.str();
}

std::string Tracer::to_span_graph_json() const {
  std::ostringstream os;
  os.precision(17);
  const double last_ts = final_ts();
  os << "{\"schema\":\"vhadoop-spans-v1\",\"final_ts\":" << last_ts;
  os << ",\"processes\":{";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    if (!first) os << ',';
    first = false;
    os << '"' << pid << "\":";
    put_string(os, name);
  }
  os << "},\"spans\":[";
  first = true;
  for (const Span& s : spans_) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << s.id << ",\"parent\":" << s.parent << ",\"job\":" << s.job
       << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid << ",\"name\":";
    put_string(os, s.name);
    os << ",\"cat\":";
    put_string(os, s.cat);
    os << ",\"t0\":" << s.t0 << ",\"t1\":" << (s.closed() ? s.t1 : last_ts) << '}';
  }
  os << "],\"edges\":[";
  first = true;
  for (const CauseEdge& e : edges_) {
    if (!first) os << ',';
    first = false;
    os << "{\"from\":" << e.from << ",\"to\":" << e.to << ",\"type\":";
    put_string(os, e.type);
    os << ",\"at\":" << e.at << ",\"start\":" << e.start << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace vhadoop::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

namespace vhadoop::obs {

void Tracer::begin(int pid, int tid, std::string name, std::string cat) {
  if (!enabled_) return;
  open_[lane(pid, tid)].push_back(name);
  events_.push_back({Phase::Begin, now(), pid, tid, std::move(name), std::move(cat)});
}

void Tracer::end(int pid, int tid) {
  if (!enabled_) return;
  auto it = open_.find(lane(pid, tid));
  if (it == open_.end() || it->second.empty()) return;
  std::string name = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
  events_.push_back({Phase::End, now(), pid, tid, std::move(name), {}});
}

void Tracer::end_all(int pid, int tid) {
  if (!enabled_) return;
  auto it = open_.find(lane(pid, tid));
  if (it == open_.end()) return;
  const double ts = now();
  while (!it->second.empty()) {
    events_.push_back({Phase::End, ts, pid, tid, std::move(it->second.back()), {}});
    it->second.pop_back();
  }
  open_.erase(it);
}

void Tracer::instant(int pid, int tid, std::string name, std::string cat) {
  if (!enabled_) return;
  events_.push_back({Phase::Instant, now(), pid, tid, std::move(name), std::move(cat)});
}

std::size_t Tracer::open_span_count() const {
  std::size_t n = 0;
  for (const auto& [l, stack] : open_) n += stack.size();
  return n;
}

int Tracer::open_depth(int pid, int tid) const {
  auto it = open_.find(lane(pid, tid));
  return it == open_.end() ? 0 : static_cast<int>(it->second.size());
}

void Tracer::clear() {
  events_.clear();
  open_.clear();
}

std::vector<Tracer::Event> Tracer::export_events() const {
  std::vector<Event> out = events_;
  // Anything still open closes at the trace's final instant so every B has
  // a matching E no matter how the simulation ended.
  double last_ts = 0.0;
  for (const Event& e : events_) last_ts = std::max(last_ts, e.ts);
  for (const auto& [l, stack] : open_) {
    const int pid = static_cast<int>(static_cast<std::int32_t>(l >> 32));
    const int tid = static_cast<int>(static_cast<std::int32_t>(l & 0xffffffffu));
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      out.push_back({Phase::End, last_ts, pid, tid, *it, {}});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return out;
}

namespace {

void put_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

char phase_letter(Tracer::Phase p) {
  switch (p) {
    case Tracer::Phase::Begin: return 'B';
    case Tracer::Phase::End: return 'E';
    default: return 'i';
  }
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":";
    put_string(os, name);
    os << "}}";
  }
  for (const auto& [l, name] : thread_names_) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":"
       << static_cast<std::int32_t>(l >> 32)
       << ",\"tid\":" << static_cast<std::int32_t>(l & 0xffffffffu)
       << ",\"ts\":0,\"args\":{\"name\":";
    put_string(os, name);
    os << "}}";
  }
  for (const Event& e : export_events()) {
    sep();
    os << "{\"ph\":\"" << phase_letter(e.phase) << "\",\"ts\":" << e.ts * 1e6
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"name\":";
    put_string(os, e.name);
    if (!e.cat.empty()) {
      os << ",\"cat\":";
      put_string(os, e.cat);
    }
    if (e.phase == Phase::Instant) os << ",\"s\":\"t\"";
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string Tracer::to_csv() const {
  std::ostringstream os;
  os.precision(17);
  os << "ts_seconds,phase,pid,tid,name,cat\n";
  for (const Event& e : export_events()) {
    os << e.ts << ',' << phase_letter(e.phase) << ',' << e.pid << ',' << e.tid << ','
       << e.name << ',' << e.cat << '\n';
  }
  return os.str();
}

}  // namespace vhadoop::obs

#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.hpp"
#include "mapreduce/sim_job.hpp"
#include "sim/rng.hpp"

namespace vhadoop::workloads {

/// TeraSort suite (paper Table I): TeraGen writes `total_bytes` of 100-byte
/// records to HDFS; TeraSort sorts them (identity map, total-order
/// partitioner, merge-heavy reduce); TeraValidate re-reads the output.
///
/// Two forms are provided, mirroring the platform's two engines:
///  * `sim_*` builders produce SimJobSpecs at any scale from the workload's
///    analytic shape (record counts, spill behaviour);
///  * `logical_*` pieces really generate/sort/validate records through the
///    LocalJobRunner at test scale, proving the dataflow is a correct sort.
struct TeraSort {
  double total_bytes = 400 * sim::kMiB;
  int num_reduces = 4;
  double block_size = 64 * sim::kMiB;

  static constexpr double kRecordBytes = 100.0;

  int num_input_blocks() const;

  /// Map-only job writing the input file to HDFS (replication applies).
  mapreduce::SimJobSpec sim_teragen(const std::string& input_path) const;
  /// The sort itself: reads every input block, shuffles everything,
  /// commits output at replication 1 (the TeraSort default).
  mapreduce::SimJobSpec sim_terasort(const std::string& input_path,
                                     const std::string& output_path) const;
  /// Map-only re-read of the sorted output.
  mapreduce::SimJobSpec sim_teravalidate(const std::string& output_path) const;

  // --- real record-level pieces (test scale) ------------------------------
  /// Generate n records with 10-byte pseudo-random keys (TeraGen format).
  static std::vector<mapreduce::KV> generate_records(std::int64_t n, std::uint64_t seed);
  /// Identity-map + identity-reduce sort job with a total-order partitioner
  /// sampled from `sample` (TeraSort's TotalOrderPartitioner).
  static mapreduce::JobSpec sort_job(int num_reduces,
                                     const std::vector<mapreduce::KV>& sample);
  /// True iff records are globally sorted by key.
  static bool validate_sorted(const std::vector<mapreduce::KV>& records);
};

}  // namespace vhadoop::workloads

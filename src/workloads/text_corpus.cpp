#include "workloads/text_corpus.hpp"

namespace vhadoop::workloads {

namespace {
/// Pronounceable pseudo-word of the given length (CV syllables).
std::string make_word(sim::Rng& rng, std::size_t len) {
  static constexpr char consonants[] = "bcdfghjklmnprstvwz";
  static constexpr char vowels[] = "aeiou";
  std::string w;
  w.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (i % 2 == 0) {
      w += consonants[rng.uniform_int(sizeof(consonants) - 1)];
    } else {
      w += vowels[rng.uniform_int(sizeof(vowels) - 1)];
    }
  }
  return w;
}
}  // namespace

TextCorpus::TextCorpus(std::size_t vocabulary, double zipf_exponent, std::uint64_t seed)
    : zipf_(vocabulary, zipf_exponent), seed_(seed) {
  sim::Rng rng(seed);
  vocab_.reserve(vocabulary);
  // Frequent words are short, rare words longer — roughly Zipf's law of
  // abbreviation, which keeps mean word length realistic (~5-6 chars).
  for (std::size_t i = 0; i < vocabulary; ++i) {
    const std::size_t len = 2 + std::min<std::size_t>(10, 1 + i / 900);
    std::string w = make_word(rng, len);
    // Disambiguate collisions deterministically.
    w += std::to_string(i % 10);
    vocab_.push_back(std::move(w));
  }
}

std::vector<mapreduce::KV> TextCorpus::generate(double bytes) const {
  sim::Rng rng(seed_ ^ 0x5151515151515151ULL);
  std::vector<mapreduce::KV> lines;
  double produced = 0.0;
  std::int64_t offset = 0;
  while (produced < bytes) {
    std::string line;
    const std::size_t words = 8 + rng.uniform_int(5);
    for (std::size_t w = 0; w < words; ++w) {
      if (w > 0) line += ' ';
      line += vocab_[zipf_.sample(rng)];
    }
    produced += static_cast<double>(line.size()) + 1.0;  // newline
    lines.push_back({std::to_string(offset), std::move(line)});
    offset += static_cast<std::int64_t>(lines.back().value.size()) + 1;
  }
  return lines;
}

}  // namespace vhadoop::workloads

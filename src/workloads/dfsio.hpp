#pragma once

#include <functional>
#include <string>

#include "hdfs/hdfs.hpp"
#include "mapreduce/sim_runner.hpp"

namespace vhadoop::workloads {

/// TestDFSIO (paper Table I): a read/write stress test for HDFS. `nrFiles`
/// map tasks each write (or read back) one file of `file_bytes`; the tool
/// reports aggregate throughput. Useful for locating network / NFS-disk
/// bottlenecks, exactly as the paper uses it.
class TestDfsIo {
 public:
  struct Result {
    double elapsed_seconds = 0.0;
    double total_bytes = 0.0;
    /// Aggregate MB/s (decimal MB, as the Hadoop tool reports).
    double throughput_mb_s() const {
      return elapsed_seconds > 0 ? total_bytes / 1e6 / elapsed_seconds : 0.0;
    }
  };

  TestDfsIo(mapreduce::SimulatedJobRunner& runner, hdfs::HdfsCluster& hdfs, int nr_files,
            double file_bytes)
      : runner_(runner), hdfs_(hdfs), nr_files_(nr_files), file_bytes_(file_bytes) {}

  /// Write test: map-only job, one output file per map.
  void run_write(const std::string& dir, std::function<void(const Result&)> on_done);

  /// Read test: each map re-reads one file written by a prior write test.
  void run_read(const std::string& dir, std::function<void(const Result&)> on_done);

 private:
  mapreduce::SimulatedJobRunner& runner_;
  hdfs::HdfsCluster& hdfs_;
  int nr_files_;
  double file_bytes_;
};

}  // namespace vhadoop::workloads

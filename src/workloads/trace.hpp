#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/sim_job.hpp"
#include "sim/rng.hpp"

namespace vhadoop::workloads {

/// The job families a workload trace may request. Each family expands to a
/// SimJobSpec shape calibrated from the paper's workloads: wordcount
/// (map-heavy scan, small shuffle), terasort (shuffle-bound sort), kmeans
/// (CPU-bound iteration, tiny shuffle), mrbench (latency probe, near-empty
/// tasks).
enum class JobFamily { Wordcount, Terasort, Kmeans, Mrbench };

const char* to_string(JobFamily family);

/// One line of a workload trace: a tenant's job arriving open-loop.
struct TraceRecord {
  double arrival_seconds = 0.0;  ///< simulated submit instant (non-decreasing)
  std::string tenant = "t0";     ///< submitting tenant (becomes SimJobSpec::user)
  std::string queue = "default"; ///< scheduler queue (SimJobSpec::queue)
  int priority = 0;              ///< scheduling tier, 0 (batch) .. 9 (urgent)
  double deadline_seconds = 0.0; ///< SLO on submit->finish; 0 = none
  JobFamily family = JobFamily::Wordcount;
  double input_mb = 64.0;        ///< input size; drives map count and cost

  bool operator==(const TraceRecord&) const = default;
};

/// A parsed workload trace: records in arrival order.
struct WorkloadTrace {
  std::vector<TraceRecord> records;

  double last_arrival() const {
    return records.empty() ? 0.0 : records.back().arrival_seconds;
  }
  /// Canonical text form ("vhadoop-trace-v1"). serialize(parse(s)) is
  /// byte-stable: parse(serialize(t)) == t for every valid trace.
  std::string serialize() const;
};

/// Parse failure, pointing at the offending input. Lines and columns are
/// 1-based; column 0 means "the whole line" (e.g. a truncated record).
struct TraceParseError {
  int line = 0;
  int column = 0;
  std::string message;

  bool ok() const { return line == 0; }
  std::string to_string() const;
};

/// Strict line-oriented parser for the "vhadoop-trace-v1" format:
///
///   vhadoop-trace-v1
///   # comment
///   <arrival_s> <tenant> <queue> <priority> <deadline_s> <family> <input_mb>
///
/// Whitespace-separated fields; every numeric token must parse in full.
/// Rejected with a line/column diagnostic: a missing or wrong header, short
/// or overlong lines, malformed or negative timestamps, arrivals that go
/// backwards, priorities outside [0, 9], negative deadlines, unknown
/// families, non-positive input sizes — and, when `allowed_queues` is
/// non-empty, any queue name not in it.
TraceParseError parse_trace(const std::string& text, WorkloadTrace& out,
                            const std::vector<std::string>& allowed_queues = {});

/// Expand one trace record into the simulated job it requests. The spec's
/// maps read `input_mb` from local (NFS-backed) disk — no per-job HDFS
/// staging, so a 10k-job day replays without namenode state explosion.
mapreduce::SimJobSpec spec_for(const TraceRecord& record, std::uint64_t job_index);

/// How arrivals are spaced by the generator.
enum class ArrivalProcess {
  Poisson,  ///< exponential gaps at a constant rate
  Bursty,   ///< ON/OFF modulated Poisson: heavy bursts between quiet gaps
};

/// Deterministic day-in-the-life trace generator. Everything flows from
/// `seed` through sim::rng, so the same config always yields the same
/// trace, byte for byte.
///
/// Tenants split into an interactive tier (short wordcount/mrbench jobs,
/// tight deadlines, high priority, queue "interactive") and a batch tier
/// (terasort/kmeans, loose or no deadlines, low priority, queue "batch").
struct TraceGenConfig {
  int num_jobs = 10000;
  double horizon_seconds = 86400.0;  ///< arrivals aim to cover one day
  int num_tenants = 20;
  ArrivalProcess process = ArrivalProcess::Bursty;
  /// Bursty only: mean ON / OFF phase lengths; all arrivals land in ON
  /// phases, compressing the same job count into rate spikes.
  double burst_on_seconds = 600.0;
  double burst_off_seconds = 1800.0;
  /// Fraction of tenants in the interactive tier.
  double interactive_fraction = 0.6;
  std::uint64_t seed = 7;
};

WorkloadTrace generate_trace(const TraceGenConfig& config);

/// Queue names the generator emits (useful as parse-time `allowed_queues`).
std::vector<std::string> generated_queues();

}  // namespace vhadoop::workloads

#pragma once

#include <memory>

#include "mapreduce/job.hpp"

namespace vhadoop::workloads {

/// The canonical Wordcount job (paper Table I): each mapper tokenizes a
/// line and emits (word, 1); a combiner/reducer sums counts per word.
class WordcountMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override;
};

class LongSumReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override;
};

/// Fully configured Wordcount JobSpec with cost coefficients calibrated for
/// JVM-era tokenization. The paper's description (Sec. III-A: "emits a
/// key/value pair of the word and 1; each reducer sums") has no combiner,
/// so that is the default; pass `use_combiner = true` for the
/// hadoop-examples variant.
mapreduce::JobSpec wordcount_job(int num_reduces, bool use_combiner = false);

}  // namespace vhadoop::workloads

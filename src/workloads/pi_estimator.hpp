#pragma once

#include <cstdint>

#include "mapreduce/job.hpp"
#include "mapreduce/sim_job.hpp"

namespace vhadoop::workloads {

/// `hadoop pi` (hadoop-examples PiEstimator): a quasi-Monte-Carlo estimate
/// of pi. Each map task throws `samples_per_map` darts (Halton sequence in
/// the original; a deterministic PRNG stream here) and emits inside/outside
/// counts; a single reducer folds them and the driver derives pi. This is
/// the canonical CPU-bound, zero-I/O job, the opposite corner of the
/// workload space from TestDFSIO.
struct PiEstimator {
  int num_maps = 10;
  std::int64_t samples_per_map = 100000;

  struct Result {
    double pi = 0.0;
    std::int64_t inside = 0;
    std::int64_t total = 0;
    mapreduce::JobResult job;
  };

  /// Really estimate pi through the logical engine.
  Result run(unsigned threads = 0) const;

  /// The equivalent simulated job (pure compute, negligible bytes).
  mapreduce::SimJobSpec sim_job(const std::string& output_path) const;
};

}  // namespace vhadoop::workloads

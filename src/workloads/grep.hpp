#pragma once

#include <span>
#include <string>

#include "mapreduce/job.hpp"

namespace vhadoop::workloads {

/// `hadoop grep` (hadoop-examples): two chained jobs — a search job whose
/// mappers emit (match, 1) for every occurrence of `pattern` (substring
/// match, as the example's regex degenerates to for literal patterns) with
/// a summing combiner, and a sort job ordering matches by descending count.
/// We expose the search job (the heavy one) plus a driver that runs both.
struct GrepResult {
  /// matches sorted by descending count.
  std::vector<std::pair<std::string, std::int64_t>> matches;
  std::vector<mapreduce::JobResult> jobs;  ///< [0] search, [1] sort
};

mapreduce::JobSpec grep_search_job(const std::string& pattern, int num_reduces = 1);

GrepResult grep(const std::string& pattern, std::span<const mapreduce::KV> input,
                int num_splits, unsigned threads = 0);

}  // namespace vhadoop::workloads

#include "workloads/mrbench.hpp"

#include <memory>

namespace vhadoop::workloads {

namespace {

/// MRBench's mapper: strips non-digits from the value and emits it keyed
/// by the input key (we keep the literal behaviour: near-identity work).
class MrBenchMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    std::string digits;
    for (char c : value) {
      if (c >= '0' && c <= '9') digits += c;
    }
    ctx.emit(std::string(key), digits);
  }
};

class IdentityReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    for (auto v : values) ctx.emit(std::string(key), std::string(v));
  }
};

}  // namespace

mapreduce::JobSpec MrBench::job() const {
  mapreduce::JobSpec spec;
  spec.config.name = "mrbench";
  spec.config.num_reduces = num_reduces;
  spec.mapper = [] { return std::make_unique<MrBenchMapper>(); };
  spec.reducer = [] { return std::make_unique<IdentityReducer>(); };
  return spec;
}

std::vector<mapreduce::KV> MrBench::input() const {
  std::vector<mapreduce::KV> records;
  for (int m = 0; m < num_maps; ++m) {
    for (int l = 0; l < lines_per_map; ++l) {
      const int i = m * lines_per_map + l;
      records.push_back({std::to_string(i), "key_" + std::to_string(i) + "_value_55555"});
    }
  }
  return records;
}

mapreduce::SimJobSpec MrBench::sim_job(const std::string& output_path) const {
  mapreduce::SimJobSpec spec;
  spec.name = "mrbench";
  spec.output_path = output_path;
  for (int m = 0; m < num_maps; ++m) {
    // A few hundred bytes of input/output per task: pure overhead regime.
    spec.maps.push_back({.input_bytes = 512.0 * lines_per_map,
                         .cpu_seconds = 0.02,
                         .output_bytes = 256.0 * lines_per_map});
  }
  for (int r = 0; r < num_reduces; ++r) {
    spec.reduces.push_back({.cpu_seconds = 0.02,
                            .output_bytes = 256.0 * lines_per_map * num_maps /
                                            std::max(1, num_reduces)});
  }
  return spec;
}

}  // namespace vhadoop::workloads

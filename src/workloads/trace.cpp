#include "workloads/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace vhadoop::workloads {

namespace {

constexpr const char* kHeader = "vhadoop-trace-v1";

struct Token {
  std::string text;
  int column = 0;  ///< 1-based column of the token's first character
};

/// Split a line on runs of spaces/tabs, keeping each token's column.
std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    tokens.push_back({line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return tokens;
}

/// Strict double parse: the whole token must be consumed and the value
/// finite (rejects "12x", "1e999", "nan").
bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  try {
    out = std::stod(s, &pos);
  } catch (...) {
    return false;
  }
  return pos == s.size() && std::isfinite(out);
}

bool parse_int(const std::string& s, int& out) {
  if (s.empty()) return false;
  std::size_t pos = 0;
  try {
    out = std::stoi(s, &pos);
  } catch (...) {
    return false;
  }
  return pos == s.size();
}

bool family_from_string(const std::string& s, JobFamily& out) {
  if (s == "wordcount") out = JobFamily::Wordcount;
  else if (s == "terasort") out = JobFamily::Terasort;
  else if (s == "kmeans") out = JobFamily::Kmeans;
  else if (s == "mrbench") out = JobFamily::Mrbench;
  else return false;
  return true;
}

/// Shortest rendering that survives a parse round trip exactly; prefers
/// fixed notation for round values (to_chars emits "10", never "1e+01").
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

const char* to_string(JobFamily family) {
  switch (family) {
    case JobFamily::Terasort: return "terasort";
    case JobFamily::Kmeans: return "kmeans";
    case JobFamily::Mrbench: return "mrbench";
    case JobFamily::Wordcount: break;
  }
  return "wordcount";
}

std::string TraceParseError::to_string() const {
  if (ok()) return "ok";
  return "line " + std::to_string(line) + ", col " + std::to_string(column) + ": " + message;
}

std::string WorkloadTrace::serialize() const {
  std::string out = kHeader;
  out += '\n';
  for (const TraceRecord& r : records) {
    out += format_double(r.arrival_seconds);
    out += ' ';
    out += r.tenant;
    out += ' ';
    out += r.queue;
    out += ' ';
    out += std::to_string(r.priority);
    out += ' ';
    out += format_double(r.deadline_seconds);
    out += ' ';
    out += to_string(r.family);
    out += ' ';
    out += format_double(r.input_mb);
    out += '\n';
  }
  return out;
}

TraceParseError parse_trace(const std::string& text, WorkloadTrace& out,
                            const std::vector<std::string>& allowed_queues) {
  out.records.clear();
  TraceParseError err;
  auto fail = [&err](int line, int column, std::string message) {
    err.line = line;
    err.column = column;
    err.message = std::move(message);
    return err;
  };

  int line_no = 0;
  bool saw_header = false;
  double prev_arrival = 0.0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol == std::string::npos ? std::string::npos
                                                                 : eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    // Comments and blank lines are free-form anywhere after the header.
    const std::size_t first = line.find_first_not_of(" \t");
    if (!saw_header) {
      if (line != kHeader) {
        return fail(line_no, 1, std::string("expected header '") + kHeader + "'");
      }
      saw_header = true;
      continue;
    }
    if (first == std::string::npos || line[first] == '#') continue;

    const std::vector<Token> tok = tokenize(line);
    if (tok.size() != 7) {
      return fail(line_no, 0,
                  "expected 7 fields (arrival tenant queue priority deadline family "
                  "input_mb), got " + std::to_string(tok.size()));
    }

    TraceRecord r;
    if (!parse_double(tok[0].text, r.arrival_seconds) || r.arrival_seconds < 0.0) {
      return fail(line_no, tok[0].column, "bad arrival time '" + tok[0].text + "'");
    }
    if (r.arrival_seconds < prev_arrival) {
      return fail(line_no, tok[0].column,
                  "arrival time goes backwards (" + tok[0].text + " after " +
                      format_double(prev_arrival) + ")");
    }
    r.tenant = tok[1].text;
    r.queue = tok[2].text;
    if (!allowed_queues.empty() &&
        std::find(allowed_queues.begin(), allowed_queues.end(), r.queue) ==
            allowed_queues.end()) {
      return fail(line_no, tok[2].column, "unknown queue '" + r.queue + "'");
    }
    if (!parse_int(tok[3].text, r.priority) || r.priority < 0 || r.priority > 9) {
      return fail(line_no, tok[3].column,
                  "bad priority '" + tok[3].text + "' (want integer in [0, 9])");
    }
    if (!parse_double(tok[4].text, r.deadline_seconds) || r.deadline_seconds < 0.0) {
      return fail(line_no, tok[4].column,
                  "bad deadline '" + tok[4].text + "' (want seconds >= 0; 0 = none)");
    }
    if (!family_from_string(tok[5].text, r.family)) {
      return fail(line_no, tok[5].column,
                  "unknown job family '" + tok[5].text +
                      "' (wordcount|terasort|kmeans|mrbench)");
    }
    if (!parse_double(tok[6].text, r.input_mb) || r.input_mb <= 0.0) {
      return fail(line_no, tok[6].column, "bad input size '" + tok[6].text + "' MB");
    }
    prev_arrival = r.arrival_seconds;
    out.records.push_back(std::move(r));
  }
  if (!saw_header) return fail(1, 1, std::string("expected header '") + kHeader + "'");
  return err;
}

mapreduce::SimJobSpec spec_for(const TraceRecord& record, std::uint64_t job_index) {
  mapreduce::SimJobSpec spec;
  spec.name = std::string(to_string(record.family)) + "-" + std::to_string(job_index);
  spec.queue = record.queue;
  spec.user = record.tenant;
  spec.priority = record.priority;
  spec.deadline_seconds = record.deadline_seconds;
  spec.output_path = "/out/trace-" + std::to_string(job_index);

  const double input_bytes = record.input_mb * sim::kMiB;
  const int maps = std::max(1, static_cast<int>(std::ceil(record.input_mb / 64.0)));
  const double bytes_per_map = input_bytes / maps;

  // Per-family cost model: seconds of map CPU per input MiB, shuffle
  // selectivity (map output / input), and reduce fan-in. Calibrated to the
  // shapes the paper's workloads produce through the measured bridge.
  double cpu_per_mb = 0.008, selectivity = 0.05, reduce_cpu = 0.3;
  int reduces = 1;
  switch (record.family) {
    case JobFamily::Wordcount:
      cpu_per_mb = 0.010;
      selectivity = 0.06;
      reduces = record.input_mb > 256 ? 2 : 1;
      break;
    case JobFamily::Terasort:
      cpu_per_mb = 0.006;
      selectivity = 1.0;  // identity map: everything shuffles
      reduce_cpu = 0.8;
      reduces = std::max(2, static_cast<int>(record.input_mb / 128.0));
      break;
    case JobFamily::Kmeans:
      cpu_per_mb = 0.030;  // distance computation dominates
      selectivity = 0.002; // centroid table only
      reduce_cpu = 0.2;
      reduces = 1;
      break;
    case JobFamily::Mrbench:
      cpu_per_mb = 0.004;
      selectivity = 0.01;
      reduce_cpu = 0.05;
      reduces = 1;
      break;
  }
  for (int m = 0; m < maps; ++m) {
    spec.maps.push_back({.input_bytes = bytes_per_map,
                         .cpu_seconds = cpu_per_mb * bytes_per_map / sim::kMiB,
                         .output_bytes = selectivity * bytes_per_map});
  }
  spec.reduces.assign(static_cast<std::size_t>(reduces),
                      {.cpu_seconds = reduce_cpu,
                       .output_bytes = selectivity * input_bytes /
                                       static_cast<double>(reduces)});
  return spec;
}

std::vector<std::string> generated_queues() { return {"interactive", "batch"}; }

WorkloadTrace generate_trace(const TraceGenConfig& config) {
  WorkloadTrace trace;
  if (config.num_jobs <= 0) return trace;
  sim::Rng rng(config.seed);
  sim::Rng arrivals = rng.fork(1);
  sim::Rng mix = rng.fork(2);

  const int interactive_tenants = std::max(
      1, std::min(config.num_tenants - 1,
                  static_cast<int>(std::lround(config.interactive_fraction *
                                               config.num_tenants))));

  // Arrival instants. Poisson: constant rate covering the horizon. Bursty:
  // the same mean rate, but gated through exponential ON/OFF phases — jobs
  // only arrive during ON windows, at a rate inflated by the duty cycle, so
  // queues build up in bursts the way real tenant traffic does.
  std::vector<double> at;
  at.reserve(static_cast<std::size_t>(config.num_jobs));
  const double mean_rate =
      static_cast<double>(config.num_jobs) / std::max(1.0, config.horizon_seconds);
  if (config.process == ArrivalProcess::Poisson) {
    double t = 0.0;
    for (int j = 0; j < config.num_jobs; ++j) {
      t += arrivals.exponential(mean_rate);
      at.push_back(t);
    }
  } else {
    const double duty = config.burst_on_seconds /
                        (config.burst_on_seconds + config.burst_off_seconds);
    const double on_rate = mean_rate / std::max(duty, 1e-9);
    double t = 0.0;
    double phase_end = arrivals.exponential(1.0 / config.burst_on_seconds);
    bool on = true;
    while (static_cast<int>(at.size()) < config.num_jobs) {
      if (on) {
        const double gap = arrivals.exponential(on_rate);
        if (t + gap < phase_end) {
          t += gap;
          at.push_back(t);
          continue;
        }
      }
      t = phase_end;
      on = !on;
      phase_end = t + arrivals.exponential(on ? 1.0 / config.burst_on_seconds
                                              : 1.0 / config.burst_off_seconds);
    }
  }

  for (int j = 0; j < config.num_jobs; ++j) {
    TraceRecord r;
    r.arrival_seconds = at[static_cast<std::size_t>(j)];
    const int tenant =
        static_cast<int>(mix.uniform_int(static_cast<std::uint64_t>(config.num_tenants)));
    r.tenant = "t" + std::to_string(tenant);
    const bool interactive = tenant < interactive_tenants;
    if (interactive) {
      r.queue = "interactive";
      r.priority = 5 + static_cast<int>(mix.uniform_int(4));  // 5..8
      r.deadline_seconds = 30.0 + 30.0 * mix.uniform();       // 30..60 s SLO
      r.family = mix.uniform() < 0.7 ? JobFamily::Wordcount : JobFamily::Mrbench;
      r.input_mb = 16.0 + 112.0 * mix.uniform();              // 16..128 MB
    } else {
      r.queue = "batch";
      r.priority = static_cast<int>(mix.uniform_int(3));      // 0..2
      // Most batch jobs carry a loose SLO; a fifth run with none at all.
      r.deadline_seconds = mix.uniform() < 0.2 ? 0.0 : 600.0 + 600.0 * mix.uniform();
      r.family = mix.uniform() < 0.6 ? JobFamily::Terasort : JobFamily::Kmeans;
      r.input_mb = 128.0 + 384.0 * mix.uniform();             // 128..512 MB
    }
    trace.records.push_back(std::move(r));
  }
  return trace;
}

}  // namespace vhadoop::workloads

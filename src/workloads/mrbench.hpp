#pragma once

#include "mapreduce/job.hpp"
#include "mapreduce/sim_job.hpp"

namespace vhadoop::workloads {

/// MRBench (Kim et al., ICPADS'08; `hadoop mrbench`): measures whether
/// *small* jobs are responsive — the job processes a handful of tiny text
/// lines through an identity-ish pipeline, so per-task overheads (JVM
/// spawn, localization, scheduling, tiny shuffles, output commit) dominate.
struct MrBench {
  int num_maps = 2;
  int num_reduces = 1;
  /// Input lines per map (MRBench default generates one small line each).
  int lines_per_map = 1;

  /// The logical job: parses each generated line and re-emits it (MRBench's
  /// mapper extracts the digits; the reducer is identity).
  mapreduce::JobSpec job() const;

  /// Input records sized like MRBench's generated file.
  std::vector<mapreduce::KV> input() const;

  /// Fully-formed simulated job (tiny sizes, M maps / R reduces).
  mapreduce::SimJobSpec sim_job(const std::string& output_path) const;
};

}  // namespace vhadoop::workloads

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mapreduce/sim_job.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "workloads/trace.hpp"

namespace vhadoop::workloads {

/// Per-tenant admission caps the replayer enforces before a job ever
/// reaches the JobTracker. A rejected job is dropped (counted, never
/// queued) — the open-loop analogue of a 429.
struct AdmissionConfig {
  /// Accepted-but-unfinished jobs one tenant may hold; <= 0 disables.
  int max_concurrent_per_tenant = 8;
  /// Total input bytes of a tenant's accepted-but-unfinished jobs; <= 0
  /// disables.
  double max_pending_bytes_per_tenant = 4.0 * sim::kGiB;
};

/// What one tenant experienced over a replay.
struct TenantReplayStats {
  std::string tenant;
  int accepted = 0;
  int rejected = 0;
  int completed = 0;
  int failed = 0;
  int slo_missed = 0;  ///< completed jobs that blew their deadline
  std::vector<double> latencies;  ///< submit->finish, completed jobs only

  /// q in [0, 1]; nearest-rank over the completed-job latencies.
  double latency_percentile(double q) const;
};

/// Open-loop trace submitter: a daemon event chain on the simulation engine
/// that feeds jobs to the JobTracker at their trace arrival instants —
/// arrivals never wait for completions, so backlog builds exactly as the
/// trace dictates. Being daemon events, armed arrivals never keep
/// Engine::run() alive by themselves; drive a replay with
/// run_to_completion() (or run_until past the last arrival) so quiet gaps
/// in the trace cannot strand the tail.
class TraceReplayer {
 public:
  using SubmitFn = std::function<void(mapreduce::SimJobSpec,
                                      std::function<void(const mapreduce::JobTimeline&)>)>;

  /// `submit` is typically Platform::submit_job (or SimulatedJobRunner::
  /// submit) wrapped in a lambda; tests interpose their own to audit the
  /// stream independently. `registry` is where the admission counters live
  /// (mr.queue.<queue>.admission_rejected), normally the engine's own.
  TraceReplayer(sim::Engine& engine, obs::Registry& registry, WorkloadTrace trace,
                SubmitFn submit, AdmissionConfig admission = {});

  /// Arm the arrival chain (idempotent; records already in the past of the
  /// simulated clock are submitted at the current instant, in order).
  void start();

  /// start() + run the engine past the last arrival, then drain remaining
  /// work. Returns the simulated makespan (first arrival to last finish).
  double run_to_completion();

  bool finished() const { return next_ == trace_.records.size() && outstanding_ == 0; }
  const WorkloadTrace& trace() const { return trace_; }

  // --- replay-wide results --------------------------------------------------
  int accepted() const { return accepted_; }
  int rejected() const { return rejected_; }
  int completed() const { return completed_; }
  int failed() const { return failed_; }
  int slo_missed() const { return slo_missed_; }
  int slo_tracked() const { return slo_tracked_; }  ///< completed jobs that had a deadline
  /// slo_missed / slo_tracked (0 when nothing carried a deadline).
  double slo_miss_rate() const;
  /// Replay-wide nearest-rank latency percentile over completed jobs.
  double latency_percentile(double q) const;
  /// Largest (submit instant - trace arrival) over accepted jobs: an
  /// open-loop replay keeps this at 0 (modulo fp slack).
  double max_submit_skew() const { return max_submit_skew_; }

  /// Tenants in name order (deterministic iteration for reports).
  std::vector<TenantReplayStats> tenant_stats() const;

 private:
  struct TenantState {
    int in_flight = 0;
    double pending_bytes = 0.0;
    TenantReplayStats stats;
  };

  void arm_next();
  void arrive();
  static double spec_input_bytes(const mapreduce::SimJobSpec& spec);

  sim::Engine& engine_;
  obs::Registry& registry_;
  WorkloadTrace trace_;
  SubmitFn submit_;
  AdmissionConfig admission_;
  std::size_t next_ = 0;     ///< next record to submit
  int outstanding_ = 0;      ///< accepted jobs not yet completed/failed
  bool armed_ = false;
  double epoch_ = 0.0;       ///< engine instant trace time 0 maps to
  double first_arrival_ = 0.0;
  double last_finish_ = 0.0;
  int accepted_ = 0;
  int rejected_ = 0;
  int completed_ = 0;
  int failed_ = 0;
  int slo_missed_ = 0;
  int slo_tracked_ = 0;
  double max_submit_skew_ = 0.0;
  std::vector<double> latencies_;
  std::map<std::string, TenantState> tenants_;
  obs::Counter* m_accepted_;
  obs::Counter* m_rejected_;
};

}  // namespace vhadoop::workloads

#include "workloads/pi_estimator.hpp"

#include <memory>

#include "mapreduce/local_runner.hpp"
#include "sim/rng.hpp"

namespace vhadoop::workloads {

namespace {

class PiMapper : public mapreduce::Mapper {
 public:
  explicit PiMapper(std::int64_t samples) : samples_(samples) {}

  void map(std::string_view key, std::string_view, mapreduce::Context& ctx) override {
    // Each map's dart stream is seeded by its task id, like the example's
    // per-task Halton offset.
    sim::Rng rng(0x9e3779b97f4a7c15ULL ^ mapreduce::stable_hash(key));
    std::int64_t inside = 0;
    for (std::int64_t s = 0; s < samples_; ++s) {
      const double x = rng.uniform() - 0.5;
      const double y = rng.uniform() - 0.5;
      inside += (x * x + y * y <= 0.25);
    }
    ctx.emit("inside", mapreduce::encode_i64(inside));
    ctx.emit("total", mapreduce::encode_i64(samples_));
  }

 private:
  std::int64_t samples_;
};

class SumReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::int64_t sum = 0;
    for (auto v : values) sum += mapreduce::decode_i64(v);
    ctx.emit(std::string(key), mapreduce::encode_i64(sum));
  }
};

}  // namespace

PiEstimator::Result PiEstimator::run(unsigned threads) const {
  mapreduce::JobSpec spec;
  spec.config.name = "pi";
  spec.config.num_reduces = 1;
  // ~25M samples/s/core on era hardware.
  spec.config.cost.map_cpu_per_record = static_cast<double>(samples_per_map) / 25e6;
  const std::int64_t samples = samples_per_map;
  spec.mapper = [samples] { return std::make_unique<PiMapper>(samples); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };

  std::vector<mapreduce::KV> input;
  for (int m = 0; m < num_maps; ++m) input.push_back({"task-" + std::to_string(m), ""});

  mapreduce::LocalJobRunner runner(threads);
  Result result;
  result.job = runner.run(spec, input, num_maps);
  for (const mapreduce::KV& kv : result.job.output) {
    if (kv.key == "inside") result.inside = mapreduce::decode_i64(kv.value);
    if (kv.key == "total") result.total = mapreduce::decode_i64(kv.value);
  }
  if (result.total > 0) {
    result.pi = 4.0 * static_cast<double>(result.inside) / static_cast<double>(result.total);
  }
  return result;
}

mapreduce::SimJobSpec PiEstimator::sim_job(const std::string& output_path) const {
  mapreduce::SimJobSpec spec;
  spec.name = "pi";
  spec.output_path = output_path;
  const double cpu = static_cast<double>(samples_per_map) / 25e6;
  for (int m = 0; m < num_maps; ++m) {
    spec.maps.push_back({.input_bytes = 128.0, .cpu_seconds = cpu, .output_bytes = 64.0});
  }
  spec.reduces.push_back({.cpu_seconds = 0.01, .output_bytes = 32.0});
  return spec;
}

}  // namespace vhadoop::workloads

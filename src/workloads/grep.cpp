#include "workloads/grep.hpp"

#include <algorithm>
#include <memory>

#include "mapreduce/local_runner.hpp"

namespace vhadoop::workloads {

namespace {

class GrepMapper : public mapreduce::Mapper {
 public:
  explicit GrepMapper(std::string pattern) : pattern_(std::move(pattern)) {}

  void map(std::string_view, std::string_view value, mapreduce::Context& ctx) override {
    // Count whitespace-delimited tokens containing the pattern — the shape
    // of the example's word-oriented greps.
    std::size_t i = 0;
    while (i < value.size()) {
      while (i < value.size() && value[i] == ' ') ++i;
      std::size_t j = i;
      while (j < value.size() && value[j] != ' ') ++j;
      if (j > i) {
        const std::string_view word = value.substr(i, j - i);
        if (word.find(pattern_) != std::string_view::npos) {
          ctx.emit(std::string(word), mapreduce::encode_i64(1));
        }
      }
      i = j;
    }
  }

 private:
  std::string pattern_;
};

class SumReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    std::int64_t sum = 0;
    for (auto v : values) sum += mapreduce::decode_i64(v);
    ctx.emit(std::string(key), mapreduce::encode_i64(sum));
  }
};

/// Sort job: invert (word, n) -> (n as sortable key, word); single reducer
/// emits in descending count order.
class InvertMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    // Fixed-width zero-padded negative-count key sorts descending
    // lexicographically.
    const std::int64_t n = mapreduce::decode_i64(value);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%019lld", static_cast<long long>(1000000000000000000LL - n));
    ctx.emit(buf, std::string(key));
  }
};

class EmitReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    for (auto v : values) ctx.emit(std::string(key), std::string(v));
  }
};

}  // namespace

mapreduce::JobSpec grep_search_job(const std::string& pattern, int num_reduces) {
  mapreduce::JobSpec spec;
  spec.config.name = "grep-search";
  spec.config.num_reduces = num_reduces;
  spec.config.use_combiner = true;
  spec.config.cost.map_cpu_per_byte = 2.5e-8;  // substring scan
  spec.config.cost.map_cpu_per_record = 3e-7;
  spec.mapper = [pattern] { return std::make_unique<GrepMapper>(pattern); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  spec.combiner = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

GrepResult grep(const std::string& pattern, std::span<const mapreduce::KV> input,
                int num_splits, unsigned threads) {
  mapreduce::LocalJobRunner runner(threads);
  GrepResult result;
  result.jobs.push_back(runner.run(grep_search_job(pattern), input, num_splits));

  mapreduce::JobSpec sort_spec;
  sort_spec.config.name = "grep-sort";
  sort_spec.config.num_reduces = 1;
  sort_spec.mapper = [] { return std::make_unique<InvertMapper>(); };
  sort_spec.reducer = [] { return std::make_unique<EmitReducer>(); };
  result.jobs.push_back(runner.run(sort_spec, result.jobs[0].output, 1));

  // Decode the sorted output: value = word, key encodes inverted count.
  for (const mapreduce::KV& kv : result.jobs[1].output) {
    const long long inv = std::stoll(kv.key);
    result.matches.emplace_back(kv.value, 1000000000000000000LL - inv);
  }
  return result;
}

}  // namespace vhadoop::workloads

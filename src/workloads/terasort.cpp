#include "workloads/terasort.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

namespace vhadoop::workloads {

int TeraSort::num_input_blocks() const {
  return std::max(1, static_cast<int>(std::ceil(total_bytes / block_size)));
}

mapreduce::SimJobSpec TeraSort::sim_teragen(const std::string& input_path) const {
  mapreduce::SimJobSpec spec;
  spec.name = "teragen";
  spec.map_output_to_hdfs = true;
  spec.output_path = input_path;
  const int n = num_input_blocks();
  const double per_map = total_bytes / n;
  for (int m = 0; m < n; ++m) {
    // Generation is cheap CPU (PRNG) + a full HDFS pipeline write.
    spec.maps.push_back({.input_bytes = 0.0,
                         .cpu_seconds = per_map * 2.5e-8,
                         .output_bytes = per_map});
  }
  return spec;
}

mapreduce::SimJobSpec TeraSort::sim_terasort(const std::string& input_path,
                                             const std::string& output_path) const {
  mapreduce::SimJobSpec spec;
  spec.name = "terasort";
  spec.output_path = output_path;
  const int n = num_input_blocks();
  const double per_map = total_bytes / n;
  for (int m = 0; m < n; ++m) {
    // Identity map: output == input; CPU is deserialization + sort feed.
    spec.maps.push_back({.input_path = input_path + "/map-" + std::to_string(m % n),
                         .block_index = -1,
                         .input_bytes = per_map,
                         .cpu_seconds = per_map * 6e-8,
                         .output_bytes = per_map});
  }
  const double per_reduce = total_bytes / std::max(1, num_reduces);
  for (int r = 0; r < num_reduces; ++r) {
    // Merge + identity reduce + output write; CPU ~ n log n merge feed.
    spec.reduces.push_back({.cpu_seconds = per_reduce * 8e-8, .output_bytes = per_reduce});
  }
  return spec;
}

mapreduce::SimJobSpec TeraSort::sim_teravalidate(const std::string& output_path) const {
  mapreduce::SimJobSpec spec;
  spec.name = "teravalidate";
  spec.output_path = output_path + "/.validate";
  const double per_reduce = total_bytes / std::max(1, num_reduces);
  for (int r = 0; r < num_reduces; ++r) {
    spec.maps.push_back({.input_path = output_path + "/part-" + std::to_string(r),
                         .block_index = -1,
                         .input_bytes = per_reduce,
                         .cpu_seconds = per_reduce * 2e-8,
                         .output_bytes = 64.0});
  }
  spec.reduces.push_back({.cpu_seconds = 0.01, .output_bytes = 64.0});
  return spec;
}

// --- real record-level pieces -------------------------------------------------

std::vector<mapreduce::KV> TeraSort::generate_records(std::int64_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<mapreduce::KV> records;
  records.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::string key(10, ' ');
    for (char& c : key) c = static_cast<char>(' ' + rng.uniform_int(95));
    // 90-byte payload: row id + filler, as TeraGen lays records out.
    std::string value = std::to_string(i);
    value.resize(90, 'X');
    records.push_back({std::move(key), std::move(value)});
  }
  return records;
}

namespace {

class IdentityMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view key, std::string_view value, mapreduce::Context& ctx) override {
    ctx.emit(std::string(key), std::string(value));
  }
};

class IdentityReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::Context& ctx) override {
    for (auto v : values) ctx.emit(std::string(key), std::string(v));
  }
};

}  // namespace

mapreduce::JobSpec TeraSort::sort_job(int num_reduces,
                                      const std::vector<mapreduce::KV>& sample) {
  // TotalOrderPartitioner: split points are the (i/R)-quantiles of the
  // sampled keys, so partition p holds keys in [split[p-1], split[p]).
  std::vector<std::string> keys;
  keys.reserve(sample.size());
  for (const auto& kv : sample) keys.push_back(kv.key);
  std::sort(keys.begin(), keys.end());
  auto splits = std::make_shared<std::vector<std::string>>();
  for (int r = 1; r < num_reduces; ++r) {
    const std::size_t idx = keys.empty() ? 0 : keys.size() * static_cast<std::size_t>(r) /
                                                   static_cast<std::size_t>(num_reduces);
    splits->push_back(keys.empty() ? std::string() : keys[std::min(idx, keys.size() - 1)]);
  }

  mapreduce::JobSpec spec;
  spec.config.name = "terasort";
  spec.config.num_reduces = num_reduces;
  spec.config.cost.map_cpu_per_byte = 6e-8;
  spec.config.cost.reduce_cpu_per_byte = 8e-8;
  spec.mapper = [] { return std::make_unique<IdentityMapper>(); };
  spec.reducer = [] { return std::make_unique<IdentityReducer>(); };
  spec.partitioner = [splits](std::string_view key, int) {
    const auto it = std::upper_bound(splits->begin(), splits->end(), key,
                                     [](std::string_view k, const std::string& s) { return k < s; });
    return static_cast<int>(std::distance(splits->begin(), it));
  };
  return spec;
}

bool TeraSort::validate_sorted(const std::vector<mapreduce::KV>& records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].key < records[i - 1].key) return false;
  }
  return true;
}

}  // namespace vhadoop::workloads

#pragma once

#include <string>
#include <vector>

#include "mapreduce/kv.hpp"
#include "sim/rng.hpp"

namespace vhadoop::workloads {

/// Synthetic English-like corpus generator standing in for the paper's
/// TOEFL reading materials: Zipf-distributed word frequencies (exponent
/// ~1.0, as in natural text) over a generated vocabulary, emitted as lines
/// of ~10 words. Wordcount cost depends only on these token statistics.
class TextCorpus {
 public:
  explicit TextCorpus(std::size_t vocabulary = 20000, double zipf_exponent = 1.0,
                      std::uint64_t seed = 42);

  /// Generate lines totalling approximately `bytes` of text. Keys are line
  /// offsets (as in TextInputFormat), values are the lines.
  std::vector<mapreduce::KV> generate(double bytes) const;

  /// The i-th vocabulary word (rank order).
  const std::string& word(std::size_t rank) const { return vocab_[rank]; }
  std::size_t vocabulary_size() const { return vocab_.size(); }

 private:
  std::vector<std::string> vocab_;
  sim::ZipfSampler zipf_;
  std::uint64_t seed_;
};

}  // namespace vhadoop::workloads

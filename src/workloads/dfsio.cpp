#include "workloads/dfsio.hpp"

#include <stdexcept>

namespace vhadoop::workloads {

void TestDfsIo::run_write(const std::string& dir, std::function<void(const Result&)> on_done) {
  mapreduce::SimJobSpec spec;
  spec.name = "dfsio-write";
  spec.map_output_to_hdfs = true;
  spec.output_path = dir;
  for (int f = 0; f < nr_files_; ++f) {
    spec.maps.push_back({.input_bytes = 0.0,
                         .cpu_seconds = file_bytes_ * 1.2e-8,  // buffer fill
                         .output_bytes = file_bytes_});
  }
  const double total = file_bytes_ * nr_files_;
  runner_.submit(std::move(spec),
                 [total, on_done = std::move(on_done)](const mapreduce::JobTimeline& t) {
                   if (on_done) on_done({t.run_seconds(), total});
                 });
}

void TestDfsIo::run_read(const std::string& dir, std::function<void(const Result&)> on_done) {
  mapreduce::SimJobSpec spec;
  spec.name = "dfsio-read";
  spec.output_path = dir + "/.read";
  for (int f = 0; f < nr_files_; ++f) {
    // The files must exist by the time the job is scheduled (a prior write
    // test may still be queued ahead of this job); HDFS rejects unknown
    // paths at task-assignment time.
    const std::string path = dir + "/map-" + std::to_string(f);
    spec.maps.push_back({.input_path = path,
                         .block_index = -1,  // stream the whole file
                         .input_bytes = file_bytes_,
                         .cpu_seconds = file_bytes_ * 0.8e-8,
                         .output_bytes = 64.0});
  }
  const double total = file_bytes_ * nr_files_;
  runner_.submit(std::move(spec),
                 [total, on_done = std::move(on_done)](const mapreduce::JobTimeline& t) {
                   if (on_done) on_done({t.run_seconds(), total});
                 });
}

}  // namespace vhadoop::workloads

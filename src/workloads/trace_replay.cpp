#include "workloads/trace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace vhadoop::workloads {

double TenantReplayStats::latency_percentile(double q) const {
  if (latencies.empty()) return 0.0;
  auto sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : std::min(rank - 1, sorted.size() - 1)];
}

TraceReplayer::TraceReplayer(sim::Engine& engine, obs::Registry& registry,
                             WorkloadTrace trace, SubmitFn submit, AdmissionConfig admission)
    : engine_(engine),
      registry_(registry),
      trace_(std::move(trace)),
      submit_(std::move(submit)),
      admission_(admission),
      m_accepted_(registry.counter("workload.trace_jobs_accepted")),
      m_rejected_(registry.counter("workload.trace_jobs_rejected")) {}

double TraceReplayer::spec_input_bytes(const mapreduce::SimJobSpec& spec) {
  double bytes = 0.0;
  for (const auto& mt : spec.maps) bytes += mt.input_bytes;
  return bytes;
}

void TraceReplayer::start() {
  if (armed_) return;
  armed_ = true;
  epoch_ = engine_.now();
  first_arrival_ = trace_.records.empty() ? 0.0 : trace_.records.front().arrival_seconds;
  // Pre-create the per-queue rejection counters so every queue named by the
  // trace has a row in the registry even when nothing is rejected — reports
  // and bench gates can rely on the key existing.
  std::set<std::string> queues;
  for (const TraceRecord& r : trace_.records) queues.insert(r.queue);
  for (const std::string& q : queues) {
    registry_.counter("mr.queue." + q + ".admission_rejected");
  }
  arm_next();
}

void TraceReplayer::arm_next() {
  if (next_ >= trace_.records.size()) return;
  const double at = epoch_ + trace_.records[next_].arrival_seconds;
  // Daemon: an armed arrival never keeps Engine::run() alive on its own.
  engine_.schedule_at(std::max(at, engine_.now()), [this] { arrive(); }, /*daemon=*/true);
}

void TraceReplayer::arrive() {
  const std::size_t idx = next_++;
  const TraceRecord& record = trace_.records[idx];
  TenantState& tenant = tenants_[record.tenant];
  tenant.stats.tenant = record.tenant;

  mapreduce::SimJobSpec spec = spec_for(record, idx);
  const double bytes = spec_input_bytes(spec);
  const bool over_jobs = admission_.max_concurrent_per_tenant > 0 &&
                         tenant.in_flight >= admission_.max_concurrent_per_tenant;
  const bool over_bytes =
      admission_.max_pending_bytes_per_tenant > 0.0 &&
      tenant.pending_bytes + bytes > admission_.max_pending_bytes_per_tenant;
  if (over_jobs || over_bytes) {
    ++rejected_;
    ++tenant.stats.rejected;
    m_rejected_->inc();
    registry_.counter("mr.queue." + record.queue + ".admission_rejected")->inc();
    arm_next();
    return;
  }

  ++accepted_;
  ++tenant.stats.accepted;
  ++tenant.in_flight;
  tenant.pending_bytes += bytes;
  ++outstanding_;
  m_accepted_->inc();
  max_submit_skew_ = std::max(
      max_submit_skew_, engine_.now() - (epoch_ + record.arrival_seconds));

  const std::string tenant_name = record.tenant;
  const double deadline = record.deadline_seconds;
  submit_(std::move(spec),
          [this, tenant_name, deadline, bytes](const mapreduce::JobTimeline& t) {
            TenantState& ts = tenants_[tenant_name];
            --ts.in_flight;
            ts.pending_bytes -= bytes;
            --outstanding_;
            last_finish_ = std::max(last_finish_, t.finished);
            if (t.failed) {
              ++failed_;
              ++ts.stats.failed;
              return;
            }
            ++completed_;
            ++ts.stats.completed;
            latencies_.push_back(t.elapsed());
            ts.stats.latencies.push_back(t.elapsed());
            if (deadline > 0.0) {
              ++slo_tracked_;
              if (t.elapsed() > deadline) {
                ++slo_missed_;
                ++ts.stats.slo_missed;
              }
            }
          });
  arm_next();
}

double TraceReplayer::run_to_completion() {
  start();
  // Drive through the quiet gaps: daemon arrivals alone never satisfy
  // Engine::run(), so walk the clock to the last arrival first, then drain
  // the remaining regular (job) events.
  engine_.run_until(epoch_ + trace_.last_arrival());
  engine_.run();
  // vlint: allow(no-exact-float-compare) audited PR 8: 0.0 is the never-assigned sentinel; real finishes are positive sim times
  if (trace_.records.empty() || last_finish_ == 0.0) return 0.0;
  return last_finish_ - (epoch_ + first_arrival_);
}

double TraceReplayer::slo_miss_rate() const {
  return slo_tracked_ == 0
             ? 0.0
             : static_cast<double>(slo_missed_) / static_cast<double>(slo_tracked_);
}

double TraceReplayer::latency_percentile(double q) const {
  TenantReplayStats all;
  all.latencies = latencies_;
  return all.latency_percentile(q);
}

std::vector<TenantReplayStats> TraceReplayer::tenant_stats() const {
  std::vector<TenantReplayStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) out.push_back(state.stats);
  return out;
}

}  // namespace vhadoop::workloads

#include "workloads/wordcount.hpp"

namespace vhadoop::workloads {

void WordcountMapper::map(std::string_view, std::string_view value, mapreduce::Context& ctx) {
  std::size_t i = 0;
  while (i < value.size()) {
    while (i < value.size() && (value[i] == ' ' || value[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < value.size() && value[j] != ' ' && value[j] != '\t') ++j;
    if (j > i) ctx.emit(std::string(value.substr(i, j - i)), mapreduce::encode_i64(1));
    i = j;
  }
}

void LongSumReducer::reduce(std::string_view key, const std::vector<std::string_view>& values,
                            mapreduce::Context& ctx) {
  std::int64_t sum = 0;
  for (auto v : values) sum += mapreduce::decode_i64(v);
  ctx.emit(std::string(key), mapreduce::encode_i64(sum));
}

mapreduce::JobSpec wordcount_job(int num_reduces, bool use_combiner) {
  mapreduce::JobSpec spec;
  spec.config.name = "wordcount";
  spec.config.num_reduces = num_reduces;
  spec.config.use_combiner = use_combiner;
  // Tokenize + Writable serialization runs at ~50-70 MB/s per 2.4 GHz
  // core, so a cluster with 30 map slots demands several hundred MB/s of
  // input — far beyond the NFS data path. Wordcount on this testbed is
  // therefore I/O-bound (the regime the paper's Fig. 2 discussion
  // describes), not CPU-bound.
  spec.config.cost.map_cpu_per_byte = 1.5e-8;
  spec.config.cost.map_cpu_per_record = 4e-7;
  spec.config.cost.reduce_cpu_per_record = 4e-7;
  spec.config.cost.reduce_cpu_per_byte = 1e-8;
  spec.mapper = [] { return std::make_unique<WordcountMapper>(); };
  spec.reducer = [] { return std::make_unique<LongSumReducer>(); };
  spec.combiner = [] { return std::make_unique<LongSumReducer>(); };
  return spec;
}

}  // namespace vhadoop::workloads

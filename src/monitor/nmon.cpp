#include "monitor/nmon.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace vhadoop::monitor {

NmonMonitor::NmonMonitor(virt::Cloud& cloud, net::Fabric& fabric, std::vector<virt::VmId> vms,
                         double interval_seconds)
    : cloud_(cloud), fabric_(fabric), vms_(std::move(vms)), interval_(interval_seconds) {
  if (!(interval_seconds > 0.0)) {
    throw std::invalid_argument("NmonMonitor: interval_seconds must be positive");
  }
  prev_vm_cpu_integral_.assign(vms_.size(), 0.0);
  prev_vm_net_integral_.assign(vms_.size(), 0.0);
  prev_vm_disk_integral_.assign(vms_.size(), 0.0);
  prev_host_cpu_integral_.assign(cloud_.host_count(), 0.0);
}

void NmonMonitor::start() {
  if (event_.valid()) return;
  // Baseline the integrals so the first sample covers exactly one interval.
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    prev_vm_cpu_integral_[i] = cloud_.vm_cpu_busy_integral(vms_[i]);
    prev_vm_net_integral_[i] = cloud_.vm_net_busy_integral(vms_[i]);
    prev_vm_disk_integral_[i] = cloud_.vm_disk_busy_integral(vms_[i]);
  }
  for (std::size_t h = 0; h < cloud_.host_count(); ++h) {
    prev_host_cpu_integral_[h] = cloud_.host_cpu_busy_integral(h);
  }
  // Daemon event: sampling never keeps the simulation alive by itself.
  event_ = cloud_.engine().schedule_in(interval_, [this] { tick(); }, /*daemon=*/true);
}

void NmonMonitor::stop() {
  if (event_.valid()) {
    cloud_.engine().cancel(event_);
    event_ = {};
  }
}

void NmonMonitor::tick() {
  Sample s;
  s.time = cloud_.engine().now();
  s.vm_cpu.resize(vms_.size());
  s.vm_net_bytes.resize(vms_.size());
  s.vm_disk_bytes.resize(vms_.size());
  s.vm_mem.resize(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    s.vm_mem[i] = cloud_.vm_memory_used_mb(vms_[i]);
    const double cpu = cloud_.vm_cpu_busy_integral(vms_[i]);
    const double net = cloud_.vm_net_busy_integral(vms_[i]);
    const double disk = cloud_.vm_disk_busy_integral(vms_[i]);
    const double vcpus = cloud_.spec(vms_[i]).vcpus * cloud_.config().core_capacity;
    s.vm_cpu[i] = (cpu - prev_vm_cpu_integral_[i]) / (interval_ * vcpus);
    s.vm_net_bytes[i] = net - prev_vm_net_integral_[i];
    s.vm_disk_bytes[i] = disk - prev_vm_disk_integral_[i];
    prev_vm_cpu_integral_[i] = cpu;
    prev_vm_net_integral_[i] = net;
    prev_vm_disk_integral_[i] = disk;
  }
  const double host_cap =
      cloud_.config().cores_per_host * cloud_.config().core_capacity * interval_;
  for (std::size_t h = 0; h < cloud_.host_count(); ++h) {
    const double cpu = cloud_.host_cpu_busy_integral(h);
    s.host_cpu.push_back((cpu - prev_host_cpu_integral_[h]) / host_cap);
    prev_host_cpu_integral_[h] = cpu;
    s.host_tx.push_back(fabric_.tx_utilization(cloud_.host_node(h)));
    s.host_rx.push_back(fabric_.rx_utilization(cloud_.host_node(h)));
  }
  s.nfs_disk = cloud_.nfs_disk_utilization();
  samples_.push_back(std::move(s));
  event_ = cloud_.engine().schedule_in(interval_, [this] { tick(); }, /*daemon=*/true);
}

std::string NmonMonitor::to_csv() const {
  std::ostringstream out;
  out << "time";
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const auto& name = cloud_.vm_name(vms_[i]);
    out << ',' << name << ".cpu" << ',' << name << ".net_bytes" << ',' << name << ".disk_bytes"
        << ',' << name << ".mem_mb";
  }
  for (std::size_t h = 0; h < cloud_.host_count(); ++h) {
    const auto& name = cloud_.host_name(h);
    out << ',' << name << ".cpu" << ',' << name << ".tx" << ',' << name << ".rx";
  }
  out << ",nfs.disk\n";
  for (const Sample& s : samples_) {
    out << s.time;
    for (std::size_t i = 0; i < vms_.size(); ++i) {
      out << ',' << s.vm_cpu[i] << ',' << s.vm_net_bytes[i] << ',' << s.vm_disk_bytes[i] << ','
          << s.vm_mem[i];
    }
    for (std::size_t h = 0; h < s.host_cpu.size(); ++h) {
      out << ',' << s.host_cpu[h] << ',' << s.host_tx[h] << ',' << s.host_rx[h];
    }
    out << ',' << s.nfs_disk << '\n';
  }
  return out.str();
}

TraceAnalyser::Report TraceAnalyser::analyse(const NmonMonitor& monitor) {
  Report r;
  const auto& samples = monitor.samples();
  if (samples.empty()) {
    r.bottleneck = "none";
    return r;
  }
  const std::size_t n_vms = monitor.vms().size();
  std::vector<double> vm_cpu_avg(n_vms, 0.0);
  const std::size_t n_hosts = samples[0].host_cpu.size();
  r.avg_host_cpu.assign(n_hosts, 0.0);
  r.avg_host_tx.assign(n_hosts, 0.0);
  r.avg_host_rx.assign(n_hosts, 0.0);
  // Utilization distributions: 5%-wide buckets over [0,1] plus overflow.
  obs::Histogram h_vm_cpu(obs::Histogram::linear_buckets(1.0, 20));
  obs::Histogram h_nfs(obs::Histogram::linear_buckets(1.0, 20));
  obs::Histogram h_host_cpu(obs::Histogram::linear_buckets(1.0, 20));
  obs::Histogram h_net(obs::Histogram::linear_buckets(1.0, 20));
  double mem_sum = 0.0;
  std::size_t mem_count = 0;
  for (const Sample& s : samples) {
    for (std::size_t i = 0; i < n_vms; ++i) {
      vm_cpu_avg[i] += s.vm_cpu[i];
      r.peak_vm_cpu = std::max(r.peak_vm_cpu, s.vm_cpu[i]);
      h_vm_cpu.observe(s.vm_cpu[i]);
    }
    for (std::size_t i = 0; i < s.vm_mem.size(); ++i) {
      mem_sum += s.vm_mem[i];
      ++mem_count;
      r.peak_vm_mem = std::max(r.peak_vm_mem, s.vm_mem[i]);
    }
    for (std::size_t h = 0; h < n_hosts; ++h) {
      r.avg_host_cpu[h] += s.host_cpu[h];
      r.avg_host_tx[h] += s.host_tx[h];
      r.avg_host_rx[h] += s.host_rx[h];
      h_host_cpu.observe(s.host_cpu[h]);
      h_net.observe(s.host_tx[h]);
      h_net.observe(s.host_rx[h]);
    }
    r.avg_nfs_disk += s.nfs_disk;
    r.peak_nfs_disk = std::max(r.peak_nfs_disk, s.nfs_disk);
    h_nfs.observe(s.nfs_disk);
  }
  r.p50_vm_cpu = h_vm_cpu.percentile(0.50);
  r.p95_vm_cpu = h_vm_cpu.percentile(0.95);
  r.p50_nfs_disk = h_nfs.percentile(0.50);
  r.p95_nfs_disk = h_nfs.percentile(0.95);
  r.p95_host_cpu = h_host_cpu.percentile(0.95);
  r.p95_net = h_net.percentile(0.95);
  if (mem_count > 0) r.avg_vm_mem = mem_sum / static_cast<double>(mem_count);
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < n_vms; ++i) {
    vm_cpu_avg[i] /= n;
    r.avg_vm_cpu += vm_cpu_avg[i] / static_cast<double>(n_vms);
  }
  for (std::size_t h = 0; h < n_hosts; ++h) {
    r.avg_host_cpu[h] /= n;
    r.avg_host_tx[h] /= n;
    r.avg_host_rx[h] /= n;
  }
  r.avg_nfs_disk /= n;
  r.busiest_vm = static_cast<std::size_t>(
      std::distance(vm_cpu_avg.begin(), std::max_element(vm_cpu_avg.begin(), vm_cpu_avg.end())));

  double cpu = 0.0, network = 0.0;
  for (std::size_t h = 0; h < n_hosts; ++h) {
    cpu = std::max(cpu, r.avg_host_cpu[h]);
    network = std::max({network, r.avg_host_tx[h], r.avg_host_rx[h]});
  }
  if (r.avg_nfs_disk >= cpu && r.avg_nfs_disk >= network) {
    r.bottleneck = "nfs-disk";
  } else if (network >= cpu) {
    r.bottleneck = "network";
  } else {
    r.bottleneck = "cpu";
  }
  return r;
}

}  // namespace vhadoop::monitor

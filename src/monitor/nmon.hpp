#pragma once

#include <string>
#include <vector>

#include "virt/cloud.hpp"

namespace vhadoop::monitor {

/// One sampling instant across the whole platform.
struct Sample {
  sim::SimTime time = 0.0;
  /// Per monitored VM, parallel to NmonMonitor::vms().
  std::vector<double> vm_cpu;        ///< VCPU utilization in [0,1]
  std::vector<double> vm_net_bytes;  ///< bytes moved since previous sample
  std::vector<double> vm_disk_bytes;
  std::vector<double> vm_mem;        ///< resident memory estimate, MB
  /// Per host.
  std::vector<double> host_cpu;
  std::vector<double> host_tx;  ///< NIC tx utilization
  std::vector<double> host_rx;
  double nfs_disk = 0.0;  ///< NFS spindle utilization
};

/// The nmon Monitor module (paper Sec. II-B): samples CPU / memory / disk /
/// network of every master and worker VM in parallel on a fixed period,
/// producing traces that the analyser (and the MapReduce Tuner) consume.
/// The paper runs one nmon per guest; here one monitor reads the same
/// counters from the resource model.
class NmonMonitor {
 public:
  /// Throws std::invalid_argument if `interval_seconds` is not positive
  /// (a zero or negative period would spin the event loop forever).
  NmonMonitor(virt::Cloud& cloud, net::Fabric& fabric, std::vector<virt::VmId> vms,
              double interval_seconds = 1.0);

  /// Begin sampling (first sample after one interval).
  void start();
  /// Stop sampling; the pending timer is cancelled so the simulation can
  /// drain.
  void stop();
  bool running() const { return event_.valid(); }

  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<virt::VmId>& vms() const { return vms_; }
  double interval() const { return interval_; }

  /// nmon-analyser-style CSV: one row per sample, one column per metric.
  std::string to_csv() const;

 private:
  void tick();

  virt::Cloud& cloud_;
  net::Fabric& fabric_;
  std::vector<virt::VmId> vms_;
  double interval_;
  std::vector<Sample> samples_;
  std::vector<double> prev_vm_cpu_integral_;
  std::vector<double> prev_vm_net_integral_;
  std::vector<double> prev_vm_disk_integral_;
  std::vector<double> prev_host_cpu_integral_;
  sim::Engine::EventId event_{};
};

/// Aggregated view of a trace: averages, peaks and the bottleneck verdict
/// the paper derives from nmon output.
class TraceAnalyser {
 public:
  struct Report {
    double avg_vm_cpu = 0.0;
    double peak_vm_cpu = 0.0;
    std::vector<double> avg_host_cpu;
    std::vector<double> avg_host_tx;
    std::vector<double> avg_host_rx;
    double avg_nfs_disk = 0.0;
    double peak_nfs_disk = 0.0;
    double avg_vm_mem = 0.0;   ///< MB, averaged over VMs and samples
    double peak_vm_mem = 0.0;  ///< MB, highest single-VM sample
    /// Distribution summaries over all per-sample utilization values.
    double p50_vm_cpu = 0.0;
    double p95_vm_cpu = 0.0;
    double p50_nfs_disk = 0.0;
    double p95_nfs_disk = 0.0;
    double p95_host_cpu = 0.0;
    double p95_net = 0.0;  ///< over host tx and rx utilization
    /// "cpu", "network" or "nfs-disk" — highest average utilization.
    std::string bottleneck;
    /// Index of the busiest VM by average CPU (into monitor.vms()).
    std::size_t busiest_vm = 0;
  };

  static Report analyse(const NmonMonitor& monitor);
};

}  // namespace vhadoop::monitor

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hdfs/hdfs.hpp"
#include "mapreduce/bridge.hpp"
#include "mapreduce/sim_runner.hpp"
#include "ml/clustering.hpp"
#include "monitor/nmon.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "tuner/tuner.hpp"
#include "virt/cloud.hpp"
#include "virt/migration_bench.hpp"

namespace vhadoop::core {

/// The physical substrate the paper deploys on: two Dell T710 servers, a
/// GbE switch and one NFS image server.
struct TestbedConfig {
  int num_hosts = 2;
  net::NetConfig net;
  virt::VirtConfig virt;
};

/// Where the cluster's VMs land (paper Sec. III-B). Spread generalizes the
/// paper's two-host split to the scale-out testbeds of bench/scale_cluster:
/// VMs land round-robin across every configured host.
enum class Placement {
  Normal,       ///< all VMs on physical machine A
  CrossDomain,  ///< VMs split evenly between machines A and B
  Spread,       ///< VMs round-robin over all hosts
};

/// A hadoop virtual cluster request: 1 namenode + N worker VMs plus the
/// Hadoop Module parameters.
struct ClusterSpec {
  int num_workers = 15;
  virt::VmSpec vm{.vcpus = 1, .memory_mb = 1024};
  Placement placement = Placement::Normal;
  hdfs::HdfsConfig hdfs;
  mapreduce::HadoopConfig hadoop;
  std::uint64_t seed = 7;
};

/// The vHadoop platform facade — the paper's five modules wired together:
/// Virtualization Module (Cloud), Hadoop Module (HdfsCluster +
/// SimulatedJobRunner), Machine Learning Algorithm Library (vhadoop::ml,
/// bridged through run_clustering), nmon Monitor and MapReduce Tuner.
/// Implements the nine-step execution flow of Sec. II-A.
class Platform {
 public:
  explicit Platform(TestbedConfig config = {});
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Steps 1-3: create and boot the hadoop virtual cluster, configure the
  /// Hadoop parameters. Blocks (in simulated time) until every VM is up.
  void boot_cluster(const ClusterSpec& spec);

  /// Step 4: upload input data of `bytes` to HDFS from the namenode.
  void upload(const std::string& path, double bytes);

  /// Elastic scale-out (the paper's stated future work: "scalable
  /// on-demand computation service"): boot `n` more worker VMs on `host`
  /// and register them as datanodes + tasktrackers. Blocks until they are
  /// up; a running job starts using them at their next heartbeat.
  std::vector<virt::VmId> add_workers(int n, virt::HostId host);

  /// Steps 5-8: run one simulated job to completion.
  mapreduce::JobTimeline run_job(mapreduce::SimJobSpec spec);

  /// Enqueue a job without driving the engine: lets callers stage several
  /// concurrent jobs (multi-tenant workloads under the Fair/Capacity
  /// schedulers) and then run the engine themselves.
  void submit_job(mapreduce::SimJobSpec spec,
                  std::function<void(const mapreduce::JobTimeline&)> on_done);

  /// Run a *measured* logical job (LocalJobRunner output) on the virtual
  /// cluster: the bridge maps real task profiles onto simulated tasks.
  /// `input_path` must exist in HDFS; map block indices are folded onto
  /// the file's real block count.
  mapreduce::JobTimeline run_measured(const std::string& name,
                                      const mapreduce::JobResult& measured,
                                      const std::string& input_path,
                                      const std::string& output_path);

  /// Run every per-iteration job of a clustering run back-to-back (the
  /// Mahout driver loop on the virtual cluster). Uploads the dataset to
  /// `input_path` if absent. Returns total elapsed simulated seconds.
  double run_clustering(const ml::ClusteringRun& run, double dataset_bytes,
                        const std::string& input_path);

  /// Step 9 support: attach an nmon monitor over all cluster VMs.
  monitor::NmonMonitor& attach_monitor(double interval_seconds = 1.0);
  /// Analyse the traces and get tuner recommendations. Each recommendation
  /// is also recorded as an instant event on the trace's platform lane.
  std::vector<tuner::Recommendation> tune(const tuner::TunerPolicy& policy = {});

  /// Actuate one tuner recommendation against the running platform:
  /// MigrateVm live-migrates the flagged VM (blocking); RebalanceNetwork
  /// throttles the busiest VM's VCPU (credit-scheduler cap) to relieve its
  /// I/O pressure; parameter-level kinds are no-ops here (fold them into a
  /// HadoopConfig with tuner::MapReduceTuner::apply for the next cluster).
  /// Returns true if something was actuated.
  bool apply_recommendation(const tuner::Recommendation& rec);

  /// Live-migrate the whole cluster to `dst` (Virt-LM extension), using
  /// per-VM dirty behaviour. Blocks until every VM resumed.
  virt::ClusterMigrationResult migrate_cluster(virt::HostId dst,
                                               std::function<virt::DirtyModel(virt::VmId)> dirty,
                                               int concurrency = 2);

  // --- observability --------------------------------------------------------
  /// Trace lane for platform-level events (tuner decisions); VM pids are
  /// the VmIds themselves, so this sits far outside their range.
  static constexpr int kPlatformPid = 9999;

  /// Platform-wide metrics registry (owned by the simulation engine; every
  /// module publishes its counters here).
  obs::Registry& metrics() { return engine_.metrics(); }
  const obs::Registry& metrics() const { return engine_.metrics(); }
  /// Timeline tracer on the simulated clock.
  obs::Tracer& tracer() { return engine_.tracer(); }
  const obs::Tracer& tracer() const { return engine_.tracer(); }
  /// Turn on timeline recording (lane names are registered at boot whether
  /// or not tracing is on, so this can be called any time).
  void enable_tracing() { engine_.tracer().set_enabled(true); }

  /// Register the standard platform probes (pending events plus the core
  /// module counters) and sample them every `period_seconds` of simulated
  /// time into the engine's ring-buffered time series. Idempotent; the
  /// sampler is a daemon chain, so it never keeps the engine alive.
  void enable_timeseries(double period_seconds = 1.0);

  // --- component access ----------------------------------------------------
  sim::Engine& engine() { return engine_; }
  virt::Cloud& cloud() { return *cloud_; }
  net::Fabric& fabric() { return *fabric_; }
  hdfs::HdfsCluster& hdfs() { return *hdfs_; }
  mapreduce::SimulatedJobRunner& runner() { return *runner_; }
  const std::vector<virt::HostId>& hosts() const { return hosts_; }
  virt::VmId namenode() const { return namenode_; }
  const std::vector<virt::VmId>& workers() const { return workers_; }
  std::vector<virt::VmId> all_vms() const;
  const ClusterSpec& cluster_spec() const { return spec_; }

 private:
  /// Register process/thread names for a VM's trace lanes.
  void name_vm_lanes(virt::VmId vm);

  TestbedConfig config_;
  sim::Engine engine_;
  std::unique_ptr<sim::FluidModel> model_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<virt::Cloud> cloud_;
  std::vector<virt::HostId> hosts_;
  ClusterSpec spec_;
  virt::VmId namenode_{};
  std::vector<virt::VmId> workers_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
  std::unique_ptr<mapreduce::SimulatedJobRunner> runner_;
  std::unique_ptr<monitor::NmonMonitor> monitor_;
  int job_counter_ = 0;
};

}  // namespace vhadoop::core

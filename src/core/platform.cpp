#include "core/platform.hpp"

#include <stdexcept>

namespace vhadoop::core {

Platform::Platform(TestbedConfig config) : config_(config) {
  model_ = std::make_unique<sim::FluidModel>(engine_);
  fabric_ = std::make_unique<net::Fabric>(engine_, *model_, config_.net);
  cloud_ = std::make_unique<virt::Cloud>(engine_, *model_, *fabric_, config_.virt);
  for (int h = 0; h < config_.num_hosts; ++h) {
    // hostA..hostZ for small testbeds (the historic names every test and
    // trace golden knows); numeric suffixes beyond that, where 'A' + h
    // would walk off the alphabet.
    const std::string name = h < 26 ? "host" + std::string(1, static_cast<char>('A' + h))
                                    : "host" + std::to_string(h);
    hosts_.push_back(cloud_->add_host(name));
  }
}

void Platform::boot_cluster(const ClusterSpec& spec) {
  if (runner_) throw std::runtime_error("Platform: cluster already booted");
  if (spec.num_workers < 1) throw std::invalid_argument("Platform: need >= 1 worker");
  spec_ = spec;

  const int total = spec.num_workers + 1;
  auto place = [&](int idx) -> virt::HostId {
    if (spec.placement == Placement::Normal || hosts_.size() < 2) return hosts_[0];
    if (spec.placement == Placement::Spread) {
      return hosts_[static_cast<std::size_t>(idx) % hosts_.size()];
    }
    return idx < (total + 1) / 2 ? hosts_[0] : hosts_[1];
  };

  int pending = total;
  auto on_ready = [&pending] { --pending; };
  namenode_ = cloud_->create_vm("namenode", place(0), spec.vm);
  cloud_->boot_vm(namenode_, on_ready);
  for (int i = 0; i < spec.num_workers; ++i) {
    virt::VmId vm = cloud_->create_vm("worker" + std::to_string(i), place(i + 1), spec.vm);
    cloud_->boot_vm(vm, on_ready);
    workers_.push_back(vm);
  }
  engine_.run();
  if (pending != 0) throw std::runtime_error("Platform: cluster failed to boot");

  hdfs_ = std::make_unique<hdfs::HdfsCluster>(*cloud_, spec.hdfs, namenode_, workers_,
                                              sim::Rng(spec.seed));
  runner_ = std::make_unique<mapreduce::SimulatedJobRunner>(*cloud_, *hdfs_, spec.hadoop,
                                                            workers_);

  engine_.tracer().set_process_name(kPlatformPid, "platform");
  name_vm_lanes(namenode_);
  for (virt::VmId vm : workers_) name_vm_lanes(vm);
}

void Platform::name_vm_lanes(virt::VmId vm) {
  obs::Tracer& tracer = engine_.tracer();
  tracer.set_process_name(static_cast<int>(vm), cloud_->vm_name(vm));
  const int maps = spec_.hadoop.map_slots_per_worker;
  const int reduces = spec_.hadoop.reduce_slots_per_worker;
  for (int s = 0; s < maps; ++s) {
    tracer.set_thread_name(static_cast<int>(vm), s, "map-slot-" + std::to_string(s));
  }
  for (int s = 0; s < reduces; ++s) {
    tracer.set_thread_name(static_cast<int>(vm), maps + s,
                           "reduce-slot-" + std::to_string(s));
  }
  tracer.set_thread_name(static_cast<int>(vm), virt::Cloud::kMigrationTid, "migration");
}

void Platform::enable_timeseries(double period_seconds) {
  obs::TimeSeries& ts = engine_.timeseries();
  ts.add("sim.pending_events",
         [this] { return static_cast<double>(engine_.pending()); });
  // Cumulative module counters, created eagerly so the probes are valid
  // even before the owning module first touches them.
  for (const char* name : {"mr.map_attempts", "mr.reduce_attempts", "mr.jobs_completed",
                           "net.bytes_requested", "hdfs.bytes_read", "hdfs.bytes_written"}) {
    obs::Counter* c = engine_.metrics().counter(name);
    ts.add(name, [c] { return c->value(); });
  }
  engine_.sample_timeseries_every(period_seconds);
}

std::vector<virt::VmId> Platform::all_vms() const {
  std::vector<virt::VmId> vms;
  vms.push_back(namenode_);
  vms.insert(vms.end(), workers_.begin(), workers_.end());
  return vms;
}

std::vector<virt::VmId> Platform::add_workers(int n, virt::HostId host) {
  if (!runner_) throw std::runtime_error("Platform: boot a cluster first");
  std::vector<virt::VmId> fresh;
  int pending = n;
  for (int i = 0; i < n; ++i) {
    virt::VmId vm = cloud_->create_vm("worker" + std::to_string(workers_.size() + fresh.size()),
                                      host, spec_.vm);
    cloud_->boot_vm(vm, [&pending] { --pending; });
    fresh.push_back(vm);
  }
  // Booting shares the NFS path with any running workload; jobs keep
  // making progress while the new guests come up.
  while (pending > 0 && engine_.run_until(engine_.now() + 1.0)) {
  }
  if (pending > 0) engine_.run();
  for (virt::VmId vm : fresh) {
    workers_.push_back(vm);
    hdfs_->add_datanode(vm);
    runner_->add_tracker(vm);
    name_vm_lanes(vm);
  }
  return fresh;
}

void Platform::upload(const std::string& path, double bytes) {
  if (!hdfs_) throw std::runtime_error("Platform: boot a cluster first");
  bool done = false;
  hdfs_->write_file(path, bytes, namenode_, [&done] { done = true; });
  engine_.run();
  if (!done) throw std::runtime_error("Platform: upload did not complete");
}

mapreduce::JobTimeline Platform::run_job(mapreduce::SimJobSpec spec) {
  if (!runner_) throw std::runtime_error("Platform: boot a cluster first");
  mapreduce::JobTimeline timeline;
  bool done = false;
  runner_->submit(std::move(spec), [&](const mapreduce::JobTimeline& t) {
    timeline = t;
    done = true;
  });
  engine_.run();
  if (!done) throw std::runtime_error("Platform: job did not complete");
  return timeline;
}

void Platform::submit_job(mapreduce::SimJobSpec spec,
                          std::function<void(const mapreduce::JobTimeline&)> on_done) {
  if (!runner_) throw std::runtime_error("Platform: boot a cluster first");
  runner_->submit(std::move(spec), std::move(on_done));
}

mapreduce::JobTimeline Platform::run_measured(const std::string& name,
                                              const mapreduce::JobResult& measured,
                                              const std::string& input_path,
                                              const std::string& output_path) {
  if (!hdfs_->exists(input_path)) {
    throw std::runtime_error("Platform: missing HDFS input " + input_path);
  }
  auto spec = mapreduce::to_sim_job(name, measured, input_path, output_path);
  // Logical split counts need not match the file's physical block count;
  // fold the indices so scheduling/locality still resolves.
  const int blocks = static_cast<int>(hdfs_->blocks(input_path).size());
  for (auto& mt : spec.maps) mt.block_index %= blocks;
  return run_job(std::move(spec));
}

double Platform::run_clustering(const ml::ClusteringRun& run, double dataset_bytes,
                                const std::string& input_path) {
  if (!hdfs_) throw std::runtime_error("Platform: boot a cluster first");
  if (!hdfs_->exists(input_path)) upload(input_path, dataset_bytes);
  const double start = engine_.now();
  for (std::size_t iter = 0; iter < run.jobs.size(); ++iter) {
    const std::string out =
        "/out/" + run.algorithm + "-" + std::to_string(job_counter_++) + "-it" +
        std::to_string(iter);
    run_measured(run.algorithm + "-it" + std::to_string(iter), run.jobs[iter], input_path, out);
  }
  return engine_.now() - start;
}

monitor::NmonMonitor& Platform::attach_monitor(double interval_seconds) {
  if (!runner_) throw std::runtime_error("Platform: boot a cluster first");
  monitor_ = std::make_unique<monitor::NmonMonitor>(*cloud_, *fabric_, all_vms(),
                                                    interval_seconds);
  monitor_->start();
  return *monitor_;
}

std::vector<tuner::Recommendation> Platform::tune(const tuner::TunerPolicy& policy) {
  if (!monitor_) throw std::runtime_error("Platform: attach a monitor first");
  const auto report = monitor::TraceAnalyser::analyse(*monitor_);
  auto recs = tuner::MapReduceTuner(policy).analyse(report);
  obs::Tracer& tracer = engine_.tracer();
  if (tracer.enabled()) {
    for (const auto& rec : recs) tracer.instant(kPlatformPid, 0, rec.message, "tuner");
  }
  return recs;
}

bool Platform::apply_recommendation(const tuner::Recommendation& rec) {
  if (!monitor_) throw std::runtime_error("Platform: attach a monitor first");
  switch (rec.kind) {
    case tuner::Recommendation::Kind::MigrateVm: {
      const auto& vms = monitor_->vms();
      if (rec.vm_index >= vms.size() || rec.target_host >= hosts_.size()) return false;
      const virt::VmId vm = vms[rec.vm_index];
      if (cloud_->host_of(vm) == hosts_[rec.target_host]) return false;
      bool done = false;
      cloud_->migrate(vm, hosts_[rec.target_host], virt::DirtyModel::wordcount(),
                      [&done](const virt::MigrationResult&) { done = true; });
      engine_.run();
      return done;
    }
    case tuner::Recommendation::Kind::RebalanceNetwork: {
      const auto report = monitor::TraceAnalyser::analyse(*monitor_);
      const virt::VmId vm = monitor_->vms()[report.busiest_vm];
      if (!cloud_->alive(vm)) return false;
      cloud_->set_vcpu_cap(vm, 0.5);
      return true;
    }
    default:
      return false;  // parameter recommendations apply to the next cluster
  }
}

virt::ClusterMigrationResult Platform::migrate_cluster(
    virt::HostId dst, std::function<virt::DirtyModel(virt::VmId)> dirty, int concurrency) {
  if (!runner_) throw std::runtime_error("Platform: boot a cluster first");
  virt::ClusterMigration bench(*cloud_, concurrency);
  virt::ClusterMigrationResult result;
  bool done = false;
  bench.run(all_vms(), dst, std::move(dirty), [&](const virt::ClusterMigrationResult& r) {
    result = r;
    done = true;
  });
  engine_.run();
  if (!done) throw std::runtime_error("Platform: migration did not complete");
  return result;
}

}  // namespace vhadoop::core

#pragma once

#include <string>

#include "ml/clustering.hpp"

namespace vhadoop::viz {

/// Rendering options for the Fig. 8-style cluster convergence plots.
struct RenderOptions {
  int width = 640;
  int height = 640;
  double point_radius = 2.0;
  /// Radius drawn around cluster centers, in data units (e.g. T2 for
  /// canopy-family algorithms; 1 sd for Gaussian models).
  double cluster_radius = 1.0;
};

/// Render a 2-D dataset with the per-iteration cluster overlays, replicating
/// Mahout's DisplayClustering output the paper screenshots (Fig. 8): sample
/// points in grey, early iterations light grey, the last few in
/// orange/yellow/green/blue/magenta, the final iteration bold red.
std::string render_clustering_svg(const ml::Dataset& data, const ml::ClusteringRun& run,
                                  const RenderOptions& options = {});

/// Convenience: render and write to `path`.
void write_clustering_svg(const std::string& path, const ml::Dataset& data,
                          const ml::ClusteringRun& run, const RenderOptions& options = {});

/// A named utilization series in [0,1] over time (for nmon-analyser-style
/// charts).
struct TraceSeries {
  std::string name;
  std::string color = "steelblue";
  std::vector<double> times;
  std::vector<double> values;
};

/// Render utilization time-series as an SVG line chart — the platform's
/// stand-in for the "nmon analyser" graphics the paper uses to locate
/// bottlenecks.
std::string render_trace_svg(const std::vector<TraceSeries>& series, int width = 720,
                             int height = 320);

}  // namespace vhadoop::viz

#include "viz/svg.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace vhadoop::viz {

namespace {

struct Frame {
  double min_x, max_x, min_y, max_y;
  int width, height;

  double sx(double x) const {
    return 20.0 + (x - min_x) / (max_x - min_x) * (width - 40.0);
  }
  double sy(double y) const {
    // SVG y grows downward.
    return height - 20.0 - (y - min_y) / (max_y - min_y) * (height - 40.0);
  }
  double sr(double r) const { return r / (max_x - min_x) * (width - 40.0); }
};

/// The paper's color sequence: the last iteration bold red, the previous
/// five orange/yellow/green/blue/magenta, everything earlier light grey.
std::string iteration_color(std::size_t iter, std::size_t total) {
  static const char* recent[] = {"magenta", "blue", "green", "gold", "orange"};
  if (iter + 1 == total) return "red";
  const std::size_t from_end = total - 1 - iter;  // 1 = immediately before final
  if (from_end <= 5) return recent[from_end - 1];
  return "#cccccc";
}

}  // namespace

std::string render_clustering_svg(const ml::Dataset& data, const ml::ClusteringRun& run,
                                  const RenderOptions& options) {
  if (data.dim() != 2) throw std::invalid_argument("SVG rendering requires 2-D data");

  Frame f{std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
          options.width, options.height};
  for (const ml::Vec& p : data.points) {
    f.min_x = std::min(f.min_x, p[0]);
    f.max_x = std::max(f.max_x, p[0]);
    f.min_y = std::min(f.min_y, p[1]);
    f.max_y = std::max(f.max_y, p[1]);
  }
  if (!(f.max_x > f.min_x) || !(f.max_y > f.min_y)) {
    f.max_x = f.min_x + 1.0;
    f.max_y = f.min_y + 1.0;
  }

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<!-- algorithm: " << run.algorithm << ", iterations: " << run.iterations << " -->\n";

  // Sample points.
  svg << "<g fill=\"#888888\" fill-opacity=\"0.6\">\n";
  for (const ml::Vec& p : data.points) {
    svg << "  <circle cx=\"" << f.sx(p[0]) << "\" cy=\"" << f.sy(p[1]) << "\" r=\""
        << options.point_radius << "\"/>\n";
  }
  svg << "</g>\n";

  // Per-iteration cluster overlays, oldest first so the final red rings
  // paint on top.
  const std::size_t total = run.iteration_centers.size();
  for (std::size_t iter = 0; iter < total; ++iter) {
    const std::string color = iteration_color(iter, total);
    const bool final_iter = iter + 1 == total;
    svg << "<g stroke=\"" << color << "\" fill=\"none\" stroke-width=\""
        << (final_iter ? 2.5 : 1.0) << "\">\n";
    for (const ml::Vec& c : run.iteration_centers[iter]) {
      if (c.size() != 2) continue;
      svg << "  <circle cx=\"" << f.sx(c[0]) << "\" cy=\"" << f.sy(c[1]) << "\" r=\""
          << std::max(3.0, f.sr(options.cluster_radius)) << "\"/>\n";
    }
    svg << "</g>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_trace_svg(const std::vector<TraceSeries>& series, int width, int height) {
  double t_max = 1.0;
  for (const TraceSeries& s : series) {
    if (s.times.size() != s.values.size()) {
      throw std::invalid_argument("TraceSeries: times/values length mismatch");
    }
    for (double t : s.times) t_max = std::max(t_max, t);
  }
  const double left = 45.0, bottom = 25.0, top = 15.0, right = 15.0;
  const double plot_w = width - left - right;
  const double plot_h = height - top - bottom;
  auto sx = [&](double t) { return left + t / t_max * plot_w; };
  auto sy = [&](double v) { return top + (1.0 - std::clamp(v, 0.0, 1.0)) * plot_h; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
      << height << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  // Axes and gridlines at 0/50/100%.
  for (double v : {0.0, 0.5, 1.0}) {
    svg << "<line x1=\"" << left << "\" y1=\"" << sy(v) << "\" x2=\"" << (width - right)
        << "\" y2=\"" << sy(v) << "\" stroke=\"#dddddd\"/>\n";
    svg << "<text x=\"4\" y=\"" << sy(v) + 4 << "\" font-size=\"11\">" << (v * 100)
        << "%</text>\n";
  }
  double legend_y = top + 4;
  for (const TraceSeries& s : series) {
    svg << "<polyline fill=\"none\" stroke=\"" << s.color << "\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < s.times.size(); ++i) {
      svg << sx(s.times[i]) << ',' << sy(s.values[i]) << ' ';
    }
    svg << "\"/>\n";
    svg << "<text x=\"" << (width - right - 150) << "\" y=\"" << legend_y
        << "\" font-size=\"11\" fill=\"" << s.color << "\">" << s.name << "</text>\n";
    legend_y += 13;
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_clustering_svg(const std::string& path, const ml::Dataset& data,
                          const ml::ClusteringRun& run, const RenderOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << render_clustering_svg(data, run, options);
}

}  // namespace vhadoop::viz

#pragma once

#include <span>
#include <vector>

#include "mapreduce/job.hpp"

namespace vhadoop::mapreduce {

/// The *logical* MapReduce engine: really executes user Mapper/Combiner/
/// Reducer code, multi-threaded, with Hadoop's dataflow — split, map,
/// hash-partition, sort, combine, shuffle, merge, group, reduce. It
/// produces (a) the job's real output and (b) per-task profiles (records,
/// bytes, modeled CPU cost) that the simulated virtual cluster replays for
/// timing. Correctness is real; only wall-clock is modeled.
class LocalJobRunner {
 public:
  explicit LocalJobRunner(unsigned threads = 0);

  /// Run `spec` over `input`, cut into `num_splits` contiguous splits
  /// (one map task per split — Hadoop's FileInputFormat over block-aligned
  /// splits). num_splits <= 0 derives one split per thread.
  JobResult run(const JobSpec& spec, std::span<const KV> input, int num_splits) const;

  unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

/// Group a key-sorted run of records and feed them to `reducer`. Exposed
/// for reuse by the combiner stage and by tests.
std::vector<KV> reduce_sorted(Reducer& reducer, std::span<const KV> sorted);

/// Stable sort by key (ties keep input order, like Hadoop's stable merge).
void sort_by_key(std::vector<KV>& records);

}  // namespace vhadoop::mapreduce

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "mapreduce/hadoop_config.hpp"
#include "mapreduce/job.hpp"

namespace vhadoop::mapreduce {

class WorkerPool;

/// The *logical* MapReduce engine: really executes user Mapper/Combiner/
/// Reducer code, multi-threaded, with Hadoop's dataflow — split, map,
/// hash-partition, sort, combine, shuffle, merge, group, reduce. It
/// produces (a) the job's real output and (b) per-task profiles (records,
/// bytes, modeled CPU cost) that the simulated virtual cluster replays for
/// timing. Correctness is real; only wall-clock is modeled.
///
/// Two execution paths produce byte-identical results (DESIGN.md §11):
///  - optimized (default): arena-backed KVBatch records, index sorts with
///    an 8-byte key-prefix fast path, a true k-way merge feeding reducers,
///    shuffle bytes accounted during partitioning;
///  - reference oracle (`VHADOOP_RUNNER_REFERENCE=1`, or the two-argument
///    constructor): the original std::vector<KV> path — partition moves,
///    stable_sort, concatenate-and-re-sort merge. The equivalence suite
///    (tests/mapreduce/runner_equivalence_test.cpp) and bench/ml_scaling
///    assert outputs, profiles and shuffle accounting match exactly.
class LocalJobRunner {
 public:
  /// Reference-oracle mode defaults to the VHADOOP_RUNNER_REFERENCE
  /// environment switch (mirroring VHADOOP_FLUID_REFERENCE).
  explicit LocalJobRunner(unsigned threads = 0);
  LocalJobRunner(unsigned threads, bool reference);
  LocalJobRunner(unsigned threads, const RunnerTuning& tuning);
  LocalJobRunner(unsigned threads, bool reference, const RunnerTuning& tuning);
  ~LocalJobRunner();
  LocalJobRunner(LocalJobRunner&&) noexcept;
  LocalJobRunner& operator=(LocalJobRunner&&) noexcept;

  /// Run `spec` over `input`, cut into `num_splits` contiguous splits
  /// (one map task per split — Hadoop's FileInputFormat over block-aligned
  /// splits). num_splits <= 0 derives one split per thread.
  ///
  /// `run` is const but not safe for *concurrent* calls on one runner: all
  /// calls share the runner's persistent worker pool. Use one runner per
  /// thread (they are cheap until the first parallel batch).
  JobResult run(const JobSpec& spec, std::span<const KV> input, int num_splits) const;

  unsigned threads() const { return threads_; }
  bool reference() const { return reference_; }
  const RunnerTuning& tuning() const { return tuning_; }

  /// The runner's persistent worker pool (threads start lazily on the first
  /// batch that can use them). Exposed for tests/introspection.
  WorkerPool& pool() const { return *pool_; }

 private:
  JobResult run_optimized(const JobSpec& spec, std::span<const KV> input, int num_splits) const;
  JobResult run_optimized_small(const JobSpec& spec, std::span<const KV> input,
                                int num_splits) const;
  JobResult run_reference(const JobSpec& spec, std::span<const KV> input, int num_splits) const;

  unsigned threads_;
  bool reference_;
  RunnerTuning tuning_;
  std::unique_ptr<WorkerPool> pool_;
};

/// Group a key-sorted run of records and feed them to `reducer`. Exposed
/// for reuse by the reference-path combiner stage and by tests.
std::vector<KV> reduce_sorted(Reducer& reducer, std::span<const KV> sorted);

/// Stable sort by key (ties keep input order, like Hadoop's stable merge).
void sort_by_key(std::vector<KV>& records);

}  // namespace vhadoop::mapreduce

#include "mapreduce/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace vhadoop::mapreduce {

std::size_t FifoScheduler::pick(const std::vector<JobSchedView>& views, SlotKind,
                                int) const {
  // Strict head-of-line service: only the oldest unfinished job may run, even
  // when it has no schedulable work of this kind right now.
  if (views.empty() || views.front().pending == 0) return kNone;
  return 0;
}

std::size_t FairScheduler::pick(const std::vector<JobSchedView>& views, SlotKind kind,
                                int) const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (views[i].pending > 0) order.push_back(i);
  }
  if (order.empty()) return kNone;
  // Most slot-deficient job first; submission order breaks ties, so equal
  // claimants are served round-robin-ish rather than by vector accident.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (views[a].running != views[b].running) return views[a].running < views[b].running;
    return views[a].submit_index < views[b].submit_index;
  });
  if (kind == SlotKind::Reduce) return order.front();
  // Two-tier delay scheduling (Zaharia's delay scheduling generalised to
  // racks): node-local immediately; after one delay window a rack-local map
  // is acceptable; after a second window, anything. Single-rack clusters
  // always report rack_local_available, collapsing this to the old walk.
  for (std::size_t i : order) {
    if (views[i].local_available) return i;
    if (views[i].locality_wait >= locality_delay_ &&
        (views[i].rack_local_available || views[i].locality_wait >= 2 * locality_delay_)) {
      return i;
    }
  }
  return kNone;  // everyone is still inside their locality-delay window
}

CapacityScheduler::CapacityScheduler(std::vector<QueueConfig> queues)
    : queues_(std::move(queues)) {
  if (queues_.empty()) queues_.push_back({});
}

std::size_t CapacityScheduler::queue_index(const std::string& name) const {
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (queues_[q].name == name) return q;
  }
  return 0;
}

std::size_t CapacityScheduler::pick(const std::vector<JobSchedView>& views, SlotKind,
                                    int total_slots) const {
  const std::size_t nq = queues_.size();
  std::vector<int> q_running(nq, 0);
  std::vector<bool> q_has_pending(nq, false);
  for (const JobSchedView& v : views) {
    const std::size_t q = queue_index(v.queue);
    q_running[q] += v.running;
    if (v.pending > 0) q_has_pending[q] = true;
  }

  std::vector<std::size_t> qorder;
  for (std::size_t q = 0; q < nq; ++q) {
    if (!q_has_pending[q]) continue;
    if (q_running[q] >= queues_[q].max_capacity * total_slots) continue;  // at ceiling
    qorder.push_back(q);
  }
  // Most underserved relative to its guarantee first; configuration order
  // breaks ties so the choice is deterministic.
  std::stable_sort(qorder.begin(), qorder.end(), [&](std::size_t a, std::size_t b) {
    const double ra = q_running[a] / std::max(queues_[a].capacity, 1e-9);
    const double rb = q_running[b] / std::max(queues_[b].capacity, 1e-9);
    return ra < rb;
  });

  for (std::size_t q : qorder) {
    const double user_cap =
        std::max(1.0, queues_[q].user_limit * queues_[q].max_capacity * total_slots);
    for (std::size_t i = 0; i < views.size(); ++i) {  // views are in FIFO order
      const JobSchedView& v = views[i];
      if (v.pending == 0 || queue_index(v.queue) != q) continue;
      int user_running = 0;
      for (const JobSchedView& w : views) {
        if (queue_index(w.queue) == q && w.user == v.user) user_running += w.running;
      }
      if (user_running >= user_cap) continue;
      return i;
    }
  }
  return kNone;
}

std::size_t DeadlineScheduler::pick(const std::vector<JobSchedView>& views,
                                    SlotKind kind, int) const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < views.size(); ++i) {
    if (views[i].pending > 0) order.push_back(i);
  }
  if (order.empty()) return kNone;

  // Anti-starvation override: a job skipped past the window without ever
  // starting jumps the whole EDF/priority order — oldest such job first, so
  // a sustained stream of urgent arrivals cannot pin batch work forever.
  std::vector<std::size_t> starved;
  for (std::size_t i : order) {
    if (!views[i].started && views[i].age >= starvation_window_) starved.push_back(i);
  }
  const std::vector<std::size_t>& pool = starved.empty() ? order : starved;

  std::vector<std::size_t> ranked(pool);
  std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    if (!starved.empty()) {  // starved pool: strictly oldest-first
      return views[a].submit_index < views[b].submit_index;
    }
    if (views[a].priority != views[b].priority)
      return views[a].priority > views[b].priority;  // higher tier first
    // vlint: allow(no-exact-float-compare) audited PR 8: comparator tie-break; strict weak ordering needs the exact test
    if (views[a].deadline != views[b].deadline)
      return views[a].deadline < views[b].deadline;  // EDF within tier
    return views[a].submit_index < views[b].submit_index;
  });

  if (kind == SlotKind::Reduce) return ranked.front();
  // Delay scheduling for map locality, same two-tier walk as the Fair
  // scheduler: the front-runner may be skipped until it waits out one delay
  // window (rack-local acceptable) or two (anything goes).
  for (std::size_t i : ranked) {
    if (views[i].local_available) return i;
    if (views[i].locality_wait >= locality_delay_ &&
        (views[i].rack_local_available || views[i].locality_wait >= 2 * locality_delay_)) {
      return i;
    }
  }
  return kNone;
}

std::unique_ptr<Scheduler> make_scheduler(const HadoopConfig& config) {
  switch (config.scheduler) {
    case SchedulerPolicy::Fair:
      return std::make_unique<FairScheduler>(config.locality_delay_seconds);
    case SchedulerPolicy::Capacity:
      return std::make_unique<CapacityScheduler>(config.queues);
    case SchedulerPolicy::Deadline:
      return std::make_unique<DeadlineScheduler>(
          config.locality_delay_seconds, config.deadline_starvation_window_seconds);
    case SchedulerPolicy::Fifo:
      break;
  }
  return std::make_unique<FifoScheduler>();
}

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::Fair: return "fair";
    case SchedulerPolicy::Capacity: return "capacity";
    case SchedulerPolicy::Deadline: return "deadline";
    case SchedulerPolicy::Fifo: break;
  }
  return "fifo";
}

std::optional<SchedulerPolicy> scheduler_policy_from_string(const std::string& s) {
  if (s == "fifo") return SchedulerPolicy::Fifo;
  if (s == "fair") return SchedulerPolicy::Fair;
  if (s == "capacity") return SchedulerPolicy::Capacity;
  if (s == "deadline") return SchedulerPolicy::Deadline;
  return std::nullopt;
}

}  // namespace vhadoop::mapreduce

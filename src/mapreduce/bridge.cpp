#include "mapreduce/bridge.hpp"

#include <stdexcept>

namespace vhadoop::mapreduce {

double serialized_bytes(std::span<const KV> records) {
  double total = 0.0;
  for (const KV& rec : records) {
    // Hadoop SequenceFile framing: key/value lengths + sync overhead,
    // amortized ~8 bytes per record.
    total += static_cast<double>(rec.bytes()) + 8.0;
  }
  return total;
}

SimJobSpec to_sim_job(const std::string& name, const JobResult& measured,
                      const std::string& input_path, const std::string& output_path) {
  SimJobSpec spec;
  spec.name = name;
  spec.output_path = output_path;
  spec.maps.reserve(measured.map_profiles.size());
  for (std::size_t m = 0; m < measured.map_profiles.size(); ++m) {
    const TaskProfile& p = measured.map_profiles[m];
    SimJobSpec::MapTask mt;
    mt.input_path = input_path;
    mt.block_index = static_cast<int>(m);
    mt.input_bytes = p.input_bytes;
    mt.cpu_seconds = p.cpu_seconds;
    mt.output_bytes = p.output_bytes;
    spec.maps.push_back(std::move(mt));
  }
  spec.reduces.reserve(measured.reduce_profiles.size());
  for (const TaskProfile& p : measured.reduce_profiles) {
    spec.reduces.push_back({p.cpu_seconds, p.output_bytes});
  }
  spec.shuffle_matrix = measured.shuffle_matrix;
  return spec;
}

SimJobSpec to_sim_job_files(const std::string& name, const JobResult& measured,
                            const std::vector<std::string>& input_paths,
                            const std::string& output_path) {
  if (input_paths.size() != measured.map_profiles.size()) {
    throw std::invalid_argument("to_sim_job_files: one input path per map task required");
  }
  SimJobSpec spec = to_sim_job(name, measured, "", output_path);
  for (std::size_t m = 0; m < spec.maps.size(); ++m) {
    spec.maps[m].input_path = input_paths[m];
    spec.maps[m].block_index = -1;  // stream the whole (small) file
  }
  return spec;
}

}  // namespace vhadoop::mapreduce

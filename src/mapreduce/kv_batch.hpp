#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace vhadoop::mapreduce {

/// Arena-backed flat record batch — the zero-copy spine of the optimized
/// LocalJobRunner data path. All key/value bytes live in a small number of
/// contiguous chunks (never reallocated, so views stay valid for the life
/// of the batch); records are 16-byte-ish POD entries that can be
/// partitioned, sorted and merged without touching the payload. Value
/// payloads are 8-byte aligned inside the arena so packed-double values can
/// be read in place via `decode_vec_view` (kv.hpp).
///
/// Chunk allocations are counted (`chunks_allocated`) — a deterministic
/// function of the pushed data, gated by bench/ml_scaling as the data
/// path's allocation metric.
class KVBatch {
 public:
  /// One record: key bytes at `data`, value bytes at `data + val_off()`
  /// (the value start is padded up to 8-byte alignment; the padding is
  /// never part of the record's logical bytes). `prefix` holds the first
  /// min(8, key_len) key bytes big-endian, zero-padded: whenever two
  /// prefixes differ, their numeric order equals the keys' lexicographic
  /// order, so most comparisons are one 64-bit compare.
  struct Entry {
    const char* data = nullptr;
    std::uint32_t key_len = 0;
    std::uint32_t val_len = 0;
    std::uint64_t prefix = 0;

    std::string_view key() const { return {data, key_len}; }
    std::string_view value() const { return {data + val_off(), val_len}; }
    std::size_t val_off() const { return align8(key_len); }
    /// Logical record size (Hadoop-visible bytes; excludes alignment pad).
    std::size_t bytes() const { return std::size_t{key_len} + val_len; }
  };

  explicit KVBatch(std::size_t chunk_bytes = kDefaultChunk) : chunk_bytes_(chunk_bytes) {}

  KVBatch(KVBatch&&) = default;
  KVBatch& operator=(KVBatch&&) = default;
  KVBatch(const KVBatch&) = delete;
  KVBatch& operator=(const KVBatch&) = delete;

  static std::uint64_t key_prefix(std::string_view key) {
    if (key.size() >= 8) {
      // One 8-byte load + byte swap (GCC/Clang collapse the shift chain to
      // a single bswap) instead of the byte loop — this runs on every emit.
      std::uint64_t raw;
      std::memcpy(&raw, key.data(), 8);
      if constexpr (std::endian::native == std::endian::little) {
        raw = ((raw & 0x00000000000000ffULL) << 56) | ((raw & 0x000000000000ff00ULL) << 40) |
              ((raw & 0x0000000000ff0000ULL) << 24) | ((raw & 0x00000000ff000000ULL) << 8) |
              ((raw & 0x000000ff00000000ULL) >> 8) | ((raw & 0x0000ff0000000000ULL) >> 24) |
              ((raw & 0x00ff000000000000ULL) >> 40) | ((raw & 0xff00000000000000ULL) >> 56);
      }
      return raw;
    }
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      p |= static_cast<std::uint64_t>(static_cast<unsigned char>(key[i])) << (56 - 8 * i);
    }
    return p;
  }

  void push(std::string_view key, std::string_view value) {
    if (key.size() > UINT32_MAX || value.size() > UINT32_MAX) {
      throw std::length_error("KVBatch: record exceeds 4 GiB field limit");
    }
    const std::size_t val_off = align8(key.size());
    // Pad the record end too, so the next record's value stays aligned.
    const std::size_t need = align8(val_off + value.size());
    char* p = allocate(need);
    if (!key.empty()) std::memcpy(p, key.data(), key.size());
    if (!value.empty()) std::memcpy(p + val_off, value.data(), value.size());
    Entry e;
    e.data = p;
    e.key_len = static_cast<std::uint32_t>(key.size());
    e.val_len = static_cast<std::uint32_t>(value.size());
    e.prefix = key_prefix(key);
    entries_.push_back(e);
    total_bytes_ += key.size() + value.size();
  }

  /// Pre-size the entry index (a capacity hint only: chunk accounting and
  /// every gated stat are unaffected).
  void reserve_entries(std::size_t n) { entries_.reserve(n); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }
  std::span<const Entry> entries() const { return entries_; }
  std::string_view key(std::size_t i) const { return entries_[i].key(); }
  std::string_view value(std::size_t i) const { return entries_[i].value(); }

  /// Sum of logical record bytes pushed so far.
  std::size_t total_bytes() const { return total_bytes_; }
  /// Arena chunks allocated — deterministic for a given push sequence.
  std::int64_t chunks_allocated() const { return static_cast<std::int64_t>(chunks_.size()); }

  void clear() {
    chunks_.clear();
    entries_.clear();
    used_ = 0;
    cap_ = 0;
    total_bytes_ = 0;
  }

 private:
  static constexpr std::size_t kDefaultChunk = 64 * 1024;

  static std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

  char* allocate(std::size_t need) {
    if (used_ + need > cap_) {
      const std::size_t sz = need > chunk_bytes_ ? need : chunk_bytes_;
      // operator new[] guarantees at least alignof(std::max_align_t), so
      // every chunk base (and every 8-aligned offset) is double-aligned.
      chunks_.push_back(std::make_unique<char[]>(sz));
      used_ = 0;
      cap_ = sz;
    }
    char* p = chunks_.back().get() + used_;
    used_ += need;
    return p;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::vector<Entry> entries_;
  std::size_t total_bytes_ = 0;
};

/// Three-way entry comparison by key: one 64-bit prefix compare resolves
/// everything except keys sharing their first 8 bytes, which fall back to a
/// full lexicographic compare (the zero-padded prefix makes the fast path
/// order-consistent: equal prefixes are exactly the "might still differ"
/// case).
inline int compare_entries(const KVBatch::Entry& a, const KVBatch::Entry& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix ? -1 : 1;
  const std::string_view ka = a.key(), kb = b.key();
  const int c = ka.compare(kb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Stable sort of `entries` by key (ties keep input order, like Hadoop's
/// stable spill sort). Bottom-up merge sort over insertion-sorted base runs
/// rather than std::stable_sort so the returned key-comparison count is a
/// deterministic function of the input on every platform/stdlib —
/// bench/ml_scaling gates on it. The 16-entry insertion-sorted base runs
/// save the four densest merge passes (the bulk of the 24-byte entry
/// copies) without giving up determinism.
inline std::int64_t sort_entries(std::vector<KVBatch::Entry>& entries) {
  constexpr std::size_t kBaseRun = 16;
  const std::size_t n = entries.size();
  if (n < 2) return 0;
  std::int64_t comparisons = 0;
  KVBatch::Entry* a = entries.data();
  for (std::size_t lo = 0; lo < n; lo += kBaseRun) {
    const std::size_t hi = lo + kBaseRun < n ? lo + kBaseRun : n;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const KVBatch::Entry e = a[i];
      std::size_t j = i;
      while (j > lo) {
        ++comparisons;
        if (compare_entries(e, a[j - 1]) < 0) {
          a[j] = a[j - 1];
          --j;
        } else {
          break;
        }
      }
      a[j] = e;
    }
  }
  if (n <= kBaseRun) return comparisons;
  // Bottom-up 2-way merge passes with a branchless inner loop: the winner
  // of each comparison is selected by address arithmetic (compiles to a
  // conditional move), so the data-dependent compare never becomes an
  // unpredictable branch — on random keys that misprediction, not memory
  // traffic, dominates the sort. Taking the left side on ties preserves
  // stability, and the comparison count stays a pure function of the input.
  std::vector<KVBatch::Entry> scratch(n);
  KVBatch::Entry* src = entries.data();
  KVBatch::Entry* dst = scratch.data();
  bool in_src = true;
  for (std::size_t width = kBaseRun; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = lo + width < n ? lo + width : n;
      const std::size_t hi = lo + 2 * width < n ? lo + 2 * width : n;
      std::size_t i = lo, j = mid, out = lo;
      while (i < mid && j < hi) {
        ++comparisons;
        const bool take_right = compare_entries(src[j], src[i]) < 0;
        dst[out++] = take_right ? src[j] : src[i];
        i += static_cast<std::size_t>(!take_right);
        j += static_cast<std::size_t>(take_right);
      }
      if (i < mid) std::memcpy(dst + out, src + i, (mid - i) * sizeof(KVBatch::Entry));
      else if (j < hi) std::memcpy(dst + out, src + j, (hi - j) * sizeof(KVBatch::Entry));
    }
    std::swap(src, dst);
    in_src = !in_src;
  }
  if (!in_src) std::memcpy(entries.data(), src, n * sizeof(KVBatch::Entry));
  return comparisons;
}

/// True k-way merge of key-sorted runs into `out` (replacing the reduce
/// phase's old concatenate-and-stable_sort). Ties resolve to the earlier
/// run, then input order within a run — exactly the order a stable sort of
/// the runs' concatenation produces, so outputs stay byte-identical to the
/// reference path. Hand-rolled binary heap for deterministic comparison
/// counts. Returns the number of key comparisons.
inline std::int64_t merge_runs(std::span<const std::span<const KVBatch::Entry>> runs,
                               std::vector<KVBatch::Entry>& out) {
  out.clear();
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  out.reserve(total);

  struct Head {
    const KVBatch::Entry* cur;
    const KVBatch::Entry* end;
    std::size_t run;
  };
  std::vector<Head> heap;
  heap.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back({runs[r].data(), runs[r].data() + runs[r].size(), r});
  }
  if (heap.empty()) return 0;
  if (heap.size() == 1) {
    out.insert(out.end(), heap[0].cur, heap[0].end);
    return 0;
  }

  std::int64_t comparisons = 0;
  auto head_less = [&comparisons](const Head& x, const Head& y) {
    ++comparisons;
    const int c = compare_entries(*x.cur, *y.cur);
    if (c != 0) return c < 0;
    return x.run < y.run;
  };
  auto sift_down = [&](std::size_t i) {
    const std::size_t n = heap.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && head_less(heap[l], heap[best])) best = l;
      if (r < n && head_less(heap[r], heap[best])) best = r;
      if (best == i) return;
      std::swap(heap[i], heap[best]);
      i = best;
    }
  };
  for (std::size_t i = heap.size() / 2; i-- > 0;) sift_down(i);

  while (!heap.empty()) {
    Head& top = heap[0];
    out.push_back(*top.cur);
    ++top.cur;
    if (top.cur == top.end) {
      heap[0] = heap.back();
      heap.pop_back();
      if (heap.empty()) break;
    }
    if (heap.size() > 1) sift_down(0);
  }
  return comparisons;
}

}  // namespace vhadoop::mapreduce

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace vhadoop::mapreduce {

/// Arena-backed flat record batch — the zero-copy spine of the optimized
/// LocalJobRunner data path. All key/value bytes live in a small number of
/// contiguous chunks (never reallocated, so views stay valid for the life
/// of the batch); records are 16-byte-ish POD entries that can be
/// partitioned, sorted and merged without touching the payload. Value
/// payloads are 8-byte aligned inside the arena so packed-double values can
/// be read in place via `decode_vec_view` (kv.hpp).
///
/// Chunk allocations are counted (`chunks_allocated`) — a deterministic
/// function of the pushed data, gated by bench/ml_scaling as the data
/// path's allocation metric.
class KVBatch {
 public:
  /// One record: key bytes at `data`, value bytes at `data + val_off()`
  /// (the value start is padded up to 8-byte alignment; the padding is
  /// never part of the record's logical bytes). `prefix` holds the first
  /// min(8, key_len) key bytes big-endian, zero-padded: whenever two
  /// prefixes differ, their numeric order equals the keys' lexicographic
  /// order, so most comparisons are one 64-bit compare.
  struct Entry {
    const char* data = nullptr;
    std::uint32_t key_len = 0;
    std::uint32_t val_len = 0;
    std::uint64_t prefix = 0;

    std::string_view key() const { return {data, key_len}; }
    std::string_view value() const { return {data + val_off(), val_len}; }
    std::size_t val_off() const { return align8(key_len); }
    /// Logical record size (Hadoop-visible bytes; excludes alignment pad).
    std::size_t bytes() const { return std::size_t{key_len} + val_len; }
  };

  /// `chunk_bytes` is the steady-state chunk size; `first_chunk_bytes` the
  /// size of the first allocation. Chunks grow geometrically (doubling)
  /// from the first toward the steady-state size, so a mapper that emits
  /// 40 records costs a few KiB of arena rather than a full 64 KiB chunk —
  /// the dominant constant that made tiny jobs slower than the reference
  /// path (ROADMAP "win everywhere"). Allocation stays lazy: a batch that
  /// never sees a push never allocates.
  explicit KVBatch(std::size_t chunk_bytes = kDefaultChunk,
                   std::size_t first_chunk_bytes = kDefaultFirstChunk)
      : chunk_bytes_(chunk_bytes),
        first_chunk_bytes_(first_chunk_bytes < chunk_bytes ? first_chunk_bytes : chunk_bytes),
        next_chunk_bytes_(first_chunk_bytes_) {}

  KVBatch(KVBatch&&) = default;
  KVBatch& operator=(KVBatch&&) = default;
  KVBatch(const KVBatch&) = delete;
  KVBatch& operator=(const KVBatch&) = delete;

  static std::uint64_t key_prefix(std::string_view key) {
    if (key.size() >= 8) {
      // One 8-byte load + byte swap (GCC/Clang collapse the shift chain to
      // a single bswap) instead of the byte loop — this runs on every emit.
      std::uint64_t raw;
      std::memcpy(&raw, key.data(), 8);
      if constexpr (std::endian::native == std::endian::little) {
        raw = ((raw & 0x00000000000000ffULL) << 56) | ((raw & 0x000000000000ff00ULL) << 40) |
              ((raw & 0x0000000000ff0000ULL) << 24) | ((raw & 0x00000000ff000000ULL) << 8) |
              ((raw & 0x000000ff00000000ULL) >> 8) | ((raw & 0x0000ff0000000000ULL) >> 24) |
              ((raw & 0x00ff000000000000ULL) >> 40) | ((raw & 0xff00000000000000ULL) >> 56);
      }
      return raw;
    }
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < key.size(); ++i) {
      p |= static_cast<std::uint64_t>(static_cast<unsigned char>(key[i])) << (56 - 8 * i);
    }
    return p;
  }

  void push(std::string_view key, std::string_view value) {
    if (key.size() > UINT32_MAX || value.size() > UINT32_MAX) {
      throw std::length_error("KVBatch: record exceeds 4 GiB field limit");
    }
    const std::size_t val_off = align8(key.size());
    // Pad the record end too, so the next record's value stays aligned.
    const std::size_t need = align8(val_off + value.size());
    char* p = allocate(need);
    if (!key.empty()) std::memcpy(p, key.data(), key.size());
    if (!value.empty()) std::memcpy(p + val_off, value.data(), value.size());
    Entry e;
    e.data = p;
    e.key_len = static_cast<std::uint32_t>(key.size());
    e.val_len = static_cast<std::uint32_t>(value.size());
    e.prefix = key_prefix(key);
    entries_.push_back(e);
    total_bytes_ += key.size() + value.size();
  }

  /// Pre-size the entry index (a capacity hint only: chunk accounting and
  /// every gated stat are unaffected).
  void reserve_entries(std::size_t n) { entries_.reserve(n); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }
  std::span<const Entry> entries() const { return entries_; }
  std::string_view key(std::size_t i) const { return entries_[i].key(); }
  std::string_view value(std::size_t i) const { return entries_[i].value(); }

  /// Sum of logical record bytes pushed so far.
  std::size_t total_bytes() const { return total_bytes_; }
  /// Arena chunks allocated — deterministic for a given push sequence.
  std::int64_t chunks_allocated() const { return static_cast<std::int64_t>(chunks_.size()); }

  void clear() {
    chunks_.clear();
    entries_.clear();
    used_ = 0;
    cap_ = 0;
    total_bytes_ = 0;
    next_chunk_bytes_ = first_chunk_bytes_;  // chunk counts restart deterministically
  }

 private:
  static constexpr std::size_t kDefaultChunk = 64 * 1024;
  static constexpr std::size_t kDefaultFirstChunk = 1024;

  static std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

  char* allocate(std::size_t need) {
    if (used_ + need > cap_) {
      std::size_t sz = next_chunk_bytes_;
      if (sz < need) sz = need;  // oversized record gets its own chunk
      // for_overwrite: arena bytes are always written before they are read
      // (push memcpys key+value; alignment padding is never part of any
      // record's logical bytes), so zero-initializing every chunk would be
      // pure memset traffic — at 64 KiB per chunk it dominated small jobs.
      // operator new[] guarantees at least alignof(std::max_align_t), so
      // every chunk base (and every 8-aligned offset) is double-aligned.
      chunks_.push_back(std::make_unique_for_overwrite<char[]>(sz));
      used_ = 0;
      cap_ = sz;
      next_chunk_bytes_ =
          next_chunk_bytes_ * 2 < chunk_bytes_ ? next_chunk_bytes_ * 2 : chunk_bytes_;
    }
    char* p = chunks_.back().get() + used_;
    used_ += need;
    return p;
  }

  std::size_t chunk_bytes_;
  std::size_t first_chunk_bytes_;
  std::size_t next_chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::vector<Entry> entries_;
  std::size_t total_bytes_ = 0;
};

/// Three-way entry comparison by key: one 64-bit prefix compare resolves
/// everything except keys sharing their first 8 bytes, which fall back to a
/// full lexicographic compare (the zero-padded prefix makes the fast path
/// order-consistent: equal prefixes are exactly the "might still differ"
/// case).
inline int compare_entries(const KVBatch::Entry& a, const KVBatch::Entry& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix ? -1 : 1;
  const std::string_view ka = a.key(), kb = b.key();
  const int c = ka.compare(kb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Stable 2-way merge of the adjacent sorted runs [left, left+n1) and
/// [left+n1, left+n1+n2) into `out`, with a branchless inner loop: the
/// winner of each comparison is selected by address arithmetic (compiles to
/// a conditional move), so the data-dependent compare never becomes an
/// unpredictable branch — on random keys that misprediction, not memory
/// traffic, dominates the sort. Taking the left side on ties preserves
/// stability, and the comparison count stays a pure function of the input.
inline std::int64_t merge_adjacent_runs(const KVBatch::Entry* left, std::size_t n1,
                                        std::size_t n2, KVBatch::Entry* out) {
  const KVBatch::Entry* right = left + n1;
  std::int64_t comparisons = 0;
  std::size_t i = 0, j = 0, o = 0;
  while (i < n1 && j < n2) {
    ++comparisons;
    const bool take_right = compare_entries(right[j], left[i]) < 0;
    out[o++] = take_right ? right[j] : left[i];
    i += static_cast<std::size_t>(!take_right);
    j += static_cast<std::size_t>(take_right);
  }
  if (i < n1) std::memcpy(out + o, left + i, (n1 - i) * sizeof(KVBatch::Entry));
  else if (j < n2) std::memcpy(out + o, right + j, (n2 - j) * sizeof(KVBatch::Entry));
  return comparisons;
}

/// Stable sort of the range [a, a+n) by key (ties keep input order, like
/// Hadoop's stable spill sort), using caller-provided scratch of at least n
/// entries; the result always lands back in `a`. Bottom-up merge sort over
/// insertion-sorted base runs rather than std::stable_sort so the returned
/// key-comparison count is a deterministic function of the input on every
/// platform/stdlib — bench/ml_scaling gates on it. The 16-entry
/// insertion-sorted base runs save the four densest merge passes (the bulk
/// of the 24-byte entry copies) without giving up determinism.
/// Insertion-sorted base-run length of sort_entries_range: ranges at or
/// under this size never touch scratch.
inline constexpr std::size_t kSortBaseRun = 16;

inline std::int64_t sort_entries_range(KVBatch::Entry* a, std::size_t n,
                                       KVBatch::Entry* scratch) {
  constexpr std::size_t kBaseRun = kSortBaseRun;
  if (n < 2) return 0;
  std::int64_t comparisons = 0;
  for (std::size_t lo = 0; lo < n; lo += kBaseRun) {
    const std::size_t hi = lo + kBaseRun < n ? lo + kBaseRun : n;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const KVBatch::Entry e = a[i];
      std::size_t j = i;
      while (j > lo) {
        ++comparisons;
        if (compare_entries(e, a[j - 1]) < 0) {
          a[j] = a[j - 1];
          --j;
        } else {
          break;
        }
      }
      a[j] = e;
    }
  }
  if (n <= kBaseRun) return comparisons;
  KVBatch::Entry* src = a;
  KVBatch::Entry* dst = scratch;
  bool in_src = true;
  for (std::size_t width = kBaseRun; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = lo + width < n ? lo + width : n;
      const std::size_t hi = lo + 2 * width < n ? lo + 2 * width : n;
      comparisons += merge_adjacent_runs(src + lo, mid - lo, hi - mid, dst + lo);
    }
    std::swap(src, dst);
    in_src = !in_src;
  }
  if (!in_src) std::memcpy(a, src, n * sizeof(KVBatch::Entry));
  return comparisons;
}

/// Convenience wrapper over sort_entries_range that allocates its own
/// scratch (only when a merge pass is actually needed).
inline std::int64_t sort_entries(std::vector<KVBatch::Entry>& entries) {
  const std::size_t n = entries.size();
  if (n <= kSortBaseRun) return sort_entries_range(entries.data(), n, nullptr);
  std::vector<KVBatch::Entry> scratch(n);
  return sort_entries_range(entries.data(), n, scratch.data());
}

/// True k-way merge of key-sorted runs into the raw slot array `out`
/// (which must hold at least the runs' total size; every slot up to that
/// total is written exactly once). Ties resolve to the earlier run, then
/// input order within a run — exactly the order a stable sort of the runs'
/// concatenation produces, so outputs stay byte-identical to the reference
/// path. Hand-rolled binary heap for deterministic comparison counts.
/// Writing into caller-provided slots (rather than a vector) lets the
/// parallel reduce merge give each key range its own disjoint output
/// window. Returns the number of key comparisons.
inline std::int64_t merge_runs_into(std::span<const std::span<const KVBatch::Entry>> runs,
                                    KVBatch::Entry* out) {
  struct Head {
    const KVBatch::Entry* cur;
    const KVBatch::Entry* end;
    std::size_t run;
  };
  std::vector<Head> heap;
  heap.reserve(runs.size());
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push_back({runs[r].data(), runs[r].data() + runs[r].size(), r});
  }
  if (heap.empty()) return 0;
  if (heap.size() == 1) {
    std::memcpy(out, heap[0].cur,
                static_cast<std::size_t>(heap[0].end - heap[0].cur) * sizeof(KVBatch::Entry));
    return 0;
  }

  std::int64_t comparisons = 0;
  auto head_less = [&comparisons](const Head& x, const Head& y) {
    ++comparisons;
    const int c = compare_entries(*x.cur, *y.cur);
    if (c != 0) return c < 0;
    return x.run < y.run;
  };
  auto sift_down = [&](std::size_t i) {
    const std::size_t n = heap.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && head_less(heap[l], heap[best])) best = l;
      if (r < n && head_less(heap[r], heap[best])) best = r;
      if (best == i) return;
      std::swap(heap[i], heap[best]);
      i = best;
    }
  };
  for (std::size_t i = heap.size() / 2; i-- > 0;) sift_down(i);

  std::size_t o = 0;
  while (!heap.empty()) {
    Head& top = heap[0];
    out[o++] = *top.cur;
    ++top.cur;
    if (top.cur == top.end) {
      heap[0] = heap.back();
      heap.pop_back();
      if (heap.empty()) break;
    }
    if (heap.size() > 1) sift_down(0);
  }
  return comparisons;
}

/// Vector-output convenience wrapper over merge_runs_into.
inline std::int64_t merge_runs(std::span<const std::span<const KVBatch::Entry>> runs,
                               std::vector<KVBatch::Entry>& out) {
  std::size_t total = 0;
  for (const auto& r : runs) total += r.size();
  out.clear();
  out.resize(total);
  return merge_runs_into(runs, out.data());
}

}  // namespace vhadoop::mapreduce

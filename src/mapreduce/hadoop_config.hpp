#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace vhadoop::mapreduce {

/// Tuning knobs for the real-execution LocalJobRunner's optimized data path
/// (DESIGN.md §15). All three are *routing* thresholds: they decide where
/// work runs (serial vs parallel, fast path vs full pipeline), never what
/// is computed — outputs and profiles are identical at every setting, and
/// the split structure they induce is a pure function of data + config, so
/// comparison counters stay reproducible across thread counts.
///
/// Validated at construction: every threshold must be positive (a zero or
/// negative threshold would make the routing predicates degenerate).
struct RunnerTuning {
  RunnerTuning(std::int64_t sort_parallel_threshold_ = kDefaultSortParallelThreshold,
               std::int64_t small_job_fast_path_bytes_ = kDefaultSmallJobFastPathBytes,
               std::int64_t merge_range_split_min_ = kDefaultMergeRangeSplitMin)
      : sort_parallel_threshold(sort_parallel_threshold_),
        small_job_fast_path_bytes(small_job_fast_path_bytes_),
        merge_range_split_min(merge_range_split_min_) {
    if (sort_parallel_threshold <= 0) {
      throw std::invalid_argument("RunnerTuning: sort_parallel_threshold must be positive");
    }
    if (small_job_fast_path_bytes <= 0) {
      throw std::invalid_argument("RunnerTuning: small_job_fast_path_bytes must be positive");
    }
    if (merge_range_split_min <= 0) {
      throw std::invalid_argument("RunnerTuning: merge_range_split_min must be positive");
    }
  }

  static constexpr std::int64_t kDefaultSortParallelThreshold = 1 << 15;
  static constexpr std::int64_t kDefaultSmallJobFastPathBytes = 256 * 1024;
  static constexpr std::int64_t kDefaultMergeRangeSplitMin = 1 << 17;

  /// A spill-sort partition larger than this many entries is cut into
  /// power-of-two runs sorted in parallel (parallel_sort.hpp).
  std::int64_t sort_parallel_threshold;
  /// Jobs whose total input is at most this many bytes take the serial
  /// single-pass fast path (no worker wake-up, no partition counting pass).
  std::int64_t small_job_fast_path_bytes;
  /// A reduce merge over more entries than this is split into prefix
  /// key-ranges merged in parallel; smaller merges stay serial.
  std::int64_t merge_range_split_min;
};

/// Which job scheduler the simulated JobTracker loads (the 0.20-era
/// mapred.jobtracker.taskScheduler pluggability point).
enum class SchedulerPolicy {
  Fifo,      ///< strict submit order, one job served at a time (era default)
  Fair,      ///< equal slot shares across runnable jobs + delay scheduling
  Capacity,  ///< named queues with guaranteed/max slot fractions, user limits
  Deadline,  ///< EDF within priority tiers + anti-starvation aging (SLO traffic)
};

/// One Capacity-scheduler queue (mapred-queues.xml entry).
struct QueueConfig {
  std::string name = "default";
  /// Guaranteed fraction of the cluster's slots of each kind.
  double capacity = 1.0;
  /// Elastic ceiling: the queue may borrow idle slots up to this fraction.
  double max_capacity = 1.0;
  /// Largest fraction of the queue's ceiling one user may hold
  /// (minimum-user-limit-percent, simplified to a hard per-user cap).
  double user_limit = 1.0;
};

/// MapReduce-layer knobs of the Hadoop Module (paper Sec. II-B), with the
/// Hadoop-0.20-era defaults a 1-VCPU/1-GB worker would carry.
struct HadoopConfig {
  /// mapred.tasktracker.map.tasks.maximum
  int map_slots_per_worker = 2;
  /// mapred.tasktracker.reduce.tasks.maximum
  int reduce_slots_per_worker = 1;
  /// TaskTracker heartbeat period; one map + one reduce may be assigned
  /// per heartbeat (JobTracker protocol of the era — 3 s was the floor in
  /// Hadoop 0.20, which is why small jobs feel task-count in their latency).
  double heartbeat_seconds = 3.0;
  /// Child-JVM spawn per task: a fixed latency portion (fork/exec, class
  /// loading I/O) plus a CPU-burning portion that contends with guest load
  /// when the host is oversubscribed.
  double task_start_latency = 0.9;
  double task_start_cpu_seconds = 0.25;
  /// Job localization per task: jar + job.xml + sandbox writes hitting the
  /// (NFS-backed) local disk.
  double task_localization_bytes = 8 * sim::kMiB;
  /// io.sort.mb: in-memory sort buffer; outputs beyond it pay an extra
  /// spill-merge pass on both the map and reduce sides.
  double io_sort_bytes = 100 * sim::kMiB;
  /// Fraction of maps that must finish before reducers are launched
  /// (mapred.reduce.slowstart.completed.maps).
  double reduce_slowstart = 0.05;
  /// Replication for job output files (TeraSort sets 1; others inherit
  /// dfs.replication).
  int output_replication = 0;  // 0 = inherit from HDFS config
  /// mapred.reduce.parallel.copies: concurrent shuffle fetches per reduce.
  /// Bounding the fan-in keeps a large job's shuffle from opening
  /// maps × reduces simultaneous flows (it also keeps the fluid model's
  /// sharing components small on big clusters — see DESIGN.md §10).
  int reduce_parallel_copies = 5;
  /// mapred.map.tasks.speculative.execution: launch a duplicate attempt of
  /// a map that has been running far longer than the completed-task mean;
  /// the first finisher wins (covers silently hung nodes).
  bool speculative_execution = true;
  /// How many times slower than the mean a running map must be before a
  /// speculative attempt is considered.
  double speculative_slowdown = 2.5;
  /// TaskTrackers heartbeat immediately on task completion (0.20
  /// behaviour); disabling reverts to strictly periodic slot refill.
  bool out_of_band_heartbeats = true;
  /// mapred.task.timeout: a task making no progress for this long is
  /// killed and re-executed (catches tasks wedged on I/O against a dead
  /// node). Reduce progress is refreshed by every shuffle arrival.
  double task_timeout_seconds = 240.0;
  /// Which scheduler the JobTracker runs. FIFO reproduces the seed
  /// behaviour exactly; Fair and Capacity allow concurrent jobs.
  SchedulerPolicy scheduler = SchedulerPolicy::Fifo;
  /// Fair-scheduler delay scheduling: how long a job may be skipped while
  /// waiting for a slot on a node holding one of its input blocks before it
  /// accepts a non-local slot (Zaharia et al., EuroSys'10). The Deadline
  /// scheduler applies the same delay to its map picks.
  double locality_delay_seconds = 6.0;
  /// Deadline scheduler's anti-starvation window: a job that has waited
  /// this long without ever receiving a slot preempts the EDF/priority
  /// order (oldest such job first), so a stream of urgent arrivals cannot
  /// starve no-deadline batch work indefinitely.
  double deadline_starvation_window_seconds = 300.0;
  /// Capacity-scheduler queues. Empty = a single "default" queue owning the
  /// whole cluster; jobs naming an unknown queue fall into the first one.
  std::vector<QueueConfig> queues;
  /// Data-path tuning for the real-execution LocalJobRunner (DESIGN.md §15).
  RunnerTuning runner;
};

}  // namespace vhadoop::mapreduce

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vhadoop::mapreduce {

/// A key/value record. Keys and values are serialized byte strings, exactly
/// as Hadoop Writables cross task boundaries — the serialization cost the
/// platform models is therefore the real cost of these bytes.
struct KV {
  std::string key;
  std::string value;

  bool operator==(const KV&) const = default;
  std::size_t bytes() const { return key.size() + value.size(); }
};

/// Stable 32-bit FNV-1a. Partitioning must be identical across runs and
/// platforms (std::hash is neither), as in Hadoop's HashPartitioner.
inline std::uint32_t stable_hash(std::string_view s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// Hadoop's default partitioner: hash(key) mod R.
inline int default_partition(std::string_view key, int num_reduces) {
  return static_cast<int>(stable_hash(key) % static_cast<std::uint32_t>(num_reduces));
}

// --- codecs -----------------------------------------------------------------
// Fixed-format binary codecs for numeric payloads. Text formats would
// inflate shuffle sizes unrealistically for the ML jobs. Decoders validate
// payload sizes: a truncated record is a serialization bug, not a value.

inline std::string encode_f64(double v) {
  std::string out(sizeof(double), '\0');
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}

inline double decode_f64(std::string_view s) {
  if (s.size() < sizeof(double)) {
    throw std::invalid_argument("decode_f64: payload shorter than 8 bytes");
  }
  double v = 0.0;
  std::memcpy(&v, s.data(), sizeof(double));
  return v;
}

inline std::string encode_i64(std::int64_t v) {
  std::string out(sizeof(v), '\0');
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

inline std::int64_t decode_i64(std::string_view s) {
  if (s.size() < sizeof(std::int64_t)) {
    throw std::invalid_argument("decode_i64: payload shorter than 8 bytes");
  }
  std::int64_t v = 0;
  std::memcpy(&v, s.data(), sizeof(v));
  return v;
}

inline std::string encode_vec(std::span<const double> v) {
  std::string out(v.size() * sizeof(double), '\0');
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

inline std::vector<double> decode_vec(std::string_view s) {
  if (s.size() % sizeof(double) != 0) {
    throw std::invalid_argument("decode_vec: payload size not a multiple of 8");
  }
  std::vector<double> v(s.size() / sizeof(double));
  if (!v.empty()) std::memcpy(v.data(), s.data(), v.size() * sizeof(double));
  return v;
}

/// Zero-copy view over a packed-double payload. Values emitted through the
/// arena-backed data path (KVBatch) are 8-byte aligned, so the common case
/// is a direct span over the payload bytes — no allocation, no copy, which
/// removes the per-record `decode_vec` heap allocation from every ML
/// iteration's mapper. Payloads from other sources (e.g. an std::string
/// whose buffer happens to be unaligned) fall back to one memcpy into
/// `scratch`; callers keep `scratch` alive as long as the returned span.
inline std::span<const double> decode_vec_view(std::string_view s, std::vector<double>& scratch) {
  if (s.size() % sizeof(double) != 0) {
    throw std::invalid_argument("decode_vec_view: payload size not a multiple of 8");
  }
  const std::size_t n = s.size() / sizeof(double);
  if (n == 0) return {};
  if (reinterpret_cast<std::uintptr_t>(s.data()) % alignof(double) == 0) {
    // The bytes were memcpy'd from doubles; reading them back through an
    // aligned double* is the standard serialization idiom.
    return {reinterpret_cast<const double*>(static_cast<const void*>(s.data())), n};
  }
  scratch.resize(n);
  std::memcpy(scratch.data(), s.data(), s.size());
  return {scratch.data(), n};
}

}  // namespace vhadoop::mapreduce

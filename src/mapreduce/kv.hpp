#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace vhadoop::mapreduce {

/// A key/value record. Keys and values are serialized byte strings, exactly
/// as Hadoop Writables cross task boundaries — the serialization cost the
/// platform models is therefore the real cost of these bytes.
struct KV {
  std::string key;
  std::string value;

  bool operator==(const KV&) const = default;
  std::size_t bytes() const { return key.size() + value.size(); }
};

/// Stable 32-bit FNV-1a. Partitioning must be identical across runs and
/// platforms (std::hash is neither), as in Hadoop's HashPartitioner.
inline std::uint32_t stable_hash(std::string_view s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// Hadoop's default partitioner: hash(key) mod R.
inline int default_partition(std::string_view key, int num_reduces) {
  return static_cast<int>(stable_hash(key) % static_cast<std::uint32_t>(num_reduces));
}

// --- codecs -----------------------------------------------------------------
// Fixed-format binary codecs for numeric payloads. Text formats would
// inflate shuffle sizes unrealistically for the ML jobs.

inline std::string encode_f64(double v) {
  std::string out(sizeof(double), '\0');
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}

inline double decode_f64(std::string_view s) {
  double v = 0.0;
  std::memcpy(&v, s.data(), sizeof(double));
  return v;
}

inline std::string encode_i64(std::int64_t v) {
  std::string out(sizeof(v), '\0');
  std::memcpy(out.data(), &v, sizeof(v));
  return out;
}

inline std::int64_t decode_i64(std::string_view s) {
  std::int64_t v = 0;
  std::memcpy(&v, s.data(), sizeof(v));
  return v;
}

inline std::string encode_vec(const std::vector<double>& v) {
  std::string out(v.size() * sizeof(double), '\0');
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

inline std::vector<double> decode_vec(std::string_view s) {
  std::vector<double> v(s.size() / sizeof(double));
  if (!v.empty()) std::memcpy(v.data(), s.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace vhadoop::mapreduce
